// Reproduces Figure 14: multiple-model inference (inception_v3 +
// inception_v4 + inception_resnet_v2) with MIN-rate arrivals
// (r_l = 128 requests/second). Baseline 1: run ALL models synchronously on
// each batch (greedy batch sizing) vs the RL scheduler that picks both the
// model subset and the batch size.
//
// Expected shape (paper):
//  (a) baseline accuracy is FIXED at a(all models);
//  (b) RL accuracy is high when the arrival rate is low and dips when the
//      rate is high (it sheds models to keep up);
//  (c/d) overdue counts are small at this low rate; the baseline's few
//      overdues come from the queue-size/batch-size mismatch.

#include <cstdio>

#include "bench/serving_bench.h"

int main() {
  using namespace rafiki;         // NOLINT
  using namespace rafiki::bench;  // NOLINT

  auto models = TripleModelSet();
  model::EnsembleAccuracyTable table(models, model::PredictionSimOptions{},
                                     40000);
  const double r_min = model::MinThroughput(models, 64);
  const double kEval = 1500.0;

  std::printf("M = {inception_v3, inception_v4, inception_resnet_v2}, "
              "r_l = %.0f req/s; a(all) = %.4f\n",
              r_min, table.Accuracy(0b111));

  serving::ServingSimulator sync_sim(models, &table, PaperSimOptions(kEval));
  serving::SineArrivalProcess sync_arrivals(r_min, PaperPeriod(), 25);
  serving::SyncEnsembleGreedyPolicy sync_policy;
  serving::ServingMetrics sync_m = sync_sim.Run(sync_policy, sync_arrivals);

  serving::RlSchedulerOptions rl_options;
  rl_options.beta = 1.0;
  serving::RlSchedulerPolicy rl(3, {16, 32, 48, 64}, &table, rl_options);
  serving::ServingMetrics rl_m =
      TrainThenEvalRl(rl, models, &table, r_min, /*train_seconds=*/8000.0,
                      kEval, /*beta=*/1.0, /*seed=*/26);

  Section("Figure 14a/c: sync-all-models greedy baseline (min rate)");
  PrintServingSeries("sync", sync_m, /*stride=*/10);
  Section("Figure 14b/d: RL scheduler (min rate)");
  PrintServingSeries("rl", rl_m, /*stride=*/10);

  Section("Paper-vs-measured (Figure 14)");
  PrintServingSummary("sync", sync_m);
  PrintServingSummary("rl", rl_m);
  std::printf("accuracy: sync fixed at %.4f; RL mean %.4f varying with the "
              "rate (paper: RL high when rate low, lower when rate high)\n",
              sync_m.mean_accuracy, rl_m.mean_accuracy);
  // RL accuracy should vary across windows (model-selection adaptivity).
  double lo = 1.0, hi = 0.0;
  for (const auto& w : rl_m.windows) {
    if (w.processed_per_sec <= 0) continue;
    lo = std::min(lo, w.mean_accuracy);
    hi = std::max(hi, w.mean_accuracy);
  }
  std::printf("RL per-window accuracy range: [%.4f, %.4f] (adaptive; sync "
              "range is a single point)\n", lo, hi);
  return 0;
}
