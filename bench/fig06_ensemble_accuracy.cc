// Reproduces Figure 6: top-1 accuracy of every ensemble of
// {resnet_v2_101, inception_v3, inception_v4, inception_resnet_v2} under
// majority voting with the paper's best-accuracy tie-break, on a simulated
// ImageNet validation stream with correlated model errors.
//
// Expected shape (paper): more models -> higher accuracy, EXCEPT
// {resnet_v2_101, inception_v3}, which ties back to inception_v3's answers
// and lands below the best single model (inception_resnet_v2).
//
// Also runs the DESIGN.md ablation: random tie-breaking instead of the
// paper's rule.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "model/prediction_sim.h"
#include "model/profile.h"

namespace {

using rafiki::model::EnsembleAccuracyTable;
using rafiki::model::FindProfile;
using rafiki::model::ModelProfile;
using rafiki::model::PredictionSimOptions;
using rafiki::model::PredictionSimulator;

std::string MaskName(uint32_t mask, const std::vector<ModelProfile>& models) {
  std::string out;
  for (size_t i = 0; i < models.size(); ++i) {
    if (mask & (1u << i)) {
      if (!out.empty()) out += "+";
      out += models[i].name;
    }
  }
  return out;
}

}  // namespace

int main() {
  const int64_t kRequests = 60000;
  std::vector<ModelProfile> models{
      FindProfile("resnet_v2_101").value(),
      FindProfile("inception_v3").value(),
      FindProfile("inception_v4").value(),
      FindProfile("inception_resnet_v2").value(),
  };

  rafiki::bench::Section("Figure 6: ensemble accuracy (majority vote, "
                         "best-accuracy tie-break)");
  EnsembleAccuracyTable table(models, PredictionSimOptions{}, kRequests);
  std::printf("%-62s %6s %9s\n", "ensemble", "models", "accuracy");
  for (int count = 1; count <= 4; ++count) {
    for (uint32_t mask = 1; mask < 16; ++mask) {
      if (__builtin_popcount(mask) != count) continue;
      std::printf("%-62s %6d %9.4f\n", MaskName(mask, models).c_str(), count,
                  table.Accuracy(mask));
    }
  }

  rafiki::bench::Section("Paper-vs-measured checks");
  double best_single = table.Accuracy(0b1000);  // inception_resnet_v2
  double pair_anomaly = table.Accuracy(0b0011);  // resnet_v2_101 + v3
  double four = table.Accuracy(0b1111);
  std::printf("best single (inception_resnet_v2): %.4f (paper ~0.804)\n",
              best_single);
  std::printf("resnet_v2_101+inception_v3 pair:   %.4f — %s best single "
              "(paper: below it; the tie-break makes the pair equal "
              "inception_v3)\n",
              pair_anomaly, pair_anomaly < best_single ? "below" : "NOT below");
  std::printf("four-model ensemble:               %.4f (paper ~0.815; gain "
              "of %.1f points over best single)\n",
              four, 100.0 * (four - best_single));

  rafiki::bench::Section(
      "Ablation (DESIGN.md #1): random tie-break instead of best-accuracy");
  for (uint32_t mask : {0b0011u, 0b1100u, 0b1111u}) {
    PredictionSimulator paper_sim(models, PredictionSimOptions{});
    PredictionSimulator random_sim(models, PredictionSimOptions{});
    double paper = paper_sim.EnsembleAccuracy(mask, kRequests / 3);
    double random = random_sim.EnsembleAccuracyRandomTie(mask, kRequests / 3);
    std::printf("%-62s paper-rule=%.4f random-tie=%.4f delta=%+.4f\n",
                MaskName(mask, models).c_str(), paper, random,
                paper - random);
  }
  return 0;
}
