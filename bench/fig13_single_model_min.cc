// Reproduces Figure 13: single inference model (inception_v3) with the
// arrival rate calibrated to the MINIMUM throughput
// r_l = 16 / c(16) ~ 228 requests/second.
//
// Expected shape (paper): fewer overdue requests than Figure 10 overall;
// RL beats greedy at BOTH high and low rate here, because greedy's
// queue-length/batch-size mismatch leaves sub-batch leftovers to overdue
// while RL learns to flush them.

#include <cstdio>

#include "bench/serving_bench.h"

int main() {
  using namespace rafiki;         // NOLINT
  using namespace rafiki::bench;  // NOLINT

  auto models = SingleModelSet();
  const double rl_rate = models[0].Throughput(16);  // min throughput
  const double kEval = 1500.0;

  std::printf("inception_v3: min throughput r_l = %.0f req/s\n", rl_rate);

  serving::ServingSimulator greedy_sim(models, nullptr,
                                       PaperSimOptions(kEval));
  serving::SineArrivalProcess greedy_arrivals(rl_rate, PaperPeriod(), 15);
  serving::GreedyBatchPolicy greedy(0);
  serving::ServingMetrics greedy_m = greedy_sim.Run(greedy, greedy_arrivals);

  serving::RlSchedulerOptions rl_options;
  rl_options.beta = 1.0;
  serving::RlSchedulerPolicy rl(1, {16, 32, 48, 64}, nullptr, rl_options);
  serving::ServingMetrics rl_m =
      TrainThenEvalRl(rl, models, nullptr, rl_rate, /*train_seconds=*/6000.0,
                      kEval, /*beta=*/1.0, /*seed=*/16);

  Section("Figure 13: requests/second over time (min-rate arrivals)");
  PrintServingSeries("greedy", greedy_m, /*stride=*/10);
  PrintServingSeries("rl", rl_m, /*stride=*/10);

  Section("Paper-vs-measured (Figure 13)");
  PrintServingSummary("greedy", greedy_m);
  PrintServingSummary("rl", rl_m);
  std::printf("overdue: greedy=%lld rl=%lld (paper: RL better at both high "
              "and low rate; fewer overdue than Figure 10 overall)\n",
              static_cast<long long>(greedy_m.total_overdue),
              static_cast<long long>(rl_m.total_overdue));
  return 0;
}
