// Reproduces Figure 10: single inference model (inception_v3) with the
// request arrival rate calibrated to the MAXIMUM throughput
// r_u = 64 / c(64) ~ 272 requests/second. Compares the greedy batching
// policy (Algorithm 3) against the RL batch-size scheduler; prints the
// processed-requests/second series against the arrival rate.
//
// Expected shape (paper): both policies track the arrival rate; during the
// 20%-of-cycle overload the processed rate caps at the model's maximum
// throughput; after training, RL performs like greedy at high rate and
// slightly better at low rate.

#include <cstdio>

#include "bench/serving_bench.h"

int main() {
  using namespace rafiki;         // NOLINT
  using namespace rafiki::bench;  // NOLINT

  auto models = SingleModelSet();
  const double ru = models[0].Throughput(64);  // max throughput (§5.1)
  const double kEval = 1500.0;

  std::printf("inception_v3: max throughput r_u = %.0f req/s, tau = 0.56 s,"
              " B = {16,32,48,64}, T = %.0f s\n", ru, PaperPeriod());

  // Greedy (Algorithm 3).
  serving::ServingSimulator greedy_sim(models, nullptr,
                                       PaperSimOptions(kEval));
  serving::SineArrivalProcess greedy_arrivals(ru, PaperPeriod(), 5);
  serving::GreedyBatchPolicy greedy(0);
  serving::ServingMetrics greedy_m = greedy_sim.Run(greedy, greedy_arrivals);

  // RL: train online, then evaluate (the paper plots RL after it has been
  // running for a long time).
  serving::RlSchedulerOptions rl_options;
  rl_options.beta = 1.0;
  serving::RlSchedulerPolicy rl(1, {16, 32, 48, 64}, nullptr, rl_options);
  serving::ServingMetrics rl_m =
      TrainThenEvalRl(rl, models, nullptr, ru, /*train_seconds=*/6000.0,
                      kEval, /*beta=*/1.0, /*seed=*/6);

  Section("Figure 10: requests/second over time (max-rate arrivals)");
  PrintServingSeries("greedy", greedy_m, /*stride=*/10);
  PrintServingSeries("rl", rl_m, /*stride=*/10);

  Section("Paper-vs-measured (Figure 10)");
  PrintServingSummary("greedy", greedy_m);
  PrintServingSummary("rl", rl_m);
  double greedy_rate = static_cast<double>(greedy_m.total_processed) / kEval;
  double rl_rate = static_cast<double>(rl_m.total_processed) / kEval;
  std::printf("mean processed rate: greedy=%.1f rl=%.1f req/s (paper: both "
              "track the arrival rate, capped near %.0f at peaks)\n",
              greedy_rate, rl_rate, ru);
  return 0;
}
