// Reproduces Figure 11: scalability of distributed hyper-parameter tuning.
//  (a) wall time (simulated minutes) to finish a fixed trial budget with
//      1, 2, 4 and 8 workers — near-linear speedup;
//  (b) best validation accuracy vs wall time per worker count — more
//      workers reach high accuracy sooner.
//
// Wall time is virtual: each surrogate epoch costs a fixed number of
// simulated seconds per worker (DESIGN.md decision 4), and the study's
// wall clock is the max over workers — exactly how parallel trials overlap
// on the paper's GPUs. Plain Study is used so trial lengths are i.i.d.
// across worker counts (CoStudy's sequential checkpoint sharing changes
// the per-trial epoch counts and would confound the scaling measurement).

#include <cstdio>
#include <vector>

#include "bench/tuning_bench.h"

int main() {
  using rafiki::bench::SearchKind;
  const int64_t kTrials = 64;
  const uint64_t kSeed = 11;

  struct Run {
    int workers;
    rafiki::tuning::StudyStats stats;
  };
  std::vector<Run> runs;
  for (int workers : {1, 2, 4, 8}) {
    runs.push_back({workers,
                    rafiki::bench::RunTuning(
                        "fig11_w" + std::to_string(workers),
                        SearchKind::kRandom, /*collaborative=*/false,
                        kTrials, workers, kSeed)});
  }

  rafiki::bench::Section(
      "Figure 11a: wall time (simulated minutes) for 64 trials");
  double base = runs.front().stats.sim_seconds;
  std::printf("workers wall_minutes speedup ideal\n");
  for (const Run& r : runs) {
    std::printf("%7d %12.1f %7.2f %5d\n", r.workers,
                r.stats.sim_seconds / 60.0, base / r.stats.sim_seconds,
                r.workers);
  }

  rafiki::bench::Section(
      "Figure 11b: best accuracy vs wall time (simulated minutes)");
  for (const Run& r : runs) {
    std::string label = std::to_string(r.workers) + "w";
    // Subsample the progress log to ~12 points per run.
    size_t stride = r.stats.progress.size() / 12 + 1;
    std::printf("%s: wall_minutes best_accuracy\n", label.c_str());
    for (size_t i = 0; i < r.stats.progress.size(); i += stride) {
      const rafiki::tuning::ProgressPoint& p = r.stats.progress[i];
      std::printf("%s: %8.1f %8.4f\n", label.c_str(), p.sim_seconds / 60.0,
                  p.best_performance);
    }
    std::printf("%s: %8.1f %8.4f (final)\n", label.c_str(),
                r.stats.sim_seconds / 60.0, r.stats.best_performance);
  }

  rafiki::bench::Section("Paper-vs-measured (Figure 11)");
  std::printf("speedup 1->8 workers: %.2fx (paper: ~linear, i.e. ~8x)\n",
              base / runs.back().stats.sim_seconds);
  return 0;
}
