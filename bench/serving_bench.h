#ifndef RAFIKI_BENCH_SERVING_BENCH_H_
#define RAFIKI_BENCH_SERVING_BENCH_H_

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "model/prediction_sim.h"
#include "model/profile.h"
#include "serving/greedy_batch.h"
#include "serving/rl_scheduler.h"
#include "serving/simulator.h"
#include "serving/sine_arrival.h"

namespace rafiki::bench {

/// §7.2.1 single model: inception_v3.
inline std::vector<model::ModelProfile> SingleModelSet() {
  return {model::FindProfile("inception_v3").value()};
}

/// §7.2.2 model list M: {inception_v3, inception_v4, inception_resnet_v2}.
inline std::vector<model::ModelProfile> TripleModelSet() {
  return {model::FindProfile("inception_v3").value(),
          model::FindProfile("inception_v4").value(),
          model::FindProfile("inception_resnet_v2").value()};
}

/// The paper's serving configuration: B = {16,32,48,64},
/// tau = 2 * c_v3(64) = 0.56 s, cycle period T = 500 * tau.
inline serving::ServingSimOptions PaperSimOptions(double duration,
                                                  double beta = 1.0) {
  serving::ServingSimOptions options;
  options.tau = 0.56;
  options.batch_sizes = {16, 32, 48, 64};
  options.duration_seconds = duration;
  options.metrics_window = 10.0;
  options.beta = beta;
  return options;
}

inline double PaperPeriod() { return 500.0 * 0.56; }  // 280 s

/// Trains an RL scheduler online for `train_seconds` of simulated time
/// (the paper evaluates RL after it has run for hours of simulated time —
/// Figures 10/13-16 show windows at t ~ 13500-24000 s), then evaluates it
/// for `eval_seconds` with a fresh arrival stream.
inline serving::ServingMetrics TrainThenEvalRl(
    serving::RlSchedulerPolicy& rl,
    const std::vector<model::ModelProfile>& models,
    const model::EnsembleAccuracyTable* table, double target_rate,
    double train_seconds, double eval_seconds, double beta,
    uint64_t seed) {
  serving::ServingSimulator train_sim(models, table,
                                      PaperSimOptions(train_seconds, beta));
  serving::SineArrivalProcess train_arrivals(target_rate, PaperPeriod(),
                                             seed);
  rl.set_explore(true);
  train_sim.Run(rl, train_arrivals);

  // Evaluate the learned policy greedily (it still receives Feedback and
  // keeps learning online, as the paper's deployed system does).
  rl.set_explore(false);
  serving::ServingSimulator eval_sim(models, table,
                                     PaperSimOptions(eval_seconds, beta));
  serving::SineArrivalProcess eval_arrivals(target_rate, PaperPeriod(),
                                            seed + 1);
  return eval_sim.Run(rl, eval_arrivals);
}

}  // namespace rafiki::bench

#endif  // RAFIKI_BENCH_SERVING_BENCH_H_
