// Reproduces Figure 16: effect of beta in the Equation 7 reward
//   a(M[v]) * (b - beta * |overdue|)
// on the RL scheduler, with min-rate arrivals (as in the paper).
//
// Expected shape (paper): beta = 0 ignores latency, so accuracy is higher
// but many requests overdue; beta = 1 trades a little accuracy for far
// fewer overdue requests.

#include <cstdio>

#include "bench/serving_bench.h"

int main() {
  using namespace rafiki;         // NOLINT
  using namespace rafiki::bench;  // NOLINT

  auto models = TripleModelSet();
  model::EnsembleAccuracyTable table(models, model::PredictionSimOptions{},
                                     40000);
  const double r_min = model::MinThroughput(models, 64);
  const double kEval = 1500.0;

  struct Run {
    double beta;
    serving::ServingMetrics metrics;
  };
  std::vector<Run> runs;
  for (double beta : {0.0, 1.0}) {
    serving::RlSchedulerOptions rl_options;
    rl_options.beta = beta;
    serving::RlSchedulerPolicy rl(3, {16, 32, 48, 64}, &table, rl_options);
    runs.push_back({beta, TrainThenEvalRl(rl, models, &table, r_min,
                                          /*train_seconds=*/8000.0, kEval,
                                          beta, /*seed=*/46)});
  }

  for (const Run& r : runs) {
    Section("Figure 16, beta = " + std::to_string(r.beta));
    PrintServingSeries("rl_b" + std::to_string(static_cast<int>(r.beta)),
                       r.metrics, /*stride=*/10);
  }

  Section("Paper-vs-measured (Figure 16)");
  for (const Run& r : runs) {
    std::printf("beta=%.0f: accuracy=%.4f overdue=%lld (%.2f%%)\n", r.beta,
                r.metrics.mean_accuracy,
                static_cast<long long>(r.metrics.total_overdue),
                100.0 * r.metrics.OverdueFraction());
  }
  std::printf("(paper: beta=0 -> higher accuracy, many overdue; "
              "beta=1 -> fewer overdue, slightly lower accuracy)\n");
  return 0;
}
