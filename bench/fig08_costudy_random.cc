// Reproduces Figure 8: hyper-parameter tuning based on RANDOM SEARCH,
// Study (Algorithm 1) vs CoStudy (Algorithm 2), 200 trials each on the
// surrogate CIFAR-10 ConvNet.
//
//  (a) per-trial accuracy scatter — CoStudy's top region is denser;
//  (b) accuracy histogram — CoStudy has more trials above 50% accuracy and
//      fewer below;
//  (c) best-so-far accuracy vs total training epochs — CoStudy climbs
//      faster and ends higher.
//
// Also runs the DESIGN.md ablations: the alpha-greedy schedule (always-
// random vs always-warm-start vs decayed alpha) and the delta publish gate.

#include <cstdio>

#include "bench/tuning_bench.h"

namespace {

using rafiki::bench::PrintAccuracyHistogram;
using rafiki::bench::PrintProgressCurve;
using rafiki::bench::PrintTrialScatter;
using rafiki::bench::RunTuning;
using rafiki::bench::SearchKind;
using rafiki::tuning::StudyStats;

/// CoStudy with an explicit alpha schedule / delta (for the ablations).
StudyStats RunCoStudyVariant(const std::string& name, double alpha_init,
                             double alpha_decay, double alpha_min,
                             double delta, uint64_t seed) {
  rafiki::tuning::HyperSpace space = rafiki::bench::MakeCifarSpace();
  auto advisor =
      rafiki::bench::MakeAdvisor(SearchKind::kRandom, &space, 120, seed);
  rafiki::trainer::SurrogateOptions surrogate;
  surrogate.seed = seed + 1;
  rafiki::trainer::SurrogateFactory factory(surrogate);
  rafiki::cluster::MessageBus bus;
  rafiki::ps::ParameterServer ps;
  rafiki::tuning::StudyConfig config;
  config.max_trials = 120;
  config.max_epochs_per_trial = 50;
  config.collaborative = true;
  config.delta = delta;
  config.alpha_init = alpha_init;
  config.alpha_decay = alpha_decay;
  config.alpha_min = alpha_min;
  config.early_stop_patience = 5;
  return rafiki::tuning::RunStudy(name, config, advisor.get(), &factory,
                                  &bus, &ps, nullptr, /*num_workers=*/3,
                                  seed);
}

}  // namespace

int main() {
  const int64_t kTrials = 200;
  const int kWorkers = 3;
  const uint64_t kSeed = 2018;

  StudyStats study = RunTuning("fig8_study", SearchKind::kRandom,
                               /*collaborative=*/false, kTrials, kWorkers,
                               kSeed);
  StudyStats costudy = RunTuning("fig8_costudy", SearchKind::kRandom,
                                 /*collaborative=*/true, kTrials, kWorkers,
                                 kSeed);

  rafiki::bench::Section("Figure 8a: per-trial accuracy (random search)");
  PrintTrialScatter("Study", study, /*stride=*/8);
  PrintTrialScatter("CoStudy", costudy, /*stride=*/8);

  rafiki::bench::Section("Figure 8b: accuracy histogram");
  PrintAccuracyHistogram("Study", study);
  PrintAccuracyHistogram("CoStudy", costudy);

  rafiki::bench::Section("Figure 8c: best accuracy vs total epochs");
  PrintProgressCurve("Study", study, /*stride=*/300);
  PrintProgressCurve("CoStudy", costudy, /*stride=*/300);

  rafiki::bench::Section("Paper-vs-measured (Figure 8)");
  std::printf("final best: Study=%.4f CoStudy=%.4f (paper: CoStudy higher; "
              "best >0.91)\n",
              study.best_performance, costudy.best_performance);
  std::printf("total epochs consumed: Study=%lld CoStudy=%lld\n",
              static_cast<long long>(study.total_epochs),
              static_cast<long long>(costudy.total_epochs));

  rafiki::bench::Section(
      "Ablation (DESIGN.md #2): alpha-greedy schedule, 120 trials");
  StudyStats always_random =
      RunCoStudyVariant("abl_alpha1", 1.0, 1.0, 1.0, 0.005, kSeed + 1);
  StudyStats always_warm =
      RunCoStudyVariant("abl_alpha0", 0.0, 1.0, 0.0, 0.005, kSeed + 1);
  StudyStats decayed =
      RunCoStudyVariant("abl_decay", 0.8, 0.97, 0.05, 0.005, kSeed + 1);
  std::printf("always-random (alpha=1, == Study):  best=%.4f\n",
              always_random.best_performance);
  std::printf("always-warm-start (alpha=0):        best=%.4f\n",
              always_warm.best_performance);
  std::printf("decayed alpha (paper's scheme):     best=%.4f\n",
              decayed.best_performance);

  rafiki::bench::Section(
      "Ablation (DESIGN.md #3): delta publish gate, 120 trials");
  for (double delta : {0.0, 0.005, 0.05}) {
    StudyStats s = RunCoStudyVariant(
        "abl_delta" + std::to_string(delta), 0.8, 0.97, 0.05, delta,
        kSeed + 2);
    std::printf("delta=%.3f: best=%.4f epochs=%lld\n", delta,
                s.best_performance, static_cast<long long>(s.total_epochs));
  }
  return 0;
}
