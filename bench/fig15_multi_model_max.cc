// Reproduces Figure 15: multiple-model inference with MAX-rate arrivals
// (r_u = 572 requests/second). Baseline 2: all models run asynchronously,
// one model per batch (no ensembling, maximum throughput) vs the RL
// scheduler.
//
// Expected shape (paper): RL achieves BOTH better accuracy (it ensembles
// when the rate allows) and fewer overdue requests than the baseline; at
// peak rate it uses fewer models per batch to keep throughput up.

#include <cstdio>

#include "bench/serving_bench.h"

int main() {
  using namespace rafiki;         // NOLINT
  using namespace rafiki::bench;  // NOLINT

  auto models = TripleModelSet();
  model::EnsembleAccuracyTable table(models, model::PredictionSimOptions{},
                                     40000);
  const double r_max = model::MaxThroughput(models, 64);
  const double kEval = 1500.0;

  std::printf("M = 3 models, r_u = %.0f req/s; single-model accuracies: "
              "%.4f / %.4f / %.4f\n",
              r_max, table.Accuracy(0b001), table.Accuracy(0b010),
              table.Accuracy(0b100));

  serving::ServingSimulator async_sim(models, &table,
                                      PaperSimOptions(kEval));
  serving::SineArrivalProcess async_arrivals(r_max, PaperPeriod(), 35);
  serving::AsyncNoEnsemblePolicy async_policy;
  serving::ServingMetrics async_m =
      async_sim.Run(async_policy, async_arrivals);

  serving::RlSchedulerOptions rl_options;
  rl_options.beta = 1.0;
  serving::RlSchedulerPolicy rl(3, {16, 32, 48, 64}, &table, rl_options);
  serving::ServingMetrics rl_m =
      TrainThenEvalRl(rl, models, &table, r_max, /*train_seconds=*/8000.0,
                      kEval, /*beta=*/1.0, /*seed=*/36);

  Section("Figure 15a/c: async no-ensemble baseline (max rate)");
  PrintServingSeries("async", async_m, /*stride=*/10);
  Section("Figure 15b/d: RL scheduler (max rate)");
  PrintServingSeries("rl", rl_m, /*stride=*/10);

  Section("Paper-vs-measured (Figure 15)");
  PrintServingSummary("async", async_m);
  PrintServingSummary("rl", rl_m);
  std::printf("accuracy: async=%.4f rl=%.4f (paper: RL higher)\n",
              async_m.mean_accuracy, rl_m.mean_accuracy);
  std::printf("overdue rate: async=%.2f%% rl=%.2f%% (paper: RL fewer)\n",
              100.0 * async_m.OverdueFraction(),
              100.0 * rl_m.OverdueFraction());
  return 0;
}
