#ifndef RAFIKI_BENCH_TUNING_BENCH_H_
#define RAFIKI_BENCH_TUNING_BENCH_H_

#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "cluster/message_bus.h"
#include "common/stats.h"
#include "ps/parameter_server.h"
#include "trainer/surrogate.h"
#include "tuning/bayes_opt.h"
#include "tuning/study.h"
#include "tuning/trial_advisor.h"

namespace rafiki::bench {

/// The §7.1.1 search space: group-3 optimization hyper-parameters of the
/// fixed 8-conv-layer CIFAR-10 network (learning rate, momentum, weight
/// decay, dropout, weight-init stddev).
inline tuning::HyperSpace MakeCifarSpace() {
  tuning::HyperSpace space;
  RAFIKI_CHECK_OK(space.AddRangeKnob("learning_rate",
                                     tuning::KnobDtype::kFloat, 1e-4, 1.0,
                                     /*log_scale=*/true));
  RAFIKI_CHECK_OK(space.AddRangeKnob("momentum", tuning::KnobDtype::kFloat,
                                     0.0, 0.999));
  RAFIKI_CHECK_OK(space.AddRangeKnob("weight_decay",
                                     tuning::KnobDtype::kFloat, 1e-6, 1e-1,
                                     /*log_scale=*/true));
  RAFIKI_CHECK_OK(space.AddRangeKnob("dropout", tuning::KnobDtype::kFloat,
                                     0.0, 0.7));
  RAFIKI_CHECK_OK(space.AddRangeKnob("init_std", tuning::KnobDtype::kFloat,
                                     1e-3, 1.0, /*log_scale=*/true));
  return space;
}

enum class SearchKind { kRandom, kBayesOpt };

/// Builds an advisor of the requested kind over `space`.
inline std::unique_ptr<tuning::TrialAdvisor> MakeAdvisor(
    SearchKind kind, const tuning::HyperSpace* space, int64_t max_trials,
    uint64_t seed) {
  if (kind == SearchKind::kRandom) {
    return std::make_unique<tuning::RandomSearchAdvisor>(space, max_trials,
                                                         seed);
  }
  tuning::BayesOptOptions options;
  options.max_trials = max_trials;
  options.num_init_random = 10;
  options.candidates_per_step = 256;
  options.seed = seed;
  return std::make_unique<tuning::BayesOptAdvisor>(space, options);
}

/// Runs one Study/CoStudy over the surrogate CIFAR trainer and returns its
/// statistics.
inline tuning::StudyStats RunTuning(const std::string& name, SearchKind kind,
                                    bool collaborative, int64_t trials,
                                    int workers, uint64_t seed) {
  tuning::HyperSpace space = MakeCifarSpace();
  std::unique_ptr<tuning::TrialAdvisor> advisor =
      MakeAdvisor(kind, &space, trials, seed);
  trainer::SurrogateOptions surrogate;
  surrogate.seed = seed + 1;
  trainer::SurrogateFactory factory(surrogate);
  cluster::MessageBus bus;
  ps::ParameterServer ps;

  tuning::StudyConfig config;
  config.max_trials = trials;
  config.max_epochs_per_trial = 50;
  config.collaborative = collaborative;
  config.delta = 0.005;  // CIFAR-10 head-room sizing, §4.2.2
  config.alpha_init = 0.8;
  config.alpha_decay = 0.97;
  config.alpha_min = 0.05;
  config.early_stop_patience = 5;
  config.early_stop_min_delta = 0.002;
  return tuning::RunStudy(name, config, advisor.get(), &factory, &bus, &ps,
                          nullptr, workers, seed);
}

/// (a)-panel: per-trial final accuracy scatter (trial index vs accuracy).
inline void PrintTrialScatter(const std::string& label,
                              const tuning::StudyStats& stats, int stride) {
  std::printf("%s scatter: trial_index accuracy epochs warm_started\n",
              label.c_str());
  for (size_t i = 0; i < stats.trials.size();
       i += static_cast<size_t>(stride)) {
    const tuning::TrialRecord& t = stats.trials[i];
    std::printf("%s scatter: %4zu %8.4f %4d %d\n", label.c_str(), i,
                t.performance, t.epochs, t.warm_started ? 1 : 0);
  }
}

/// (b)-panel: accuracy histogram over all finished trials.
inline void PrintAccuracyHistogram(const std::string& label,
                                   const tuning::StudyStats& stats) {
  Histogram hist(0.0, 1.0, 10);
  for (const tuning::TrialRecord& t : stats.trials) {
    hist.Add(t.performance);
  }
  std::printf("%s histogram: bucket_lo count\n", label.c_str());
  for (size_t b = 0; b < hist.num_buckets(); ++b) {
    std::printf("%s histogram: %4.1f %5zu\n", label.c_str(), hist.BucketLo(b),
                hist.BucketCount(b));
  }
  std::printf("%s trials with accuracy > 0.5: %zu / %zu\n", label.c_str(),
              hist.CountAtLeast(0.5), hist.total());
}

/// (c)-panel: best-so-far accuracy vs cumulative training epochs.
inline void PrintProgressCurve(const std::string& label,
                               const tuning::StudyStats& stats, int stride) {
  std::printf("%s curve: total_epochs best_accuracy sim_minutes\n",
              label.c_str());
  for (size_t i = 0; i < stats.progress.size();
       i += static_cast<size_t>(stride)) {
    const tuning::ProgressPoint& p = stats.progress[i];
    std::printf("%s curve: %6lld %8.4f %8.1f\n", label.c_str(),
                static_cast<long long>(p.cumulative_epochs),
                p.best_performance, p.sim_seconds / 60.0);
  }
  if (!stats.progress.empty()) {
    const tuning::ProgressPoint& last = stats.progress.back();
    std::printf("%s curve: %6lld %8.4f %8.1f (final)\n", label.c_str(),
                static_cast<long long>(last.cumulative_epochs),
                last.best_performance, last.sim_seconds / 60.0);
  }
}

}  // namespace rafiki::bench

#endif  // RAFIKI_BENCH_TUNING_BENCH_H_
