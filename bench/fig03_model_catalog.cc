// Reproduces Figure 3: accuracy, inference time and memory footprint of
// the 16 slim ConvNets (batch size 50, as in the paper). Our numbers come
// from the calibrated catalog (DESIGN.md §1): the three models used in the
// §7.2 serving experiments are pinned to the paper's stated throughputs;
// the rest are digitized from the figure.

#include <cstdio>

#include "bench/bench_util.h"
#include "model/profile.h"

int main() {
  using rafiki::model::ImageNetCatalog;
  using rafiki::model::ModelProfile;

  rafiki::bench::Section("Figure 3: ConvNet catalog (batch size 50)");
  std::printf("%-22s %-18s %9s %12s %10s %12s\n", "model", "family",
              "top1_acc", "c(50) [s]", "mem [MB]", "img/s@b=50");
  for (const ModelProfile& p : ImageNetCatalog()) {
    std::printf("%-22s %-18s %9.3f %12.3f %10.0f %12.1f\n", p.name.c_str(),
                rafiki::model::FamilyToString(p.family), p.top1_accuracy,
                p.BatchLatency(50), p.memory_mb, p.Throughput(50));
  }

  rafiki::bench::Section("Paper calibration checks (§7.2)");
  auto v3 = rafiki::model::FindProfile("inception_v3").value();
  std::printf("inception_v3 c(16)=%.3fs (paper: 0.07), c(64)=%.3fs "
              "(paper: 0.23)\n",
              v3.BatchLatency(16), v3.BatchLatency(64));
  std::vector<ModelProfile> trio{
      rafiki::model::FindProfile("inception_v3").value(),
      rafiki::model::FindProfile("inception_v4").value(),
      rafiki::model::FindProfile("inception_resnet_v2").value()};
  std::printf("3-model max throughput=%.0f req/s (paper: 572), "
              "min=%.0f req/s (paper: 128)\n",
              rafiki::model::MaxThroughput(trio, 64),
              rafiki::model::MinThroughput(trio, 64));
  return 0;
}
