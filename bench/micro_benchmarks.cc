// Component micro-benchmarks (google-benchmark): throughput/latency of the
// substrate pieces every experiment leans on — tensor GEMM, the parameter
// server, the message bus, the GP fit behind Bayesian optimization, batch
// policy decisions, and ensemble voting.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "common/mpsc_ring.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "trainer/real_trainer.h"
#include "tuning/cholesky.h"
#include "common/thread_pool.h"
#include "nn/layer.h"
#include "tensor/kernels.h"
#include "model/prediction_sim.h"
#include "model/profile.h"
#include "net/http.h"
#include "net/http_server.h"
#include "net/loadgen.h"
#include "net/timer_wheel.h"
#include "nn/loss.h"
#include "rafiki/gateway.h"
#include "rafiki/http_gateway.h"
#include "nn/net.h"
#include "nn/sgd.h"
#include "ps/parameter_server.h"
#include "cluster/message_bus.h"
#include "serving/greedy_batch.h"
#include "serving/rl_scheduler.h"
#include "tensor/tensor.h"
#include "tuning/gaussian_process.h"
#include "tuning/hyperspace.h"

namespace rafiki {
namespace {

void BM_TensorMatMul(benchmark::State& state) {
  auto n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_TensorMatMul)->Arg(32)->Arg(128)->Arg(256);

// Rectangular shapes from the repo's real workloads: a wide feature GEMM
// (batch x features x classes) and a tall-skinny surrogate-training step.
void BM_TensorMatMulRect(benchmark::State& state) {
  int64_t m = state.range(0), k = state.range(1), n = state.range(2);
  Rng rng(1);
  Tensor a = Tensor::Randn({m, k}, rng);
  Tensor b = Tensor::Randn({k, n}, rng);
  for (auto _ : state) {
    Tensor c = MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n);
}
BENCHMARK(BM_TensorMatMulRect)
    ->Args({64, 512, 10})
    ->Args({512, 32, 256})
    ->Args({31, 127, 65});

void BM_TensorMatMulTransA(benchmark::State& state) {
  auto n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = MatMulTransA(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_TensorMatMulTransA)->Arg(128);

void BM_TensorMatMulTransB(benchmark::State& state) {
  auto n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = MatMulTransB(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_TensorMatMulTransB)->Arg(128);

// Thread scaling of the raw GEMM kernel with an explicit pool, independent
// of RAFIKI_NUM_THREADS. On a single-core host the >1 entries measure
// oversubscription overhead rather than speedup.
void BM_GemmThreadScaling(benchmark::State& state) {
  int64_t n = 256;
  ThreadPool pool(static_cast<int>(state.range(0)));
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    c.Fill(0.0f);
    kernels::GemmNN(a.data(), b.data(), c.data(), n, n, n, &pool);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
// UseRealTime: the caller blocks while workers compute, so CPU-time-based
// rates would overstate throughput by the thread count.
BENCHMARK(BM_GemmThreadScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// Direct (pre-im2col) convolution loop, kept here as the benchmark
// reference so the im2col win stays measurable release over release.
Tensor DirectConvForward(const Tensor& input, const Tensor& weight,
                         const Tensor& bias, int64_t pad) {
  int64_t batch = input.dim(0), ic_n = input.dim(1);
  int64_t h = input.dim(2), w = input.dim(3);
  int64_t oc_n = weight.dim(0), kernel = weight.dim(2);
  int64_t oh = h + 2 * pad - kernel + 1, ow = w + 2 * pad - kernel + 1;
  Tensor out({batch, oc_n, oh, ow});
  const float* in = input.data();
  const float* wt = weight.data();
  float* po = out.data();
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t oc = 0; oc < oc_n; ++oc) {
      float bv = bias.at(oc);
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t x = 0; x < ow; ++x) {
          double acc = bv;
          for (int64_t ic = 0; ic < ic_n; ++ic) {
            for (int64_t ky = 0; ky < kernel; ++ky) {
              int64_t iy = y + ky - pad;
              if (iy < 0 || iy >= h) continue;
              for (int64_t kx = 0; kx < kernel; ++kx) {
                int64_t ix = x + kx - pad;
                if (ix < 0 || ix >= w) continue;
                acc += in[((n * ic_n + ic) * h + iy) * w + ix] *
                       wt[((oc * ic_n + ic) * kernel + ky) * kernel + kx];
              }
            }
          }
          po[((n * oc_n + oc) * oh + y) * ow + x] = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

constexpr int64_t kConvBatch = 4, kConvInC = 8, kConvOutC = 16;
constexpr int64_t kConvHW = 28, kConvK = 3, kConvPad = 1;

void BM_Conv2DForward(benchmark::State& state) {
  Rng rng(7);
  nn::Conv2D conv(kConvInC, kConvOutC, kConvK, kConvPad, 0.1f, rng);
  Tensor x = Tensor::Randn({kConvBatch, kConvInC, kConvHW, kConvHW}, rng);
  for (auto _ : state) {
    Tensor y = conv.Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * kConvBatch * kConvOutC *
                          kConvHW * kConvHW * kConvInC * kConvK * kConvK);
}
BENCHMARK(BM_Conv2DForward);

void BM_Conv2DForwardDirect(benchmark::State& state) {
  Rng rng(7);
  nn::Conv2D conv(kConvInC, kConvOutC, kConvK, kConvPad, 0.1f, rng);
  Tensor x = Tensor::Randn({kConvBatch, kConvInC, kConvHW, kConvHW}, rng);
  const Tensor& wt = conv.Params()[0]->value;
  const Tensor& bias = conv.Params()[1]->value;
  for (auto _ : state) {
    Tensor y = DirectConvForward(x, wt, bias, kConvPad);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * kConvBatch * kConvOutC *
                          kConvHW * kConvHW * kConvInC * kConvK * kConvK);
}
BENCHMARK(BM_Conv2DForwardDirect);

void BM_Conv2DBackward(benchmark::State& state) {
  Rng rng(7);
  nn::Conv2D conv(kConvInC, kConvOutC, kConvK, kConvPad, 0.1f, rng);
  Tensor x = Tensor::Randn({kConvBatch, kConvInC, kConvHW, kConvHW}, rng);
  Tensor y = conv.Forward(x, true);
  Tensor g = Tensor::Randn(y.shape(), rng);
  for (auto _ : state) {
    Tensor gx = conv.Backward(g);
    benchmark::DoNotOptimize(gx.data());
  }
  state.SetItemsProcessed(state.iterations() * kConvBatch * kConvOutC *
                          kConvHW * kConvHW * kConvInC * kConvK * kConvK);
}
BENCHMARK(BM_Conv2DBackward);

void BM_TensorSoftmax(benchmark::State& state) {
  Rng rng(2);
  Tensor logits = Tensor::Randn({64, 1000}, rng);
  for (auto _ : state) {
    Tensor p = logits.SoftmaxRows();
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_TensorSoftmax);

void BM_MlpTrainStep(benchmark::State& state) {
  Rng rng(3);
  nn::Net net = nn::MakeMlp({32, 64, 10}, 0.1f, 0.0f, rng);
  nn::SgdOptions options;
  nn::Sgd sgd(options);
  Tensor x = Tensor::Randn({32, 32}, rng);
  std::vector<int64_t> labels(32);
  for (size_t i = 0; i < 32; ++i) labels[i] = static_cast<int64_t>(i % 10);
  for (auto _ : state) {
    net.ZeroGrad();
    nn::LossResult loss = nn::SoftmaxCrossEntropy(net.Forward(x, true),
                                                  labels);
    net.Backward(loss.grad);
    sgd.Step(net.Params());
  }
}
BENCHMARK(BM_MlpTrainStep);

// Same workload as BM_MlpTrainStep through the workspace/fused hot path
// (reserved buffers, SoftmaxCrossEntropyInto, cached ParamList) — the
// allocation-free step the trainers now run; the pair quantifies what the
// value-semantics wrappers cost.
void BM_MlpTrainStepFused(benchmark::State& state) {
  Rng rng(3);
  nn::Net net = nn::MakeMlp({32, 64, 10}, 0.1f, 0.0f, rng);
  nn::Sgd sgd(nn::SgdOptions{});
  nn::Workspace ws;
  net.Reserve({32, 32}, &ws);
  Tensor x = Tensor::Randn({32, 32}, rng);
  std::vector<int64_t> labels(32);
  for (size_t i = 0; i < 32; ++i) labels[i] = static_cast<int64_t>(i % 10);
  nn::LossResult loss;
  for (auto _ : state) {
    net.ZeroGrad();
    const Tensor& logits = net.Forward(x, true, &ws);
    nn::SoftmaxCrossEntropyInto(logits, labels, &loss);
    net.Backward(loss.grad, &ws);
    sgd.Step(net.ParamList());
    benchmark::DoNotOptimize(loss.loss);
  }
}
BENCHMARK(BM_MlpTrainStepFused);

// Allocation-free workspace training step (Net::Forward/Backward into a
// reserved Workspace + fused SGD), sharded across `shards` data-parallel
// replicas via RealTrainer. /1 is the serial fast path; higher args measure
// the scatter + replica sync + tree-reduce machinery. On a single-core host
// the >1 entries measure that overhead rather than speedup (same caveat as
// BM_GemmThreadScaling).
void BM_TrainStep(benchmark::State& state) {
  data::SyntheticTaskOptions dopts;
  dopts.num_classes = 10;
  dopts.samples_per_class = 64;
  dopts.input_dim = 128;
  data::Dataset dataset = data::MakeSyntheticTask(dopts);

  trainer::RealTrainerOptions topts;
  topts.batch_size = 256;
  topts.num_shards = static_cast<int>(state.range(0));
  trainer::RealTrainer t(&dataset, &dataset, topts);
  tuning::Trial trial(1);
  trial.Set("hidden_units", tuning::KnobValue(static_cast<int64_t>(256)));
  trial.Set("dropout", tuning::KnobValue(0.0));
  if (!t.InitRandom(trial).ok()) {
    state.SkipWithError("trainer init failed");
    return;
  }
  data::Dataset batch = dataset.Slice(0, topts.batch_size);
  for (auto _ : state) {
    float loss = t.TrainStep(batch.x, batch.labels);
    benchmark::DoNotOptimize(loss);
  }
  state.SetItemsProcessed(state.iterations() * topts.batch_size);
}
// UseRealTime: with shards > 1 the caller blocks on pool workers.
BENCHMARK(BM_TrainStep)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// The fused momentum+weight-decay+update pass in isolation, below and above
// the kParallelMinElems thread-pool cutoff.
void BM_SgdStep(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(11);
  nn::ParamTensor p;
  p.name = "w";
  p.value = Tensor::Randn({n}, rng);
  p.grad = Tensor::Randn({n}, rng);
  nn::Sgd sgd(nn::SgdOptions{});
  std::vector<nn::ParamTensor*> params = {&p};
  for (auto _ : state) {
    sgd.Step(params);
    benchmark::DoNotOptimize(p.value.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SgdStep)->Arg(1 << 12)->Arg(1 << 18)->UseRealTime();

void BM_ParameterServerPutGet(benchmark::State& state) {
  ps::ParameterServer ps;
  Rng rng(4);
  Tensor value = Tensor::Randn({64, 64}, rng);
  ps::ParamMeta meta;
  int i = 0;
  for (auto _ : state) {
    std::string name = "p" + std::to_string(i++ % 128);
    benchmark::DoNotOptimize(ps.Put("bench", name, value, meta));
    auto got = ps.Get("bench", name);
    benchmark::DoNotOptimize(got.ok());
  }
}
BENCHMARK(BM_ParameterServerPutGet);

void BM_MessageBusRoundTrip(benchmark::State& state) {
  cluster::MessageBus bus;
  (void)bus.RegisterEndpoint("bench");
  cluster::Message msg;
  msg.type = cluster::MessageType::kReport;
  msg.str_fields["trial"] = "1|lr:f:0.1;momentum:f:0.9";
  for (auto _ : state) {
    (void)bus.Send("bench", msg);
    auto got = bus.TryReceive("bench");
    benchmark::DoNotOptimize(got.has_value());
  }
}
BENCHMARK(BM_MessageBusRoundTrip);

// The serving submit queue head to head: the lock-free Vyukov MPSC ring +
// futex doorbell vs the mutex+condvar deque it replaced in
// InferenceRuntime. Arg is the producer-thread count; each run pumps a
// fixed item count through a capacity-1024 queue with the consumer
// sleeping on empty, exactly the dispatcher's discipline. Items/s is the
// headline number.
constexpr int kQueueBenchItems = 1 << 17;

void BM_MpscRing(benchmark::State& state) {
  int producers = static_cast<int>(state.range(0));
  int per_producer = kQueueBenchItems / producers;
  for (auto _ : state) {
    MpscRing<uint64_t> ring(1024);
    FutexDoorbell bell;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(producers));
    for (int p = 0; p < producers; ++p) {
      threads.emplace_back([&ring, &bell, per_producer] {
        for (int i = 0; i < per_producer; ++i) {
          while (ring.TryPush(static_cast<uint64_t>(i)) !=
                 MpscRing<uint64_t>::PushResult::kOk) {
            std::this_thread::yield();
          }
          bell.Notify();
        }
      });
    }
    int64_t total = static_cast<int64_t>(producers) * per_producer;
    int64_t seen = 0;
    uint64_t sink = 0;
    while (seen < total) {
      size_t n = ring.ConsumeBatch(1024, [&](uint64_t&& v) { sink += v; });
      seen += static_cast<int64_t>(n);
      if (n == 0) {
        uint32_t epoch = bell.PrepareWait();
        if (ring.ApproxSize() > 0) {
          bell.CancelWait();
        } else {
          bell.Wait(epoch, /*timeout_seconds=*/0.05);
        }
      }
    }
    for (std::thread& t : threads) t.join();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * kQueueBenchItems);
}
BENCHMARK(BM_MpscRing)->Arg(1)->Arg(4)->Arg(8)->UseRealTime();

// Baseline: the pre-refactor protocol (bounded std::deque under one mutex,
// condvar wakeups) with the same producer counts and capacity.
void BM_MutexQueueBaseline(benchmark::State& state) {
  int producers = static_cast<int>(state.range(0));
  int per_producer = kQueueBenchItems / producers;
  for (auto _ : state) {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<uint64_t> queue;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(producers));
    for (int p = 0; p < producers; ++p) {
      threads.emplace_back([&mu, &cv, &queue, per_producer] {
        for (int i = 0; i < per_producer; ++i) {
          for (;;) {
            {
              std::lock_guard<std::mutex> lock(mu);
              if (queue.size() < 1024) {
                queue.push_back(static_cast<uint64_t>(i));
                break;
              }
            }
            std::this_thread::yield();
          }
          cv.notify_one();
        }
      });
    }
    int64_t total = static_cast<int64_t>(producers) * per_producer;
    int64_t seen = 0;
    uint64_t sink = 0;
    std::deque<uint64_t> local;
    while (seen < total) {
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait_for(lock, std::chrono::milliseconds(50),
                    [&queue] { return !queue.empty(); });
        queue.swap(local);
      }
      for (uint64_t v : local) sink += v;
      seen += static_cast<int64_t>(local.size());
      local.clear();
    }
    for (std::thread& t : threads) t.join();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * kQueueBenchItems);
}
BENCHMARK(BM_MutexQueueBaseline)->Arg(1)->Arg(4)->Arg(8)->UseRealTime();

void BM_GaussianProcessFit(benchmark::State& state) {
  auto n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<std::vector<double>> x(n, std::vector<double>(5));
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    for (double& v : x[i]) v = rng.Uniform();
    y[i] = rng.Uniform();
  }
  for (auto _ : state) {
    tuning::GaussianProcess gp(tuning::GpOptions{});
    benchmark::DoNotOptimize(gp.Fit(x, y).ok());
  }
}
BENCHMARK(BM_GaussianProcessFit)->Arg(50)->Arg(200);

// The GEMM-backed GP fit (Gram-matrix covariance + blocked Cholesky) vs a
// naive reference that assembles the covariance pairwise and factors with
// the unblocked algorithm — the pre-optimization code path, kept honest
// release over release.
void FillGpInputs(size_t n, std::vector<std::vector<double>>* x,
                  std::vector<double>* y) {
  Rng rng(5);
  x->assign(n, std::vector<double>(5));
  y->assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (double& v : (*x)[i]) v = rng.Uniform();
    (*y)[i] = rng.Uniform();
  }
}

void BM_GpFit(benchmark::State& state) {
  auto n = static_cast<size_t>(state.range(0));
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  FillGpInputs(n, &x, &y);
  for (auto _ : state) {
    tuning::GaussianProcess gp(tuning::GpOptions{});
    benchmark::DoNotOptimize(gp.Fit(x, y).ok());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GpFit)->Arg(64)->Arg(256);

// Faithful replica of the Fit implementation this repo shipped before the
// GEMM-backed rewrite: per-pair RBF kernel evaluated through a checked
// function call, both triangles stored, unblocked in-place Cholesky with a
// division in the inner loop, and two-pass forward/backward substitution.
// Kept verbatim (not "improved") so BM_GpFit/BM_GpFitNaive measures the
// real before/after of the rewrite.
double NaiveGpKernel(const std::vector<double>& a,
                     const std::vector<double>& b,
                     const tuning::GpOptions& opts) {
  RAFIKI_CHECK_EQ(a.size(), b.size());
  double d2 = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    d2 += d * d;
  }
  double l2 = opts.length_scale * opts.length_scale;
  return opts.signal_variance * std::exp(-0.5 * d2 / l2);
}

bool NaiveGpFit(const std::vector<std::vector<double>>& x_in,
                const std::vector<double>& y, const tuning::GpOptions& opts,
                std::vector<double>* chol, std::vector<double>* alpha) {
  // The old Fit retained the training set (x_ = x); keep the copy so the
  // replica pays the same allocations.
  std::vector<std::vector<double>> x = x_in;
  size_t n = x.size();
  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double v : y) var += (v - mean) * (v - mean);
  var /= static_cast<double>(n);
  double y_std = var > 1e-12 ? std::sqrt(var) : 1.0;

  // A fresh zero-filled buffer per call, as the old Fit allocated it.
  std::vector<double> k(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double v = NaiveGpKernel(x[i], x[j], opts);
      if (i == j) v += opts.noise_variance;
      k[i * n + j] = v;
      k[j * n + i] = v;
    }
  }
  for (size_t c = 0; c < n; ++c) {
    double diag = k[c * n + c];
    for (size_t r = 0; r < c; ++r) {
      double l = k[c * n + r];
      diag -= l * l;
    }
    if (diag <= 0.0) return false;
    k[c * n + c] = std::sqrt(diag);
    for (size_t r = c + 1; r < n; ++r) {
      double acc = k[r * n + c];
      for (size_t j = 0; j < c; ++j) acc -= k[r * n + j] * k[c * n + j];
      k[r * n + c] = acc / k[c * n + c];
    }
  }
  std::vector<double> z(n);
  for (size_t i = 0; i < n; ++i) {
    double acc = (y[i] - mean) / y_std;
    for (size_t j = 0; j < i; ++j) acc -= k[i * n + j] * z[j];
    z[i] = acc / k[i * n + i];
  }
  alpha->assign(n, 0.0);
  for (size_t ii = n; ii > 0; --ii) {
    size_t i = ii - 1;
    double acc = z[i];
    for (size_t j = i + 1; j < n; ++j) acc -= k[j * n + i] * (*alpha)[j];
    (*alpha)[i] = acc / k[i * n + i];
  }
  *chol = std::move(k);
  return true;
}

void BM_GpFitNaive(benchmark::State& state) {
  auto n = static_cast<size_t>(state.range(0));
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  FillGpInputs(n, &x, &y);
  tuning::GpOptions opts;
  std::vector<double> chol;
  std::vector<double> alpha;
  for (auto _ : state) {
    benchmark::DoNotOptimize(NaiveGpFit(x, y, opts, &chol, &alpha));
    benchmark::DoNotOptimize(alpha.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GpFitNaive)->Arg(64)->Arg(256);

// Incremental HTTP/1.1 request parsing, the per-request cost of the serving
// front door. /0 is the keep-alive fast path (a metrics GET with a query
// string); /1 is a /query POST carrying a 4 KB comma-float body, dominated
// by body copy. Bytes/s is the headline number.
void BM_HttpParse(benchmark::State& state) {
  std::string wire;
  if (state.range(0) == 0) {
    wire =
        "GET /jobs/infer0/metrics?window=1&detail=full HTTP/1.1\r\n"
        "Host: 127.0.0.1:8080\r\n"
        "User-Agent: rafiki-loadgen/1\r\n"
        "Accept: */*\r\n"
        "Connection: keep-alive\r\n"
        "\r\n";
  } else {
    std::string body;
    while (body.size() < 4096) body += "0.125,";
    wire = net::SerializeRequest("POST", "/query?job=infer0",
                                 "127.0.0.1:8080", body,
                                 /*keep_alive=*/true);
  }
  net::HttpParser parser;
  for (auto _ : state) {
    parser.Reset();
    size_t consumed = parser.Feed(wire.data(), wire.size());
    benchmark::DoNotOptimize(consumed);
    if (!parser.done()) state.SkipWithError("parse did not complete");
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_HttpParse)->Arg(0)->Arg(1);

// The reactor's timer substrate at steady state: every iteration is one
// 1 ms tick crossing over a constant working set of `Arg` live timers
// (deadlines spread across wheel levels), plus one schedule/cancel pair —
// the idle-timeout re-arm pattern every HTTP connection now exercises.
// Fired timers are immediately replaced so the set never drains.
void BM_TimerWheel(benchmark::State& state) {
  const auto live = static_cast<size_t>(state.range(0));
  net::TimerWheel wheel;  // 1 ms ticks
  Rng rng(42);
  size_t fired = 0;
  auto count_fire = [&fired] { ++fired; };
  for (size_t i = 0; i < live; ++i) {
    wheel.Schedule(rng.Uniform(1e-3, 2.0), count_fire);
  }
  double now = 0.0;
  for (auto _ : state) {
    now += 1e-3;
    // The cancel-on-activity pattern: arm a deadline, activity cancels it.
    net::TimerId id = wheel.Schedule(1.0, count_fire);
    benchmark::DoNotOptimize(wheel.Cancel(id));
    fired = 0;
    wheel.Advance(now);
    for (size_t i = 0; i < fired; ++i) {
      wheel.Schedule(rng.Uniform(1e-3, 2.0), count_fire);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TimerWheel)->Arg(16)->Arg(1024);

void BM_HyperSpaceSample(benchmark::State& state) {
  tuning::HyperSpace space;
  (void)space.AddRangeKnob("lr", tuning::KnobDtype::kFloat, 1e-4, 1.0, true);
  (void)space.AddRangeKnob("mom", tuning::KnobDtype::kFloat, 0.0, 1.0);
  (void)space.AddCategoricalKnob("whiten", {"pca", "zca"});
  Rng rng(6);
  for (auto _ : state) {
    auto t = space.Sample(rng);
    benchmark::DoNotOptimize(t.ok());
  }
}
BENCHMARK(BM_HyperSpaceSample);

void BM_GreedyPolicyDecision(benchmark::State& state) {
  static const std::vector<int64_t> kBatches{16, 32, 48, 64};
  static const std::vector<model::ModelProfile> kModels{
      model::FindProfile("inception_v3").value()};
  serving::GreedyBatchPolicy policy(0);
  serving::ServingObs obs;
  obs.now = 100.0;
  obs.tau = 0.56;
  obs.batch_sizes = &kBatches;
  obs.models = &kModels;
  obs.queue_len = 40;
  obs.queue_waits = {0.5, 0.4, 0.3};
  obs.busy_remaining = {0.0};
  for (auto _ : state) {
    serving::ServingAction a = policy.Decide(obs);
    benchmark::DoNotOptimize(a.process);
  }
}
BENCHMARK(BM_GreedyPolicyDecision);

void BM_RlPolicyDecision(benchmark::State& state) {
  static const std::vector<int64_t> kBatches{16, 32, 48, 64};
  static const std::vector<model::ModelProfile> kModels{
      model::FindProfile("inception_v3").value(),
      model::FindProfile("inception_v4").value(),
      model::FindProfile("inception_resnet_v2").value()};
  static const auto& table = *new model::EnsembleAccuracyTable(
      kModels, model::PredictionSimOptions{}, 2000);
  serving::RlSchedulerOptions options;
  serving::RlSchedulerPolicy policy(3, kBatches, &table, options);
  serving::ServingObs obs;
  obs.now = 100.0;
  obs.tau = 0.56;
  obs.batch_sizes = &kBatches;
  obs.models = &kModels;
  obs.queue_len = 40;
  obs.queue_waits = {0.5, 0.4, 0.3};
  obs.busy_remaining = {0.0, 0.0, 0.0};
  for (auto _ : state) {
    serving::ServingAction a = policy.Decide(obs);
    benchmark::DoNotOptimize(a.process);
  }
}
BENCHMARK(BM_RlPolicyDecision);

// Pure transport cost: a null handler that echoes the request body back,
// driven closed-loop over N keep-alive connections. No gateway, no
// inference — the req/s ceiling of the HTTP data plane itself (parse,
// dispatch, serialize, flush). Arg is the connection count.
void BM_HttpEcho(benchmark::State& state) {
  int connections = static_cast<int>(state.range(0));
  net::HttpServerOptions opts;
  // One worker: the echo path is run-to-completion, so a second event loop
  // only adds scheduler churn when cores are scarce.
  opts.num_workers = 1;
  opts.num_handler_threads = 1;
  opts.max_inflight = 1024;
  // The echo handler is non-blocking, so run-to-completion applies: no
  // handler-pool handoff, no eventfd wakeup per response.
  opts.inline_handlers = true;
  net::HttpServer server(
      [](const net::HttpRequest& request, net::HttpServer::ResponseWriter writer) {
        // Fill the pooled slot in place: the allocation-free fast path.
        net::HttpResponse& resp = writer.response();
        resp.body.assign(request.body);
        writer.Complete(resp);
      },
      opts);
  if (!server.Start().ok()) {
    state.SkipWithError("server start failed");
    return;
  }
  net::LoadGenOptions load;
  load.port = server.port();
  load.method = "POST";
  load.target = "/echo";
  load.body = "0,1,0,0,0,1,0,0";
  load.open_loop = false;
  load.connections = connections;
  // Eight requests in flight per connection: both sides coalesce several
  // messages per syscall and per TCP segment, so the bench measures the
  // transport's parse/serialize/flush throughput rather than the loopback
  // round-trip floor (which caps depth-1 closed loop at ~245k req/s on a
  // single core regardless of server efficiency).
  load.pipeline = 8;
  load.duration_seconds = 1.0;
  load.tau = 10.0;
  double rps = 0.0;
  int64_t errors = 0;
  int64_t completed = 0;
  for (auto _ : state) {
    net::LoadGenReport report = net::RunLoadGen(load);
    rps += report.achieved_rps;
    errors += report.errors;
    completed += report.completed;
  }
  server.Stop();
  if (errors > 0) state.SkipWithError("loadgen saw transport errors");
  state.SetItemsProcessed(completed);
  state.counters["rps"] = rps / static_cast<double>(state.iterations());
}
BENCHMARK(BM_HttpEcho)
    ->Arg(1)
    ->Arg(64)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Closed-loop serving comparison over real TCP: N keep-alive connections
// each re-issue a /jobs/<id>/query POST the moment the previous answer
// lands, against a gateway backed by a checkpoint MLP. Arg is the
// handler-thread count. The sync path pins one handler thread per in-flight
// query, so its concurrency (and the batch sizes the runtime can form) is
// capped at Arg; the async continuation path parks the ResponseWriter and
// carries all connections on any pool size. Counters: rps (completed
// requests/s), inflight_peak (server gauge), mean_batch (runtime metric).
constexpr int kServeConnections = 256;

void RunServeClosedLoop(benchmark::State& state, bool async_mode,
                        bool rl_policy = false, int replicas = 1,
                        int handler_threads = 0) {
  if (handler_threads == 0) {
    handler_threads = static_cast<int>(state.range(0));
  }

  // Isolation settle (setup, not timed): the previous serving bench
  // abandons up to 256 client sockets at its hard stop and the server
  // drains responses into them for a while after; on a 1-core host that
  // kernel-side teardown (RSTs, orphan reaping) overlaps the next bench's
  // 256-SYN connect burst and silently halves its established
  // connections. A short pause lets the stack quiesce so each bench
  // measures the server, not its predecessor's corpse.
  std::this_thread::sleep_for(std::chrono::milliseconds(2500));

  api::Rafiki service;
  ps::ModelCheckpoint ckpt;
  Tensor weight({4, 3});
  for (int64_t i = 0; i < 3; ++i) weight.at2(i, i) = 1.0f;
  ckpt.params.emplace_back("fc0/weight", weight);
  ckpt.params.emplace_back("fc0/bias", Tensor({1, 3}));
  ckpt.meta.accuracy = 0.9;
  if (!service.parameter_server().PutModel("study/bench/best", ckpt).ok()) {
    state.SkipWithError("PutModel failed");
    return;
  }
  api::ModelHandle handle;
  handle.scope = "study/bench/best";
  handle.model_name = "mlp";
  handle.accuracy = 0.9;
  serving::RuntimeOptions runtime_opts;
  if (rl_policy) {
    runtime_opts.policy_factory = serving::MakeRlSchedulerFactory();
  }
  runtime_opts.replicas = replicas;
  auto deployed = service.Deploy({handle}, runtime_opts);
  if (!deployed.ok()) {
    state.SkipWithError("Deploy failed");
    return;
  }

  api::Gateway gateway(&service);
  net::HttpServerOptions opts;
  opts.num_workers = 2;
  opts.num_handler_threads = handler_threads;
  opts.max_inflight = 1024;
  // All 256 connections SYN at once; the default backlog of 128 drops half
  // the handshakes whenever the acceptor is briefly starved, and the
  // 1s-later SYN retransmit lands outside the measurement window.
  opts.listen_backlog = 1024;
  net::HttpServer::AsyncHandler handler;
  if (async_mode) {
    handler = api::MakeGatewayAsyncHttpHandler(&gateway);
    // The async gateway handler only parses and enqueues (SubmitAsync is
    // lock-free); the response is completed later by the batch thread.
    // Run-to-completion keeps the parse+submit on the event loop.
    opts.inline_handlers = true;
  } else {
    net::HttpServer::Handler sync = api::MakeGatewayHttpHandler(&gateway);
    handler = [sync](const net::HttpRequest& request,
                     net::HttpServer::ResponseWriter writer) {
      writer.Complete(sync(request));
    };
  }
  net::HttpServer server(handler, opts);
  if (!server.Start().ok()) {
    state.SkipWithError("server start failed");
    return;
  }

  net::LoadGenOptions load;
  load.port = server.port();
  load.method = "POST";
  load.target = "/jobs/" + *deployed + "/query";
  load.body = "0,1,0,0";
  load.open_loop = false;
  load.connections = kServeConnections;
  load.duration_seconds = 1.0;
  load.tau = 10.0;  // throughput benchmark: the SLO gauge is not the point
  double rps = 0.0;
  int64_t errors = 0;
  for (auto _ : state) {
    net::LoadGenReport report = net::RunLoadGen(load);
    rps += report.achieved_rps;
    errors += report.errors;
    benchmark::DoNotOptimize(report.completed);
  }
  server.Stop();
  if (errors > 0) state.SkipWithError("loadgen saw transport errors");

  auto metrics = service.InferenceMetrics(*deployed);
  net::HttpServerStats stats = server.stats();
  state.counters["rps"] = rps / static_cast<double>(state.iterations());
  state.counters["inflight_peak"] = static_cast<double>(stats.inflight_peak);
  state.counters["mean_batch"] = metrics.ok() ? metrics->mean_batch : 0.0;
  state.counters["replicas"] =
      metrics.ok() ? static_cast<double>(metrics->replicas) : 0.0;
}

void BM_ServeClosedLoopSync(benchmark::State& state) {
  RunServeClosedLoop(state, /*async_mode=*/false);
}
// /2: the handler pool is the bottleneck (the pre-refactor default shape);
// /256: thread-per-connection, the only way sync reaches full concurrency.
BENCHMARK(BM_ServeClosedLoopSync)
    ->Arg(2)
    ->Arg(kServeConnections)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ServeClosedLoopAsync(benchmark::State& state) {
  RunServeClosedLoop(state, /*async_mode=*/true);
}
// Two handler threads only: the continuation path must carry all 256
// connections regardless, with batches formed by the policy, not the pool.
BENCHMARK(BM_ServeClosedLoopAsync)
    ->Arg(2)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ServeClosedLoopRl(benchmark::State& state) {
  RunServeClosedLoop(state, /*async_mode=*/true, /*rl_policy=*/true);
}
// Same continuation path as Async/2 but dispatched by the actor-critic
// scheduler learning online — the delta against BM_ServeClosedLoopAsync/2
// is the end-to-end cost of Featurize + policy forward + Record per batch.
BENCHMARK(BM_ServeClosedLoopRl)
    ->Arg(2)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ServeClosedLoopReplicas(benchmark::State& state) {
  RunServeClosedLoop(state, /*async_mode=*/true, /*rl_policy=*/false,
                     /*replicas=*/static_cast<int>(state.range(0)),
                     /*handler_threads=*/2);
}
// Arg is the replica-dispatcher count of the deployed job (static, no
// autoscale): same continuation path and 2-thread handler pool as Async/2,
// so the delta isolates the replicated serving plane — sharded rings,
// least-loaded router, per-replica net clones. On a multicore host req/s
// scales with replicas; on a 1-core runner real-time stays flat and the
// replication cost/benefit shows up in cpu_time and mean_batch instead.
BENCHMARK(BM_ServeClosedLoopReplicas)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_EnsembleVote(benchmark::State& state) {
  std::vector<model::ModelProfile> models{
      model::FindProfile("inception_v3").value(),
      model::FindProfile("inception_v4").value(),
      model::FindProfile("inception_resnet_v2").value(),
      model::FindProfile("resnet_v2_101").value()};
  model::PredictionSimulator sim(models, model::PredictionSimOptions{});
  for (auto _ : state) {
    double acc = sim.EnsembleAccuracy(0b1111, 64);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_EnsembleVote);

}  // namespace
}  // namespace rafiki
