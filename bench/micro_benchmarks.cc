// Component micro-benchmarks (google-benchmark): throughput/latency of the
// substrate pieces every experiment leans on — tensor GEMM, the parameter
// server, the message bus, the GP fit behind Bayesian optimization, batch
// policy decisions, and ensemble voting.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "nn/layer.h"
#include "tensor/kernels.h"
#include "model/prediction_sim.h"
#include "model/profile.h"
#include "nn/loss.h"
#include "nn/net.h"
#include "nn/sgd.h"
#include "ps/parameter_server.h"
#include "cluster/message_bus.h"
#include "serving/greedy_batch.h"
#include "serving/rl_scheduler.h"
#include "tensor/tensor.h"
#include "tuning/gaussian_process.h"
#include "tuning/hyperspace.h"

namespace rafiki {
namespace {

void BM_TensorMatMul(benchmark::State& state) {
  auto n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_TensorMatMul)->Arg(32)->Arg(128)->Arg(256);

// Rectangular shapes from the repo's real workloads: a wide feature GEMM
// (batch x features x classes) and a tall-skinny surrogate-training step.
void BM_TensorMatMulRect(benchmark::State& state) {
  int64_t m = state.range(0), k = state.range(1), n = state.range(2);
  Rng rng(1);
  Tensor a = Tensor::Randn({m, k}, rng);
  Tensor b = Tensor::Randn({k, n}, rng);
  for (auto _ : state) {
    Tensor c = MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n);
}
BENCHMARK(BM_TensorMatMulRect)
    ->Args({64, 512, 10})
    ->Args({512, 32, 256})
    ->Args({31, 127, 65});

void BM_TensorMatMulTransA(benchmark::State& state) {
  auto n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = MatMulTransA(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_TensorMatMulTransA)->Arg(128);

void BM_TensorMatMulTransB(benchmark::State& state) {
  auto n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = MatMulTransB(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_TensorMatMulTransB)->Arg(128);

// Thread scaling of the raw GEMM kernel with an explicit pool, independent
// of RAFIKI_NUM_THREADS. On a single-core host the >1 entries measure
// oversubscription overhead rather than speedup.
void BM_GemmThreadScaling(benchmark::State& state) {
  int64_t n = 256;
  ThreadPool pool(static_cast<int>(state.range(0)));
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    c.Fill(0.0f);
    kernels::GemmNN(a.data(), b.data(), c.data(), n, n, n, &pool);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
// UseRealTime: the caller blocks while workers compute, so CPU-time-based
// rates would overstate throughput by the thread count.
BENCHMARK(BM_GemmThreadScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// Direct (pre-im2col) convolution loop, kept here as the benchmark
// reference so the im2col win stays measurable release over release.
Tensor DirectConvForward(const Tensor& input, const Tensor& weight,
                         const Tensor& bias, int64_t pad) {
  int64_t batch = input.dim(0), ic_n = input.dim(1);
  int64_t h = input.dim(2), w = input.dim(3);
  int64_t oc_n = weight.dim(0), kernel = weight.dim(2);
  int64_t oh = h + 2 * pad - kernel + 1, ow = w + 2 * pad - kernel + 1;
  Tensor out({batch, oc_n, oh, ow});
  const float* in = input.data();
  const float* wt = weight.data();
  float* po = out.data();
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t oc = 0; oc < oc_n; ++oc) {
      float bv = bias.at(oc);
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t x = 0; x < ow; ++x) {
          double acc = bv;
          for (int64_t ic = 0; ic < ic_n; ++ic) {
            for (int64_t ky = 0; ky < kernel; ++ky) {
              int64_t iy = y + ky - pad;
              if (iy < 0 || iy >= h) continue;
              for (int64_t kx = 0; kx < kernel; ++kx) {
                int64_t ix = x + kx - pad;
                if (ix < 0 || ix >= w) continue;
                acc += in[((n * ic_n + ic) * h + iy) * w + ix] *
                       wt[((oc * ic_n + ic) * kernel + ky) * kernel + kx];
              }
            }
          }
          po[((n * oc_n + oc) * oh + y) * ow + x] = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

constexpr int64_t kConvBatch = 4, kConvInC = 8, kConvOutC = 16;
constexpr int64_t kConvHW = 28, kConvK = 3, kConvPad = 1;

void BM_Conv2DForward(benchmark::State& state) {
  Rng rng(7);
  nn::Conv2D conv(kConvInC, kConvOutC, kConvK, kConvPad, 0.1f, rng);
  Tensor x = Tensor::Randn({kConvBatch, kConvInC, kConvHW, kConvHW}, rng);
  for (auto _ : state) {
    Tensor y = conv.Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * kConvBatch * kConvOutC *
                          kConvHW * kConvHW * kConvInC * kConvK * kConvK);
}
BENCHMARK(BM_Conv2DForward);

void BM_Conv2DForwardDirect(benchmark::State& state) {
  Rng rng(7);
  nn::Conv2D conv(kConvInC, kConvOutC, kConvK, kConvPad, 0.1f, rng);
  Tensor x = Tensor::Randn({kConvBatch, kConvInC, kConvHW, kConvHW}, rng);
  const Tensor& wt = conv.Params()[0]->value;
  const Tensor& bias = conv.Params()[1]->value;
  for (auto _ : state) {
    Tensor y = DirectConvForward(x, wt, bias, kConvPad);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * kConvBatch * kConvOutC *
                          kConvHW * kConvHW * kConvInC * kConvK * kConvK);
}
BENCHMARK(BM_Conv2DForwardDirect);

void BM_Conv2DBackward(benchmark::State& state) {
  Rng rng(7);
  nn::Conv2D conv(kConvInC, kConvOutC, kConvK, kConvPad, 0.1f, rng);
  Tensor x = Tensor::Randn({kConvBatch, kConvInC, kConvHW, kConvHW}, rng);
  Tensor y = conv.Forward(x, true);
  Tensor g = Tensor::Randn(y.shape(), rng);
  for (auto _ : state) {
    Tensor gx = conv.Backward(g);
    benchmark::DoNotOptimize(gx.data());
  }
  state.SetItemsProcessed(state.iterations() * kConvBatch * kConvOutC *
                          kConvHW * kConvHW * kConvInC * kConvK * kConvK);
}
BENCHMARK(BM_Conv2DBackward);

void BM_TensorSoftmax(benchmark::State& state) {
  Rng rng(2);
  Tensor logits = Tensor::Randn({64, 1000}, rng);
  for (auto _ : state) {
    Tensor p = logits.SoftmaxRows();
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_TensorSoftmax);

void BM_MlpTrainStep(benchmark::State& state) {
  Rng rng(3);
  nn::Net net = nn::MakeMlp({32, 64, 10}, 0.1f, 0.0f, rng);
  nn::SgdOptions options;
  nn::Sgd sgd(options);
  Tensor x = Tensor::Randn({32, 32}, rng);
  std::vector<int64_t> labels(32);
  for (size_t i = 0; i < 32; ++i) labels[i] = static_cast<int64_t>(i % 10);
  for (auto _ : state) {
    net.ZeroGrad();
    nn::LossResult loss = nn::SoftmaxCrossEntropy(net.Forward(x, true),
                                                  labels);
    net.Backward(loss.grad);
    sgd.Step(net.Params());
  }
}
BENCHMARK(BM_MlpTrainStep);

void BM_ParameterServerPutGet(benchmark::State& state) {
  ps::ParameterServer ps;
  Rng rng(4);
  Tensor value = Tensor::Randn({64, 64}, rng);
  ps::ParamMeta meta;
  int i = 0;
  for (auto _ : state) {
    std::string name = "p" + std::to_string(i++ % 128);
    benchmark::DoNotOptimize(ps.Put("bench", name, value, meta));
    auto got = ps.Get("bench", name);
    benchmark::DoNotOptimize(got.ok());
  }
}
BENCHMARK(BM_ParameterServerPutGet);

void BM_MessageBusRoundTrip(benchmark::State& state) {
  cluster::MessageBus bus;
  (void)bus.RegisterEndpoint("bench");
  cluster::Message msg;
  msg.type = cluster::MessageType::kReport;
  msg.str_fields["trial"] = "1|lr:f:0.1;momentum:f:0.9";
  for (auto _ : state) {
    (void)bus.Send("bench", msg);
    auto got = bus.TryReceive("bench");
    benchmark::DoNotOptimize(got.has_value());
  }
}
BENCHMARK(BM_MessageBusRoundTrip);

void BM_GaussianProcessFit(benchmark::State& state) {
  auto n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<std::vector<double>> x(n, std::vector<double>(5));
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    for (double& v : x[i]) v = rng.Uniform();
    y[i] = rng.Uniform();
  }
  for (auto _ : state) {
    tuning::GaussianProcess gp(tuning::GpOptions{});
    benchmark::DoNotOptimize(gp.Fit(x, y).ok());
  }
}
BENCHMARK(BM_GaussianProcessFit)->Arg(50)->Arg(200);

void BM_HyperSpaceSample(benchmark::State& state) {
  tuning::HyperSpace space;
  (void)space.AddRangeKnob("lr", tuning::KnobDtype::kFloat, 1e-4, 1.0, true);
  (void)space.AddRangeKnob("mom", tuning::KnobDtype::kFloat, 0.0, 1.0);
  (void)space.AddCategoricalKnob("whiten", {"pca", "zca"});
  Rng rng(6);
  for (auto _ : state) {
    auto t = space.Sample(rng);
    benchmark::DoNotOptimize(t.ok());
  }
}
BENCHMARK(BM_HyperSpaceSample);

void BM_GreedyPolicyDecision(benchmark::State& state) {
  static const std::vector<int64_t> kBatches{16, 32, 48, 64};
  static const std::vector<model::ModelProfile> kModels{
      model::FindProfile("inception_v3").value()};
  serving::GreedyBatchPolicy policy(0);
  serving::ServingObs obs;
  obs.now = 100.0;
  obs.tau = 0.56;
  obs.batch_sizes = &kBatches;
  obs.models = &kModels;
  obs.queue_len = 40;
  obs.queue_waits = {0.5, 0.4, 0.3};
  obs.busy_remaining = {0.0};
  for (auto _ : state) {
    serving::ServingAction a = policy.Decide(obs);
    benchmark::DoNotOptimize(a.process);
  }
}
BENCHMARK(BM_GreedyPolicyDecision);

void BM_RlPolicyDecision(benchmark::State& state) {
  static const std::vector<int64_t> kBatches{16, 32, 48, 64};
  static const std::vector<model::ModelProfile> kModels{
      model::FindProfile("inception_v3").value(),
      model::FindProfile("inception_v4").value(),
      model::FindProfile("inception_resnet_v2").value()};
  static const auto& table = *new model::EnsembleAccuracyTable(
      kModels, model::PredictionSimOptions{}, 2000);
  serving::RlSchedulerOptions options;
  serving::RlSchedulerPolicy policy(3, kBatches, &table, options);
  serving::ServingObs obs;
  obs.now = 100.0;
  obs.tau = 0.56;
  obs.batch_sizes = &kBatches;
  obs.models = &kModels;
  obs.queue_len = 40;
  obs.queue_waits = {0.5, 0.4, 0.3};
  obs.busy_remaining = {0.0, 0.0, 0.0};
  for (auto _ : state) {
    serving::ServingAction a = policy.Decide(obs);
    benchmark::DoNotOptimize(a.process);
  }
}
BENCHMARK(BM_RlPolicyDecision);

void BM_EnsembleVote(benchmark::State& state) {
  std::vector<model::ModelProfile> models{
      model::FindProfile("inception_v3").value(),
      model::FindProfile("inception_v4").value(),
      model::FindProfile("inception_resnet_v2").value(),
      model::FindProfile("resnet_v2_101").value()};
  model::PredictionSimulator sim(models, model::PredictionSimOptions{});
  for (auto _ : state) {
    double acc = sim.EnsembleAccuracy(0b1111, 64);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_EnsembleVote);

}  // namespace
}  // namespace rafiki
