// Reproduces Figure 9: hyper-parameter tuning based on BAYESIAN
// OPTIMIZATION (GP + expected improvement), Study vs CoStudy, 120 trials.
//
// Expected shape (paper): BO concentrates more trials in the top region
// than random search (compare against fig08 output); CoStudy still beats
// Study; CoStudy's scatter shows a few poor random-init trials early on
// (the alpha-greedy exploration that biases the GP prior) which fade as
// alpha decays.

#include <cstdio>

#include "bench/tuning_bench.h"

int main() {
  using rafiki::bench::SearchKind;
  const int64_t kTrials = 120;
  const int kWorkers = 3;
  const uint64_t kSeed = 81;

  rafiki::tuning::StudyStats study =
      rafiki::bench::RunTuning("fig9_study", SearchKind::kBayesOpt,
                               /*collaborative=*/false, kTrials, kWorkers,
                               kSeed);
  rafiki::tuning::StudyStats costudy =
      rafiki::bench::RunTuning("fig9_costudy", SearchKind::kBayesOpt,
                               /*collaborative=*/true, kTrials, kWorkers,
                               kSeed);

  rafiki::bench::Section("Figure 9a: per-trial accuracy (Bayesian opt)");
  rafiki::bench::PrintTrialScatter("Study", study, /*stride=*/5);
  rafiki::bench::PrintTrialScatter("CoStudy", costudy, /*stride=*/5);

  rafiki::bench::Section("Figure 9b: accuracy histogram");
  rafiki::bench::PrintAccuracyHistogram("Study", study);
  rafiki::bench::PrintAccuracyHistogram("CoStudy", costudy);

  rafiki::bench::Section("Figure 9c: best accuracy vs total epochs");
  rafiki::bench::PrintProgressCurve("Study", study, /*stride=*/200);
  rafiki::bench::PrintProgressCurve("CoStudy", costudy, /*stride=*/200);

  rafiki::bench::Section("Paper-vs-measured (Figure 9)");
  std::printf("final best: Study=%.4f CoStudy=%.4f (paper: CoStudy "
              "higher)\n",
              study.best_performance, costudy.best_performance);

  // Count poor warm-era trials: CoStudy's random-init stragglers (the
  // right-bottom points the paper inspects in Figure 9a).
  int late_low = 0, late_total = 0;
  for (size_t i = costudy.trials.size() / 2; i < costudy.trials.size();
       ++i) {
    ++late_total;
    if (costudy.trials[i].performance < 0.5 &&
        !costudy.trials[i].warm_started) {
      ++late_low;
    }
  }
  std::printf("CoStudy late-phase random-init trials below 0.5 accuracy: "
              "%d of %d (paper: a few, fading as alpha decays)\n",
              late_low, late_total);
  return 0;
}
