#ifndef RAFIKI_BENCH_BENCH_UTIL_H_
#define RAFIKI_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "serving/simulator.h"

namespace rafiki::bench {

/// Prints a section header so bench output reads as a report.
inline void Section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Prints the standard serving time-series (one row per metrics window):
/// the data behind the Figure 10/13/14/15/16 curves. `stride` subsamples
/// rows to keep output readable.
inline void PrintServingSeries(const std::string& label,
                               const serving::ServingMetrics& metrics,
                               int stride = 3) {
  std::printf(
      "%s: t_begin arrive/s processed/s overdue/s accuracy reward\n",
      label.c_str());
  for (size_t i = 0; i < metrics.windows.size();
       i += static_cast<size_t>(stride)) {
    const serving::WindowSample& w = metrics.windows[i];
    std::printf("%s: %7.0f %8.1f %11.1f %9.1f %8.4f %6.2f\n", label.c_str(),
                w.t_begin, w.arrived_per_sec, w.processed_per_sec,
                w.overdue_per_sec, w.mean_accuracy, w.mean_reward);
  }
}

/// Prints the run-level aggregates of a serving experiment.
inline void PrintServingSummary(const std::string& label,
                                const serving::ServingMetrics& metrics) {
  std::printf(
      "%s summary: arrived=%lld processed=%lld overdue=%lld (%.2f%%) "
      "dropped=%lld accuracy=%.4f latency=%.3fs reward=%.0f\n",
      label.c_str(), static_cast<long long>(metrics.total_arrived),
      static_cast<long long>(metrics.total_processed),
      static_cast<long long>(metrics.total_overdue),
      100.0 * metrics.OverdueFraction(),
      static_cast<long long>(metrics.total_dropped), metrics.mean_accuracy,
      metrics.mean_latency, metrics.total_reward);
}

}  // namespace rafiki::bench

#endif  // RAFIKI_BENCH_BENCH_UTIL_H_
