file(REMOVE_RECURSE
  "CMakeFiles/example_inference_scheduling.dir/inference_scheduling.cc.o"
  "CMakeFiles/example_inference_scheduling.dir/inference_scheduling.cc.o.d"
  "example_inference_scheduling"
  "example_inference_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_inference_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
