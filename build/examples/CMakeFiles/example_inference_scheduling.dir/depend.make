# Empty dependencies file for example_inference_scheduling.
# This may be replaced when dependencies are built.
