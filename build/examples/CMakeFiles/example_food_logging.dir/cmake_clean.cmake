file(REMOVE_RECURSE
  "CMakeFiles/example_food_logging.dir/food_logging.cc.o"
  "CMakeFiles/example_food_logging.dir/food_logging.cc.o.d"
  "example_food_logging"
  "example_food_logging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_food_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
