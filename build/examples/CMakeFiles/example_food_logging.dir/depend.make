# Empty dependencies file for example_food_logging.
# This may be replaced when dependencies are built.
