file(REMOVE_RECURSE
  "CMakeFiles/example_web_api.dir/web_api.cc.o"
  "CMakeFiles/example_web_api.dir/web_api.cc.o.d"
  "example_web_api"
  "example_web_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_web_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
