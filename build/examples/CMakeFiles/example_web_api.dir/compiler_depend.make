# Empty compiler generated dependencies file for example_web_api.
# This may be replaced when dependencies are built.
