file(REMOVE_RECURSE
  "CMakeFiles/example_sentiment_tuning.dir/sentiment_tuning.cc.o"
  "CMakeFiles/example_sentiment_tuning.dir/sentiment_tuning.cc.o.d"
  "example_sentiment_tuning"
  "example_sentiment_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sentiment_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
