# Empty compiler generated dependencies file for example_sentiment_tuning.
# This may be replaced when dependencies are built.
