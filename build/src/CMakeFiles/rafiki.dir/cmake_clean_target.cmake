file(REMOVE_RECURSE
  "librafiki.a"
)
