
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/message.cc" "src/CMakeFiles/rafiki.dir/cluster/message.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/cluster/message.cc.o.d"
  "/root/repo/src/cluster/message_bus.cc" "src/CMakeFiles/rafiki.dir/cluster/message_bus.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/cluster/message_bus.cc.o.d"
  "/root/repo/src/cluster/node_manager.cc" "src/CMakeFiles/rafiki.dir/cluster/node_manager.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/cluster/node_manager.cc.o.d"
  "/root/repo/src/common/clock.cc" "src/CMakeFiles/rafiki.dir/common/clock.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/common/clock.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/rafiki.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/rafiki.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/rafiki.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/rafiki.dir/common/status.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/rafiki.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/common/string_util.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/CMakeFiles/rafiki.dir/data/csv.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/data/csv.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/rafiki.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/preprocess.cc" "src/CMakeFiles/rafiki.dir/data/preprocess.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/data/preprocess.cc.o.d"
  "/root/repo/src/model/bandit_selector.cc" "src/CMakeFiles/rafiki.dir/model/bandit_selector.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/model/bandit_selector.cc.o.d"
  "/root/repo/src/model/prediction_sim.cc" "src/CMakeFiles/rafiki.dir/model/prediction_sim.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/model/prediction_sim.cc.o.d"
  "/root/repo/src/model/profile.cc" "src/CMakeFiles/rafiki.dir/model/profile.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/model/profile.cc.o.d"
  "/root/repo/src/model/registry.cc" "src/CMakeFiles/rafiki.dir/model/registry.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/model/registry.cc.o.d"
  "/root/repo/src/nn/layer.cc" "src/CMakeFiles/rafiki.dir/nn/layer.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/nn/layer.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/CMakeFiles/rafiki.dir/nn/loss.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/nn/loss.cc.o.d"
  "/root/repo/src/nn/net.cc" "src/CMakeFiles/rafiki.dir/nn/net.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/nn/net.cc.o.d"
  "/root/repo/src/nn/sgd.cc" "src/CMakeFiles/rafiki.dir/nn/sgd.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/nn/sgd.cc.o.d"
  "/root/repo/src/ps/parameter_server.cc" "src/CMakeFiles/rafiki.dir/ps/parameter_server.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/ps/parameter_server.cc.o.d"
  "/root/repo/src/rafiki/gateway.cc" "src/CMakeFiles/rafiki.dir/rafiki/gateway.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/rafiki/gateway.cc.o.d"
  "/root/repo/src/rafiki/rafiki.cc" "src/CMakeFiles/rafiki.dir/rafiki/rafiki.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/rafiki/rafiki.cc.o.d"
  "/root/repo/src/rl/actor_critic.cc" "src/CMakeFiles/rafiki.dir/rl/actor_critic.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/rl/actor_critic.cc.o.d"
  "/root/repo/src/serving/greedy_batch.cc" "src/CMakeFiles/rafiki.dir/serving/greedy_batch.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/serving/greedy_batch.cc.o.d"
  "/root/repo/src/serving/rl_scheduler.cc" "src/CMakeFiles/rafiki.dir/serving/rl_scheduler.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/serving/rl_scheduler.cc.o.d"
  "/root/repo/src/serving/simulator.cc" "src/CMakeFiles/rafiki.dir/serving/simulator.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/serving/simulator.cc.o.d"
  "/root/repo/src/serving/sine_arrival.cc" "src/CMakeFiles/rafiki.dir/serving/sine_arrival.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/serving/sine_arrival.cc.o.d"
  "/root/repo/src/sql/query.cc" "src/CMakeFiles/rafiki.dir/sql/query.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/sql/query.cc.o.d"
  "/root/repo/src/sql/table.cc" "src/CMakeFiles/rafiki.dir/sql/table.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/sql/table.cc.o.d"
  "/root/repo/src/storage/blob_store.cc" "src/CMakeFiles/rafiki.dir/storage/blob_store.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/storage/blob_store.cc.o.d"
  "/root/repo/src/storage/serialize.cc" "src/CMakeFiles/rafiki.dir/storage/serialize.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/storage/serialize.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/rafiki.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/tensor/tensor.cc.o.d"
  "/root/repo/src/trainer/real_trainer.cc" "src/CMakeFiles/rafiki.dir/trainer/real_trainer.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/trainer/real_trainer.cc.o.d"
  "/root/repo/src/trainer/surrogate.cc" "src/CMakeFiles/rafiki.dir/trainer/surrogate.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/trainer/surrogate.cc.o.d"
  "/root/repo/src/tuning/bayes_opt.cc" "src/CMakeFiles/rafiki.dir/tuning/bayes_opt.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/tuning/bayes_opt.cc.o.d"
  "/root/repo/src/tuning/gaussian_process.cc" "src/CMakeFiles/rafiki.dir/tuning/gaussian_process.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/tuning/gaussian_process.cc.o.d"
  "/root/repo/src/tuning/hyperspace.cc" "src/CMakeFiles/rafiki.dir/tuning/hyperspace.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/tuning/hyperspace.cc.o.d"
  "/root/repo/src/tuning/study.cc" "src/CMakeFiles/rafiki.dir/tuning/study.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/tuning/study.cc.o.d"
  "/root/repo/src/tuning/trial_advisor.cc" "src/CMakeFiles/rafiki.dir/tuning/trial_advisor.cc.o" "gcc" "src/CMakeFiles/rafiki.dir/tuning/trial_advisor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
