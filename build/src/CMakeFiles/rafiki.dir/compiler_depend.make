# Empty compiler generated dependencies file for rafiki.
# This may be replaced when dependencies are built.
