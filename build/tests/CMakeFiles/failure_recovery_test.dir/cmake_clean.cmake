file(REMOVE_RECURSE
  "CMakeFiles/failure_recovery_test.dir/failure_recovery_test.cc.o"
  "CMakeFiles/failure_recovery_test.dir/failure_recovery_test.cc.o.d"
  "failure_recovery_test"
  "failure_recovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
