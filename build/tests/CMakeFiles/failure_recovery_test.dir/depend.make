# Empty dependencies file for failure_recovery_test.
# This may be replaced when dependencies are built.
