# Empty compiler generated dependencies file for gateway_test.
# This may be replaced when dependencies are built.
