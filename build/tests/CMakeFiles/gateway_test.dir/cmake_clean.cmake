file(REMOVE_RECURSE
  "CMakeFiles/gateway_test.dir/gateway_test.cc.o"
  "CMakeFiles/gateway_test.dir/gateway_test.cc.o.d"
  "gateway_test"
  "gateway_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gateway_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
