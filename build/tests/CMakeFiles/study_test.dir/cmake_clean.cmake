file(REMOVE_RECURSE
  "CMakeFiles/study_test.dir/study_test.cc.o"
  "CMakeFiles/study_test.dir/study_test.cc.o.d"
  "study_test"
  "study_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
