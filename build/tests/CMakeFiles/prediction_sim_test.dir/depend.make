# Empty dependencies file for prediction_sim_test.
# This may be replaced when dependencies are built.
