file(REMOVE_RECURSE
  "CMakeFiles/prediction_sim_test.dir/prediction_sim_test.cc.o"
  "CMakeFiles/prediction_sim_test.dir/prediction_sim_test.cc.o.d"
  "prediction_sim_test"
  "prediction_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prediction_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
