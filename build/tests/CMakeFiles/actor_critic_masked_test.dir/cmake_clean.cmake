file(REMOVE_RECURSE
  "CMakeFiles/actor_critic_masked_test.dir/actor_critic_masked_test.cc.o"
  "CMakeFiles/actor_critic_masked_test.dir/actor_critic_masked_test.cc.o.d"
  "actor_critic_masked_test"
  "actor_critic_masked_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actor_critic_masked_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
