# Empty dependencies file for actor_critic_masked_test.
# This may be replaced when dependencies are built.
