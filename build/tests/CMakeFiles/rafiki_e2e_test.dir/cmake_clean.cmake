file(REMOVE_RECURSE
  "CMakeFiles/rafiki_e2e_test.dir/rafiki_e2e_test.cc.o"
  "CMakeFiles/rafiki_e2e_test.dir/rafiki_e2e_test.cc.o.d"
  "rafiki_e2e_test"
  "rafiki_e2e_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rafiki_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
