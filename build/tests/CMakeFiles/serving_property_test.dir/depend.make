# Empty dependencies file for serving_property_test.
# This may be replaced when dependencies are built.
