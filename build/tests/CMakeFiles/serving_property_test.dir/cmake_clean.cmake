file(REMOVE_RECURSE
  "CMakeFiles/serving_property_test.dir/serving_property_test.cc.o"
  "CMakeFiles/serving_property_test.dir/serving_property_test.cc.o.d"
  "serving_property_test"
  "serving_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
