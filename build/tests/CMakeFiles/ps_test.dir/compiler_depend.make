# Empty compiler generated dependencies file for ps_test.
# This may be replaced when dependencies are built.
