file(REMOVE_RECURSE
  "CMakeFiles/ps_test.dir/ps_test.cc.o"
  "CMakeFiles/ps_test.dir/ps_test.cc.o.d"
  "ps_test"
  "ps_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
