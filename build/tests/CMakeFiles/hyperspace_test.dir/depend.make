# Empty dependencies file for hyperspace_test.
# This may be replaced when dependencies are built.
