file(REMOVE_RECURSE
  "CMakeFiles/hyperspace_test.dir/hyperspace_test.cc.o"
  "CMakeFiles/hyperspace_test.dir/hyperspace_test.cc.o.d"
  "hyperspace_test"
  "hyperspace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperspace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
