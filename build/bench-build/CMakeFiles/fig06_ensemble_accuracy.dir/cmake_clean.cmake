file(REMOVE_RECURSE
  "../bench/fig06_ensemble_accuracy"
  "../bench/fig06_ensemble_accuracy.pdb"
  "CMakeFiles/fig06_ensemble_accuracy.dir/fig06_ensemble_accuracy.cc.o"
  "CMakeFiles/fig06_ensemble_accuracy.dir/fig06_ensemble_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_ensemble_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
