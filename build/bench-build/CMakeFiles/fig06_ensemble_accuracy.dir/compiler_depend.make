# Empty compiler generated dependencies file for fig06_ensemble_accuracy.
# This may be replaced when dependencies are built.
