file(REMOVE_RECURSE
  "../bench/fig11_scalability"
  "../bench/fig11_scalability.pdb"
  "CMakeFiles/fig11_scalability.dir/fig11_scalability.cc.o"
  "CMakeFiles/fig11_scalability.dir/fig11_scalability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
