file(REMOVE_RECURSE
  "../bench/fig16_beta_sweep"
  "../bench/fig16_beta_sweep.pdb"
  "CMakeFiles/fig16_beta_sweep.dir/fig16_beta_sweep.cc.o"
  "CMakeFiles/fig16_beta_sweep.dir/fig16_beta_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_beta_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
