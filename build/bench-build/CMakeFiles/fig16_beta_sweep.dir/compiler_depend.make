# Empty compiler generated dependencies file for fig16_beta_sweep.
# This may be replaced when dependencies are built.
