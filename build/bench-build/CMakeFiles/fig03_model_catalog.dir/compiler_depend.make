# Empty compiler generated dependencies file for fig03_model_catalog.
# This may be replaced when dependencies are built.
