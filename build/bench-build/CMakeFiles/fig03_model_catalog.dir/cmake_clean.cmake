file(REMOVE_RECURSE
  "../bench/fig03_model_catalog"
  "../bench/fig03_model_catalog.pdb"
  "CMakeFiles/fig03_model_catalog.dir/fig03_model_catalog.cc.o"
  "CMakeFiles/fig03_model_catalog.dir/fig03_model_catalog.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_model_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
