# Empty dependencies file for fig14_multi_model_min.
# This may be replaced when dependencies are built.
