file(REMOVE_RECURSE
  "../bench/fig14_multi_model_min"
  "../bench/fig14_multi_model_min.pdb"
  "CMakeFiles/fig14_multi_model_min.dir/fig14_multi_model_min.cc.o"
  "CMakeFiles/fig14_multi_model_min.dir/fig14_multi_model_min.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_multi_model_min.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
