file(REMOVE_RECURSE
  "../bench/fig13_single_model_min"
  "../bench/fig13_single_model_min.pdb"
  "CMakeFiles/fig13_single_model_min.dir/fig13_single_model_min.cc.o"
  "CMakeFiles/fig13_single_model_min.dir/fig13_single_model_min.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_single_model_min.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
