# Empty compiler generated dependencies file for fig13_single_model_min.
# This may be replaced when dependencies are built.
