# Empty dependencies file for fig10_single_model_max.
# This may be replaced when dependencies are built.
