file(REMOVE_RECURSE
  "../bench/fig10_single_model_max"
  "../bench/fig10_single_model_max.pdb"
  "CMakeFiles/fig10_single_model_max.dir/fig10_single_model_max.cc.o"
  "CMakeFiles/fig10_single_model_max.dir/fig10_single_model_max.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_single_model_max.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
