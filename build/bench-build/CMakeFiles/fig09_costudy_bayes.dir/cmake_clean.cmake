file(REMOVE_RECURSE
  "../bench/fig09_costudy_bayes"
  "../bench/fig09_costudy_bayes.pdb"
  "CMakeFiles/fig09_costudy_bayes.dir/fig09_costudy_bayes.cc.o"
  "CMakeFiles/fig09_costudy_bayes.dir/fig09_costudy_bayes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_costudy_bayes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
