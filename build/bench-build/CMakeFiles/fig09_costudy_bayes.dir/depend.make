# Empty dependencies file for fig09_costudy_bayes.
# This may be replaced when dependencies are built.
