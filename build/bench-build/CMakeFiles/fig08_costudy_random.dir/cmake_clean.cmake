file(REMOVE_RECURSE
  "../bench/fig08_costudy_random"
  "../bench/fig08_costudy_random.pdb"
  "CMakeFiles/fig08_costudy_random.dir/fig08_costudy_random.cc.o"
  "CMakeFiles/fig08_costudy_random.dir/fig08_costudy_random.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_costudy_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
