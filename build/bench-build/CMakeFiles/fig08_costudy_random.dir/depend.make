# Empty dependencies file for fig08_costudy_random.
# This may be replaced when dependencies are built.
