# Empty compiler generated dependencies file for fig15_multi_model_max.
# This may be replaced when dependencies are built.
