file(REMOVE_RECURSE
  "../bench/fig15_multi_model_max"
  "../bench/fig15_multi_model_max.pdb"
  "CMakeFiles/fig15_multi_model_max.dir/fig15_multi_model_max.cc.o"
  "CMakeFiles/fig15_multi_model_max.dir/fig15_multi_model_max.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_multi_model_max.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
