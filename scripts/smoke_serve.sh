#!/usr/bin/env bash
# End-to-end smoke over real TCP: boot rafiki_serve, point rafiki_loadgen at
# the auto-deployed inference job's metrics route, fail on any transport
# error or non-2xx/non-503 answer, then SIGTERM the server and require a
# clean drain (the final "served requests=..." accounting line).
#
# Usage: scripts/smoke_serve.sh [build-dir] [port]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
port="${2:-18080}"

serve="$build_dir/examples/rafiki_serve"
loadgen="$build_dir/examples/rafiki_loadgen"
for bin in "$serve" "$loadgen"; do
  if [[ ! -x "$bin" ]]; then
    echo "missing binary: $bin (build the repo first)" >&2
    exit 1
  fi
done

log="$(mktemp)"
server_pid=""
cleanup() {
  # Kill by exact PID only: pkill -f would match this script's own cmdline.
  if [[ -n "$server_pid" ]] && kill -0 "$server_pid" 2>/dev/null; then
    kill -KILL "$server_pid" 2>/dev/null || true
  fi
  rm -f "$log"
}
trap cleanup EXIT

"$serve" --port="$port" --workers=2 --handlers=2 >"$log" 2>&1 &
server_pid=$!

# Wait for the machine-parseable startup lines (rafiki_serve flushes them).
infer_job=""
for _ in $(seq 1 100); do
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "server exited during startup:" >&2
    cat "$log" >&2
    exit 1
  fi
  if grep -q '^listening port=' "$log"; then
    infer_job="$(sed -n 's/^infer_job=\([^ ]*\).*/\1/p' "$log")"
    break
  fi
  sleep 0.1
done
if [[ -z "$infer_job" ]]; then
  echo "server never became ready:" >&2
  cat "$log" >&2
  exit 1
fi
echo "smoke: server pid=$server_pid port=$port infer_job=$infer_job"

"$loadgen" --port="$port" --target="/jobs/$infer_job/metrics" \
  --duration=2 --rate=300 --period=2 --connections=2 --fail-on-error

# Graceful drain: TERM the exact PID and require the accounting line.
kill -TERM "$server_pid"
for _ in $(seq 1 100); do
  kill -0 "$server_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
  echo "server did not exit after SIGTERM:" >&2
  cat "$log" >&2
  exit 1
fi
wait "$server_pid" || {
  echo "server exited non-zero:" >&2
  cat "$log" >&2
  exit 1
}
server_pid=""
if ! grep -q '^served requests=' "$log"; then
  echo "missing final accounting line:" >&2
  cat "$log" >&2
  exit 1
fi
grep '^served requests=' "$log"
echo "smoke: OK"
