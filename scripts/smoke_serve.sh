#!/usr/bin/env bash
# End-to-end smoke over real TCP: boot rafiki_serve (async continuation
# path, the default), point rafiki_loadgen at the auto-deployed inference
# job's metrics route, then storm the async query route with 256 closed-loop
# connections against a 2-thread handler pool — failing on any transport
# error or unexpected status — and finally SIGTERM the server, require a
# clean drain (the "served requests=..." accounting line) and an observed
# in-flight peak above the handler-thread count (proof the continuation
# path, not the thread pool, carried the concurrency).
#
# Usage: scripts/smoke_serve.sh [build-dir] [port]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
port="${2:-18080}"

serve="$build_dir/examples/rafiki_serve"
loadgen="$build_dir/examples/rafiki_loadgen"
for bin in "$serve" "$loadgen"; do
  if [[ ! -x "$bin" ]]; then
    echo "missing binary: $bin (build the repo first)" >&2
    exit 1
  fi
done

log="$(mktemp)"
server_pid=""
cleanup() {
  # Kill by exact PID only: pkill -f would match this script's own cmdline.
  if [[ -n "$server_pid" ]] && kill -0 "$server_pid" 2>/dev/null; then
    kill -KILL "$server_pid" 2>/dev/null || true
  fi
  rm -f "$log"
}
trap cleanup EXIT

# handlers=2 on purpose: the async storm below must sustain far more
# concurrent queries than handler threads. max-inflight is lifted so the
# admission cap is not what bounds the storm; tau-ms is generous so most
# queries beat the queue deadline on a loaded CI box (stragglers get an
# orderly 504, which is not an error).
"$serve" --port="$port" --workers=2 --handlers=2 --max-inflight=1024 \
  --tau-ms=500 >"$log" 2>&1 &
server_pid=$!

# Wait for the machine-parseable startup lines (rafiki_serve flushes them).
infer_job=""
for _ in $(seq 1 100); do
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "server exited during startup:" >&2
    cat "$log" >&2
    exit 1
  fi
  if grep -q '^listening port=' "$log"; then
    infer_job="$(sed -n 's/^infer_job=\([^ ]*\).*/\1/p' "$log")"
    break
  fi
  sleep 0.1
done
if [[ -z "$infer_job" ]]; then
  echo "server never became ready:" >&2
  cat "$log" >&2
  exit 1
fi
echo "smoke: server pid=$server_pid port=$port infer_job=$infer_job"

"$loadgen" --port="$port" --target="/jobs/$infer_job/metrics" \
  --duration=2 --rate=300 --period=2 --connections=2 --fail-on-error

# High-concurrency async storm: 256 closed-loop connections POSTing real
# queries through the continuation path, on the 2-thread handler pool.
"$loadgen" --port="$port" --method=POST \
  --target="/jobs/$infer_job/query" --body="0,1,0,0" \
  --closed --connections=256 --duration=2 --tau=1 --fail-on-error

# Graceful drain: TERM the exact PID and require the accounting line.
kill -TERM "$server_pid"
for _ in $(seq 1 100); do
  kill -0 "$server_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
  echo "server did not exit after SIGTERM:" >&2
  cat "$log" >&2
  exit 1
fi
wait "$server_pid" || {
  echo "server exited non-zero:" >&2
  cat "$log" >&2
  exit 1
}
server_pid=""
if ! grep -q '^served requests=' "$log"; then
  echo "missing final accounting line:" >&2
  cat "$log" >&2
  exit 1
fi
grep '^served requests=' "$log"
grep '^job metrics ' "$log" || true

# The async path must have carried more concurrent requests than the two
# handler threads ever could synchronously.
peak="$(sed -n 's/.*inflight_peak=\([0-9]*\).*/\1/p' "$log" | head -1)"
if [[ -z "$peak" || "$peak" -le 2 ]]; then
  echo "async path not exercised: inflight_peak='$peak' (expected > 2)" >&2
  cat "$log" >&2
  exit 1
fi
echo "smoke: OK (inflight_peak=$peak)"

# --- RL policy storm -------------------------------------------------------
# Boot a second server under the actor-critic scheduler and hit it with an
# open-loop sine (the Figure 12 load shape) at a tight-ish tau so some
# queries expire. On drain, the accounting must still close exactly
# ("conservation ... ok=1") and the policy must actually have learned
# (nonzero learn_steps) — the live counterpart of the runtime's
# exactly-once expiry regression test.
rl_port=$((port + 1))
"$serve" --port="$rl_port" --workers=2 --handlers=2 --max-inflight=1024 \
  --tau-ms=100 --policy=rl >"$log" 2>&1 &
server_pid=$!
for _ in $(seq 1 100); do
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "rl server exited during startup:" >&2
    cat "$log" >&2
    exit 1
  fi
  grep -q '^listening port=' "$log" && break
  sleep 0.1
done
rl_job="$(sed -n 's/^infer_job=\([^ ]*\).*/\1/p' "$log")"
if [[ -z "$rl_job" ]]; then
  echo "rl server never became ready:" >&2
  cat "$log" >&2
  exit 1
fi
if ! grep -q '^infer_job=.* policy=rl' "$log"; then
  echo "rl server did not report policy=rl:" >&2
  cat "$log" >&2
  exit 1
fi
echo "smoke: rl server pid=$server_pid port=$rl_port infer_job=$rl_job"

"$loadgen" --port="$rl_port" --method=POST \
  --target="/jobs/$rl_job/query" --body="0,1,0,0" \
  --rate=400 --period=2 --duration=3 --connections=8 --tau=0.1

kill -TERM "$server_pid"
for _ in $(seq 1 100); do
  kill -0 "$server_pid" 2>/dev/null || break
  sleep 0.1
done
wait "$server_pid" || {
  echo "rl server exited non-zero:" >&2
  cat "$log" >&2
  exit 1
}
server_pid=""
grep '^job metrics ' "$log" || true
if ! grep -q '^conservation .* ok=1$' "$log"; then
  echo "rl drain accounting did not close:" >&2
  cat "$log" >&2
  exit 1
fi
grep '^conservation ' "$log"
learned="$(sed -n 's/.* learn_steps=\([0-9]*\).*/\1/p' "$log" | head -1)"
if [[ -z "$learned" || "$learned" -eq 0 ]]; then
  echo "rl policy recorded no learn steps: '$learned'" >&2
  cat "$log" >&2
  exit 1
fi
echo "smoke: OK (rl learn_steps=$learned)"

# --- Replica autoscale storm -----------------------------------------------
# Boot a third server whose job may grow to 4 dispatcher replicas
# (--autoscale=1 starts at one and lets the ReplicaController scale on
# queue pressure). The 256-connection closed-loop storm keeps the submit
# queue well above the scale-up threshold, so the controller must add
# replicas during the run; on drain the accounting must still close
# exactly ("conservation ... ok=1") across every add/remove, and the
# reported replica peak must exceed 1 (proof the storm scaled the plane,
# not just rode the single seed replica).
replica_port=$((port + 2))
"$serve" --port="$replica_port" --workers=2 --handlers=2 \
  --max-inflight=1024 --tau-ms=500 --replicas=4 --autoscale=1 \
  >"$log" 2>&1 &
server_pid=$!
for _ in $(seq 1 100); do
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "replica server exited during startup:" >&2
    cat "$log" >&2
    exit 1
  fi
  grep -q '^listening port=' "$log" && break
  sleep 0.1
done
replica_job="$(sed -n 's/^infer_job=\([^ ]*\).*/\1/p' "$log")"
if [[ -z "$replica_job" ]]; then
  echo "replica server never became ready:" >&2
  cat "$log" >&2
  exit 1
fi
if ! grep -q '^infer_job=.* replicas=4 autoscale=1' "$log"; then
  echo "replica server did not report replicas=4 autoscale=1:" >&2
  cat "$log" >&2
  exit 1
fi
echo "smoke: replica server pid=$server_pid port=$replica_port infer_job=$replica_job"

"$loadgen" --port="$replica_port" --method=POST \
  --target="/jobs/$replica_job/query" --body="0,1,0,0" \
  --closed --connections=256 --duration=3 --tau=1 --fail-on-error

kill -TERM "$server_pid"
for _ in $(seq 1 100); do
  kill -0 "$server_pid" 2>/dev/null || break
  sleep 0.1
done
wait "$server_pid" || {
  echo "replica server exited non-zero:" >&2
  cat "$log" >&2
  exit 1
}
server_pid=""
grep '^replica metrics ' "$log" || true
if ! grep -q '^conservation .* ok=1$' "$log"; then
  echo "replica drain accounting did not close:" >&2
  cat "$log" >&2
  exit 1
fi
grep '^conservation ' "$log"
replica_peak="$(sed -n 's/^replica metrics .* peak=\([0-9]*\).*/\1/p' "$log" | head -1)"
if [[ -z "$replica_peak" || "$replica_peak" -le 1 ]]; then
  echo "controller never scaled past one replica: peak='$replica_peak'" >&2
  cat "$log" >&2
  exit 1
fi
echo "smoke: OK (replica peak=$replica_peak)"
