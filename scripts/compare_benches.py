#!/usr/bin/env python3
"""Compares two google-benchmark JSON files (baseline vs current).

Usage: scripts/compare_benches.py BASELINE.json CURRENT.json [--threshold PCT]

Prints a per-benchmark delta table plus a summary of regressions beyond the
threshold (default 10%). Exits 0 always — the CI bench job is a report, not
a gate: single-run micro-benchmarks on shared runners are too noisy to
block merges on, but the table in the job log makes drift visible.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = b.get("cpu_time", b.get("real_time"))
    return out


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="percent slowdown considered a regression")
    args = parser.parse_args()

    base = load(args.baseline)
    curr = load(args.current)

    names = sorted(set(base) | set(curr))
    width = max((len(n) for n in names), default=4)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  {'delta':>8}")
    print("-" * (width + 40))
    regressions = []
    for name in names:
        b, c = base.get(name), curr.get(name)
        if b is None:
            print(f"{name:<{width}}  {'(new)':>12}  {c:>12.1f}")
            continue
        if c is None:
            print(f"{name:<{width}}  {b:>12.1f}  {'(gone)':>12}")
            continue
        delta = (c - b) / b * 100.0 if b else 0.0
        marker = ""
        if delta > args.threshold:
            marker = "  <-- regression"
            regressions.append((name, delta))
        print(f"{name:<{width}}  {b:>12.1f}  {c:>12.1f}  {delta:>+7.1f}%{marker}")

    print()
    if regressions:
        print(f"{len(regressions)} benchmark(s) slower than baseline "
              f"by more than {args.threshold:.0f}% (times in ns, non-blocking):")
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1f}%")
    else:
        print(f"No regressions beyond {args.threshold:.0f}%.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
