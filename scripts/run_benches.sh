#!/usr/bin/env bash
# Builds the Release micro-benchmark suite and records it as JSON, giving
# each PR a comparable perf snapshot (BENCH_micro.json at the repo root).
#
# Usage: scripts/run_benches.sh [build-dir] [benchmark-filter]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
filter="${2:-.}"

# RAFIKI_NATIVE: the snapshot should measure the best codegen this host can
# run, not the portable-baseline ISA — kernel-level wins (blocked GEMM,
# SIMD-reduction Cholesky) are invisible at generic -O2/-O3 vector widths.
# Comparisons stay apples-to-apples because the checked-in baseline is
# produced by this same script.
cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release \
  -DRAFIKI_NATIVE=ON
cmake --build "$build_dir" -j --target micro_benchmarks

# Targets are declared under build/bench-build but binaries land in
# build/bench (see the root CMakeLists).
"$build_dir/bench/micro_benchmarks" \
  --benchmark_filter="$filter" \
  --benchmark_format=json \
  --benchmark_out="$repo_root/BENCH_micro.json" \
  --benchmark_out_format=json

echo "Wrote $repo_root/BENCH_micro.json"
