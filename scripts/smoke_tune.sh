#!/usr/bin/env bash
# End-to-end smoke over the distributed tuning plane: boot
# rafiki_tune_master (TCP bus + shared parameter server), let it spawn two
# rafiki_tune_worker processes over loopback, SIGKILL one worker mid-study,
# and require that the supervisor restarted it, the study ran to
# completion, and the trial ledger balanced exactly
# (proposed == completed + lost, active == 0) — the paper's §6.3 failure
# model exercised across real process boundaries.
#
# Usage: scripts/smoke_tune.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

master="$build_dir/examples/rafiki_tune_master"
worker="$build_dir/examples/rafiki_tune_worker"
for bin in "$master" "$worker"; do
  if [[ ! -x "$bin" ]]; then
    echo "missing binary: $bin (build the repo first)" >&2
    exit 1
  fi
done

log="$(mktemp)"
ckpt_dir="$(mktemp -d)"
master_pid=""
cleanup() {
  # Kill by exact PID only: pkill -f would match this script's own cmdline.
  if [[ -n "$master_pid" ]] && kill -0 "$master_pid" 2>/dev/null; then
    kill -KILL "$master_pid" 2>/dev/null || true
  fi
  rm -rf "$log" "$ckpt_dir"
}
trap cleanup EXIT

# Long trials (1000 surrogate epochs, early stop effectively off) keep the
# study running ~5s, so the kill below reliably lands mid-study even on a
# fast box; a checkpoint every event means a master restart (not exercised
# here) could resume. The bus picks an ephemeral port; workers learn it
# from argv.
"$master" --study=smoke --workers=2 --trials=16 --max-epochs=1000 \
  --patience=1000 --checkpoint-every=1 --checkpoint-dir="$ckpt_dir" \
  >"$log" 2>&1 &
master_pid=$!

# Wait for both worker processes to be spawned and capture the victim's pid.
victim_pid=""
for _ in $(seq 1 150); do
  if ! kill -0 "$master_pid" 2>/dev/null; then
    echo "master exited during startup:" >&2
    cat "$log" >&2
    exit 1
  fi
  if grep -q '^spawned worker=w1 pid=' "$log"; then
    victim_pid="$(sed -n 's/^spawned worker=w1 pid=\([0-9]*\)$/\1/p' "$log")"
    break
  fi
  sleep 0.1
done
if [[ -z "$victim_pid" ]]; then
  echo "workers never spawned:" >&2
  cat "$log" >&2
  exit 1
fi
echo "smoke: master pid=$master_pid victim worker=w1 pid=$victim_pid"

# Let w1 get into a trial, then kill it the way a lost node would die.
sleep 0.3
kill -KILL "$victim_pid" 2>/dev/null || {
  echo "victim already gone before the kill; study too fast for the smoke" >&2
  cat "$log" >&2
  exit 1
}
echo "smoke: killed worker w1 (pid $victim_pid) mid-study"

# The master must finish on its own: supervisor restarts w1, the lost trial
# is re-proposed or written off, and the run drains cleanly.
for _ in $(seq 1 1200); do
  kill -0 "$master_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$master_pid" 2>/dev/null; then
  echo "master did not finish within the deadline:" >&2
  cat "$log" >&2
  exit 1
fi
wait "$master_pid" || {
  echo "master exited non-zero:" >&2
  cat "$log" >&2
  exit 1
}
master_pid=""

# The supervisor must have observed the SIGKILL and respawned w1.
if ! grep -q '^restarted worker=w1 ' "$log"; then
  echo "supervisor never restarted the killed worker:" >&2
  cat "$log" >&2
  exit 1
fi
restarts="$(sed -n 's/^worker=w1 restarts=\([0-9]*\)$/\1/p' "$log")"
if [[ -z "$restarts" || "$restarts" -lt 1 ]]; then
  echo "final accounting shows no restart for w1: '$restarts'" >&2
  cat "$log" >&2
  exit 1
fi

# The ledger must balance exactly: every proposed trial is either completed
# or written off as lost, with nothing still active.
if ! grep -q '^ledger .* balanced=1$' "$log"; then
  echo "trial ledger did not balance:" >&2
  cat "$log" >&2
  exit 1
fi
if ! grep -q '^trials=' "$log"; then
  echo "missing final trials line:" >&2
  cat "$log" >&2
  exit 1
fi
grep '^ledger ' "$log"
grep '^trials=' "$log"
echo "smoke: OK (w1 restarts=$restarts)"
