#ifndef RAFIKI_TRAINER_SURROGATE_H_
#define RAFIKI_TRAINER_SURROGATE_H_

#include <memory>
#include <mutex>
#include <string>

#include "common/rng.h"
#include "trainer/trainable.h"

namespace rafiki::trainer {

/// Calibrated response-surface trainer standing in for the paper's
/// hours-long 8-layer ConvNet runs on CIFAR-10 (§7.1).
///
/// Why this preserves the experiment (DESIGN.md §1): Figures 8/9/11 measure
/// properties of the *tuning protocol* — how trial quality is distributed,
/// how fast the best-so-far curve climbs per training epoch, and how
/// checkpoint reuse (CoStudy) changes both. Those properties are driven by
/// four phenomena of real SGD training that this surrogate reproduces:
///
///  1. a hyper-parameter response surface with a single broad optimum in
///     log-space (learning rate, weight decay, init std) and flat-ish
///     directions (momentum, dropout), plus a divergence region at extreme
///     learning rates / init scales;
///  2. epoch dynamics with a plateau: accuracy rises, stalls mid-training,
///     and only climbs to its final value late (the paper's "loss stays in
///     a plateau ... then drops when the learning rate decays"). Early
///     stopping therefore truncates cold-started trials near the plateau;
///  3. warm starts inherit the donor's achieved accuracy as a head start
///     (pre-training, §4.2.2), letting trials push past the plateau;
///  4. warm starts from *bad* checkpoints poison the trial (the paper's
///     motivation for the alpha-greedy strategy).
///
/// All stochasticity is seeded per-trial, so studies are reproducible.
struct SurrogateOptions {
  /// Best achievable accuracy across the space (paper: ~93% on CIFAR-10
  /// with the fixed 8-layer architecture).
  double peak_accuracy = 0.93;
  /// Worst non-diverged accuracy floor.
  double floor_accuracy = 0.25;
  /// Chance-level accuracy of diverged runs (10-class task).
  double diverged_accuracy = 0.10;
  /// Epoch observation noise.
  double noise = 0.004;
  /// Epoch at which the learning-rate-decay "second rise" is centered.
  double decay_epoch = 25.0;
  /// Time constant of the first rise.
  double tau = 4.0;
  /// Simulated seconds per epoch (Figure 11 accounting).
  double epoch_cost_seconds = 25.0;
  /// Accuracy below which a donor checkpoint drags the new trial down.
  double poison_threshold = 0.35;
  uint64_t seed = 99;
};

class SurrogateTrainer : public Trainable {
 public:
  explicit SurrogateTrainer(SurrogateOptions options);

  Status InitRandom(const tuning::Trial& trial) override;
  Status InitFromCheckpoint(const tuning::Trial& trial,
                            const ps::ModelCheckpoint& ckpt) override;
  Result<double> TrainEpoch() override;
  ps::ModelCheckpoint Checkpoint() const override;
  double EpochCostSeconds() const override {
    return options_.epoch_cost_seconds;
  }
  std::string name() const override { return "surrogate_convnet"; }

  /// Final accuracy this trial converges to (exposed for tests).
  double asymptote() const { return asymptote_; }
  bool diverged() const { return diverged_; }

 private:
  void Configure(const tuning::Trial& trial);
  /// Noise-free accuracy after `epochs` effective epochs.
  double Curve(double epochs) const;
  /// Smallest effective epoch count whose curve value reaches `accuracy`.
  double InvertCurve(double accuracy) const;

  SurrogateOptions options_;
  Rng rng_;
  double asymptote_ = 0.0;
  bool diverged_ = false;
  double progress_epochs_ = 0.0;
  double last_accuracy_ = 0.0;
};

/// Factory producing surrogate trainers with per-trial forked seeds.
/// Create() is thread-safe: the shared seed Rng is forked under a mutex.
class SurrogateFactory : public TrainerFactory {
 public:
  explicit SurrogateFactory(SurrogateOptions options)
      : options_(options), seed_rng_(options.seed) {}

  std::unique_ptr<Trainable> Create(const tuning::Trial& trial) override;

 private:
  SurrogateOptions options_;
  std::mutex mu_;
  Rng seed_rng_;
};

}  // namespace rafiki::trainer

#endif  // RAFIKI_TRAINER_SURROGATE_H_
