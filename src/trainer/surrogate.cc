#include "trainer/surrogate.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "tensor/tensor.h"

namespace rafiki::trainer {
namespace {

/// Gaussian quality factor in log10-space around an optimum.
double LogQuality(double value, double log10_opt, double width) {
  if (value <= 0.0) return 0.0;
  double d = std::log10(value) - log10_opt;
  return std::exp(-0.5 * d * d / (width * width));
}

/// Gaussian quality factor in linear space.
double LinQuality(double value, double opt, double width) {
  double d = value - opt;
  return std::exp(-0.5 * d * d / (width * width));
}

}  // namespace

SurrogateTrainer::SurrogateTrainer(SurrogateOptions options)
    : options_(options), rng_(options.seed) {}

void SurrogateTrainer::Configure(const tuning::Trial& trial) {
  double lr = trial.GetDouble("learning_rate", 0.05);
  double momentum = trial.GetDouble("momentum", 0.9);
  double wd = trial.GetDouble("weight_decay", 5e-4);
  double dropout = trial.GetDouble("dropout", 0.3);
  double init_std = trial.GetDouble("init_std", 0.05);

  // Divergence region: oversized learning rates or initializations blow up
  // (the bottom band of Figure 8a).
  diverged_ = lr >= 0.5 || init_std >= 0.5 || (lr >= 0.3 && momentum >= 0.95);
  if (diverged_) {
    asymptote_ = options_.diverged_accuracy;
    return;
  }

  // Response surface: weighted mix of per-knob quality factors. Optima
  // match common CIFAR-10 practice (lr ~0.05, wd ~3e-4, init ~0.05,
  // momentum ~0.9, dropout ~0.3).
  double q = 0.40 * LogQuality(lr, /*log10_opt=*/-1.3, 0.8) +
             0.15 * LinQuality(momentum, 0.9, 0.25) +
             0.15 * LogQuality(wd, -3.5, 1.0) +
             0.10 * LinQuality(dropout, 0.3, 0.35) +
             0.20 * LogQuality(init_std, -1.3, 0.8);
  asymptote_ = options_.floor_accuracy +
               (options_.peak_accuracy - options_.floor_accuracy) * q;
}

double SurrogateTrainer::Curve(double epochs) const {
  if (diverged_) return asymptote_;
  // First rise to 75% of the asymptote, a flat mid-training plateau, then
  // the lr-decay rise (§4.2.2's "training loss stays in a plateau ...
  // then drops suddenly when we decrease the learning rate").
  double rise1 = 1.0 - std::exp(-epochs / options_.tau);
  double rise2 = 1.0 / (1.0 + std::exp(-(epochs - options_.decay_epoch) / 2.0));
  return asymptote_ * (0.75 * rise1 + 0.25 * rise2);
}

double SurrogateTrainer::InvertCurve(double accuracy) const {
  if (accuracy <= 0.0) return 0.0;
  for (double e = 0.0; e <= 200.0; e += 0.5) {
    if (Curve(e) >= accuracy) return e;
  }
  return 200.0;
}

Status SurrogateTrainer::InitRandom(const tuning::Trial& trial) {
  Configure(trial);
  progress_epochs_ = 0.0;
  last_accuracy_ = 0.0;
  return Status::OK();
}

Status SurrogateTrainer::InitFromCheckpoint(const tuning::Trial& trial,
                                            const ps::ModelCheckpoint& ckpt) {
  Configure(trial);
  if (diverged_) {
    // A diverging configuration destroys even a good initialization.
    progress_epochs_ = 0.0;
    last_accuracy_ = 0.0;
    return Status::OK();
  }
  double donor_accuracy = ckpt.meta.accuracy;
  if (donor_accuracy < options_.poison_threshold) {
    // Poisoned warm start (§4.2.2): a bad donor drags the achievable
    // accuracy down — the phenomenon alpha-greedy exists to mitigate.
    double deficit =
        (options_.poison_threshold - donor_accuracy) / options_.poison_threshold;
    asymptote_ = std::max(options_.diverged_accuracy,
                          asymptote_ * (1.0 - 0.45 * deficit));
    progress_epochs_ = 0.0;
    last_accuracy_ = donor_accuracy;
    return Status::OK();
  }
  // Pre-training head start: resume at the effective epoch whose accuracy
  // matches the donor (capped slightly below this trial's own asymptote),
  // plus a small transfer bonus for strong donors.
  if (donor_accuracy > 0.6) {
    asymptote_ = std::min(options_.peak_accuracy + 0.015,
                          asymptote_ + 0.015);
  }
  double target = std::min(donor_accuracy, 0.98 * asymptote_);
  progress_epochs_ = InvertCurve(target);
  last_accuracy_ = target;
  return Status::OK();
}

Result<double> SurrogateTrainer::TrainEpoch() {
  progress_epochs_ += 1.0;
  double acc = Curve(progress_epochs_) + rng_.Gaussian(0.0, options_.noise);
  acc = std::clamp(acc, 0.0, 0.999);
  last_accuracy_ = acc;
  return acc;
}

ps::ModelCheckpoint SurrogateTrainer::Checkpoint() const {
  ps::ModelCheckpoint ckpt;
  // The surrogate's "parameters": its training state vector. Real model
  // checkpoints flow through the same path with real tensors.
  Tensor state({4});
  state.at(0) = static_cast<float>(progress_epochs_);
  state.at(1) = static_cast<float>(last_accuracy_);
  state.at(2) = static_cast<float>(asymptote_);
  state.at(3) = diverged_ ? 1.0f : 0.0f;
  ckpt.params.emplace_back("surrogate/state", std::move(state));
  ckpt.meta.accuracy = last_accuracy_;
  return ckpt;
}

std::unique_ptr<Trainable> SurrogateFactory::Create(
    const tuning::Trial& trial) {
  (void)trial;
  SurrogateOptions opts = options_;
  // Create() is called concurrently from study workers; Fork() mutates
  // the shared seed Rng, so it must be serialized (TSan flagged the
  // unguarded version).
  {
    std::lock_guard<std::mutex> lock(mu_);
    opts.seed = seed_rng_.Fork().Next64();
  }
  return std::make_unique<SurrogateTrainer>(opts);
}

}  // namespace rafiki::trainer
