#ifndef RAFIKI_TRAINER_REAL_TRAINER_H_
#define RAFIKI_TRAINER_REAL_TRAINER_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/loss.h"
#include "nn/net.h"
#include "nn/sgd.h"
#include "trainer/trainable.h"

namespace rafiki::trainer {

/// Actual SGD training of an MLP on an in-memory dataset — the "real"
/// counterpart to the surrogate, proving the tuning stack drives genuine
/// gradient descent end-to-end (used by integration tests and examples).
///
/// Consumes the same knob names as the surrogate (learning_rate, momentum,
/// weight_decay, dropout, init_std) plus the architecture knob
/// `hidden_units` (Table 1 group 2) — warm starts across different
/// hidden_units exercise shape-matched parameter reuse.
struct RealTrainerOptions {
  int64_t batch_size = 32;
  uint64_t seed = 31;
  /// Data-parallel shards per minibatch. 1 trains serially (the default,
  /// and bit-stable with previous releases); K > 1 splits each batch into
  /// K contiguous row ranges, drives one model replica per shard on the
  /// global thread pool, and tree-reduces the shard gradients into the
  /// master parameters in a fixed order (deterministic for a given K).
  /// 0 picks the thread-pool width.
  int num_shards = 1;
};

class RealTrainer : public Trainable {
 public:
  /// `train`/`validation` must outlive the trainer.
  RealTrainer(const data::Dataset* train, const data::Dataset* validation,
              RealTrainerOptions options);

  Status InitRandom(const tuning::Trial& trial) override;
  Status InitFromCheckpoint(const tuning::Trial& trial,
                            const ps::ModelCheckpoint& ckpt) override;
  Result<double> TrainEpoch() override;
  ps::ModelCheckpoint Checkpoint() const override;
  double EpochCostSeconds() const override;
  std::string name() const override { return "real_mlp"; }

  /// Validation accuracy without training (for tests).
  Result<double> Evaluate();

  /// Runs one SGD step on an explicit minibatch (serial or sharded per
  /// `num_shards`); exposed for parity tests and benchmarks. Returns the
  /// minibatch mean loss.
  float TrainStep(const Tensor& x, const std::vector<int64_t>& labels);

  int num_shards() const { return num_shards_; }

 private:
  /// One model replica driven by one shard of the minibatch: its own net
  /// (values synced from the master each step), workspace, loss buffer and
  /// input slice, so shard passes share no mutable state.
  struct Replica {
    nn::Net net;
    nn::Workspace ws;
    nn::LossResult loss;
    Tensor x;
    std::vector<int64_t> labels;
  };

  Status Build(const tuning::Trial& trial);

  const data::Dataset* train_;
  const data::Dataset* validation_;
  RealTrainerOptions options_;
  int num_shards_ = 1;
  Rng rng_;
  nn::Net net_;
  nn::Workspace ws_;
  nn::LossResult loss_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::unique_ptr<nn::Sgd> optimizer_;
  int64_t num_params_ = 0;
  double last_accuracy_ = 0.0;
  bool built_ = false;
};

class RealTrainerFactory : public TrainerFactory {
 public:
  RealTrainerFactory(const data::Dataset* train,
                     const data::Dataset* validation,
                     RealTrainerOptions options)
      : train_(train), validation_(validation), options_(options) {}

  /// Called concurrently by every StudyWorker thread in a job; the
  /// per-trial seed is derived statelessly from (base seed, trial id) so
  /// the factory has no mutable state to race on and a trial's seed does
  /// not depend on which worker picked it up.
  std::unique_ptr<Trainable> Create(const tuning::Trial& trial) override;

 private:
  const data::Dataset* train_;
  const data::Dataset* validation_;
  RealTrainerOptions options_;
};

}  // namespace rafiki::trainer

#endif  // RAFIKI_TRAINER_REAL_TRAINER_H_
