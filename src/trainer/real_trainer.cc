#include "trainer/real_trainer.h"

#include <algorithm>

#include "common/logging.h"
#include "nn/loss.h"

namespace rafiki::trainer {

RealTrainer::RealTrainer(const data::Dataset* train,
                         const data::Dataset* validation,
                         RealTrainerOptions options)
    : train_(train), validation_(validation), options_(options),
      rng_(options.seed) {
  RAFIKI_CHECK(train != nullptr);
  RAFIKI_CHECK(validation != nullptr);
}

Status RealTrainer::Build(const tuning::Trial& trial) {
  if (train_->x.rank() != 2) {
    return Status::InvalidArgument("RealTrainer expects [n, d] features");
  }
  int64_t in_dim = train_->x.dim(1);
  int64_t classes = train_->num_classes;
  auto hidden = trial.GetInt("hidden_units", 64);
  if (hidden <= 0) return Status::InvalidArgument("hidden_units must be > 0");
  auto init_std = static_cast<float>(trial.GetDouble("init_std", 0.05));
  auto dropout = static_cast<float>(trial.GetDouble("dropout", 0.0));
  if (dropout < 0.0f || dropout >= 1.0f) {
    return Status::InvalidArgument("dropout must be in [0, 1)");
  }

  net_ = nn::MakeMlp({in_dim, hidden, classes}, init_std, dropout, rng_);
  num_params_ = 0;
  for (nn::ParamTensor* p : net_.Params()) num_params_ += p->value.numel();

  nn::SgdOptions sgd;
  sgd.learning_rate = trial.GetDouble("learning_rate", 0.05);
  sgd.momentum = trial.GetDouble("momentum", 0.9);
  sgd.weight_decay = trial.GetDouble("weight_decay", 1e-4);
  if (sgd.learning_rate <= 0.0) {
    return Status::InvalidArgument("learning_rate must be positive");
  }
  optimizer_ = std::make_unique<nn::Sgd>(sgd);
  built_ = true;
  return Status::OK();
}

Status RealTrainer::InitRandom(const tuning::Trial& trial) {
  return Build(trial);
}

Status RealTrainer::InitFromCheckpoint(const tuning::Trial& trial,
                                       const ps::ModelCheckpoint& ckpt) {
  RAFIKI_RETURN_IF_ERROR(Build(trial));
  // Shape-matched reuse (§4.2.2): only layers whose configuration matches
  // the donor architecture load values; others keep random init.
  net_.LoadStateShapeMatched(ckpt.params);
  return Status::OK();
}

Result<double> RealTrainer::TrainEpoch() {
  if (!built_) return Status::FailedPrecondition("trainer not initialized");
  data::BatchIterator batches(*train_, options_.batch_size, rng_.Fork());
  Tensor x;
  std::vector<int64_t> labels;
  while (batches.Next(&x, &labels)) {
    net_.ZeroGrad();
    Tensor logits = net_.Forward(x, /*train=*/true);
    nn::LossResult loss = nn::SoftmaxCrossEntropy(logits, labels);
    net_.Backward(loss.grad);
    optimizer_->Step(net_.Params());
  }
  return Evaluate();
}

Result<double> RealTrainer::Evaluate() {
  if (!built_) return Status::FailedPrecondition("trainer not initialized");
  Tensor logits = net_.Forward(validation_->x, /*train=*/false);
  last_accuracy_ = nn::Accuracy(logits, validation_->labels);
  return last_accuracy_;
}

ps::ModelCheckpoint RealTrainer::Checkpoint() const {
  ps::ModelCheckpoint ckpt;
  ckpt.params = const_cast<nn::Net&>(net_).StateDict();
  ckpt.meta.accuracy = last_accuracy_;
  return ckpt;
}

double RealTrainer::EpochCostSeconds() const {
  // Simulated cost proportional to model size; real time is negligible.
  return 1e-4 * static_cast<double>(num_params_) + 1.0;
}

std::unique_ptr<Trainable> RealTrainerFactory::Create(
    const tuning::Trial& trial) {
  RealTrainerOptions opts = options_;
  opts.seed = Rng::Mix(options_.seed + static_cast<uint64_t>(trial.id() + 1));
  return std::make_unique<RealTrainer>(train_, validation_, opts);
}

}  // namespace rafiki::trainer
