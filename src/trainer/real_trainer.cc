#include "trainer/real_trainer.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "nn/loss.h"

namespace rafiki::trainer {

RealTrainer::RealTrainer(const data::Dataset* train,
                         const data::Dataset* validation,
                         RealTrainerOptions options)
    : train_(train), validation_(validation), options_(options),
      rng_(options.seed) {
  RAFIKI_CHECK(train != nullptr);
  RAFIKI_CHECK(validation != nullptr);
  num_shards_ = options_.num_shards > 0
                    ? options_.num_shards
                    : static_cast<int>(ThreadPool::Global().num_threads());
  num_shards_ = std::max(1, num_shards_);
}

Status RealTrainer::Build(const tuning::Trial& trial) {
  if (train_->x.rank() != 2) {
    return Status::InvalidArgument("RealTrainer expects [n, d] features");
  }
  int64_t in_dim = train_->x.dim(1);
  int64_t classes = train_->num_classes;
  auto hidden = trial.GetInt("hidden_units", 64);
  if (hidden <= 0) return Status::InvalidArgument("hidden_units must be > 0");
  auto init_std = static_cast<float>(trial.GetDouble("init_std", 0.05));
  auto dropout = static_cast<float>(trial.GetDouble("dropout", 0.0));
  if (dropout < 0.0f || dropout >= 1.0f) {
    return Status::InvalidArgument("dropout must be in [0, 1)");
  }

  net_ = nn::MakeMlp({in_dim, hidden, classes}, init_std, dropout, rng_);
  num_params_ = 0;
  for (nn::ParamTensor* p : net_.Params()) num_params_ += p->value.numel();

  // Pre-size the master workspace for a full batch so the first step is
  // already allocation-free; replicas get the largest shard they can see.
  net_.Reserve({options_.batch_size, in_dim}, &ws_);
  replicas_.clear();
  if (num_shards_ > 1) {
    int64_t max_shard =
        (options_.batch_size + num_shards_ - 1) / num_shards_;
    for (int k = 0; k < num_shards_; ++k) {
      auto rep = std::make_unique<Replica>();
      // Replica dropout draws come from the shared rng stream, so shard
      // masks differ from the serial run's — parity holds for dropout 0,
      // and is tolerance-bounded otherwise like any data-parallel trainer.
      rep->net = nn::MakeMlp({in_dim, hidden, classes}, init_std, dropout,
                             rng_);
      rep->net.Reserve({max_shard, in_dim}, &rep->ws);
      replicas_.push_back(std::move(rep));
    }
  }

  nn::SgdOptions sgd;
  sgd.learning_rate = trial.GetDouble("learning_rate", 0.05);
  sgd.momentum = trial.GetDouble("momentum", 0.9);
  sgd.weight_decay = trial.GetDouble("weight_decay", 1e-4);
  if (sgd.learning_rate <= 0.0) {
    return Status::InvalidArgument("learning_rate must be positive");
  }
  optimizer_ = std::make_unique<nn::Sgd>(sgd);
  built_ = true;
  return Status::OK();
}

Status RealTrainer::InitRandom(const tuning::Trial& trial) {
  return Build(trial);
}

Status RealTrainer::InitFromCheckpoint(const tuning::Trial& trial,
                                       const ps::ModelCheckpoint& ckpt) {
  RAFIKI_RETURN_IF_ERROR(Build(trial));
  // Shape-matched reuse (§4.2.2): only layers whose configuration matches
  // the donor architecture load values; others keep random init.
  net_.LoadStateShapeMatched(ckpt.params);
  return Status::OK();
}

float RealTrainer::TrainStep(const Tensor& x,
                             const std::vector<int64_t>& labels) {
  RAFIKI_CHECK(built_);
  int64_t batch = x.dim(0);
  net_.ZeroGrad();

  // Never spread fewer rows than shards; tiny tail batches train serially.
  int shards = static_cast<int>(
      std::min<int64_t>(num_shards_, batch));
  if (shards <= 1 || replicas_.empty()) {
    const Tensor& logits = net_.Forward(x, /*train=*/true, &ws_);
    nn::SoftmaxCrossEntropyInto(logits, labels, &loss_);
    net_.Backward(loss_.grad, &ws_);
    optimizer_->Step(net_.ParamList());
    return loss_.loss;
  }

  // Scatter: contiguous row ranges, remainder spread over the first shards.
  int64_t row_elems = x.numel() / batch;
  int64_t base = batch / shards;
  int64_t rem = batch % shards;
  int64_t r0 = 0;
  Shape shard_shape = x.shape();
  for (int k = 0; k < shards; ++k) {
    Replica& rep = *replicas_[static_cast<size_t>(k)];
    int64_t rows = base + (k < rem ? 1 : 0);
    shard_shape[0] = rows;
    rep.x.EnsureShape(shard_shape);
    std::memcpy(rep.x.data(), x.data() + r0 * row_elems,
                static_cast<size_t>(rows * row_elems) * sizeof(float));
    rep.labels.assign(labels.begin() + r0, labels.begin() + r0 + rows);
    rep.net.CopyParamsFrom(net_);
    rep.net.ZeroGrad();
    r0 += rows;
  }

  // Each shard runs forward/backward in its own replica + workspace. The
  // loss divisor is the *global* batch, so per-row gradient contributions
  // are identical to the serial pass and shard gradients simply sum.
  ThreadPool::Global().ParallelFor(
      0, shards, 1, [&](int64_t begin, int64_t end) {
        for (int64_t k = begin; k < end; ++k) {
          Replica& rep = *replicas_[static_cast<size_t>(k)];
          const Tensor& logits = rep.net.Forward(rep.x, /*train=*/true,
                                                 &rep.ws);
          nn::SoftmaxCrossEntropyInto(logits, rep.labels, &rep.loss, batch);
          rep.net.Backward(rep.loss.grad, &rep.ws);
        }
      });

  // Deterministic pairwise tree reduction: at each level, shard k absorbs
  // shard k+stride. The combine order depends only on the shard count, so
  // a given (batch, shards) pair always reduces in the same order. Pairs
  // within a level touch disjoint replicas and may run concurrently.
  for (int stride = 1; stride < shards; stride *= 2) {
    int step = 2 * stride;
    int pairs = (shards - stride + step - 1) / step;
    ThreadPool::Global().ParallelFor(
        0, pairs, 1, [&](int64_t begin, int64_t end) {
          for (int64_t pi = begin; pi < end; ++pi) {
            int dst = static_cast<int>(pi) * step;
            int src = dst + stride;
            auto& dp = replicas_[static_cast<size_t>(dst)]->net.ParamList();
            auto& sp = replicas_[static_cast<size_t>(src)]->net.ParamList();
            for (size_t i = 0; i < dp.size(); ++i) {
              dp[i]->grad.AddInPlace(sp[i]->grad);
            }
          }
        });
  }

  // Master grads were zeroed above; import the reduced tree root.
  const auto& master = net_.ParamList();
  const auto& root = replicas_[0]->net.ParamList();
  for (size_t i = 0; i < master.size(); ++i) {
    master[i]->grad.AddInPlace(root[i]->grad);
  }
  optimizer_->Step(net_.ParamList());

  // Global mean loss from per-shard local means.
  double loss = 0.0;
  for (int k = 0; k < shards; ++k) {
    const Replica& rep = *replicas_[static_cast<size_t>(k)];
    loss += static_cast<double>(rep.loss.loss) *
            static_cast<double>(rep.labels.size());
  }
  return static_cast<float>(loss / static_cast<double>(batch));
}

Result<double> RealTrainer::TrainEpoch() {
  if (!built_) return Status::FailedPrecondition("trainer not initialized");
  data::BatchIterator batches(*train_, options_.batch_size, rng_.Fork());
  Tensor x;
  std::vector<int64_t> labels;
  while (batches.Next(&x, &labels)) {
    TrainStep(x, labels);
  }
  return Evaluate();
}

Result<double> RealTrainer::Evaluate() {
  if (!built_) return Status::FailedPrecondition("trainer not initialized");
  Tensor logits = net_.Forward(validation_->x, /*train=*/false);
  last_accuracy_ = nn::Accuracy(logits, validation_->labels);
  return last_accuracy_;
}

ps::ModelCheckpoint RealTrainer::Checkpoint() const {
  ps::ModelCheckpoint ckpt;
  ckpt.params = const_cast<nn::Net&>(net_).StateDict();
  ckpt.meta.accuracy = last_accuracy_;
  return ckpt;
}

double RealTrainer::EpochCostSeconds() const {
  // Simulated cost proportional to model size; real time is negligible.
  return 1e-4 * static_cast<double>(num_params_) + 1.0;
}

std::unique_ptr<Trainable> RealTrainerFactory::Create(
    const tuning::Trial& trial) {
  RealTrainerOptions opts = options_;
  opts.seed = Rng::Mix(options_.seed + static_cast<uint64_t>(trial.id() + 1));
  return std::make_unique<RealTrainer>(train_, validation_, opts);
}

}  // namespace rafiki::trainer
