#ifndef RAFIKI_TRAINER_TRAINABLE_H_
#define RAFIKI_TRAINER_TRAINABLE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "ps/parameter_server.h"
#include "tuning/hyperspace.h"

namespace rafiki::trainer {

/// What a tuning worker needs from a model under training: epoch-granular
/// training with validation feedback, checkpointing to/from the parameter
/// server, and a cost model so the simulated cluster can account for time.
///
/// Both the real SGD trainer and the calibrated surrogate implement this,
/// so Study/CoStudy are agnostic to which one runs (DESIGN.md §1).
class Trainable {
 public:
  virtual ~Trainable() = default;

  /// Fresh random initialization for the given trial.
  virtual Status InitRandom(const tuning::Trial& trial) = 0;

  /// Warm start from a checkpoint (CoStudy, §4.2.2). Parameters whose
  /// shapes do not match the new architecture are left at their random
  /// values (shape-matched reuse).
  virtual Status InitFromCheckpoint(const tuning::Trial& trial,
                                    const ps::ModelCheckpoint& ckpt) = 0;

  /// Runs one training epoch; returns the validation performance (accuracy
  /// in [0, 1], larger is better).
  virtual Result<double> TrainEpoch() = 0;

  /// Current parameters + metadata for publication to the PS.
  virtual ps::ModelCheckpoint Checkpoint() const = 0;

  /// Simulated wall-clock cost of one epoch, in seconds (used by the
  /// scalability experiment, Figure 11).
  virtual double EpochCostSeconds() const = 0;

  virtual std::string name() const = 0;
};

/// Creates one Trainable per trial; each worker owns a factory.
class TrainerFactory {
 public:
  virtual ~TrainerFactory() = default;
  virtual std::unique_ptr<Trainable> Create(const tuning::Trial& trial) = 0;
};

}  // namespace rafiki::trainer

#endif  // RAFIKI_TRAINER_TRAINABLE_H_
