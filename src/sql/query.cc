#include "sql/query.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "common/string_util.h"

namespace rafiki::sql {
namespace {

double AsDouble(const Value& v) {
  if (std::holds_alternative<int64_t>(v)) {
    return static_cast<double>(std::get<int64_t>(v));
  }
  if (std::holds_alternative<double>(v)) return std::get<double>(v);
  return 0.0;
}

bool Numeric(const Value& v) {
  return std::holds_alternative<int64_t>(v) ||
         std::holds_alternative<double>(v);
}

}  // namespace

Predicate ColumnCompare(const Table& table, const std::string& column,
                        const std::string& op, const Value& constant) {
  Result<size_t> idx = table.ColumnIndex(column);
  RAFIKI_CHECK(idx.ok()) << idx.status().ToString();
  size_t i = idx.value();
  return [i, op, constant](const Row& row, const Table&) {
    const Value& v = row[i];
    if (ValueIsNull(v) || ValueIsNull(constant)) return false;
    int cmp;
    if (Numeric(v) && Numeric(constant)) {
      double a = AsDouble(v), b = AsDouble(constant);
      cmp = a < b ? -1 : (a > b ? 1 : 0);
    } else {
      const std::string a = ValueToString(v), b = ValueToString(constant);
      cmp = a < b ? -1 : (a > b ? 1 : 0);
    }
    if (op == "<") return cmp < 0;
    if (op == "<=") return cmp <= 0;
    if (op == ">") return cmp > 0;
    if (op == ">=") return cmp >= 0;
    if (op == "=" || op == "==") return cmp == 0;
    if (op == "!=") return cmp != 0;
    RAFIKI_LOG(FATAL) << "unknown comparison op '" << op << "'";
    return false;
  };
}

Query::Query(const Table* table) : table_(table) {
  RAFIKI_CHECK(table != nullptr);
}

Query& Query::Select(SelectExpr expr) {
  if (expr.alias.empty()) expr.alias = expr.column;
  exprs_.push_back(std::move(expr));
  return *this;
}

Query& Query::Where(Predicate predicate) {
  predicates_.push_back(std::move(predicate));
  return *this;
}

Query& Query::GroupByCount(size_t select_index) {
  group_by_ = true;
  group_index_ = select_index;
  return *this;
}

Result<Query::ResultSet> Query::Execute() const {
  if (exprs_.empty()) {
    return Status::InvalidArgument("SELECT list is empty");
  }
  if (group_by_ && group_index_ >= exprs_.size()) {
    return Status::InvalidArgument("GROUP BY index out of range");
  }
  // Resolve column indexes up front.
  std::vector<size_t> col_idx(exprs_.size());
  for (size_t e = 0; e < exprs_.size(); ++e) {
    RAFIKI_ASSIGN_OR_RETURN(col_idx[e],
                            table_->ColumnIndex(exprs_[e].column));
  }

  ResultSet out;
  for (const SelectExpr& e : exprs_) out.column_names.push_back(e.alias);

  // Scan -> filter -> project (UDFs run only on surviving rows, §8).
  std::vector<Row> projected;
  for (const Row& row : table_->rows()) {
    bool pass = std::all_of(
        predicates_.begin(), predicates_.end(),
        [&](const Predicate& p) { return p(row, *table_); });
    if (!pass) continue;
    Row proj;
    proj.reserve(exprs_.size());
    for (size_t e = 0; e < exprs_.size(); ++e) {
      Value v = row[col_idx[e]];
      if (exprs_[e].udf) {
        v = exprs_[e].udf(v);
        ++out.udf_calls;
      }
      proj.push_back(std::move(v));
    }
    projected.push_back(std::move(proj));
  }

  if (!group_by_) {
    out.rows = std::move(projected);
    return out;
  }

  // GROUP BY <expr>, count(*). Keys ordered for deterministic output.
  std::map<std::string, int64_t> counts;
  std::map<std::string, Value> key_values;
  for (const Row& row : projected) {
    std::string key = ValueToString(row[group_index_]);
    ++counts[key];
    key_values.emplace(key, row[group_index_]);
  }
  out.column_names = {exprs_[group_index_].alias, "count(*)"};
  for (const auto& [key, count] : counts) {
    out.rows.push_back(Row{key_values.at(key), Value{count}});
  }
  return out;
}

std::string Query::ResultSet::ToString() const {
  std::string s = Join(column_names, " | ") + "\n";
  for (const Row& row : rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const Value& v : row) cells.push_back(ValueToString(v));
    s += Join(cells, " | ") + "\n";
  }
  return s;
}

}  // namespace rafiki::sql
