#include "sql/table.h"

#include "common/string_util.h"

namespace rafiki::sql {

bool ValueIsNull(const Value& v) {
  return std::holds_alternative<std::monostate>(v);
}

std::string ValueToString(const Value& v) {
  if (ValueIsNull(v)) return "NULL";
  if (std::holds_alternative<int64_t>(v)) {
    return std::to_string(std::get<int64_t>(v));
  }
  if (std::holds_alternative<double>(v)) {
    return StrFormat("%g", std::get<double>(v));
  }
  return std::get<std::string>(v);
}

Table::Table(std::string name, std::vector<Column> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {}

Status Table::Insert(Row row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu values, table '%s' has %zu columns",
                  row.size(), name_.c_str(), columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Column& col = columns_[i];
    const Value& v = row[i];
    if (ValueIsNull(v)) {
      if (col.not_null) {
        return Status::InvalidArgument(
            StrFormat("NULL in NOT NULL column '%s'", col.name.c_str()));
      }
      continue;
    }
    bool ok = false;
    switch (col.type) {
      case ColumnType::kInteger:
        ok = std::holds_alternative<int64_t>(v);
        break;
      case ColumnType::kDouble:
        ok = std::holds_alternative<double>(v) ||
             std::holds_alternative<int64_t>(v);
        break;
      case ColumnType::kText:
        ok = std::holds_alternative<std::string>(v);
        break;
    }
    if (!ok) {
      return Status::InvalidArgument(
          StrFormat("type mismatch for column '%s'", col.name.c_str()));
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Result<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound(
      StrFormat("no column '%s' in table '%s'", name.c_str(), name_.c_str()));
}

}  // namespace rafiki::sql
