#ifndef RAFIKI_SQL_QUERY_H_
#define RAFIKI_SQL_QUERY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sql/table.h"

namespace rafiki::sql {

/// A scalar user-defined function (§8: the `food_name(image_path)` UDF that
/// calls the Rafiki inference Web API). Receives the argument cell value
/// and returns the computed value.
using ScalarUdf = std::function<Value(const Value&)>;

/// A row predicate for WHERE clauses.
using Predicate = std::function<bool(const Row&, const Table&)>;

/// Builds a predicate `column <op> constant` with op in {<,<=,>,>=,=,!=}.
/// Dies on unknown column (programming error in a query literal).
Predicate ColumnCompare(const Table& table, const std::string& column,
                        const std::string& op, const Value& constant);

/// One SELECT output column: either a plain column reference or a UDF
/// applied to a column.
struct SelectExpr {
  std::string column;
  ScalarUdf udf;         // optional; applied to the column value
  std::string alias;     // output name
};

/// Lazily-evaluated SELECT ... FROM t WHERE pred GROUP BY expr — the query
/// shape of the paper's case study:
///
///   SELECT food_name(image_path) AS name, count(*)
///   FROM foodlog WHERE age > 52 GROUP BY name;
///
/// Key property reproduced from §8: the UDF is evaluated only on rows that
/// SURVIVE the WHERE filter ("the function is executed only on the images
/// of the rows that satisfy the condition... it saves much time"), so the
/// engine counts UDF invocations for verification.
class Query {
 public:
  explicit Query(const Table* table);

  Query& Select(SelectExpr expr);
  Query& Where(Predicate predicate);
  /// Groups by the i-th select expression (0-based) and appends a
  /// `count(*)` output column.
  Query& GroupByCount(size_t select_index);

  struct ResultSet {
    std::vector<std::string> column_names;
    std::vector<Row> rows;
    /// Number of UDF invocations during execution.
    size_t udf_calls = 0;

    std::string ToString() const;
  };

  Result<ResultSet> Execute() const;

 private:
  const Table* table_;
  std::vector<SelectExpr> exprs_;
  std::vector<Predicate> predicates_;
  bool group_by_ = false;
  size_t group_index_ = 0;
};

}  // namespace rafiki::sql

#endif  // RAFIKI_SQL_QUERY_H_
