#ifndef RAFIKI_SQL_TABLE_H_
#define RAFIKI_SQL_TABLE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace rafiki::sql {

/// A cell value: NULL, integer, double, or text.
using Value = std::variant<std::monostate, int64_t, double, std::string>;

bool ValueIsNull(const Value& v);
std::string ValueToString(const Value& v);

/// Column type for schema checking.
enum class ColumnType { kInteger, kDouble, kText };

struct Column {
  std::string name;
  ColumnType type = ColumnType::kText;
  bool not_null = false;
};

using Row = std::vector<Value>;

/// A minimal in-memory relational table with schema validation — just
/// enough of a database for the Section 8 case study (the food-logging
/// application whose SQL query calls a Rafiki UDF). See query.h for the
/// SELECT pipeline.
class Table {
 public:
  Table(std::string name, std::vector<Column> columns);

  /// Inserts one row; validates arity, types and NOT NULL constraints.
  Status Insert(Row row);

  const std::string& name() const { return name_; }
  const std::vector<Column>& columns() const { return columns_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }

  /// Index of a column by name; NotFound otherwise.
  Result<size_t> ColumnIndex(const std::string& name) const;

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::vector<Row> rows_;
};

}  // namespace rafiki::sql

#endif  // RAFIKI_SQL_TABLE_H_
