#ifndef RAFIKI_TUNING_HYPERSPACE_H_
#define RAFIKI_TUNING_HYPERSPACE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace rafiki::tuning {

/// Value of one hyper-parameter in a trial: float, integer or categorical
/// string (the three dtypes of the paper's HyperSpace API, Figure 4).
class KnobValue {
 public:
  KnobValue() : value_(0.0) {}
  explicit KnobValue(double v) : value_(v) {}
  explicit KnobValue(int64_t v) : value_(v) {}
  explicit KnobValue(std::string v) : value_(std::move(v)) {}

  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_int() const { return std::holds_alternative<int64_t>(value_); }
  bool is_string() const {
    return std::holds_alternative<std::string>(value_);
  }

  /// Numeric access; ints widen to double.
  double AsDouble() const;
  int64_t AsInt() const;
  const std::string& AsString() const;

  std::string ToString() const;

  friend bool operator==(const KnobValue& a, const KnobValue& b) {
    return a.value_ == b.value_;
  }

 private:
  std::variant<double, int64_t, std::string> value_;
};

/// One point in the hyper-parameter space H — "a trial" in the paper's
/// terminology (§4.2.1).
class Trial {
 public:
  Trial() = default;
  explicit Trial(int64_t id) : id_(id) {}

  int64_t id() const { return id_; }
  void set_id(int64_t id) { id_ = id; }

  void Set(const std::string& name, KnobValue value) {
    values_[name] = std::move(value);
  }
  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  /// Accessors fall back to `fallback` for absent knobs so trainers can be
  /// robust to reduced spaces.
  double GetDouble(const std::string& name, double fallback = 0.0) const;
  int64_t GetInt(const std::string& name, int64_t fallback = 0) const;
  std::string GetString(const std::string& name,
                        const std::string& fallback = "") const;

  const std::map<std::string, KnobValue>& values() const { return values_; }

  std::string DebugString() const;

  /// Flat "k=v;k=v" encoding used to ship trials through cluster messages.
  std::string Encode() const;
  static Result<Trial> Decode(const std::string& encoded);

 private:
  int64_t id_ = -1;
  std::map<std::string, KnobValue> values_;
};

/// Data type of a knob's domain.
enum class KnobDtype { kFloat, kInt, kString };

/// Hook invoked around the generation of one knob; may read already
/// generated values and adjust the trial (the paper's example: a large
/// learning rate post-adjusts the decay knob).
using KnobHook = std::function<void(Trial*)>;

/// Declaration of one tunable hyper-parameter.
struct Knob {
  std::string name;
  KnobDtype dtype = KnobDtype::kFloat;
  bool categorical = false;
  // Range knobs: [min, max). log_scale samples log-uniformly (learning
  // rates, weight decay...).
  double min = 0.0;
  double max = 1.0;
  bool log_scale = false;
  // Categorical knobs.
  std::vector<std::string> categories;
  std::vector<double> numeric_categories;
  // Knobs whose values must be generated before this one.
  std::vector<std::string> depends;
  KnobHook pre_hook;
  KnobHook post_hook;
};

/// The hyper-parameter space H (§4.2.1, Figure 4): an ordered collection of
/// knobs with dependency edges. Mirrors the paper's API:
///   add_range_knob(name, dtype, min, max, depends, pre_hook, post_hook)
///   add_categorical_knob(name, dtype, list, depends, pre_hook, post_hook)
class HyperSpace {
 public:
  /// Declares a range knob over [min, max). Fails on duplicate names or
  /// empty ranges.
  Status AddRangeKnob(const std::string& name, KnobDtype dtype, double min,
                      double max, bool log_scale = false,
                      std::vector<std::string> depends = {},
                      KnobHook pre_hook = nullptr,
                      KnobHook post_hook = nullptr);

  /// Declares a categorical string knob.
  Status AddCategoricalKnob(const std::string& name,
                            std::vector<std::string> categories,
                            std::vector<std::string> depends = {},
                            KnobHook pre_hook = nullptr,
                            KnobHook post_hook = nullptr);

  /// Declares a categorical numeric knob (e.g. discrete layer counts).
  Status AddNumericCategoricalKnob(const std::string& name,
                                   std::vector<double> categories,
                                   std::vector<std::string> depends = {},
                                   KnobHook pre_hook = nullptr,
                                   KnobHook post_hook = nullptr);

  size_t num_knobs() const { return knobs_.size(); }
  const std::vector<Knob>& knobs() const { return knobs_; }
  const Knob* Find(const std::string& name) const;

  /// Knobs ordered so every knob appears after all of its dependencies;
  /// FailedPrecondition on cycles or missing dependencies.
  Result<std::vector<const Knob*>> TopologicalOrder() const;

  /// Draws one random trial (random search's generator; also the seeding
  /// phase of Bayesian optimization). Runs hooks in dependency order.
  Result<Trial> Sample(Rng& rng) const;

  /// Checks every knob is present and within its domain.
  Status Validate(const Trial& trial) const;

  /// Encodes a trial as a point in [0,1]^d for the GP (categoricals map to
  /// category index / (n-1); log-scale ranges are normalized in log space).
  Result<std::vector<double>> Normalize(const Trial& trial) const;

  /// Inverse of Normalize (clips into the domain).
  Result<Trial> Denormalize(const std::vector<double>& point) const;

 private:
  Status CheckNewKnob(const std::string& name,
                      const std::vector<std::string>& depends) const;

  std::vector<Knob> knobs_;
};

}  // namespace rafiki::tuning

#endif  // RAFIKI_TUNING_HYPERSPACE_H_
