#ifndef RAFIKI_TUNING_BAYES_OPT_H_
#define RAFIKI_TUNING_BAYES_OPT_H_

#include <optional>
#include <string>

#include "tuning/gaussian_process.h"
#include "tuning/trial_advisor.h"

namespace rafiki::tuning {

/// Gaussian-process Bayesian optimization (Snoek et al.) as a TrialAdvisor:
/// after `num_init_random` seed trials, each Next() fits a GP to all
/// collected (trial, performance) pairs and maximizes expected improvement
/// over random candidate points in the normalized space.
struct BayesOptOptions {
  int64_t max_trials = 100;
  int num_init_random = 8;
  int candidates_per_step = 512;
  double xi = 0.01;  // EI exploration margin
  GpOptions gp;
  uint64_t seed = 13;
};

class BayesOptAdvisor : public AdvisorBase {
 public:
  BayesOptAdvisor(const HyperSpace* space, BayesOptOptions options);

  std::optional<Trial> Next(const std::string& worker) override;
  std::string name() const override { return "bayes_opt"; }

 private:
  std::optional<Trial> SampleRandomLocked();

  const HyperSpace* space_;
  BayesOptOptions options_;
  int64_t issued_ = 0;
  Rng rng_;
};

}  // namespace rafiki::tuning

#endif  // RAFIKI_TUNING_BAYES_OPT_H_
