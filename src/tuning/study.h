#ifndef RAFIKI_TUNING_STUDY_H_
#define RAFIKI_TUNING_STUDY_H_

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster/bus.h"
#include "cluster/node_manager.h"
#include "common/rng.h"
#include "ps/parameter_store.h"
#include "storage/blob_store.h"
#include "trainer/trainable.h"
#include "tuning/trial_advisor.h"

namespace rafiki::tuning {

/// The paper's `HyperConf`: configuration of one hyper-parameter study.
struct StudyConfig {
  /// Stop criterion: total finished trials (conf.stop(num) in Alg. 1/2).
  int64_t max_trials = 50;
  /// Stop early once this validation performance is reached.
  double target_performance = 2.0;  // >1 disables
  /// Epoch budget per trial.
  int max_epochs_per_trial = 40;

  /// Collaborative tuning (Algorithm 2) on/off; off = plain Study (Alg. 1).
  bool collaborative = false;
  /// Publish gate: worker checkpoints go to the PS when its report beats
  /// the best-so-far by more than delta (Alg. 2 line 8). Sized to the
  /// task's head-room (§4.2.2: 0.1% for MNIST, 0.5% for CIFAR-10).
  double delta = 0.005;

  /// Alpha-greedy warm-start schedule (§4.2.2): a new trial initializes
  /// randomly with probability alpha, from the best PS checkpoint with
  /// probability 1 - alpha; alpha decays per issued trial.
  double alpha_init = 0.8;
  double alpha_decay = 0.9;
  double alpha_min = 0.05;

  /// Master-side early stopping (Alg. 2 line 11): a trial is stopped when
  /// its reports improve by less than `early_stop_min_delta` for
  /// `early_stop_patience` consecutive epochs.
  int early_stop_patience = 5;
  double early_stop_min_delta = 0.002;

  /// Number of workers the master waits to retire before finishing.
  int num_workers = 1;

  /// Master state checkpoint cadence, in processed events (§6.3 failure
  /// recovery); 0 disables.
  int checkpoint_every_events = 32;
};

/// One finished trial as recorded by the master.
struct TrialRecord {
  int64_t trial_id = -1;
  double performance = 0.0;
  int epochs = 0;
  bool warm_started = false;
  std::string worker;
  /// Cumulative training epochs across the study when this trial finished
  /// (the x-axis of Figures 8c / 9c).
  int64_t cumulative_epochs = 0;
  /// Simulated wall-clock when this trial finished (max over workers of
  /// per-worker simulated seconds — the x-axis of Figure 11b).
  double sim_seconds = 0.0;
};

/// Best-so-far progress samples for plotting tuning curves.
struct ProgressPoint {
  int64_t cumulative_epochs = 0;
  double sim_seconds = 0.0;
  double best_performance = 0.0;
};

/// Aggregate study outcome.
struct StudyStats {
  std::vector<TrialRecord> trials;
  std::vector<ProgressPoint> progress;
  double best_performance = 0.0;
  Trial best_trial;
  int64_t total_epochs = 0;
  double sim_seconds = 0.0;
};

/// The master's trial ledger (§6.3 recovery accounting). Invariant while
/// the master stays alive: proposed == completed + lost + active, where a
/// trial is "lost" when its worker was killed mid-trial and re-requested
/// work after restarting. At a clean study end, active == 0, so
/// proposed == completed + lost — the balance smoke tests assert after
/// injected worker kills. Checkpoint lag can under-count around a master
/// restart (trials proposed after the last checkpoint are unaccounted).
struct TrialLedger {
  int64_t proposed = 0;
  int64_t completed = 0;
  int64_t lost = 0;
  int64_t active = 0;
};

/// The master of Algorithms 1 and 2: an event loop over the message bus
/// that hands trials to workers via the TrialAdvisor, collects reports,
/// gates checkpoint publication (kPut), triggers early stops (kStop), and
/// periodically checkpoints its own state for failure recovery.
class StudyMaster {
 public:
  /// `checkpoint_store` may be null (no master checkpointing).
  StudyMaster(std::string study_name, StudyConfig config,
              TrialAdvisor* advisor, cluster::Bus* bus,
              storage::BlobStore* checkpoint_store);

  /// Endpoint the workers talk to.
  std::string endpoint() const { return "study/" + study_name_ + "/master"; }
  /// PS scope holding the current best checkpoint ("the W in the parameter
  /// server" of §4.2.2).
  std::string best_scope() const { return "study/" + study_name_ + "/best"; }

  /// Runs the event loop until the stop criterion is met and all workers
  /// have been retired (or the container is killed). Registers/removes its
  /// own endpoint.
  void Run(cluster::CancelToken& token);

  /// Restores state from the latest master checkpoint, if present; used
  /// when the manager restarts a failed master (§6.3).
  Status RestoreFromCheckpoint();

  const StudyStats& stats() const { return stats_; }
  double current_alpha() const { return alpha_; }

  /// Thread-safe snapshot of the trial ledger (readable while Run loops,
  /// e.g. by the /cluster/metrics route).
  TrialLedger ledger() const {
    TrialLedger ledger;
    ledger.proposed = proposed_.load(std::memory_order_relaxed);
    ledger.completed = completed_.load(std::memory_order_relaxed);
    ledger.lost = lost_.load(std::memory_order_relaxed);
    ledger.active = active_.load(std::memory_order_relaxed);
    return ledger;
  }

 private:
  struct WorkerProgress {
    double best = -1.0;
    int stale_epochs = 0;
    int64_t trial_id = -1;
  };

  bool StopCriterion() const;
  void HandleRequest(const cluster::Message& msg);
  void HandleReport(const cluster::Message& msg);
  void HandleFinish(const cluster::Message& msg);
  void SaveCheckpointIfDue();
  Status SaveCheckpoint() const;

  std::string study_name_;
  StudyConfig config_;
  TrialAdvisor* advisor_;
  cluster::Bus* bus_;
  storage::BlobStore* checkpoint_store_;

  // Ledger gauges: atomics so metrics can read them mid-run.
  std::atomic<int64_t> proposed_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> lost_{0};
  std::atomic<int64_t> active_{0};

  int64_t num_finished_ = 0;
  double best_p_ = 0.0;  // CoStudy's best_p (Alg. 2 line 1)
  double alpha_;
  std::set<std::string> active_workers_;
  std::set<std::string> retired_workers_;
  std::map<std::string, WorkerProgress> worker_progress_;
  std::map<std::string, double> worker_sim_seconds_;
  int events_since_checkpoint_ = 0;
  StudyStats stats_;
};

/// A tuning worker: requests trials, trains them epoch by epoch with the
/// TrainerFactory, reports performance, and reacts to kPut/kStop control
/// messages. Stateless across trials (§6.3), so the manager can kill and
/// restart it freely.
class StudyWorker {
 public:
  StudyWorker(std::string study_name, std::string worker_name,
              StudyConfig config, trainer::TrainerFactory* factory,
              cluster::Bus* bus, ps::ParameterStore* ps, uint64_t seed);

  std::string endpoint() const {
    return "study/" + study_name_ + "/worker/" + worker_name_;
  }

  /// Runs until the master sends kNoMoreTrials or the container is killed.
  void Run(cluster::CancelToken& token);

 private:
  std::string master_endpoint() const {
    return "study/" + study_name_ + "/master";
  }
  std::string best_scope() const { return "study/" + study_name_ + "/best"; }

  void PublishCheckpoint(trainer::Trainable& trainable, double performance);

  std::string study_name_;
  std::string worker_name_;
  StudyConfig config_;
  trainer::TrainerFactory* factory_;
  cluster::Bus* bus_;
  ps::ParameterStore* ps_;
  Rng rng_;
  double sim_seconds_ = 0.0;
};

/// Convenience driver: launches one master and `num_workers` workers as
/// containers, waits for completion, and returns the study statistics.
StudyStats RunStudy(const std::string& study_name, StudyConfig config,
                    TrialAdvisor* advisor, trainer::TrainerFactory* factory,
                    cluster::Bus* bus, ps::ParameterStore* ps,
                    storage::BlobStore* checkpoint_store, int num_workers,
                    uint64_t seed);

}  // namespace rafiki::tuning

#endif  // RAFIKI_TUNING_STUDY_H_
