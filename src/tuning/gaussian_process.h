#ifndef RAFIKI_TUNING_GAUSSIAN_PROCESS_H_
#define RAFIKI_TUNING_GAUSSIAN_PROCESS_H_

#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"

namespace rafiki::tuning {

/// Gaussian-process regression with an RBF kernel, the surrogate behind the
/// paper's Bayesian-optimization TrialAdvisor (§2.2, §4.2, Figure 9).
///
///   k(x, x') = signal_variance * exp(-||x - x'||^2 / (2 * length_scale^2))
///
/// Targets are standardized internally; predictions are de-standardized.
/// Exact inference: the covariance is assembled from one GEMM-computed Gram
/// matrix (||xi-xj||^2 = Gii + Gjj - 2Gij) and factored with the blocked
/// Cholesky in tuning/cholesky.h, keeping the O(n^3) fit cheap well past
/// the O(100) trials a study accumulates.
struct GpOptions {
  double length_scale = 0.2;
  double signal_variance = 1.0;
  double noise_variance = 1e-3;
};

/// std::allocator that default-initializes instead of value-initializing,
/// so `std::vector<double, DefaultInitAlloc<double>> v(n)` skips the O(n)
/// zero-fill. Used for the covariance/Cholesky buffer, whose every read
/// element is written first (the never-read upper triangle stays
/// uninitialized by design).
template <typename T>
struct DefaultInitAlloc : std::allocator<T> {
  template <typename U>
  struct rebind {
    using other = DefaultInitAlloc<U>;
  };
  template <typename U>
  void construct(U* p) noexcept(std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(p)) U;
  }
  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
  }
};

class GaussianProcess {
 public:
  explicit GaussianProcess(GpOptions options) : options_(options) {}

  /// Fits the posterior to n points; x is n rows of dimension d.
  /// FailedPrecondition if the kernel matrix is not positive definite.
  Status Fit(const std::vector<std::vector<double>>& x,
             const std::vector<double>& y);

  /// Posterior mean and variance at one point. Must be fitted.
  void Predict(const std::vector<double>& x, double* mean,
               double* variance) const;

  bool fitted() const { return fitted_; }
  size_t num_points() const { return x_.size(); }

  /// Expected improvement of a maximization problem at `x` over the
  /// incumbent `best_y` with exploration bonus `xi`.
  double ExpectedImprovement(const std::vector<double>& x, double best_y,
                             double xi) const;

 private:
  double Kernel(const std::vector<double>& a,
                const std::vector<double>& b) const;

  GpOptions options_;
  bool fitted_ = false;
  std::vector<std::vector<double>> x_;
  std::vector<double> alpha_;         // K^{-1} (y - mean)
  // Lower-triangular L, row-major n x n; the upper triangle is never
  // written nor read (see Fit).
  std::vector<double, DefaultInitAlloc<double>> chol_;
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
};

/// Standard normal pdf/cdf helpers (shared with the acquisition function).
double NormalPdf(double z);
double NormalCdf(double z);

}  // namespace rafiki::tuning

#endif  // RAFIKI_TUNING_GAUSSIAN_PROCESS_H_
