#ifndef RAFIKI_TUNING_CHOLESKY_H_
#define RAFIKI_TUNING_CHOLESKY_H_

#include <cstddef>

namespace rafiki::tuning {

/// In-place Cholesky factorization A = L*L^T of a symmetric positive-
/// definite row-major n x n matrix. On success the lower triangle of `a`
/// holds L (the strict upper triangle is left untouched) and true is
/// returned; returns false as soon as a non-positive pivot shows the matrix
/// is not (numerically) positive definite, leaving `a` partially factored.
///
/// Textbook unblocked algorithm: one dot product per element against all
/// previously factored columns. O(n^3) with no cache reuse — kept as the
/// parity reference and baseline for the blocked variant.
bool CholeskyNaive(double* a, size_t n);

/// Blocked right-looking variant of the same factorization: factor an
/// nb-wide column panel down the full height, then rank-nb-downdate the
/// trailing submatrix in cache-sized tiles whose inner loops run
/// unit-stride over both operand rows. Same flop count as the naive
/// algorithm but each panel is reused ~n/nb times from cache instead of
/// being re-streamed per element. `block` is the panel width nb.
bool CholeskyBlocked(double* a, size_t n, size_t block = 128);

/// Solves L * z = b (forward) then L^T * x = z (backward) for the lower-
/// triangular factor produced above; `x` is overwritten in place (pass b
/// in `x`). Shared by the GP fit and tests.
void CholeskySolve(const double* l, size_t n, double* x);

}  // namespace rafiki::tuning

#endif  // RAFIKI_TUNING_CHOLESKY_H_
