#include "tuning/cholesky.h"

#include <algorithm>
#include <cmath>
#include <vector>

// RAFIKI_SIMD_REDUCTION marks an inner-product loop as reassociation-safe so
// the vectorizer may compute it with per-lane partial sums. `omp simd` is
// plain OpenMP-SIMD: it needs no runtime library, is honored under
// -fopenmp-simd (which the build adds), and is silently ignored by
// compilers not given that flag (`#pragma omp` is skipped without it, no
// -Wunknown-pragmas noise). Without the grant, -O3 alone must keep every
// floating-point reduction serial, which leaves the trailing update
// latency-bound at a fraction of FMA throughput.
#define RAFIKI_SIMD_REDUCTION(...) _Pragma(#__VA_ARGS__)

namespace rafiki::tuning {

bool CholeskyNaive(double* a, size_t n) {
  for (size_t c = 0; c < n; ++c) {
    double diag = a[c * n + c];
    for (size_t j = 0; j < c; ++j) {
      double l = a[c * n + j];
      diag -= l * l;
    }
    if (diag <= 0.0) return false;
    double d = std::sqrt(diag);
    a[c * n + c] = d;
    double inv = 1.0 / d;
    for (size_t r = c + 1; r < n; ++r) {
      double acc = a[r * n + c];
      for (size_t j = 0; j < c; ++j) acc -= a[r * n + j] * a[c * n + j];
      a[r * n + c] = acc * inv;
    }
  }
  return true;
}

bool CholeskyBlocked(double* a, size_t n, size_t block) {
  if (block < 1) block = 1;
  // Trailing-update tile edge: small enough that a dst-row/src-row pair of
  // tiles lives in L1, large enough to amortize the loop overhead.
  constexpr size_t kTile = 64;
  // Finalized-column entries for the panel's remaining columns, buffered so
  // the rank-1 row updates read them contiguously instead of striding down
  // the matrix.
  std::vector<double> colc(std::min(block, n));
  for (size_t kb = 0; kb < n; kb += block) {
    size_t kend = std::min(kb + block, n);
    // Panel factorization, right-looking inside the panel: once column c is
    // final, its rank-1 contribution is immediately subtracted from the
    // remaining panel columns as an elementwise row update, which
    // vectorizes without any reduction. Earlier panels' contributions were
    // already removed by their trailing updates, so by the time column c is
    // reached its entries are fully downdated and only need scaling.
    for (size_t c = kb; c < kend; ++c) {
      double diag = a[c * n + c];
      if (diag <= 0.0) return false;
      double d = std::sqrt(diag);
      a[c * n + c] = d;
      double inv = 1.0 / d;
      for (size_t r = c + 1; r < n; ++r) a[r * n + c] *= inv;
      size_t w = kend - (c + 1);
      if (w == 0) continue;
      for (size_t j = 0; j < w; ++j) colc[j] = a[(c + 1 + j) * n + c];
      for (size_t r = c + 1; r < n; ++r) {
        double lrc = a[r * n + c];
        double* __restrict ar = a + r * n + (c + 1);
        size_t m = std::min(w, r - c);
        for (size_t j = 0; j < m; ++j) ar[j] -= lrc * colc[j];
      }
    }
    // Right-looking rank-(kend-kb) downdate of the trailing lower triangle:
    // A[i,j] -= L[i, kb:kend] . L[j, kb:kend], tiled so both panel rows
    // stay cache-resident while a tile of A is updated. The 2x2 register
    // tile keeps four independent accumulators live, and the SIMD-reduction
    // grant lets each of them vectorize into per-lane partial sums.
    for (size_t ib = kend; ib < n; ib += kTile) {
      size_t iend = std::min(ib + kTile, n);
      for (size_t jb = kend; jb <= ib; jb += kTile) {
        size_t jend = std::min(jb + kTile, n);
        size_t i = ib;
        for (; i + 1 < iend; i += 2) {
          const double* li0 = a + i * n;
          const double* li1 = li0 + n;
          size_t jmax0 = std::min(jend, i + 1);
          size_t jmax1 = std::min(jend, i + 2);
          size_t j = jb;
          for (; j + 1 < jmax0; j += 2) {
            const double* lj0 = a + j * n;
            const double* lj1 = lj0 + n;
            double s00 = 0.0, s01 = 0.0, s10 = 0.0, s11 = 0.0;
            RAFIKI_SIMD_REDUCTION(omp simd reduction(+ : s00, s01, s10, s11))
            for (size_t c = kb; c < kend; ++c) {
              double v0 = li0[c], v1 = li1[c];
              s00 += v0 * lj0[c];
              s01 += v0 * lj1[c];
              s10 += v1 * lj0[c];
              s11 += v1 * lj1[c];
            }
            a[i * n + j] -= s00;
            a[i * n + j + 1] -= s01;
            a[(i + 1) * n + j] -= s10;
            a[(i + 1) * n + j + 1] -= s11;
          }
          for (; j < jmax1; ++j) {
            const double* lj = a + j * n;
            double s0 = 0.0, s1 = 0.0;
            RAFIKI_SIMD_REDUCTION(omp simd reduction(+ : s0, s1))
            for (size_t c = kb; c < kend; ++c) {
              s0 += li0[c] * lj[c];
              s1 += li1[c] * lj[c];
            }
            if (j < jmax0) a[i * n + j] -= s0;
            a[(i + 1) * n + j] -= s1;
          }
        }
        for (; i < iend; ++i) {
          const double* li = a + i * n;
          size_t jmax = std::min(jend, i + 1);
          for (size_t j = jb; j < jmax; ++j) {
            const double* lj = a + j * n;
            double acc = 0.0;
            RAFIKI_SIMD_REDUCTION(omp simd reduction(+ : acc))
            for (size_t c = kb; c < kend; ++c) acc += li[c] * lj[c];
            a[i * n + j] -= acc;
          }
        }
      }
    }
  }
  return true;
}

void CholeskySolve(const double* l, size_t n, double* x) {
  for (size_t i = 0; i < n; ++i) {
    double acc = x[i];
    const double* row = l + i * n;
    RAFIKI_SIMD_REDUCTION(omp simd reduction(- : acc))
    for (size_t j = 0; j < i; ++j) acc -= row[j] * x[j];
    x[i] = acc / row[i];
  }
  for (size_t ii = n; ii > 0; --ii) {
    size_t i = ii - 1;
    double acc = x[i];
    for (size_t j = i + 1; j < n; ++j) acc -= l[j * n + i] * x[j];
    x[i] = acc / l[i * n + i];
  }
}

}  // namespace rafiki::tuning
