#include "tuning/gaussian_process.h"

#include <cmath>

#include "common/logging.h"

namespace rafiki::tuning {

double NormalPdf(double z) {
  static const double kInvSqrt2Pi = 0.3989422804014327;
  return kInvSqrt2Pi * std::exp(-0.5 * z * z);
}

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double GaussianProcess::Kernel(const std::vector<double>& a,
                               const std::vector<double>& b) const {
  RAFIKI_CHECK_EQ(a.size(), b.size());
  double d2 = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    d2 += d * d;
  }
  double l2 = options_.length_scale * options_.length_scale;
  return options_.signal_variance * std::exp(-0.5 * d2 / l2);
}

Status GaussianProcess::Fit(const std::vector<std::vector<double>>& x,
                            const std::vector<double>& y) {
  if (x.empty() || x.size() != y.size()) {
    return Status::InvalidArgument("GP fit needs matching non-empty x, y");
  }
  size_t n = x.size();
  x_ = x;

  // Standardize targets.
  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double v : y) var += (v - mean) * (v - mean);
  var /= static_cast<double>(n);
  y_mean_ = mean;
  y_std_ = var > 1e-12 ? std::sqrt(var) : 1.0;

  // K + noise I, then Cholesky factorize in place (lower triangle).
  std::vector<double> k(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double v = Kernel(x[i], x[j]);
      if (i == j) v += options_.noise_variance;
      k[i * n + j] = v;
      k[j * n + i] = v;
    }
  }
  for (size_t c = 0; c < n; ++c) {
    double diag = k[c * n + c];
    for (size_t r = 0; r < c; ++r) {
      double l = k[c * n + r];
      diag -= l * l;
    }
    if (diag <= 0.0) {
      fitted_ = false;
      return Status::FailedPrecondition("GP kernel not positive definite");
    }
    k[c * n + c] = std::sqrt(diag);
    for (size_t r = c + 1; r < n; ++r) {
      double acc = k[r * n + c];
      for (size_t j = 0; j < c; ++j) acc -= k[r * n + j] * k[c * n + j];
      k[r * n + c] = acc / k[c * n + c];
    }
  }
  chol_ = std::move(k);

  // alpha = K^{-1} y_std via forward + backward substitution.
  std::vector<double> z(n);
  for (size_t i = 0; i < n; ++i) {
    double acc = (y[i] - y_mean_) / y_std_;
    for (size_t j = 0; j < i; ++j) acc -= chol_[i * n + j] * z[j];
    z[i] = acc / chol_[i * n + i];
  }
  alpha_.assign(n, 0.0);
  for (size_t ii = n; ii > 0; --ii) {
    size_t i = ii - 1;
    double acc = z[i];
    for (size_t j = i + 1; j < n; ++j) acc -= chol_[j * n + i] * alpha_[j];
    alpha_[i] = acc / chol_[i * n + i];
  }
  fitted_ = true;
  return Status::OK();
}

void GaussianProcess::Predict(const std::vector<double>& x, double* mean,
                              double* variance) const {
  RAFIKI_CHECK(fitted_) << "Predict before Fit";
  size_t n = x_.size();
  std::vector<double> kstar(n);
  for (size_t i = 0; i < n; ++i) kstar[i] = Kernel(x, x_[i]);

  double mu = 0.0;
  for (size_t i = 0; i < n; ++i) mu += kstar[i] * alpha_[i];

  // v = L^{-1} k*; var = k(x,x) - v.v
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    double acc = kstar[i];
    for (size_t j = 0; j < i; ++j) acc -= chol_[i * n + j] * v[j];
    v[i] = acc / chol_[i * n + i];
  }
  double var = Kernel(x, x);
  for (size_t i = 0; i < n; ++i) var -= v[i] * v[i];
  var = std::max(var, 1e-12);

  *mean = mu * y_std_ + y_mean_;
  *variance = var * y_std_ * y_std_;
}

double GaussianProcess::ExpectedImprovement(const std::vector<double>& x,
                                            double best_y, double xi) const {
  double mu = 0.0, var = 0.0;
  Predict(x, &mu, &var);
  double sigma = std::sqrt(var);
  if (sigma < 1e-12) return std::max(0.0, mu - best_y - xi);
  double z = (mu - best_y - xi) / sigma;
  return (mu - best_y - xi) * NormalCdf(z) + sigma * NormalPdf(z);
}

}  // namespace rafiki::tuning
