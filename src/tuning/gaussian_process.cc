#include "tuning/gaussian_process.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

#include "common/logging.h"
#include "tensor/kernels.h"
#include "tuning/cholesky.h"

namespace rafiki::tuning {

namespace {

/// Single-precision exp as pure arithmetic (no libm call), so the
/// covariance-assembly loop below is vectorizable and never serializes on
/// exp(). Standard 2^k * e^r split with a degree-5 polynomial on r in
/// (-ln2/2, ln2/2]; ~2e-6 relative error, orders of magnitude below the
/// noise_variance jitter that lands on the diagonal. The caller must keep
/// x in [-80, 0] (plus round-off slack): the biased exponent k + 127 is
/// built by an unchecked shift. The clamp lives at the call site rather
/// than here because GCC refuses to if-convert a loop that mixes a
/// min/max with this int<->float chain ("control flow in loop"), while
/// each piece alone vectorizes fine.
inline float FastExpNeg(float x) {
  float z = x * 1.4426950408889634f;         // x / ln 2
  int k = static_cast<int>(z - 0.5f);        // round-to-nearest (z <~ 0)
  float r = x - static_cast<float>(k) * 0.6931471805599453f;
  float p = 1.0f + r * (1.0f + r * (0.5f + r * (0.16666667f +
            r * (0.041666668f + r * 0.008333334f))));
  uint32_t bits = static_cast<uint32_t>(k + 127) << 23;  // 2^k, k >= -116
  return p * std::bit_cast<float>(bits);
}

}  // namespace

double NormalPdf(double z) {
  static const double kInvSqrt2Pi = 0.3989422804014327;
  return kInvSqrt2Pi * std::exp(-0.5 * z * z);
}

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double GaussianProcess::Kernel(const std::vector<double>& a,
                               const std::vector<double>& b) const {
  RAFIKI_CHECK_EQ(a.size(), b.size());
  double d2 = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    d2 += d * d;
  }
  double l2 = options_.length_scale * options_.length_scale;
  return options_.signal_variance * std::exp(-0.5 * d2 / l2);
}

Status GaussianProcess::Fit(const std::vector<std::vector<double>>& x,
                            const std::vector<double>& y) {
  if (x.empty() || x.size() != y.size()) {
    return Status::InvalidArgument("GP fit needs matching non-empty x, y");
  }
  size_t n = x.size();
  x_ = x;

  // Standardize targets.
  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double v : y) var += (v - mean) * (v - mean);
  var /= static_cast<double>(n);
  y_mean_ = mean;
  y_std_ = var > 1e-12 ? std::sqrt(var) : 1.0;

  // Covariance via one GEMM: with G = X·X^T (Gram), squared distances are
  // ||xi - xj||^2 = G_ii + G_jj - 2 G_ij, so the n^2 pairwise-distance
  // loops collapse into a single blocked matrix product. The Gram matrix
  // is computed in float through kernels::GemmNT — hyper-parameter knobs
  // live in [0,1]-ish ranges, so the ~1e-7 relative float error is orders
  // of magnitude below the noise_variance jitter added to the diagonal.
  size_t d = x[0].size();
  std::vector<float> xf(n * d);
  for (size_t i = 0; i < n; ++i) {
    RAFIKI_CHECK_EQ(x[i].size(), d);
    for (size_t j = 0; j < d; ++j) {
      xf[i * d + j] = static_cast<float>(x[i][j]);
    }
  }
  std::vector<float> gram(n * n, 0.0f);
  kernels::GemmNT(xf.data(), xf.data(), gram.data(), static_cast<int64_t>(n),
                  static_cast<int64_t>(d), static_cast<int64_t>(n));

  // Only the lower triangle is assembled: the Cholesky routines and the
  // substitution solvers never read above the diagonal, and skipping the
  // mirror halves the stores and keeps this loop a contiguous row-wise
  // sweep the vectorizer handles outright. The upper triangle of chol_ is
  // left uninitialized — which is also why the buffer uses the
  // default-init allocator: zero-filling n^2 doubles only to overwrite
  // the half that is ever read would cost a memset per fit.
  std::vector<double, DefaultInitAlloc<double>> k(n * n);
  auto sv = static_cast<float>(options_.signal_variance);
  auto neg_half_inv_l2 = static_cast<float>(
      -0.5 / (options_.length_scale * options_.length_scale));
  std::vector<float> norms(n);
  for (size_t i = 0; i < n; ++i) norms[i] = gram[i * n + i];
  // Each row is assembled in two passes over a scratch buffer: pass one
  // computes the clamped exp argument, pass two runs the arithmetic exp.
  // Fused into one loop, GCC reports "not vectorized: control flow in
  // loop" — the clamp's min/max will not if-convert next to FastExpNeg's
  // int<->float conversions — but split apart both passes vectorize.
  std::vector<float> arg(n);
  for (size_t i = 0; i < n; ++i) {
    float ni = norms[i];
    const float* gi = gram.data() + i * n;
    double* ki = k.data() + i * n;
    for (size_t j = 0; j < i; ++j) {
      // Clamp below for FastExpNeg's exponent range; float round-off can
      // push a tiny d2 negative, and with an extreme length_scale that
      // round-off could blow up positive, so clamp above at 0 too (a hair
      // positive is fine for FastExpNeg, exactly 0 maps to exp(0) = 1).
      float a2 = neg_half_inv_l2 * (ni + norms[j] - 2.0f * gi[j]);
      arg[j] = std::max(std::min(a2, 0.0f), -80.0f);
    }
    for (size_t j = 0; j < i; ++j) {
      ki[j] = sv * FastExpNeg(arg[j]);
    }
    ki[i] = options_.signal_variance + options_.noise_variance;
  }

  if (!CholeskyBlocked(k.data(), n)) {
    fitted_ = false;
    return Status::FailedPrecondition("GP kernel not positive definite");
  }
  chol_ = std::move(k);

  // alpha = K^{-1} y_std via forward + backward substitution.
  alpha_.resize(n);
  for (size_t i = 0; i < n; ++i) alpha_[i] = (y[i] - y_mean_) / y_std_;
  CholeskySolve(chol_.data(), n, alpha_.data());
  fitted_ = true;
  return Status::OK();
}

void GaussianProcess::Predict(const std::vector<double>& x, double* mean,
                              double* variance) const {
  RAFIKI_CHECK(fitted_) << "Predict before Fit";
  size_t n = x_.size();
  std::vector<double> kstar(n);
  for (size_t i = 0; i < n; ++i) kstar[i] = Kernel(x, x_[i]);

  double mu = 0.0;
  for (size_t i = 0; i < n; ++i) mu += kstar[i] * alpha_[i];

  // v = L^{-1} k*; var = k(x,x) - v.v
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    double acc = kstar[i];
    for (size_t j = 0; j < i; ++j) acc -= chol_[i * n + j] * v[j];
    v[i] = acc / chol_[i * n + i];
  }
  double var = Kernel(x, x);
  for (size_t i = 0; i < n; ++i) var -= v[i] * v[i];
  var = std::max(var, 1e-12);

  *mean = mu * y_std_ + y_mean_;
  *variance = var * y_std_ * y_std_;
}

double GaussianProcess::ExpectedImprovement(const std::vector<double>& x,
                                            double best_y, double xi) const {
  double mu = 0.0, var = 0.0;
  Predict(x, &mu, &var);
  double sigma = std::sqrt(var);
  if (sigma < 1e-12) return std::max(0.0, mu - best_y - xi);
  double z = (mu - best_y - xi) / sigma;
  return (mu - best_y - xi) * NormalCdf(z) + sigma * NormalPdf(z);
}

}  // namespace rafiki::tuning
