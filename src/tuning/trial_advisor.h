#ifndef RAFIKI_TUNING_TRIAL_ADVISOR_H_
#define RAFIKI_TUNING_TRIAL_ADVISOR_H_

#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "tuning/hyperspace.h"

namespace rafiki::tuning {

/// Record of one evaluated trial.
struct TrialResult {
  Trial trial;
  double performance = 0.0;  // larger is better (accuracy, AUC, ...)
  std::string worker;
};

/// The hyper-parameter search algorithm behind the Study/CoStudy masters —
/// the paper's `TrialAdvisor` (Algorithm 1). Implementations must be
/// thread-safe: the master's event loop is single-threaded, but tests drive
/// advisors directly from several threads.
class TrialAdvisor {
 public:
  virtual ~TrialAdvisor() = default;

  /// Next trial for `worker`, or nullopt when the search is exhausted
  /// (Algorithm 1 line 5-7).
  virtual std::optional<Trial> Next(const std::string& worker) = 0;

  /// Records a performance observation for a trial (line 12). Called both
  /// for intermediate reports and final results; the latest observation for
  /// a trial id wins.
  virtual void Collect(const std::string& worker, double performance,
                       const Trial& trial) = 0;

  /// True if the most recent result from `worker` is the best so far
  /// (line 15).
  virtual bool IsBest(const std::string& worker) const = 0;

  /// Best trial observed so far (line 20); nullopt before any collection.
  virtual std::optional<TrialResult> BestTrial() const = 0;

  /// All collected results, in collection order.
  virtual std::vector<TrialResult> Results() const = 0;

  virtual std::string name() const = 0;
};

/// Shared bookkeeping for concrete advisors.
class AdvisorBase : public TrialAdvisor {
 public:
  void Collect(const std::string& worker, double performance,
               const Trial& trial) override;
  bool IsBest(const std::string& worker) const override;
  std::optional<TrialResult> BestTrial() const override;
  std::vector<TrialResult> Results() const override;

 protected:
  mutable std::mutex mu_;
  std::vector<TrialResult> results_;        // final per-trial results
  std::optional<TrialResult> best_;
  std::map<std::string, double> last_by_worker_;
  int64_t next_trial_id_ = 0;
};

/// Random search (Bergstra & Bengio 2012): samples i.i.d. trials from the
/// space until `max_trials` have been issued.
class RandomSearchAdvisor : public AdvisorBase {
 public:
  RandomSearchAdvisor(const HyperSpace* space, int64_t max_trials,
                      uint64_t seed);

  std::optional<Trial> Next(const std::string& worker) override;
  std::string name() const override { return "random_search"; }

 private:
  const HyperSpace* space_;
  int64_t max_trials_;
  int64_t issued_ = 0;
  Rng rng_;
};

/// Grid search: the Cartesian product of `points_per_knob` values per range
/// knob (and every category of categorical knobs), issued in order.
class GridSearchAdvisor : public AdvisorBase {
 public:
  GridSearchAdvisor(const HyperSpace* space, int points_per_knob);

  std::optional<Trial> Next(const std::string& worker) override;
  std::string name() const override { return "grid_search"; }

  int64_t grid_size() const { return grid_size_; }

 private:
  const HyperSpace* space_;
  int points_per_knob_;
  int64_t grid_size_;
  int64_t cursor_ = 0;
};

}  // namespace rafiki::tuning

#endif  // RAFIKI_TUNING_TRIAL_ADVISOR_H_
