#include "tuning/study.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"
#include "common/string_util.h"

namespace rafiki::tuning {

using cluster::Message;
using cluster::MessageType;

StudyMaster::StudyMaster(std::string study_name, StudyConfig config,
                         TrialAdvisor* advisor, cluster::Bus* bus,
                         storage::BlobStore* checkpoint_store)
    : study_name_(std::move(study_name)),
      config_(config),
      advisor_(advisor),
      bus_(bus),
      checkpoint_store_(checkpoint_store),
      alpha_(config.alpha_init) {
  RAFIKI_CHECK(advisor != nullptr);
  RAFIKI_CHECK(bus != nullptr);
}

bool StudyMaster::StopCriterion() const {
  if (num_finished_ >= config_.max_trials) return true;
  if (stats_.best_performance >= config_.target_performance) return true;
  return false;
}

void StudyMaster::HandleRequest(const Message& msg) {
  // A kRequest from a worker we believe is mid-trial means the worker was
  // killed and restarted (stateless recovery, §6.3): its previous trial is
  // lost; just hand out a new one.
  if (active_workers_.erase(msg.from) > 0) {
    lost_.fetch_add(1, std::memory_order_relaxed);
    active_.fetch_sub(1, std::memory_order_relaxed);
  }
  worker_progress_.erase(msg.from);

  std::optional<Trial> trial;
  if (!StopCriterion()) trial = advisor_->Next(msg.from);
  if (!trial.has_value()) {
    Message reply;
    reply.type = MessageType::kNoMoreTrials;
    reply.from = endpoint();
    bus_->Send(msg.from, std::move(reply));
    retired_workers_.insert(msg.from);
    return;
  }
  Message reply;
  reply.type = MessageType::kTrial;
  reply.from = endpoint();
  reply.trial_id = trial->id();
  reply.str_fields["trial"] = trial->Encode();
  reply.num_fields["alpha"] = alpha_;
  bus_->Send(msg.from, std::move(reply));
  active_workers_.insert(msg.from);
  proposed_.fetch_add(1, std::memory_order_relaxed);
  active_.fetch_add(1, std::memory_order_relaxed);
  worker_progress_[msg.from] = WorkerProgress{-1.0, 0, trial->id()};
  // Decay alpha once per issued trial (§4.2.2).
  alpha_ = std::max(config_.alpha_min, alpha_ * config_.alpha_decay);
}

void StudyMaster::HandleReport(const Message& msg) {
  Result<Trial> trial = Trial::Decode(msg.str_fields.count("trial")
                                          ? msg.str_fields.at("trial")
                                          : "");
  if (!trial.ok()) {
    RAFIKI_LOG(WARNING) << "dropping malformed report from " << msg.from;
    return;
  }
  advisor_->Collect(msg.from, msg.performance, trial.value());

  auto sim_it = msg.num_fields.find("sim_seconds");
  if (sim_it != msg.num_fields.end()) {
    worker_sim_seconds_[msg.from] = sim_it->second;
  }

  // Progress tracking for curves (Figures 8c/9c/11b).
  stats_.total_epochs += 1;
  if (msg.performance > stats_.best_performance) {
    stats_.best_performance = msg.performance;
    stats_.best_trial = trial.value();
  }
  double wall = 0.0;
  for (const auto& [w, s] : worker_sim_seconds_) wall = std::max(wall, s);
  stats_.sim_seconds = wall;
  stats_.progress.push_back(
      ProgressPoint{stats_.total_epochs, wall, stats_.best_performance});

  WorkerProgress& wp = worker_progress_[msg.from];
  bool improved = msg.performance > wp.best + config_.early_stop_min_delta;
  if (improved) {
    wp.best = msg.performance;
    wp.stale_epochs = 0;
  } else {
    ++wp.stale_epochs;
  }

  if (config_.collaborative) {
    // Algorithm 2 line 8-12: delta-gated publication, else early stop.
    if (msg.performance - best_p_ > config_.delta) {
      Message put;
      put.type = MessageType::kPut;
      put.from = endpoint();
      put.trial_id = msg.trial_id;
      bus_->Send(msg.from, std::move(put));
      best_p_ = msg.performance;
    } else if (wp.stale_epochs >= config_.early_stop_patience) {
      Message stop;
      stop.type = MessageType::kStop;
      stop.from = endpoint();
      stop.trial_id = msg.trial_id;
      bus_->Send(msg.from, std::move(stop));
      wp.stale_epochs = 0;  // avoid repeated kStop spam
    }
  } else {
    // Plain Study still early-stops trials (§7.1: "we run each trial with
    // early stopping"), it just never shares checkpoints mid-trial.
    if (wp.stale_epochs >= config_.early_stop_patience) {
      Message stop;
      stop.type = MessageType::kStop;
      stop.from = endpoint();
      stop.trial_id = msg.trial_id;
      bus_->Send(msg.from, std::move(stop));
      wp.stale_epochs = 0;
    }
  }
}

void StudyMaster::HandleFinish(const Message& msg) {
  ++num_finished_;
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (active_workers_.erase(msg.from) > 0) {
    active_.fetch_sub(1, std::memory_order_relaxed);
  }

  Result<Trial> trial = Trial::Decode(msg.str_fields.count("trial")
                                          ? msg.str_fields.at("trial")
                                          : "");
  if (trial.ok()) {
    advisor_->Collect(msg.from, msg.performance, trial.value());
    if (msg.performance > stats_.best_performance) {
      stats_.best_performance = msg.performance;
      stats_.best_trial = trial.value();
    }
  }

  auto sim_it = msg.num_fields.find("sim_seconds");
  if (sim_it != msg.num_fields.end()) {
    worker_sim_seconds_[msg.from] = sim_it->second;
  }
  double wall = 0.0;
  for (const auto& [w, s] : worker_sim_seconds_) wall = std::max(wall, s);
  stats_.sim_seconds = wall;

  TrialRecord rec;
  rec.trial_id = msg.trial_id;
  rec.performance = msg.performance;
  auto epochs_it = msg.num_fields.find("epochs");
  rec.epochs = epochs_it == msg.num_fields.end()
                   ? 0
                   : static_cast<int>(epochs_it->second);
  auto warm_it = msg.num_fields.find("warm_started");
  rec.warm_started =
      warm_it != msg.num_fields.end() && warm_it->second > 0.5;
  rec.worker = msg.from;
  rec.cumulative_epochs = stats_.total_epochs;
  rec.sim_seconds = wall;
  stats_.trials.push_back(rec);

  if (!config_.collaborative) {
    // Algorithm 1 line 15-17: publish the parameters of the best finished
    // trial so inference can deploy instantly.
    if (advisor_->IsBest(msg.from)) {
      Message put;
      put.type = MessageType::kPut;
      put.from = endpoint();
      put.trial_id = msg.trial_id;
      bus_->Send(msg.from, std::move(put));
    }
  }
}

Status StudyMaster::SaveCheckpoint() const {
  if (checkpoint_store_ == nullptr) {
    return Status::FailedPrecondition("no checkpoint store");
  }
  // Small state blob (§6.3): finished count, best perf, alpha, the trial
  // ledger, and the best trial.
  std::string s = StrFormat(
      "%lld|%.17g|%.17g|%.17g|%lld|%lld|",
      static_cast<long long>(num_finished_), stats_.best_performance,
      best_p_, alpha_,
      static_cast<long long>(proposed_.load(std::memory_order_relaxed)),
      static_cast<long long>(lost_.load(std::memory_order_relaxed)));
  s += stats_.best_trial.Encode();
  return checkpoint_store_->Put("study/" + study_name_ + "/master_ckpt",
                                std::vector<uint8_t>(s.begin(), s.end()));
}

Status StudyMaster::RestoreFromCheckpoint() {
  if (checkpoint_store_ == nullptr) {
    return Status::FailedPrecondition("no checkpoint store");
  }
  auto blob = checkpoint_store_->Get("study/" + study_name_ + "/master_ckpt");
  if (!blob.ok()) return blob.status();
  std::string s(blob.value().begin(), blob.value().end());
  std::vector<std::string> parts = Split(s, '|');
  if (parts.size() < 7) return Status::InvalidArgument("bad master ckpt");
  num_finished_ = std::strtoll(parts[0].c_str(), nullptr, 10);
  stats_.best_performance = std::strtod(parts[1].c_str(), nullptr);
  best_p_ = std::strtod(parts[2].c_str(), nullptr);
  alpha_ = std::strtod(parts[3].c_str(), nullptr);
  proposed_.store(std::strtoll(parts[4].c_str(), nullptr, 10),
                  std::memory_order_relaxed);
  int64_t lost = std::strtoll(parts[5].c_str(), nullptr, 10);
  completed_.store(num_finished_, std::memory_order_relaxed);
  // Trials in flight when the predecessor died are presumed lost: their
  // workers abandon them once sends to the dead master fail, then
  // re-request as unknown workers (the restored active set is empty).
  int64_t in_flight = proposed_.load(std::memory_order_relaxed) -
                      num_finished_ - lost;
  lost_.store(lost + std::max<int64_t>(0, in_flight),
              std::memory_order_relaxed);
  active_.store(0, std::memory_order_relaxed);
  // The trial encoding itself contains a '|'; rejoin the tail.
  std::string trial_enc = parts[6];
  for (size_t i = 7; i < parts.size(); ++i) trial_enc += "|" + parts[i];
  Result<Trial> trial = Trial::Decode(trial_enc);
  if (trial.ok()) stats_.best_trial = trial.value();
  return Status::OK();
}

void StudyMaster::SaveCheckpointIfDue() {
  if (checkpoint_store_ == nullptr || config_.checkpoint_every_events <= 0) {
    return;
  }
  if (++events_since_checkpoint_ >= config_.checkpoint_every_events) {
    events_since_checkpoint_ = 0;
    Status s = SaveCheckpoint();
    if (!s.ok()) {
      RAFIKI_LOG(WARNING) << "master checkpoint failed: " << s.ToString();
    }
  }
}

void StudyMaster::Run(cluster::CancelToken& token) {
  Status reg = bus_->RegisterEndpoint(endpoint());
  if (!reg.ok() && reg.code() != StatusCode::kAlreadyExists) {
    RAFIKI_LOG(ERROR) << "master cannot register: " << reg.ToString();
    return;
  }
  // Event loop of Algorithms 1/2. Poll so container kills are honored.
  while (!token.cancelled()) {
    if (static_cast<int>(retired_workers_.size()) >= config_.num_workers &&
        active_workers_.empty()) {
      break;
    }
    std::optional<Message> msg = bus_->TryReceive(endpoint());
    if (!msg.has_value()) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      continue;
    }
    switch (msg->type) {
      case MessageType::kRequest:
        HandleRequest(*msg);
        break;
      case MessageType::kReport:
        HandleReport(*msg);
        break;
      case MessageType::kFinish:
        HandleFinish(*msg);
        break;
      case MessageType::kShutdown:
        bus_->RemoveEndpoint(endpoint());
        return;
      default:
        RAFIKI_LOG(WARNING) << "master ignoring " << msg->DebugString();
    }
    SaveCheckpointIfDue();
  }
  if (checkpoint_store_ != nullptr) SaveCheckpoint();
  bus_->RemoveEndpoint(endpoint());
}

StudyWorker::StudyWorker(std::string study_name, std::string worker_name,
                         StudyConfig config, trainer::TrainerFactory* factory,
                         cluster::Bus* bus, ps::ParameterStore* ps,
                         uint64_t seed)
    : study_name_(std::move(study_name)),
      worker_name_(std::move(worker_name)),
      config_(config),
      factory_(factory),
      bus_(bus),
      ps_(ps),
      rng_(seed) {
  RAFIKI_CHECK(factory != nullptr);
  RAFIKI_CHECK(bus != nullptr);
  RAFIKI_CHECK(ps != nullptr);
}

void StudyWorker::PublishCheckpoint(trainer::Trainable& trainable,
                                    double performance) {
  ps::ModelCheckpoint ckpt = trainable.Checkpoint();
  ckpt.meta.accuracy = performance;
  ckpt.meta.owner = "study/" + study_name_;
  ckpt.meta.visibility = ps::Visibility::kPrivate;
  Status s = ps_->PutModel(best_scope(), ckpt);
  if (!s.ok()) {
    RAFIKI_LOG(WARNING) << worker_name_
                        << " checkpoint publish failed: " << s.ToString();
  }
}

void StudyWorker::Run(cluster::CancelToken& token) {
  Status reg = bus_->RegisterEndpoint(endpoint());
  if (!reg.ok() && reg.code() != StatusCode::kAlreadyExists) {
    RAFIKI_LOG(ERROR) << "worker cannot register: " << reg.ToString();
    return;
  }

  while (!token.cancelled()) {
    // Ask for work.
    Message req;
    req.type = MessageType::kRequest;
    req.from = endpoint();
    // The master may not have registered its endpoint yet (container
    // start-up order is unspecified, as with real pods); retry briefly.
    bool sent = false;
    for (int attempt = 0; attempt < 20000 && !token.cancelled(); ++attempt) {
      Message attempt_req = req;
      if (bus_->Send(master_endpoint(), std::move(attempt_req)).ok()) {
        sent = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    if (!sent) break;

    // Wait for the assignment, honoring stray control messages from the
    // previous trial (a late kPut still publishes: we keep the last model).
    // Bounded: if the master died between accepting the request and
    // replying (possible across processes), re-request instead of waiting
    // on a reply that will never come.
    std::optional<Trial> assignment;
    bool no_more = false;
    auto assignment_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!token.cancelled() && !assignment.has_value() && !no_more) {
      if (std::chrono::steady_clock::now() > assignment_deadline) break;
      std::optional<Message> msg = bus_->TryReceive(endpoint());
      if (!msg.has_value()) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        continue;
      }
      if (msg->type == MessageType::kTrial) {
        Result<Trial> trial = Trial::Decode(msg->str_fields.at("trial"));
        if (trial.ok()) {
          assignment = trial.value();
          double alpha = msg->num_fields.count("alpha")
                             ? msg->num_fields.at("alpha")
                             : 1.0;
          assignment->Set("__alpha", KnobValue(alpha));
        }
      } else if (msg->type == MessageType::kNoMoreTrials ||
                 msg->type == MessageType::kShutdown) {
        no_more = true;
      }
      // kPut/kStop for the finished trial are ignored here; the checkpoint
      // was already published on finish if it was best.
    }
    if (no_more) break;
    if (!assignment.has_value()) continue;  // deadline hit: re-request

    double alpha = assignment->GetDouble("__alpha", 1.0);
    Trial trial = *assignment;

    // Build the trainable and choose initialization (alpha-greedy,
    // §4.2.2): random with probability alpha, else warm start from the
    // study's best checkpoint in the PS when one exists.
    std::unique_ptr<trainer::Trainable> trainable = factory_->Create(trial);
    bool warm_started = false;
    if (config_.collaborative && !rng_.Bernoulli(alpha)) {
      Result<ps::ModelCheckpoint> best = ps_->GetModel(best_scope());
      if (best.ok()) {
        Status s = trainable->InitFromCheckpoint(trial, best.value());
        warm_started = s.ok();
        if (!s.ok()) {
          RAFIKI_LOG(WARNING) << "warm start failed: " << s.ToString();
        }
      }
    }
    if (!warm_started) {
      Status s = trainable->InitRandom(trial);
      if (!s.ok()) {
        // Invalid trial (e.g. out-of-domain knob): report chance-level and
        // move on, so one bad configuration cannot wedge the study.
        RAFIKI_LOG(WARNING) << "init failed: " << s.ToString();
        Message fin;
        fin.type = MessageType::kFinish;
        fin.from = endpoint();
        fin.trial_id = trial.id();
        fin.performance = 0.0;
        fin.str_fields["trial"] = trial.Encode();
        fin.num_fields["epochs"] = 0;
        fin.num_fields["sim_seconds"] = sim_seconds_;
        bus_->Send(master_endpoint(), std::move(fin));
        continue;
      }
    }

    // Train epoch by epoch, reporting and reacting to control messages.
    double trial_best = 0.0;
    int epochs = 0;
    bool stopped = false;
    bool put_pending = false;
    for (; epochs < config_.max_epochs_per_trial && !token.cancelled();) {
      Result<double> perf = trainable->TrainEpoch();
      if (!perf.ok()) {
        RAFIKI_LOG(WARNING) << "epoch failed: " << perf.status().ToString();
        break;
      }
      ++epochs;
      sim_seconds_ += trainable->EpochCostSeconds();
      trial_best = std::max(trial_best, perf.value());

      Message report;
      report.type = MessageType::kReport;
      report.from = endpoint();
      report.trial_id = trial.id();
      report.performance = perf.value();
      report.str_fields["trial"] = trial.Encode();
      report.num_fields["epoch"] = epochs;
      report.num_fields["sim_seconds"] = sim_seconds_;
      if (!bus_->Send(master_endpoint(), std::move(report)).ok()) {
        stopped = true;
        break;
      }

      // Drain control messages; a kStop ends the trial, kPut publishes.
      // Give the master a brief window to react to the report so the
      // delta-gated publication (Alg. 2) lands on the right epoch.
      for (int spin = 0; spin < 50; ++spin) {
        std::optional<Message> ctl = bus_->TryReceive(endpoint());
        if (!ctl.has_value()) {
          if (put_pending || spin > 2) break;
          std::this_thread::sleep_for(std::chrono::microseconds(100));
          continue;
        }
        if (ctl->type == MessageType::kPut) {
          PublishCheckpoint(*trainable, perf.value());
          put_pending = true;
        } else if (ctl->type == MessageType::kStop) {
          stopped = true;
          break;
        } else if (ctl->type == MessageType::kShutdown) {
          token.Cancel();
          break;
        }
      }
      if (stopped) break;
    }

    Message fin;
    fin.type = MessageType::kFinish;
    fin.from = endpoint();
    fin.trial_id = trial.id();
    fin.performance = trial_best;
    fin.str_fields["trial"] = trial.Encode();
    fin.num_fields["epochs"] = epochs;
    fin.num_fields["warm_started"] = warm_started ? 1.0 : 0.0;
    fin.num_fields["sim_seconds"] = sim_seconds_;
    bus_->Send(master_endpoint(), std::move(fin));

    if (!config_.collaborative) {
      // Algorithm 1: the master replies kPut when this finished trial is
      // the best; wait briefly for that verdict before requesting again.
      for (int spin = 0; spin < 50 && !token.cancelled(); ++spin) {
        std::optional<Message> ctl = bus_->TryReceive(endpoint());
        if (!ctl.has_value()) {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
          continue;
        }
        if (ctl->type == MessageType::kPut) {
          PublishCheckpoint(*trainable, trial_best);
          break;
        }
        if (ctl->type == MessageType::kNoMoreTrials ||
            ctl->type == MessageType::kShutdown) {
          bus_->RemoveEndpoint(endpoint());
          return;
        }
      }
    }
  }
  bus_->RemoveEndpoint(endpoint());
}

StudyStats RunStudy(const std::string& study_name, StudyConfig config,
                    TrialAdvisor* advisor, trainer::TrainerFactory* factory,
                    cluster::Bus* bus, ps::ParameterStore* ps,
                    storage::BlobStore* checkpoint_store, int num_workers,
                    uint64_t seed) {
  RAFIKI_CHECK_GT(num_workers, 0);
  config.num_workers = num_workers;
  StudyMaster master(study_name, config, advisor, bus, checkpoint_store);

  cluster::NodeManager manager;
  RAFIKI_CHECK_OK(manager.StartContainer(
      "master/" + study_name,
      [&master](cluster::CancelToken& token) { master.Run(token); }));
  Rng seeds(seed);
  std::vector<std::unique_ptr<StudyWorker>> workers;
  for (int i = 0; i < num_workers; ++i) {
    workers.push_back(std::make_unique<StudyWorker>(
        study_name, StrFormat("w%d", i), config, factory, bus, ps,
        seeds.Fork().Next64()));
    StudyWorker* w = workers.back().get();
    RAFIKI_CHECK_OK(manager.StartContainer(
        StrFormat("worker/%s/%d", study_name.c_str(), i),
        [w](cluster::CancelToken& token) { w->Run(token); }));
  }
  for (int i = 0; i < num_workers; ++i) {
    manager.WaitContainer(StrFormat("worker/%s/%d", study_name.c_str(), i));
  }
  manager.WaitContainer("master/" + study_name);
  return master.stats();
}

}  // namespace rafiki::tuning
