#include "tuning/hyperspace.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace rafiki::tuning {

double KnobValue::AsDouble() const {
  if (is_double()) return std::get<double>(value_);
  if (is_int()) return static_cast<double>(std::get<int64_t>(value_));
  RAFIKI_LOG(FATAL) << "KnobValue: string is not numeric";
  return 0.0;
}

int64_t KnobValue::AsInt() const {
  if (is_int()) return std::get<int64_t>(value_);
  if (is_double()) return static_cast<int64_t>(std::get<double>(value_));
  RAFIKI_LOG(FATAL) << "KnobValue: string is not numeric";
  return 0;
}

const std::string& KnobValue::AsString() const {
  RAFIKI_CHECK(is_string()) << "KnobValue is not a string";
  return std::get<std::string>(value_);
}

std::string KnobValue::ToString() const {
  if (is_double()) return StrFormat("%.9g", std::get<double>(value_));
  if (is_int())
    return std::to_string(std::get<int64_t>(value_));
  return std::get<std::string>(value_);
}

double Trial::GetDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second.AsDouble();
}

int64_t Trial::GetInt(const std::string& name, int64_t fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second.AsInt();
}

std::string Trial::GetString(const std::string& name,
                             const std::string& fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second.is_string() ? it->second.AsString()
                                : it->second.ToString();
}

std::string Trial::DebugString() const {
  std::string out = StrFormat("Trial#%lld{", static_cast<long long>(id_));
  bool first = true;
  for (const auto& [name, value] : values_) {
    if (!first) out += ", ";
    first = false;
    out += name + "=" + value.ToString();
  }
  out += "}";
  return out;
}

std::string Trial::Encode() const {
  // Format: id|name:T:value;...  with T in {f,i,s}.
  std::string out = std::to_string(id_) + "|";
  bool first = true;
  for (const auto& [name, value] : values_) {
    if (!first) out += ";";
    first = false;
    char tag = value.is_double() ? 'f' : (value.is_int() ? 'i' : 's');
    out += name + ":" + tag + ":" + value.ToString();
  }
  return out;
}

Result<Trial> Trial::Decode(const std::string& encoded) {
  size_t bar = encoded.find('|');
  if (bar == std::string::npos) {
    return Status::InvalidArgument("trial encoding missing id separator");
  }
  Trial trial;
  trial.set_id(std::strtoll(encoded.substr(0, bar).c_str(), nullptr, 10));
  std::string body = encoded.substr(bar + 1);
  if (body.empty()) return trial;
  for (const std::string& field : Split(body, ';')) {
    std::vector<std::string> parts = Split(field, ':');
    if (parts.size() < 3 || parts[1].size() != 1) {
      return Status::InvalidArgument(
          StrFormat("bad trial field '%s'", field.c_str()));
    }
    // Values may themselves contain ':', rejoin the tail.
    std::string raw = parts[2];
    for (size_t i = 3; i < parts.size(); ++i) raw += ":" + parts[i];
    switch (parts[1][0]) {
      case 'f':
        trial.Set(parts[0], KnobValue(std::strtod(raw.c_str(), nullptr)));
        break;
      case 'i':
        trial.Set(parts[0], KnobValue(static_cast<int64_t>(
                                std::strtoll(raw.c_str(), nullptr, 10))));
        break;
      case 's':
        trial.Set(parts[0], KnobValue(raw));
        break;
      default:
        return Status::InvalidArgument(
            StrFormat("bad trial dtype tag '%c'", parts[1][0]));
    }
  }
  return trial;
}

Status HyperSpace::CheckNewKnob(
    const std::string& name, const std::vector<std::string>& depends) const {
  if (name.empty()) return Status::InvalidArgument("empty knob name");
  if (Find(name) != nullptr) {
    return Status::AlreadyExists(StrFormat("knob '%s' exists", name.c_str()));
  }
  for (const std::string& dep : depends) {
    if (dep == name) {
      return Status::InvalidArgument(
          StrFormat("knob '%s' depends on itself", name.c_str()));
    }
  }
  return Status::OK();
}

Status HyperSpace::AddRangeKnob(const std::string& name, KnobDtype dtype,
                                double min, double max, bool log_scale,
                                std::vector<std::string> depends,
                                KnobHook pre_hook, KnobHook post_hook) {
  RAFIKI_RETURN_IF_ERROR(CheckNewKnob(name, depends));
  if (dtype == KnobDtype::kString) {
    return Status::InvalidArgument("range knobs must be numeric");
  }
  if (!(min < max)) {
    return Status::InvalidArgument(
        StrFormat("knob '%s': empty range [%g, %g)", name.c_str(), min, max));
  }
  if (log_scale && min <= 0.0) {
    return Status::InvalidArgument(
        StrFormat("knob '%s': log scale needs positive min", name.c_str()));
  }
  Knob k;
  k.name = name;
  k.dtype = dtype;
  k.categorical = false;
  k.min = min;
  k.max = max;
  k.log_scale = log_scale;
  k.depends = std::move(depends);
  k.pre_hook = std::move(pre_hook);
  k.post_hook = std::move(post_hook);
  knobs_.push_back(std::move(k));
  return Status::OK();
}

Status HyperSpace::AddCategoricalKnob(const std::string& name,
                                      std::vector<std::string> categories,
                                      std::vector<std::string> depends,
                                      KnobHook pre_hook, KnobHook post_hook) {
  RAFIKI_RETURN_IF_ERROR(CheckNewKnob(name, depends));
  if (categories.empty()) {
    return Status::InvalidArgument(
        StrFormat("knob '%s': no categories", name.c_str()));
  }
  Knob k;
  k.name = name;
  k.dtype = KnobDtype::kString;
  k.categorical = true;
  k.categories = std::move(categories);
  k.depends = std::move(depends);
  k.pre_hook = std::move(pre_hook);
  k.post_hook = std::move(post_hook);
  knobs_.push_back(std::move(k));
  return Status::OK();
}

Status HyperSpace::AddNumericCategoricalKnob(
    const std::string& name, std::vector<double> categories,
    std::vector<std::string> depends, KnobHook pre_hook, KnobHook post_hook) {
  RAFIKI_RETURN_IF_ERROR(CheckNewKnob(name, depends));
  if (categories.empty()) {
    return Status::InvalidArgument(
        StrFormat("knob '%s': no categories", name.c_str()));
  }
  Knob k;
  k.name = name;
  k.dtype = KnobDtype::kFloat;
  k.categorical = true;
  k.numeric_categories = std::move(categories);
  k.depends = std::move(depends);
  k.pre_hook = std::move(pre_hook);
  k.post_hook = std::move(post_hook);
  knobs_.push_back(std::move(k));
  return Status::OK();
}

const Knob* HyperSpace::Find(const std::string& name) const {
  for (const Knob& k : knobs_) {
    if (k.name == name) return &k;
  }
  return nullptr;
}

Result<std::vector<const Knob*>> HyperSpace::TopologicalOrder() const {
  // Kahn's algorithm over the depends DAG.
  std::map<std::string, size_t> index;
  for (size_t i = 0; i < knobs_.size(); ++i) index[knobs_[i].name] = i;
  std::vector<size_t> indegree(knobs_.size(), 0);
  std::vector<std::vector<size_t>> out_edges(knobs_.size());
  for (size_t i = 0; i < knobs_.size(); ++i) {
    for (const std::string& dep : knobs_[i].depends) {
      auto it = index.find(dep);
      if (it == index.end()) {
        return Status::FailedPrecondition(
            StrFormat("knob '%s' depends on unknown knob '%s'",
                      knobs_[i].name.c_str(), dep.c_str()));
      }
      out_edges[it->second].push_back(i);
      ++indegree[i];
    }
  }
  std::vector<size_t> ready;
  for (size_t i = 0; i < knobs_.size(); ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  std::vector<const Knob*> order;
  // Process in declaration order for determinism.
  std::sort(ready.begin(), ready.end());
  while (!ready.empty()) {
    size_t i = ready.front();
    ready.erase(ready.begin());
    order.push_back(&knobs_[i]);
    for (size_t j : out_edges[i]) {
      if (--indegree[j] == 0) {
        ready.insert(std::lower_bound(ready.begin(), ready.end(), j), j);
      }
    }
  }
  if (order.size() != knobs_.size()) {
    return Status::FailedPrecondition("knob dependency cycle");
  }
  return order;
}

Result<Trial> HyperSpace::Sample(Rng& rng) const {
  RAFIKI_ASSIGN_OR_RETURN(std::vector<const Knob*> order, TopologicalOrder());
  Trial trial;
  for (const Knob* k : order) {
    if (k->pre_hook) k->pre_hook(&trial);
    if (k->categorical) {
      if (!k->numeric_categories.empty()) {
        trial.Set(k->name,
                  KnobValue(k->numeric_categories[rng.Index(
                      k->numeric_categories.size())]));
      } else {
        trial.Set(k->name,
                  KnobValue(k->categories[rng.Index(k->categories.size())]));
      }
    } else {
      double v = k->log_scale ? rng.LogUniform(k->min, k->max)
                              : rng.Uniform(k->min, k->max);
      if (k->dtype == KnobDtype::kInt) {
        trial.Set(k->name, KnobValue(static_cast<int64_t>(std::floor(v))));
      } else {
        trial.Set(k->name, KnobValue(v));
      }
    }
    if (k->post_hook) k->post_hook(&trial);
  }
  return trial;
}

Status HyperSpace::Validate(const Trial& trial) const {
  for (const Knob& k : knobs_) {
    if (!trial.Has(k.name)) {
      return Status::InvalidArgument(
          StrFormat("trial missing knob '%s'", k.name.c_str()));
    }
    if (k.categorical) {
      if (!k.numeric_categories.empty()) {
        double v = trial.GetDouble(k.name);
        bool found = std::any_of(
            k.numeric_categories.begin(), k.numeric_categories.end(),
            [&](double c) { return c == v; });
        if (!found) {
          return Status::OutOfRange(
              StrFormat("knob '%s': %g not a category", k.name.c_str(), v));
        }
      } else {
        std::string v = trial.GetString(k.name);
        bool found = std::find(k.categories.begin(), k.categories.end(), v) !=
                     k.categories.end();
        if (!found) {
          return Status::OutOfRange(StrFormat("knob '%s': '%s' not a category",
                                              k.name.c_str(), v.c_str()));
        }
      }
    } else {
      double v = trial.GetDouble(k.name);
      if (v < k.min || v >= k.max) {
        // Integer knobs round down, allow v == max for the top bucket edge.
        if (!(k.dtype == KnobDtype::kInt && v >= k.min && v <= k.max)) {
          return Status::OutOfRange(StrFormat(
              "knob '%s': %g outside [%g, %g)", k.name.c_str(), v, k.min,
              k.max));
        }
      }
    }
  }
  return Status::OK();
}

Result<std::vector<double>> HyperSpace::Normalize(const Trial& trial) const {
  std::vector<double> out;
  out.reserve(knobs_.size());
  for (const Knob& k : knobs_) {
    if (!trial.Has(k.name)) {
      return Status::InvalidArgument(
          StrFormat("trial missing knob '%s'", k.name.c_str()));
    }
    if (k.categorical) {
      if (!k.numeric_categories.empty()) {
        double v = trial.GetDouble(k.name);
        auto it = std::find(k.numeric_categories.begin(),
                            k.numeric_categories.end(), v);
        size_t idx = it == k.numeric_categories.end()
                         ? 0
                         : static_cast<size_t>(
                               it - k.numeric_categories.begin());
        size_t n = k.numeric_categories.size();
        out.push_back(n <= 1 ? 0.0
                             : static_cast<double>(idx) /
                                   static_cast<double>(n - 1));
      } else {
        std::string v = trial.GetString(k.name);
        auto it = std::find(k.categories.begin(), k.categories.end(), v);
        size_t idx = it == k.categories.end()
                         ? 0
                         : static_cast<size_t>(it - k.categories.begin());
        size_t n = k.categories.size();
        out.push_back(n <= 1 ? 0.0
                             : static_cast<double>(idx) /
                                   static_cast<double>(n - 1));
      }
    } else {
      double v = trial.GetDouble(k.name);
      double lo = k.log_scale ? std::log(k.min) : k.min;
      double hi = k.log_scale ? std::log(k.max) : k.max;
      double x = k.log_scale ? std::log(std::max(v, 1e-300)) : v;
      double u = (x - lo) / (hi - lo);
      out.push_back(std::clamp(u, 0.0, 1.0));
    }
  }
  return out;
}

Result<Trial> HyperSpace::Denormalize(const std::vector<double>& point) const {
  if (point.size() != knobs_.size()) {
    return Status::InvalidArgument(
        StrFormat("point has %zu dims, space has %zu", point.size(),
                  knobs_.size()));
  }
  Trial trial;
  for (size_t i = 0; i < knobs_.size(); ++i) {
    const Knob& k = knobs_[i];
    double u = std::clamp(point[i], 0.0, 1.0);
    if (k.categorical) {
      if (!k.numeric_categories.empty()) {
        size_t n = k.numeric_categories.size();
        size_t idx = std::min(
            n - 1, static_cast<size_t>(std::lround(u * (n - 1))));
        trial.Set(k.name, KnobValue(k.numeric_categories[idx]));
      } else {
        size_t n = k.categories.size();
        size_t idx = std::min(
            n - 1, static_cast<size_t>(std::lround(u * (n - 1))));
        trial.Set(k.name, KnobValue(k.categories[idx]));
      }
    } else {
      double lo = k.log_scale ? std::log(k.min) : k.min;
      double hi = k.log_scale ? std::log(k.max) : k.max;
      double x = lo + u * (hi - lo);
      double v = k.log_scale ? std::exp(x) : x;
      // Keep strictly inside [min, max).
      v = std::min(v, std::nexttoward(k.max, k.min));
      if (k.dtype == KnobDtype::kInt) {
        trial.Set(k.name, KnobValue(static_cast<int64_t>(std::floor(v))));
      } else {
        trial.Set(k.name, KnobValue(v));
      }
    }
  }
  // Apply hooks in dependency order so derived adjustments still run.
  auto order = TopologicalOrder();
  if (order.ok()) {
    for (const Knob* k : order.value()) {
      if (k->post_hook) k->post_hook(&trial);
    }
  }
  return trial;
}

}  // namespace rafiki::tuning
