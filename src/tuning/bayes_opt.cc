#include "tuning/bayes_opt.h"

#include "common/logging.h"

namespace rafiki::tuning {

BayesOptAdvisor::BayesOptAdvisor(const HyperSpace* space,
                                 BayesOptOptions options)
    : space_(space), options_(options), rng_(options.seed) {
  RAFIKI_CHECK(space != nullptr);
  RAFIKI_CHECK_GT(options.max_trials, 0);
  RAFIKI_CHECK_GT(options.num_init_random, 0);
  RAFIKI_CHECK_GT(options.candidates_per_step, 0);
}

std::optional<Trial> BayesOptAdvisor::SampleRandomLocked() {
  Result<Trial> trial = space_->Sample(rng_);
  if (!trial.ok()) {
    RAFIKI_LOG(ERROR) << "sample failed: " << trial.status().ToString();
    return std::nullopt;
  }
  Trial t = std::move(trial).value();
  t.set_id(next_trial_id_++);
  ++issued_;
  return t;
}

std::optional<Trial> BayesOptAdvisor::Next(const std::string& worker) {
  std::lock_guard<std::mutex> lock(mu_);
  if (issued_ >= options_.max_trials) return std::nullopt;

  // Seed phase, or not enough observations yet to fit.
  if (static_cast<int>(results_.size()) < options_.num_init_random) {
    return SampleRandomLocked();
  }

  // Fit the GP to all observations in normalized coordinates.
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  xs.reserve(results_.size());
  ys.reserve(results_.size());
  double best_y = -1e300;
  for (const TrialResult& r : results_) {
    Result<std::vector<double>> x = space_->Normalize(r.trial);
    if (!x.ok()) continue;
    xs.push_back(std::move(x).value());
    ys.push_back(r.performance);
    best_y = std::max(best_y, r.performance);
  }
  if (xs.size() < 2) return SampleRandomLocked();

  GaussianProcess gp(options_.gp);
  Status fit = gp.Fit(xs, ys);
  if (!fit.ok()) {
    RAFIKI_LOG(WARNING) << "GP fit failed (" << fit.ToString()
                        << "); falling back to random sampling";
    return SampleRandomLocked();
  }

  // Maximize EI over random candidates.
  size_t d = space_->num_knobs();
  std::vector<double> best_point;
  double best_ei = -1.0;
  for (int c = 0; c < options_.candidates_per_step; ++c) {
    std::vector<double> point(d);
    for (size_t i = 0; i < d; ++i) point[i] = rng_.Uniform();
    double ei = gp.ExpectedImprovement(point, best_y, options_.xi);
    if (ei > best_ei) {
      best_ei = ei;
      best_point = std::move(point);
    }
  }
  if (best_point.empty()) return SampleRandomLocked();

  Result<Trial> trial = space_->Denormalize(best_point);
  if (!trial.ok()) return SampleRandomLocked();
  Trial t = std::move(trial).value();
  t.set_id(next_trial_id_++);
  ++issued_;
  return t;
}

}  // namespace rafiki::tuning
