#include "tuning/trial_advisor.h"

#include <cmath>

#include "common/logging.h"

namespace rafiki::tuning {

void AdvisorBase::Collect(const std::string& worker, double performance,
                          const Trial& trial) {
  std::lock_guard<std::mutex> lock(mu_);
  last_by_worker_[worker] = performance;
  // Update or append the per-trial record (intermediate reports overwrite).
  bool found = false;
  for (TrialResult& r : results_) {
    if (r.trial.id() == trial.id()) {
      r.performance = performance;
      r.worker = worker;
      found = true;
      break;
    }
  }
  if (!found) {
    results_.push_back(TrialResult{trial, performance, worker});
  }
  if (!best_.has_value() || performance > best_->performance) {
    best_ = TrialResult{trial, performance, worker};
  }
}

bool AdvisorBase::IsBest(const std::string& worker) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = last_by_worker_.find(worker);
  if (it == last_by_worker_.end() || !best_.has_value()) return false;
  return it->second >= best_->performance;
}

std::optional<TrialResult> AdvisorBase::BestTrial() const {
  std::lock_guard<std::mutex> lock(mu_);
  return best_;
}

std::vector<TrialResult> AdvisorBase::Results() const {
  std::lock_guard<std::mutex> lock(mu_);
  return results_;
}

RandomSearchAdvisor::RandomSearchAdvisor(const HyperSpace* space,
                                         int64_t max_trials, uint64_t seed)
    : space_(space), max_trials_(max_trials), rng_(seed) {
  RAFIKI_CHECK(space != nullptr);
  RAFIKI_CHECK_GT(max_trials, 0);
}

std::optional<Trial> RandomSearchAdvisor::Next(const std::string& worker) {
  std::lock_guard<std::mutex> lock(mu_);
  if (issued_ >= max_trials_) return std::nullopt;
  Result<Trial> trial = space_->Sample(rng_);
  if (!trial.ok()) {
    RAFIKI_LOG(ERROR) << "sample failed: " << trial.status().ToString();
    return std::nullopt;
  }
  Trial t = std::move(trial).value();
  t.set_id(next_trial_id_++);
  ++issued_;
  return t;
}

GridSearchAdvisor::GridSearchAdvisor(const HyperSpace* space,
                                     int points_per_knob)
    : space_(space), points_per_knob_(points_per_knob) {
  RAFIKI_CHECK(space != nullptr);
  RAFIKI_CHECK_GT(points_per_knob, 0);
  grid_size_ = 1;
  for (const Knob& k : space->knobs()) {
    int64_t n;
    if (k.categorical) {
      n = static_cast<int64_t>(k.numeric_categories.empty()
                                   ? k.categories.size()
                                   : k.numeric_categories.size());
    } else {
      n = points_per_knob_;
    }
    grid_size_ *= n;
  }
}

std::optional<Trial> GridSearchAdvisor::Next(const std::string& worker) {
  std::lock_guard<std::mutex> lock(mu_);
  if (cursor_ >= grid_size_) return std::nullopt;
  int64_t index = cursor_++;
  // Mixed-radix decode of `index` into one grid coordinate per knob,
  // then map to a normalized point and denormalize through the space.
  std::vector<double> point;
  point.reserve(space_->num_knobs());
  for (const Knob& k : space_->knobs()) {
    int64_t n;
    if (k.categorical) {
      n = static_cast<int64_t>(k.numeric_categories.empty()
                                   ? k.categories.size()
                                   : k.numeric_categories.size());
    } else {
      n = points_per_knob_;
    }
    int64_t coord = index % n;
    index /= n;
    point.push_back(n <= 1 ? 0.0
                           : static_cast<double>(coord) /
                                 static_cast<double>(n - 1));
  }
  Result<Trial> trial = space_->Denormalize(point);
  if (!trial.ok()) {
    RAFIKI_LOG(ERROR) << "denormalize failed: " << trial.status().ToString();
    return std::nullopt;
  }
  Trial t = std::move(trial).value();
  t.set_id(next_trial_id_++);
  return t;
}

}  // namespace rafiki::tuning
