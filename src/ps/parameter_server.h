#ifndef RAFIKI_PS_PARAMETER_SERVER_H_
#define RAFIKI_PS_PARAMETER_SERVER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "ps/parameter_store.h"
#include "storage/blob_store.h"
#include "tensor/tensor.h"

namespace rafiki::ps {

/// Rafiki's distributed in-memory parameter server (§3, §6.2).
///
/// Responsibilities reproduced from the paper:
///  * persistent storage of trained parameters so inference workers can
///    fetch them right after training ("instant model deployment");
///  * CoStudy checkpoint sharing: workers `Put` model states gated by the
///    master, new trials warm-start from the best checkpoint;
///  * shape-matched fetch for architecture tuning (§4.2.2): a convolution
///    layer in a new architecture is initialized from any stored tensor
///    with the same name suffix and shape, preferring higher accuracy;
///  * hot/cold tiering: frequently-accessed entries stay in memory, cold
///    entries can be spilled to the blob store (HDFS stand-in).
///
/// Thread-safe; masters and workers on different threads share one instance.
/// Tensor (de)serialization and cold-store I/O run *outside* the internal
/// mutex so a multi-megabyte spill or cold fetch never stalls concurrent
/// Put/Get traffic. Consequence: a GetModel that has to promote cold
/// entries reads each parameter at a consistent individual revision but is
/// not a cross-parameter atomic snapshot if a concurrent PutModel races it
/// (the all-hot fast path, the common case, is still fully atomic).
class ParameterServer : public ParameterStore {
 public:
  /// `cold_store` may be null (no spilling).
  explicit ParameterServer(storage::BlobStore* cold_store = nullptr)
      : cold_store_(cold_store) {}

  /// Individual tensors ------------------------------------------------------

  /// Stores `value` under `scope/name`. Version auto-increments per key.
  Status Put(const std::string& scope, const std::string& name,
             const Tensor& value, const ParamMeta& meta);

  /// Fetches the latest value of `scope/name` (from memory or cold store).
  Result<Tensor> Get(const std::string& scope, const std::string& name);

  /// Best-accuracy public-or-same-owner tensor whose key ends in
  /// `name_suffix` and whose shape equals `shape`. Implements the paper's
  /// cross-architecture warm start.
  Result<Tensor> FetchShapeMatched(const std::string& name_suffix,
                                   const Shape& shape,
                                   const std::string& owner);

  /// Model checkpoints --------------------------------------------------------

  /// Atomically stores a whole model state under `scope`.
  Status PutModel(const std::string& scope,
                  const ModelCheckpoint& ckpt) override;

  /// Latest checkpoint stored under `scope`.
  Result<ModelCheckpoint> GetModel(const std::string& scope) override;

  /// Highest-accuracy checkpoint among all scopes with the given prefix
  /// (e.g. all trials of one study). NotFound when none exists.
  Result<ModelCheckpoint> BestModel(const std::string& scope_prefix);

  /// Tiering -------------------------------------------------------------------

  /// Moves entries accessed fewer than `min_accesses` times to the cold
  /// store; returns the number spilled. No-op without a cold store.
  size_t SpillCold(size_t min_accesses);

  /// Introspection ---------------------------------------------------------------
  size_t num_entries() const;
  size_t num_hot_entries() const;
  std::vector<std::string> ListScopes() const;

 private:
  struct Entry {
    Tensor value;
    ParamMeta meta;
    size_t accesses = 0;
    bool in_cold_store = false;
    /// Bumped on every logical overwrite (Put/PutModel). Cold-store reads
    /// and spills drop `mu_` for the blob I/O and use this counter on
    /// relock to detect a concurrent overwrite: a changed revision means
    /// the fetched/serialized bytes describe a superseded value, so the
    /// in-memory entry wins. Hot/cold promotion does not bump it (the
    /// logical value is unchanged).
    int64_t revision = 0;
  };

  static std::string FullKey(const std::string& scope,
                             const std::string& name) {
    return scope + "/" + name;
  }

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  // scope -> ordered param names, so checkpoints round-trip losslessly.
  std::map<std::string, std::vector<std::string>> checkpoints_;
  storage::BlobStore* cold_store_;
};

}  // namespace rafiki::ps

#endif  // RAFIKI_PS_PARAMETER_SERVER_H_
