#include "ps/checkpoint_codec.h"

#include <cstdint>
#include <cstring>

#include "common/string_util.h"
#include "storage/serialize.h"

namespace rafiki::ps {
namespace {

void PutU32(uint32_t v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(uint64_t v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutString(std::string_view s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s.data(), s.size());
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ReadU8(uint8_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadI64(int64_t* v) { return ReadRaw(v, sizeof(*v)); }

  bool ReadDouble(double* v) {
    uint64_t bits;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool ReadString(std::string* v) {
    uint32_t len;
    if (!ReadU32(&len)) return false;
    if (remaining() < len) return false;
    v->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  bool ReadBytes(std::vector<uint8_t>* v, size_t len) {
    if (remaining() < len) return false;
    const auto* p = reinterpret_cast<const uint8_t*>(data_.data() + pos_);
    v->assign(p, p + len);
    pos_ += len;
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool ReadRaw(void* out, size_t n) {
    if (remaining() < n) return false;
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
};

Status Truncated(const char* what) {
  return Status::InvalidArgument(StrFormat("truncated checkpoint %s", what));
}

}  // namespace

std::string SerializeCheckpoint(const ModelCheckpoint& ckpt) {
  std::string out;
  PutU32(static_cast<uint32_t>(ckpt.params.size()), &out);
  for (const auto& [name, tensor] : ckpt.params) {
    PutString(name, &out);
    std::vector<uint8_t> bytes = storage::SerializeTensor(tensor);
    PutU64(bytes.size(), &out);
    out.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  }
  PutU64(static_cast<uint64_t>(ckpt.meta.version), &out);
  uint64_t accuracy_bits;
  std::memcpy(&accuracy_bits, &ckpt.meta.accuracy, sizeof(accuracy_bits));
  PutU64(accuracy_bits, &out);
  out.push_back(static_cast<char>(ckpt.meta.visibility));
  PutString(ckpt.meta.owner, &out);
  return out;
}

Result<ModelCheckpoint> DeserializeCheckpoint(std::string_view bytes) {
  Reader reader(bytes);
  uint32_t count;
  if (!reader.ReadU32(&count)) return Truncated("param count");
  // Each param costs at least its two length prefixes.
  if (count > reader.remaining() / 12) {
    return Status::InvalidArgument(
        StrFormat("checkpoint param count %u exceeds payload", count));
  }
  ModelCheckpoint ckpt;
  ckpt.params.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    if (!reader.ReadString(&name)) return Truncated("param name");
    uint64_t len;
    if (!reader.ReadU64(&len)) return Truncated("tensor length");
    std::vector<uint8_t> tensor_bytes;
    if (!reader.ReadBytes(&tensor_bytes, len)) return Truncated("tensor");
    auto tensor = storage::DeserializeTensor(tensor_bytes);
    if (!tensor.ok()) return tensor.status();
    ckpt.params.emplace_back(std::move(name), std::move(tensor).value());
  }
  int64_t version;
  if (!reader.ReadI64(&version)) return Truncated("meta version");
  ckpt.meta.version = version;
  if (!reader.ReadDouble(&ckpt.meta.accuracy)) return Truncated("accuracy");
  uint8_t visibility;
  if (!reader.ReadU8(&visibility)) return Truncated("visibility");
  if (visibility > static_cast<uint8_t>(Visibility::kPublic)) {
    return Status::InvalidArgument(
        StrFormat("bad visibility %u", visibility));
  }
  ckpt.meta.visibility = static_cast<Visibility>(visibility);
  if (!reader.ReadString(&ckpt.meta.owner)) return Truncated("owner");
  if (reader.remaining() != 0) {
    return Status::InvalidArgument(StrFormat(
        "%zu trailing bytes after checkpoint", reader.remaining()));
  }
  return ckpt;
}

}  // namespace rafiki::ps
