#include "ps/parameter_server.h"

#include <algorithm>

#include "common/string_util.h"
#include "storage/serialize.h"

namespace rafiki::ps {

Status ParameterServer::Put(const std::string& scope, const std::string& name,
                            const Tensor& value, const ParamMeta& meta) {
  if (scope.empty() || name.empty()) {
    return Status::InvalidArgument("empty scope or name");
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = FullKey(scope, name);
  Entry& e = entries_[key];
  int64_t prev_version = e.meta.version;
  e.value = value;
  e.meta = meta;
  e.meta.version = prev_version + 1;  // auto-increment across overwrites
  e.in_cold_store = false;
  return Status::OK();
}

Result<Tensor> ParameterServer::Get(const std::string& scope,
                                    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = FullKey(scope, name);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound(StrFormat("no parameter '%s'", key.c_str()));
  }
  Entry& e = it->second;
  ++e.accesses;
  if (e.in_cold_store) {
    RAFIKI_CHECK(cold_store_ != nullptr);
    auto bytes = cold_store_->Get("ps/" + key);
    if (!bytes.ok()) return bytes.status();
    auto tensor = storage::DeserializeTensor(bytes.value());
    if (!tensor.ok()) return tensor.status();
    e.value = tensor.value();  // promote back to hot
    e.in_cold_store = false;
  }
  return e.value;
}

Result<Tensor> ParameterServer::FetchShapeMatched(
    const std::string& name_suffix, const Shape& shape,
    const std::string& owner) {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* best = nullptr;
  std::string best_key;
  for (auto& [key, e] : entries_) {
    if (e.in_cold_store) continue;  // shape match only scans hot tier
    if (key.size() < name_suffix.size() ||
        key.compare(key.size() - name_suffix.size(), name_suffix.size(),
                    name_suffix) != 0) {
      continue;
    }
    if (e.value.shape() != shape) continue;
    bool visible = e.meta.visibility == Visibility::kPublic ||
                   e.meta.owner == owner;
    if (!visible) continue;
    if (best == nullptr || e.meta.accuracy > best->meta.accuracy) {
      best = &e;
      best_key = key;
    }
  }
  if (best == nullptr) {
    return Status::NotFound(
        StrFormat("no shape-matched parameter for suffix '%s' shape %s",
                  name_suffix.c_str(), ShapeToString(shape).c_str()));
  }
  ++const_cast<Entry*>(best)->accesses;
  return best->value;
}

Status ParameterServer::PutModel(const std::string& scope,
                                 const ModelCheckpoint& ckpt) {
  if (scope.empty()) return Status::InvalidArgument("empty scope");
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, value] : ckpt.params) {
    std::string key = FullKey(scope, name);
    Entry& e = entries_[key];
    e.value = value;
    e.meta = ckpt.meta;
    e.in_cold_store = false;
    names.push_back(name);
  }
  checkpoints_[scope] = std::move(names);
  return Status::OK();
}

Result<ModelCheckpoint> ParameterServer::GetModel(const std::string& scope) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = checkpoints_.find(scope);
  if (it == checkpoints_.end()) {
    return Status::NotFound(StrFormat("no checkpoint '%s'", scope.c_str()));
  }
  ModelCheckpoint out;
  for (const std::string& name : it->second) {
    auto eit = entries_.find(FullKey(scope, name));
    RAFIKI_CHECK(eit != entries_.end()) << "checkpoint index out of sync";
    Entry& e = eit->second;
    ++e.accesses;
    if (e.in_cold_store) {
      RAFIKI_CHECK(cold_store_ != nullptr);
      auto bytes = cold_store_->Get("ps/" + eit->first);
      if (!bytes.ok()) return bytes.status();
      auto tensor = storage::DeserializeTensor(bytes.value());
      if (!tensor.ok()) return tensor.status();
      e.value = tensor.value();
      e.in_cold_store = false;
    }
    out.params.emplace_back(name, e.value);
    out.meta = e.meta;
  }
  return out;
}

Result<ModelCheckpoint> ParameterServer::BestModel(
    const std::string& scope_prefix) {
  std::vector<std::string> scopes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [scope, names] : checkpoints_) {
      if (StartsWith(scope, scope_prefix)) scopes.push_back(scope);
    }
  }
  const double kNone = -1.0;
  double best_acc = kNone;
  std::string best_scope;
  for (const std::string& scope : scopes) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = checkpoints_.find(scope);
    if (it == checkpoints_.end() || it->second.empty()) continue;
    auto eit = entries_.find(FullKey(scope, it->second.front()));
    if (eit == entries_.end()) continue;
    if (eit->second.meta.accuracy > best_acc) {
      best_acc = eit->second.meta.accuracy;
      best_scope = scope;
    }
  }
  if (best_acc == kNone) {
    return Status::NotFound(
        StrFormat("no checkpoint with prefix '%s'", scope_prefix.c_str()));
  }
  return GetModel(best_scope);
}

size_t ParameterServer::SpillCold(size_t min_accesses) {
  if (cold_store_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  size_t spilled = 0;
  for (auto& [key, e] : entries_) {
    if (e.in_cold_store || e.accesses >= min_accesses) continue;
    Status s =
        cold_store_->Put("ps/" + key, storage::SerializeTensor(e.value));
    if (!s.ok()) continue;  // store full; keep hot
    e.value = Tensor();
    e.in_cold_store = true;
    ++spilled;
  }
  return spilled;
}

size_t ParameterServer::num_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t ParameterServer::num_hot_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [key, e] : entries_) {
    if (!e.in_cold_store) ++n;
  }
  return n;
}

std::vector<std::string> ParameterServer::ListScopes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [scope, names] : checkpoints_) out.push_back(scope);
  return out;
}

}  // namespace rafiki::ps
