#include "ps/parameter_server.h"

#include <algorithm>

#include "common/string_util.h"
#include "storage/serialize.h"

namespace rafiki::ps {

Status ParameterServer::Put(const std::string& scope, const std::string& name,
                            const Tensor& value, const ParamMeta& meta) {
  if (scope.empty() || name.empty()) {
    return Status::InvalidArgument("empty scope or name");
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = FullKey(scope, name);
  Entry& e = entries_[key];
  int64_t prev_version = e.meta.version;
  e.value = value;
  e.meta = meta;
  e.meta.version = prev_version + 1;  // auto-increment across overwrites
  e.in_cold_store = false;
  ++e.revision;
  return Status::OK();
}

Result<Tensor> ParameterServer::Get(const std::string& scope,
                                    const std::string& name) {
  std::string key = FullKey(scope, name);
  int64_t revision = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      return Status::NotFound(StrFormat("no parameter '%s'", key.c_str()));
    }
    Entry& e = it->second;
    ++e.accesses;
    if (!e.in_cold_store) return e.value;
    RAFIKI_CHECK(cold_store_ != nullptr);
    revision = e.revision;
  }
  // Cold path: blob fetch + deserialization run unlocked so concurrent
  // hot-tier traffic is never blocked on storage I/O.
  auto bytes = cold_store_->Get("ps/" + key);
  if (!bytes.ok()) return bytes.status();
  auto tensor = storage::DeserializeTensor(bytes.value());
  if (!tensor.ok()) return tensor.status();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound(StrFormat("no parameter '%s'", key.c_str()));
  }
  Entry& e = it->second;
  if (e.revision == revision && e.in_cold_store) {
    e.value = std::move(tensor).value();  // promote back to hot
    e.in_cold_store = false;
  }
  // Else a concurrent Put overwrote the key (or another reader already
  // promoted it) while we were reading the blob; the entry's newer
  // in-memory value supersedes the bytes we fetched.
  return e.value;
}

Result<Tensor> ParameterServer::FetchShapeMatched(
    const std::string& name_suffix, const Shape& shape,
    const std::string& owner) {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* best = nullptr;
  std::string best_key;
  for (auto& [key, e] : entries_) {
    if (e.in_cold_store) continue;  // shape match only scans hot tier
    if (key.size() < name_suffix.size() ||
        key.compare(key.size() - name_suffix.size(), name_suffix.size(),
                    name_suffix) != 0) {
      continue;
    }
    if (e.value.shape() != shape) continue;
    bool visible = e.meta.visibility == Visibility::kPublic ||
                   e.meta.owner == owner;
    if (!visible) continue;
    if (best == nullptr || e.meta.accuracy > best->meta.accuracy) {
      best = &e;
      best_key = key;
    }
  }
  if (best == nullptr) {
    return Status::NotFound(
        StrFormat("no shape-matched parameter for suffix '%s' shape %s",
                  name_suffix.c_str(), ShapeToString(shape).c_str()));
  }
  ++const_cast<Entry*>(best)->accesses;
  return best->value;
}

Status ParameterServer::PutModel(const std::string& scope,
                                 const ModelCheckpoint& ckpt) {
  if (scope.empty()) return Status::InvalidArgument("empty scope");
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, value] : ckpt.params) {
    std::string key = FullKey(scope, name);
    Entry& e = entries_[key];
    e.value = value;
    e.meta = ckpt.meta;
    e.in_cold_store = false;
    ++e.revision;
    names.push_back(name);
  }
  checkpoints_[scope] = std::move(names);
  return Status::OK();
}

Result<ModelCheckpoint> ParameterServer::GetModel(const std::string& scope) {
  struct ColdParam {
    size_t index;        // position in out.params to fill
    std::string key;
    int64_t revision;
    Tensor loaded;
  };
  ModelCheckpoint out;
  std::vector<ColdParam> cold;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = checkpoints_.find(scope);
    if (it == checkpoints_.end()) {
      return Status::NotFound(StrFormat("no checkpoint '%s'", scope.c_str()));
    }
    for (const std::string& name : it->second) {
      auto eit = entries_.find(FullKey(scope, name));
      RAFIKI_CHECK(eit != entries_.end()) << "checkpoint index out of sync";
      Entry& e = eit->second;
      ++e.accesses;
      if (e.in_cold_store) {
        RAFIKI_CHECK(cold_store_ != nullptr);
        cold.push_back({out.params.size(), eit->first, e.revision});
        out.params.emplace_back(name, Tensor());  // filled after the I/O
      } else {
        out.params.emplace_back(name, e.value);
      }
      out.meta = e.meta;
    }
  }
  if (cold.empty()) return out;  // all-hot fast path: atomic snapshot

  // Fetch + deserialize every cold parameter without holding the lock.
  for (ColdParam& c : cold) {
    auto bytes = cold_store_->Get("ps/" + c.key);
    if (!bytes.ok()) return bytes.status();
    auto tensor = storage::DeserializeTensor(bytes.value());
    if (!tensor.ok()) return tensor.status();
    c.loaded = std::move(tensor).value();
  }

  std::lock_guard<std::mutex> lock(mu_);
  for (ColdParam& c : cold) {
    auto eit = entries_.find(c.key);
    if (eit == entries_.end()) {
      return Status::NotFound(StrFormat("no parameter '%s'", c.key.c_str()));
    }
    Entry& e = eit->second;
    if (e.revision == c.revision && e.in_cold_store) {
      e.value = std::move(c.loaded);  // promote back to hot
      e.in_cold_store = false;
    }
    // On a revision change the checkpoint was overwritten mid-read; return
    // the fresher in-memory value for this parameter (per-parameter
    // consistency — see the class comment on snapshot atomicity).
    out.params[c.index].second = e.value;
    out.meta = e.meta;
  }
  return out;
}

Result<ModelCheckpoint> ParameterServer::BestModel(
    const std::string& scope_prefix) {
  std::vector<std::string> scopes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [scope, names] : checkpoints_) {
      if (StartsWith(scope, scope_prefix)) scopes.push_back(scope);
    }
  }
  const double kNone = -1.0;
  double best_acc = kNone;
  std::string best_scope;
  for (const std::string& scope : scopes) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = checkpoints_.find(scope);
    if (it == checkpoints_.end() || it->second.empty()) continue;
    auto eit = entries_.find(FullKey(scope, it->second.front()));
    if (eit == entries_.end()) continue;
    if (eit->second.meta.accuracy > best_acc) {
      best_acc = eit->second.meta.accuracy;
      best_scope = scope;
    }
  }
  if (best_acc == kNone) {
    return Status::NotFound(
        StrFormat("no checkpoint with prefix '%s'", scope_prefix.c_str()));
  }
  return GetModel(best_scope);
}

size_t ParameterServer::SpillCold(size_t min_accesses) {
  if (cold_store_ == nullptr) return 0;
  struct Candidate {
    std::string key;
    int64_t revision;
    Tensor value;
    bool stored = false;
  };
  // Pass 1 (locked): snapshot the cold candidates. Copying the tensor here
  // costs one extra buffer per candidate but lets the serialization and
  // blob writes below proceed with the server unlocked.
  std::vector<Candidate> candidates;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [key, e] : entries_) {
      if (e.in_cold_store || e.accesses >= min_accesses) continue;
      candidates.push_back({key, e.revision, e.value});
    }
  }
  if (candidates.empty()) return 0;

  // Pass 2 (unlocked): serialize + write. BlobStore is itself thread-safe.
  for (Candidate& c : candidates) {
    Status s =
        cold_store_->Put("ps/" + c.key, storage::SerializeTensor(c.value));
    c.stored = s.ok();  // store full -> keep hot
  }

  // Pass 3 (locked): demote entries whose value is still the one we wrote.
  // A revision bump means a concurrent Put made our blob stale; the entry
  // stays hot and the stale blob is dead weight that is never read (only
  // in_cold_store entries consult the store) and is overwritten by the
  // next successful spill of that key.
  size_t spilled = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const Candidate& c : candidates) {
    if (!c.stored) continue;
    auto it = entries_.find(c.key);
    if (it == entries_.end()) continue;
    Entry& e = it->second;
    if (e.revision != c.revision || e.in_cold_store ||
        e.accesses >= min_accesses) {
      continue;
    }
    e.value = Tensor();
    e.in_cold_store = true;
    ++spilled;
  }
  return spilled;
}

size_t ParameterServer::num_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t ParameterServer::num_hot_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [key, e] : entries_) {
    if (!e.in_cold_store) ++n;
  }
  return n;
}

std::vector<std::string> ParameterServer::ListScopes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [scope, names] : checkpoints_) out.push_back(scope);
  return out;
}

}  // namespace rafiki::ps
