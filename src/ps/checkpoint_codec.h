#ifndef RAFIKI_PS_CHECKPOINT_CODEC_H_
#define RAFIKI_PS_CHECKPOINT_CODEC_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "ps/parameter_store.h"

namespace rafiki::ps {

/// Binary codec for whole model checkpoints, used to carry PS traffic over
/// the TCP bus (a kPsPut/kPsValue payload). Tensors reuse the blob-store
/// wire format (storage::SerializeTensor); the little-endian framing
/// matches cluster/frame.cc.

std::string SerializeCheckpoint(const ModelCheckpoint& ckpt);

/// InvalidArgument on truncation or trailing garbage.
Result<ModelCheckpoint> DeserializeCheckpoint(std::string_view bytes);

}  // namespace rafiki::ps

#endif  // RAFIKI_PS_CHECKPOINT_CODEC_H_
