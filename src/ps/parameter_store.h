#ifndef RAFIKI_PS_PARAMETER_STORE_H_
#define RAFIKI_PS_PARAMETER_STORE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace rafiki::ps {

/// Visibility of stored parameters (§6.2: "parameters trained for the same
/// model but different datasets can be shared as long as the privacy
/// setting is public").
enum class Visibility { kPrivate, kPublic };

/// Metadata attached to every stored parameter.
struct ParamMeta {
  int64_t version = 0;
  /// Validation performance of the trial that produced this value; used by
  /// CoStudy to keep only improving checkpoints and by FetchShapeMatched to
  /// prefer the best-performing donor.
  double accuracy = 0.0;
  Visibility visibility = Visibility::kPrivate;
  std::string owner;  // study or job that wrote it
};

/// A complete model checkpoint: named tensors + metadata.
struct ModelCheckpoint {
  std::vector<std::pair<std::string, Tensor>> params;
  ParamMeta meta;
};

/// The slice of the parameter server a tuning worker needs: whole-model
/// checkpoint traffic (CoStudy's Put and the alpha-greedy warm-start Get,
/// §4.2.2). Two implementations: `ParameterServer` itself (in-process) and
/// `cluster::RemoteParameterStore` (the same calls carried over the TCP
/// bus to the master's PS), so a worker body is oblivious to whether it
/// runs as a thread or as a separate process.
class ParameterStore {
 public:
  virtual ~ParameterStore() = default;

  /// Atomically stores a whole model state under `scope`.
  virtual Status PutModel(const std::string& scope,
                          const ModelCheckpoint& ckpt) = 0;

  /// Latest checkpoint stored under `scope`.
  virtual Result<ModelCheckpoint> GetModel(const std::string& scope) = 0;
};

}  // namespace rafiki::ps

#endif  // RAFIKI_PS_PARAMETER_STORE_H_
