#include "model/registry.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"

namespace rafiki::model {

TaskRegistry TaskRegistry::BuiltIn() {
  TaskRegistry r;
  for (const ModelProfile& p : ImageNetCatalog()) {
    r.Register("ImageClassification", p);
  }
  // Non-vision tasks from Figure 2's table; profiles are nominal since the
  // serving experiments only use the image-classification set.
  auto nominal = [](std::string name, Family family, double acc, double c50,
                    double mem) {
    ModelProfile p;
    p.name = std::move(name);
    p.family = family;
    p.top1_accuracy = acc;
    p.latency_intercept = 0.2 * c50;
    p.latency_slope = 0.8 * c50 / 50.0;
    p.memory_mb = mem;
    return p;
  };
  r.Register("ObjectDetection", nominal("yolo", Family::kVgg, 0.63, 0.09, 240));
  r.Register("ObjectDetection", nominal("ssd", Family::kVgg, 0.65, 0.12, 210));
  r.Register("ObjectDetection",
             nominal("faster_rcnn", Family::kResNet, 0.70, 0.42, 520));
  r.Register("SentimentAnalysis",
             nominal("temporal_cnn", Family::kInception, 0.86, 0.03, 40));
  r.Register("SentimentAnalysis",
             nominal("fast_text", Family::kMobileNet, 0.84, 0.005, 12));
  r.Register("SentimentAnalysis",
             nominal("character_rnn", Family::kResNet, 0.87, 0.08, 65));
  return r;
}

void TaskRegistry::Register(const std::string& task,
                            const ModelProfile& profile) {
  tasks_[task].push_back(profile);
}

Result<std::vector<ModelProfile>> TaskRegistry::ModelsForTask(
    const std::string& task) const {
  auto it = tasks_.find(task);
  if (it == tasks_.end()) {
    return Status::NotFound(StrFormat("no task '%s'", task.c_str()));
  }
  return it->second;
}

std::vector<std::string> TaskRegistry::Tasks() const {
  std::vector<std::string> out;
  for (const auto& [task, models] : tasks_) out.push_back(task);
  return out;
}

Result<std::vector<ModelProfile>> TaskRegistry::SelectDiverse(
    const std::string& task, size_t count) const {
  RAFIKI_ASSIGN_OR_RETURN(std::vector<ModelProfile> models,
                          ModelsForTask(task));
  if (count == 0) {
    return Status::InvalidArgument("count must be positive");
  }
  std::sort(models.begin(), models.end(),
            [](const ModelProfile& a, const ModelProfile& b) {
              return a.top1_accuracy > b.top1_accuracy;
            });
  std::vector<ModelProfile> out;
  std::set<Family> used;
  // First pass: one model per family, best first.
  for (const ModelProfile& m : models) {
    if (out.size() >= count) break;
    if (used.count(m.family)) continue;
    used.insert(m.family);
    out.push_back(m);
  }
  // Second pass: fill remaining slots with the next-best models.
  for (const ModelProfile& m : models) {
    if (out.size() >= count) break;
    bool taken = std::any_of(out.begin(), out.end(),
                             [&](const ModelProfile& o) {
                               return o.name == m.name;
                             });
    if (!taken) out.push_back(m);
  }
  return out;
}

}  // namespace rafiki::model
