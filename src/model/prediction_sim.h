#ifndef RAFIKI_MODEL_PREDICTION_SIM_H_
#define RAFIKI_MODEL_PREDICTION_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "model/profile.h"

namespace rafiki::model {

/// Simulates per-request top-1 predictions of the catalog ConvNets on an
/// ImageNet-like validation stream, replacing the real checkpoints the
/// paper queries.
///
/// Error structure: every request has a latent difficulty z ~ N(0,1) shared
/// across models; model m is correct iff
///   rho * z + sqrt(1 - rho^2) * eps_m  <  Phi^{-1}(accuracy_m)
/// with independent eps_m ~ N(0,1). `rho` is the error correlation between
/// models — ImageNet ConvNets make highly correlated mistakes, which is why
/// the paper's ensembles gain only a few points (Figure 6). When a model is
/// wrong it emits either a request-specific "canonical confusion" label
/// (probability `shared_confusion`) or its own idiosyncratic wrong label,
/// so wrong models sometimes outvote right ones exactly as real ensembles
/// do.
struct PredictionSimOptions {
  int64_t num_classes = 1000;
  /// Calibrated so the Figure 6 shape holds: the 4-model ensemble gains
  /// ~1-2 points over the best single model, not the ~10 points that
  /// independent errors would produce.
  double correlation = 0.95;
  double shared_confusion = 0.6;
  uint64_t seed = 2018;
};

class PredictionSimulator {
 public:
  PredictionSimulator(std::vector<ModelProfile> models,
                      PredictionSimOptions options);

  /// One simulated request: the ground-truth label plus each model's
  /// predicted label (aligned with the constructor's model order).
  struct Sample {
    int64_t truth = 0;
    std::vector<int64_t> predictions;
  };
  Sample Draw();

  /// Monte-Carlo top-1 accuracy of the subset selected by `mask` (bit i
  /// selects model i) under majority voting with the paper's tie-break:
  /// on a tie, take the prediction of the highest-accuracy selected model.
  double EnsembleAccuracy(uint32_t mask, int64_t num_requests);

  /// Same but breaking ties uniformly at random (ablation for DESIGN.md
  /// decision 1).
  double EnsembleAccuracyRandomTie(uint32_t mask, int64_t num_requests);

  const std::vector<ModelProfile>& models() const { return models_; }

 private:
  int64_t Vote(const Sample& sample, uint32_t mask, bool random_tie);

  std::vector<ModelProfile> models_;
  PredictionSimOptions options_;
  std::vector<double> thresholds_;  // Phi^{-1}(accuracy_m)
  Rng rng_;
};

/// Precomputed a(M[v]) for every non-empty subset of `models` — the
/// surrogate accuracy table the RL reward (Equation 7) consumes. Index by
/// the selection bitmask v.
class EnsembleAccuracyTable {
 public:
  EnsembleAccuracyTable(std::vector<ModelProfile> models,
                        PredictionSimOptions options, int64_t num_requests);

  double Accuracy(uint32_t mask) const;
  size_t num_models() const { return num_models_; }

 private:
  size_t num_models_;
  std::vector<double> table_;  // size 2^n, entry 0 unused
};

}  // namespace rafiki::model

#endif  // RAFIKI_MODEL_PREDICTION_SIM_H_
