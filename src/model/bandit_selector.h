#ifndef RAFIKI_MODEL_BANDIT_SELECTOR_H_
#define RAFIKI_MODEL_BANDIT_SELECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace rafiki::model {

/// The model-selection baseline Rafiki argues against in §4.1: Ease.ml
/// converts model selection into a multi-armed bandit where every model
/// (arm) gets training chances and under-performers are de-prioritized.
/// Implemented here (UCB1 over observed validation performance) so the
/// paper's design choice — a simple pick-diverse-top-models rule instead —
/// can be compared against the bandit on equal footing (see
/// registry_test.cc and the §4.1 discussion).
class BanditModelSelector {
 public:
  /// `exploration` is the UCB confidence multiplier (sqrt-log bonus).
  BanditModelSelector(std::vector<std::string> model_names,
                      double exploration = 1.4);

  /// Arm to train next: unexplored arms first (in order), then the
  /// highest upper confidence bound.
  size_t NextArm() const;

  /// Records the validation performance of one training run of arm `i`.
  void Record(size_t arm, double performance);

  /// Mean observed performance of an arm (0 when unexplored).
  double MeanPerformance(size_t arm) const;
  int64_t Pulls(size_t arm) const;
  int64_t TotalPulls() const { return total_pulls_; }

  /// Arms ranked by mean performance (best first) — the post-budget
  /// selection the bandit produces.
  std::vector<size_t> Ranking() const;

  const std::string& name(size_t arm) const {
    RAFIKI_CHECK_LT(arm, names_.size());
    return names_[arm];
  }
  size_t num_arms() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  double exploration_;
  std::vector<int64_t> pulls_;
  std::vector<double> sums_;
  int64_t total_pulls_ = 0;
};

}  // namespace rafiki::model

#endif  // RAFIKI_MODEL_BANDIT_SELECTOR_H_
