#include "model/prediction_sim.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.h"

namespace rafiki::model {
namespace {

/// Inverse standard-normal CDF (Acklam's rational approximation); accurate
/// to ~1e-9, ample for calibrating correctness thresholds.
double InverseNormalCdf(double p) {
  RAFIKI_CHECK_GT(p, 0.0);
  RAFIKI_CHECK_LT(p, 1.0);
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= phigh) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

}  // namespace

PredictionSimulator::PredictionSimulator(std::vector<ModelProfile> models,
                                         PredictionSimOptions options)
    : models_(std::move(models)), options_(options), rng_(options.seed) {
  RAFIKI_CHECK(!models_.empty());
  RAFIKI_CHECK_LE(models_.size(), 31u);
  RAFIKI_CHECK_GE(options_.correlation, 0.0);
  RAFIKI_CHECK_LE(options_.correlation, 1.0);
  thresholds_.reserve(models_.size());
  for (const ModelProfile& m : models_) {
    thresholds_.push_back(InverseNormalCdf(m.top1_accuracy));
  }
}

PredictionSimulator::Sample PredictionSimulator::Draw() {
  Sample s;
  s.truth = rng_.UniformInt(0, options_.num_classes - 1);
  double z = rng_.Gaussian();
  // One shared confusion label per request (never the truth).
  int64_t confusion = rng_.UniformInt(0, options_.num_classes - 2);
  if (confusion >= s.truth) ++confusion;
  double rho = options_.correlation;
  double ortho = std::sqrt(1.0 - rho * rho);
  s.predictions.resize(models_.size());
  for (size_t m = 0; m < models_.size(); ++m) {
    double score = rho * z + ortho * rng_.Gaussian();
    bool correct = score < thresholds_[m];
    if (correct) {
      s.predictions[m] = s.truth;
    } else if (rng_.Bernoulli(options_.shared_confusion)) {
      s.predictions[m] = confusion;
    } else {
      int64_t wrong = rng_.UniformInt(0, options_.num_classes - 2);
      if (wrong >= s.truth) ++wrong;
      s.predictions[m] = wrong;
    }
  }
  return s;
}

int64_t PredictionSimulator::Vote(const Sample& sample, uint32_t mask,
                                  bool random_tie) {
  std::map<int64_t, int> votes;
  for (size_t m = 0; m < models_.size(); ++m) {
    if (mask & (1u << m)) ++votes[sample.predictions[m]];
  }
  RAFIKI_CHECK(!votes.empty()) << "empty model selection";
  int max_votes = 0;
  for (const auto& [label, n] : votes) max_votes = std::max(max_votes, n);
  std::vector<int64_t> tied;
  for (const auto& [label, n] : votes) {
    if (n == max_votes) tied.push_back(label);
  }
  if (tied.size() == 1) return tied.front();
  if (random_tie) return tied[rng_.Index(tied.size())];
  // Paper tie-break: prediction of the best-accuracy selected model whose
  // prediction is among the tied labels.
  double best_acc = -1.0;
  int64_t best_label = tied.front();
  for (size_t m = 0; m < models_.size(); ++m) {
    if (!(mask & (1u << m))) continue;
    if (std::find(tied.begin(), tied.end(), sample.predictions[m]) ==
        tied.end()) {
      continue;
    }
    if (models_[m].top1_accuracy > best_acc) {
      best_acc = models_[m].top1_accuracy;
      best_label = sample.predictions[m];
    }
  }
  return best_label;
}

double PredictionSimulator::EnsembleAccuracy(uint32_t mask,
                                             int64_t num_requests) {
  RAFIKI_CHECK_GT(num_requests, 0);
  int64_t correct = 0;
  for (int64_t i = 0; i < num_requests; ++i) {
    Sample s = Draw();
    if (Vote(s, mask, /*random_tie=*/false) == s.truth) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(num_requests);
}

double PredictionSimulator::EnsembleAccuracyRandomTie(uint32_t mask,
                                                      int64_t num_requests) {
  RAFIKI_CHECK_GT(num_requests, 0);
  int64_t correct = 0;
  for (int64_t i = 0; i < num_requests; ++i) {
    Sample s = Draw();
    if (Vote(s, mask, /*random_tie=*/true) == s.truth) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(num_requests);
}

EnsembleAccuracyTable::EnsembleAccuracyTable(std::vector<ModelProfile> models,
                                             PredictionSimOptions options,
                                             int64_t num_requests)
    : num_models_(models.size()) {
  RAFIKI_CHECK_LE(num_models_, 16u);
  table_.assign(1u << num_models_, 0.0);
  PredictionSimulator sim(std::move(models), options);
  // One pass over shared samples keeps subset accuracies consistent.
  std::vector<int64_t> correct(table_.size(), 0);
  for (int64_t i = 0; i < num_requests; ++i) {
    PredictionSimulator::Sample s = sim.Draw();
    for (uint32_t mask = 1; mask < table_.size(); ++mask) {
      // Reuse the simulator's voting logic via a small local copy.
      // (Vote is private; replicate deterministically here.)
      std::map<int64_t, int> votes;
      for (size_t m = 0; m < num_models_; ++m) {
        if (mask & (1u << m)) ++votes[s.predictions[m]];
      }
      int max_votes = 0;
      for (const auto& [label, n] : votes) max_votes = std::max(max_votes, n);
      std::vector<int64_t> tied;
      for (const auto& [label, n] : votes) {
        if (n == max_votes) tied.push_back(label);
      }
      int64_t decision;
      if (tied.size() == 1) {
        decision = tied.front();
      } else {
        double best_acc = -1.0;
        decision = tied.front();
        for (size_t m = 0; m < num_models_; ++m) {
          if (!(mask & (1u << m))) continue;
          if (std::find(tied.begin(), tied.end(), s.predictions[m]) ==
              tied.end()) {
            continue;
          }
          if (sim.models()[m].top1_accuracy > best_acc) {
            best_acc = sim.models()[m].top1_accuracy;
            decision = s.predictions[m];
          }
        }
      }
      if (decision == s.truth) ++correct[mask];
    }
  }
  for (uint32_t mask = 1; mask < table_.size(); ++mask) {
    table_[mask] =
        static_cast<double>(correct[mask]) / static_cast<double>(num_requests);
  }
}

double EnsembleAccuracyTable::Accuracy(uint32_t mask) const {
  RAFIKI_CHECK_GT(mask, 0u);
  RAFIKI_CHECK_LT(mask, table_.size());
  return table_[mask];
}

}  // namespace rafiki::model
