#include "model/profile.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace rafiki::model {

const char* FamilyToString(Family family) {
  switch (family) {
    case Family::kInception:
      return "inception";
    case Family::kInceptionResnet:
      return "inception_resnet";
    case Family::kMobileNet:
      return "mobilenet";
    case Family::kNasNet:
      return "nasnet";
    case Family::kResNet:
      return "resnet";
    case Family::kVgg:
      return "vgg";
  }
  return "unknown";
}

namespace {

/// Builds a profile whose batch-50 latency matches the digitized Figure 3
/// value `c50`, splitting it 20% fixed overhead / 80% per-image cost.
ModelProfile FromC50(std::string name, Family family, double accuracy,
                     double c50, double memory_mb) {
  ModelProfile p;
  p.name = std::move(name);
  p.family = family;
  p.top1_accuracy = accuracy;
  p.latency_intercept = 0.2 * c50;
  p.latency_slope = 0.8 * c50 / 50.0;
  p.memory_mb = memory_mb;
  return p;
}

/// Builds a profile from explicit affine latency parameters (used for the
/// three models whose throughputs the paper pins numerically).
ModelProfile FromAffine(std::string name, Family family, double accuracy,
                        double intercept, double slope, double memory_mb) {
  ModelProfile p;
  p.name = std::move(name);
  p.family = family;
  p.top1_accuracy = accuracy;
  p.latency_intercept = intercept;
  p.latency_slope = slope;
  p.memory_mb = memory_mb;
  return p;
}

std::vector<ModelProfile> BuildCatalog() {
  std::vector<ModelProfile> c;
  // Calibrated against §7.2.1: c(16)=0.07, c(64)=0.23 for inception_v3
  // => max throughput 64/0.23 = 278 ~ 272 img/s, min 16/0.07 = 228.
  c.push_back(FromAffine("inception_v3", Family::kInception, 0.780,
                         0.0166667, 0.0033333, 104));
  // Calibrated against §7.2.2 extremes (572 / 128 requests per second for
  // the 3-model set): c_v4(64)=0.372 (172 req/s), c_ir2(64)=0.500 (128).
  c.push_back(FromAffine("inception_v4", Family::kInception, 0.802, 0.052,
                         0.005, 171));
  c.push_back(FromAffine("inception_resnet_v2", Family::kInceptionResnet,
                         0.804, 0.084, 0.0065, 224));
  // Remaining 13 ConvNets digitized from Figure 3 (batch-50 iteration time
  // in seconds, top-1 accuracy, memory footprint in MB).
  c.push_back(FromC50("inception_v1", Family::kInception, 0.698, 0.15, 28));
  c.push_back(FromC50("inception_v2", Family::kInception, 0.739, 0.18, 45));
  c.push_back(FromC50("mobilenet_v1", Family::kMobileNet, 0.709, 0.12, 17));
  c.push_back(FromC50("nasnet_mobile", Family::kNasNet, 0.740, 0.20, 21));
  c.push_back(FromC50("nasnet_large", Family::kNasNet, 0.827, 0.95, 356));
  c.push_back(FromC50("resnet_v1_50", Family::kResNet, 0.752, 0.21, 103));
  c.push_back(FromC50("resnet_v1_101", Family::kResNet, 0.764, 0.33, 170));
  c.push_back(FromC50("resnet_v1_152", Family::kResNet, 0.768, 0.45, 230));
  c.push_back(FromC50("resnet_v2_50", Family::kResNet, 0.756, 0.22, 103));
  c.push_back(FromC50("resnet_v2_101", Family::kResNet, 0.770, 0.35, 170));
  c.push_back(FromC50("resnet_v2_152", Family::kResNet, 0.778, 0.48, 230));
  c.push_back(FromC50("vgg_16", Family::kVgg, 0.715, 0.38, 528));
  c.push_back(FromC50("vgg_19", Family::kVgg, 0.711, 0.40, 548));
  return c;
}

}  // namespace

const std::vector<ModelProfile>& ImageNetCatalog() {
  static const auto& catalog = *new std::vector<ModelProfile>(BuildCatalog());
  return catalog;
}

Result<ModelProfile> FindProfile(const std::string& name) {
  for (const ModelProfile& p : ImageNetCatalog()) {
    if (p.name == name) return p;
  }
  return Status::NotFound(StrFormat("no model '%s' in catalog",
                                    name.c_str()));
}

double MaxThroughput(const std::vector<ModelProfile>& models,
                     int64_t batch_size) {
  double sum = 0.0;
  for (const ModelProfile& m : models) sum += m.Throughput(batch_size);
  return sum;
}

double MinThroughput(const std::vector<ModelProfile>& models,
                     int64_t batch_size) {
  RAFIKI_CHECK(!models.empty());
  double worst = models.front().Throughput(batch_size);
  for (const ModelProfile& m : models) {
    worst = std::min(worst, m.Throughput(batch_size));
  }
  return worst;
}

}  // namespace rafiki::model
