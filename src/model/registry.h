#ifndef RAFIKI_MODEL_REGISTRY_H_
#define RAFIKI_MODEL_REGISTRY_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "model/profile.h"

namespace rafiki::model {

/// Registry of built-in models per task (Figure 2's table: image
/// classification, object detection, sentiment analysis, ...). Every model
/// is registered under a task with its meta data (training cost and past
/// performance), as described in §4.1.
class TaskRegistry {
 public:
  /// A registry pre-populated with the paper's built-in task table.
  static TaskRegistry BuiltIn();

  /// Registers a model name under a task, with its profile.
  void Register(const std::string& task, const ModelProfile& profile);

  /// All models registered under `task`; NotFound for unknown tasks.
  Result<std::vector<ModelProfile>> ModelsForTask(
      const std::string& task) const;

  std::vector<std::string> Tasks() const;

  /// The paper's simple model-selection strategy (§4.1): pick up to
  /// `count` models with similar (top) performance but different
  /// architecture families, to create a diverse ensemble set. Models are
  /// considered in descending accuracy; a model is skipped if its family is
  /// already represented, unless no new family can fill the quota.
  Result<std::vector<ModelProfile>> SelectDiverse(const std::string& task,
                                                  size_t count) const;

 private:
  std::map<std::string, std::vector<ModelProfile>> tasks_;
};

}  // namespace rafiki::model

#endif  // RAFIKI_MODEL_REGISTRY_H_
