#include "model/bandit_selector.h"

#include <algorithm>
#include <cmath>

namespace rafiki::model {

BanditModelSelector::BanditModelSelector(std::vector<std::string> model_names,
                                         double exploration)
    : names_(std::move(model_names)), exploration_(exploration) {
  RAFIKI_CHECK(!names_.empty());
  pulls_.assign(names_.size(), 0);
  sums_.assign(names_.size(), 0.0);
}

size_t BanditModelSelector::NextArm() const {
  // Unexplored arms first.
  for (size_t i = 0; i < pulls_.size(); ++i) {
    if (pulls_[i] == 0) return i;
  }
  double best_ucb = -1e300;
  size_t best = 0;
  double log_total = std::log(static_cast<double>(total_pulls_));
  for (size_t i = 0; i < pulls_.size(); ++i) {
    double mean = sums_[i] / static_cast<double>(pulls_[i]);
    double bonus = exploration_ *
                   std::sqrt(log_total / static_cast<double>(pulls_[i]));
    double ucb = mean + bonus;
    if (ucb > best_ucb) {
      best_ucb = ucb;
      best = i;
    }
  }
  return best;
}

void BanditModelSelector::Record(size_t arm, double performance) {
  RAFIKI_CHECK_LT(arm, pulls_.size());
  ++pulls_[arm];
  ++total_pulls_;
  sums_[arm] += performance;
}

double BanditModelSelector::MeanPerformance(size_t arm) const {
  RAFIKI_CHECK_LT(arm, pulls_.size());
  if (pulls_[arm] == 0) return 0.0;
  return sums_[arm] / static_cast<double>(pulls_[arm]);
}

int64_t BanditModelSelector::Pulls(size_t arm) const {
  RAFIKI_CHECK_LT(arm, pulls_.size());
  return pulls_[arm];
}

std::vector<size_t> BanditModelSelector::Ranking() const {
  std::vector<size_t> order(names_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return MeanPerformance(a) > MeanPerformance(b);
  });
  return order;
}

}  // namespace rafiki::model
