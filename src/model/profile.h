#ifndef RAFIKI_MODEL_PROFILE_H_
#define RAFIKI_MODEL_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace rafiki::model {

/// Architecture family, used by the §4.1 model-selection heuristic to build
/// a *diverse* ensemble ("models with similar performance but different
/// architectures").
enum class Family {
  kInception,
  kInceptionResnet,
  kMobileNet,
  kNasNet,
  kResNet,
  kVgg,
};

const char* FamilyToString(Family family);

/// Per-model metadata replacing the TensorFlow-slim checkpoints behind
/// Figure 3 of the paper. Latency follows the affine model
/// c(b) = intercept + slope * b, which matches the two calibration points
/// the paper gives for inception_v3 (c(16)=0.07s, c(64)=0.23s) and pins the
/// multi-model throughput extremes of §7.2.2 (572 and 128 requests/second
/// for {inception_v3, inception_v4, inception_resnet_v2}).
struct ModelProfile {
  std::string name;
  Family family = Family::kResNet;
  /// ImageNet top-1 validation accuracy.
  double top1_accuracy = 0.0;
  /// Latency model parameters, in seconds.
  double latency_intercept = 0.0;
  double latency_slope = 0.0;
  /// Memory footprint at batch size 50 (Figure 3 y-axis bubble size).
  double memory_mb = 0.0;

  /// Inference time for one batch of size b: c(m, b) in the paper.
  double BatchLatency(int64_t batch_size) const {
    return latency_intercept + latency_slope * static_cast<double>(batch_size);
  }

  /// Throughput b / c(b) at the given batch size, requests/second.
  double Throughput(int64_t batch_size) const {
    return static_cast<double>(batch_size) / BatchLatency(batch_size);
  }
};

/// The 16 ConvNets of Figure 3 with calibrated accuracy/latency/memory.
const std::vector<ModelProfile>& ImageNetCatalog();

/// Catalog lookup by name; NotFound if absent.
Result<ModelProfile> FindProfile(const std::string& name);

/// Maximum throughput of a model set: all models run asynchronously on
/// different batches, so throughputs add (paper §7.2, r_u).
double MaxThroughput(const std::vector<ModelProfile>& models,
                     int64_t batch_size);

/// Minimum throughput: all models run synchronously on the same batch, so
/// the slowest model gates the rate (paper §7.2, r_l).
double MinThroughput(const std::vector<ModelProfile>& models,
                     int64_t batch_size);

}  // namespace rafiki::model

#endif  // RAFIKI_MODEL_PROFILE_H_
