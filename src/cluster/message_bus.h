#ifndef RAFIKI_CLUSTER_MESSAGE_BUS_H_
#define RAFIKI_CLUSTER_MESSAGE_BUS_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "cluster/message.h"
#include "common/blocking_queue.h"
#include "common/status.h"

namespace rafiki::cluster {

/// Named mailboxes connecting masters and workers — the in-process stand-in
/// for the RPC channels between Docker containers in the paper's deployment
/// (§6.1). Sending to a missing endpoint fails with NotFound (the node is
/// dead), which the protocol layers treat like a dropped RPC.
class MessageBus {
 public:
  /// Creates a mailbox. AlreadyExists if the name is taken.
  Status RegisterEndpoint(const std::string& name);

  /// Removes a mailbox, waking any blocked receiver.
  Status RemoveEndpoint(const std::string& name);

  /// Delivers `message` to `to`'s mailbox.
  Status Send(const std::string& to, Message message);

  /// Blocks until a message arrives at `name` or the endpoint is closed.
  /// nullopt means closed-and-drained.
  std::optional<Message> Receive(const std::string& name);

  /// Non-blocking receive.
  std::optional<Message> TryReceive(const std::string& name);

  /// Closes every endpoint (used at shutdown).
  void CloseAll();

  bool HasEndpoint(const std::string& name) const;
  size_t QueueDepth(const std::string& name) const;

 private:
  using Mailbox = BlockingQueue<Message>;

  std::shared_ptr<Mailbox> Find(const std::string& name) const;

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Mailbox>> endpoints_;
};

}  // namespace rafiki::cluster

#endif  // RAFIKI_CLUSTER_MESSAGE_BUS_H_
