#ifndef RAFIKI_CLUSTER_MESSAGE_BUS_H_
#define RAFIKI_CLUSTER_MESSAGE_BUS_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "cluster/bus.h"
#include "cluster/message.h"
#include "common/blocking_queue.h"
#include "common/status.h"

namespace rafiki::cluster {

/// Named mailboxes connecting masters and workers — the in-process loopback
/// implementation of `Bus`, standing in for the RPC channels between Docker
/// containers in the paper's deployment (§6.1). Sending to a missing
/// endpoint fails with NotFound (the node is dead), which the protocol
/// layers treat like a dropped RPC.
///
/// Mailboxes are bounded: a full mailbox rejects Send with
/// ResourceExhausted, the same backpressure the TCP bus applies when a
/// peer's outbox fills, so protocols behave identically on both transports.
class MessageBus : public Bus {
 public:
  /// Default per-mailbox capacity. Generous for the study protocol (a
  /// worker has at most a handful of frames in flight) while still bounding
  /// a runaway producer.
  static constexpr size_t kDefaultMailboxCapacity = 4096;

  explicit MessageBus(size_t mailbox_capacity = kDefaultMailboxCapacity)
      : mailbox_capacity_(mailbox_capacity) {}

  /// Creates a mailbox. AlreadyExists if the name is taken.
  Status RegisterEndpoint(const std::string& name) override;

  /// Removes a mailbox, waking any blocked receiver.
  Status RemoveEndpoint(const std::string& name) override;

  /// Delivers `message` to `to`'s mailbox; ResourceExhausted when full.
  Status Send(const std::string& to, Message message) override;

  /// Blocks until a message arrives at `name` or the endpoint is closed.
  /// nullopt means closed-and-drained.
  std::optional<Message> Receive(const std::string& name) override;

  /// Bounded-wait receive; nullopt on timeout or close.
  std::optional<Message> ReceiveFor(const std::string& name,
                                    std::chrono::milliseconds timeout) override;

  /// Non-blocking receive.
  std::optional<Message> TryReceive(const std::string& name) override;

  /// Closes every endpoint (used at shutdown).
  void CloseAll() override;

  bool HasEndpoint(const std::string& name) const override;
  bool EndpointClosed(const std::string& name) const override;
  size_t QueueDepth(const std::string& name) const override;
  BusStats Stats() const override;

 private:
  using Mailbox = BlockingQueue<Message>;

  std::shared_ptr<Mailbox> Find(const std::string& name) const;

  const size_t mailbox_capacity_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Mailbox>> endpoints_;
  std::atomic<uint64_t> sent_{0};
  std::atomic<uint64_t> send_errors_{0};
};

}  // namespace rafiki::cluster

#endif  // RAFIKI_CLUSTER_MESSAGE_BUS_H_
