#include "cluster/message.h"

#include "common/string_util.h"

namespace rafiki::cluster {

const char* MessageTypeToString(MessageType type) {
  switch (type) {
    case MessageType::kRequest:
      return "kRequest";
    case MessageType::kTrial:
      return "kTrial";
    case MessageType::kNoMoreTrials:
      return "kNoMoreTrials";
    case MessageType::kReport:
      return "kReport";
    case MessageType::kFinish:
      return "kFinish";
    case MessageType::kPut:
      return "kPut";
    case MessageType::kStop:
      return "kStop";
    case MessageType::kShutdown:
      return "kShutdown";
    case MessageType::kPsPut:
      return "kPsPut";
    case MessageType::kPsGet:
      return "kPsGet";
    case MessageType::kPsValue:
      return "kPsValue";
    case MessageType::kPsAck:
      return "kPsAck";
  }
  return "unknown";
}

std::string Message::DebugString() const {
  return StrFormat("Message{%s from=%s trial=%lld p=%.4f}",
                   MessageTypeToString(type), from.c_str(),
                   static_cast<long long>(trial_id), performance);
}

}  // namespace rafiki::cluster
