#ifndef RAFIKI_CLUSTER_FRAME_H_
#define RAFIKI_CLUSTER_FRAME_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cluster/message.h"
#include "common/result.h"

namespace rafiki::cluster {

/// Wire format of the TCP tuning bus: length-prefixed binary frames.
///
///   offset  size  field
///   0       4     magic 0x52464B42 ("RFKB", little-endian u32)
///   4       1     version (currently 1)
///   5       1     frame type (FrameType)
///   6       2     reserved, must be zero
///   8       4     payload length (little-endian u32, <= kMaxFramePayload)
///   12      N     payload
///
/// Every multi-byte integer on the wire is little-endian. Violations map to
/// explicit statuses so a corrupt or hostile peer can never crash the
/// process: bad magic / nonzero reserved / unknown type -> InvalidArgument,
/// unsupported version -> Unimplemented, oversized payload -> OutOfRange.

enum class FrameType : uint8_t {
  kAnnounce = 1,  // payload: endpoint list the sender can receive for
  kWithdraw = 2,  // payload: endpoint list no longer routable via sender
  kMessage = 3,   // payload: envelope (destination endpoint + Message)
  kPing = 4,      // payload: empty (liveness probe; echoed as-is)
};

constexpr uint32_t kFrameMagic = 0x52464B42u;  // "RFKB"
constexpr uint8_t kFrameVersion = 1;
constexpr size_t kFrameHeaderBytes = 12;
/// Payload cap: a PS checkpoint (a few MB of fp32 tensors) fits with a wide
/// margin; anything larger is a protocol violation, not a bigger buffer.
constexpr size_t kMaxFramePayload = 64u << 20;

struct Frame {
  FrameType type = FrameType::kPing;
  std::string payload;
};

/// Appends one encoded frame to `out`.
void AppendFrame(FrameType type, std::string_view payload, std::string* out);

/// Incremental frame decoder, fed arbitrary byte slices (possibly one byte
/// at a time — torn frames are reassembled). Once a protocol violation is
/// seen the stream is poisoned: every later Next() repeats the error, since
/// resynchronizing inside a length-prefixed stream is not possible.
class FrameDecoder {
 public:
  /// Buffers `len` bytes from the wire.
  void Feed(const char* data, size_t len);

  /// Returns the next complete frame, nullopt when more bytes are needed,
  /// or the protocol error that poisoned the stream.
  Result<std::optional<Frame>> Next();

  bool failed() const { return failed_; }
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  size_t pos_ = 0;
  bool failed_ = false;
  Status error_;
};

/// Message payload codecs -----------------------------------------------

/// Serializes a `Message` (the master-worker protocol unit) addressed to
/// endpoint `to` — the payload of a kMessage frame.
std::string EncodeEnvelope(const std::string& to, const Message& message);

/// Inverse of EncodeEnvelope. InvalidArgument on truncation, trailing
/// garbage, or an out-of-range message type.
Result<std::pair<std::string, Message>> DecodeEnvelope(
    std::string_view payload);

/// Endpoint-list payloads of kAnnounce / kWithdraw frames.
std::string EncodeEndpointList(const std::vector<std::string>& endpoints);
Result<std::vector<std::string>> DecodeEndpointList(std::string_view payload);

}  // namespace rafiki::cluster

#endif  // RAFIKI_CLUSTER_FRAME_H_
