#ifndef RAFIKI_CLUSTER_PROCESS_RUNNER_H_
#define RAFIKI_CLUSTER_PROCESS_RUNNER_H_

#include <sys/types.h>

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace rafiki::cluster {

/// How a supervised process ended. `signaled` distinguishes a crash or a
/// kill -9 (restart it) from a clean exit (it finished its work).
struct ProcessExit {
  std::string name;
  int exit_code = 0;   // valid when !signaled
  bool signaled = false;
  int signal = 0;      // valid when signaled
};

/// Command line for a supervised process; retained so Restart can relaunch
/// the same binary with the same arguments.
struct ProcessSpec {
  std::string binary;
  std::vector<std::string> args;  // argv[1..]; argv[0] is `binary`
};

/// Fork/exec analogue of NodeManager: where NodeManager runs "containers"
/// as threads, ProcessRunner runs them as real child processes, so failure
/// injection is an actual SIGKILL and recovery crosses a process boundary
/// (the paper's §6.3 deployment, Docker containers per node). Tracks
/// restart counts for the recovery ledger.
///
/// Thread-safe. Children are reaped only through this class (waitpid by
/// exact pid), so it composes with other child-process users.
class ProcessRunner {
 public:
  ProcessRunner() = default;
  ~ProcessRunner();
  ProcessRunner(const ProcessRunner&) = delete;
  ProcessRunner& operator=(const ProcessRunner&) = delete;

  /// Fork/execs `spec` under `name`. AlreadyExists while a process of that
  /// name is still running (a finished name may be respawned).
  Status Spawn(const std::string& name, const ProcessSpec& spec);

  /// SIGKILLs the process and reaps it — failure injection. NotFound if
  /// unknown; FailedPrecondition if it already exited.
  Status Kill(const std::string& name);

  /// Kills the process if still running, relaunches its retained spec, and
  /// increments its restart count (crash recovery).
  Status Restart(const std::string& name);

  /// True while the child has neither exited nor been reaped.
  bool IsRunning(const std::string& name) const;

  int RestartCount(const std::string& name) const;

  /// Blocks until the child exits and returns how it ended. Immediate if
  /// it was already reaped.
  Result<ProcessExit> Wait(const std::string& name);

  /// Non-blocking sweep: reaps every child that has exited since the last
  /// call and returns their exits. A supervisor loop polls this and
  /// restarts the casualties.
  std::vector<ProcessExit> Poll();

  Result<pid_t> Pid(const std::string& name) const;

  std::vector<std::string> List() const;

  /// Kills and reaps everything (also run by the destructor).
  void Shutdown();

 private:
  struct Process {
    ProcessSpec spec;
    pid_t pid = -1;
    bool running = false;
    ProcessExit exit;  // valid once !running
    int restarts = 0;
  };

  static Result<pid_t> Fork(const ProcessSpec& spec);
  static ProcessExit MakeExit(const std::string& name, int wait_status);
  /// Reaps `proc` if it has exited; blocking when `block`. Returns whether
  /// the process is now reaped. Requires mu_.
  bool ReapLocked(const std::string& name, Process& proc, bool block);

  mutable std::mutex mu_;
  std::unordered_map<std::string, Process> procs_;
};

}  // namespace rafiki::cluster

#endif  // RAFIKI_CLUSTER_PROCESS_RUNNER_H_
