#ifndef RAFIKI_CLUSTER_RPC_BUS_H_
#define RAFIKI_CLUSTER_RPC_BUS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/bus.h"
#include "cluster/frame.h"
#include "cluster/message.h"
#include "common/blocking_queue.h"
#include "common/result.h"
#include "net/event_loop.h"
#include "net/socket.h"

namespace rafiki::cluster {

struct RpcBusOptions {
  /// Hub: port to listen on (0 = ephemeral). Leaf: port of the hub.
  uint16_t port = 0;
  /// Leaf only: address of the hub.
  std::string connect_host = "127.0.0.1";
  /// Per-mailbox capacity, matching MessageBus semantics.
  size_t mailbox_capacity = 4096;
  /// Per-connection outbox cap; a peer that stops reading eventually makes
  /// sends fail ResourceExhausted instead of buffering without bound.
  size_t outbox_capacity_bytes = 256u << 20;
  /// Leaf reconnect backoff: first delay, doubling up to the cap.
  std::chrono::milliseconds reconnect_initial{50};
  std::chrono::milliseconds reconnect_max{2000};
};

/// TCP implementation of `Bus`: length-prefixed binary frames (see
/// frame.h) over a `net::EventLoop`, in a hub-and-leaves topology that
/// mirrors the master-worker star of the tuning protocol.
///
///  * The hub (`RpcBus::Listen`) accepts leaf connections and routes
///    kMessage envelopes by destination endpoint. Leaves announce their
///    local endpoints on connect (kAnnounce) and the hub records
///    endpoint -> connection routes; when a leaf's socket dies every route
///    through it is dropped, so later sends fail NotFound — exactly the
///    dropped-RPC signal the in-process bus gives for a dead worker.
///  * A leaf (`RpcBus::Connect`) delivers locally when the destination is
///    one of its own endpoints and forwards everything else upstream to
///    the hub. While the upstream link is down, sends fail NotFound and a
///    background capped exponential backoff re-dials the hub, re-announcing
///    the leaf's endpoints on success.
///  * The hub gossips its routing table downstream: every leaf learns the
///    full endpoint set (hub locals plus other leaves') and withdraws, so a
///    leaf send to an endpoint the cluster does not know fails NotFound at
///    the leaf instead of being silently dropped at the hub.
///
/// All Bus methods are thread-safe; the reactor runs on one internal
/// thread woken when senders enqueue outbound frames (outboxes flush in
/// the loop's end-of-tick hook). Reconnect backoff is a one-shot wheel
/// timer, so a downed hub is re-dialed at the exact deadline — there is no
/// safety polling tick.
class RpcBus : public Bus {
 public:
  /// Starts a hub listening on options.port (0 = ephemeral; see `port()`).
  static Result<std::unique_ptr<RpcBus>> Listen(const RpcBusOptions& options);

  /// Starts a leaf dialing the hub at connect_host:port. A failed first
  /// dial is not fatal: the bus starts disconnected and the backoff loop
  /// keeps retrying, so workers may start before the master listens.
  static Result<std::unique_ptr<RpcBus>> Connect(const RpcBusOptions& options);

  ~RpcBus() override;

  Status RegisterEndpoint(const std::string& name) override;
  Status RemoveEndpoint(const std::string& name) override;
  Status Send(const std::string& to, Message message) override;
  std::optional<Message> Receive(const std::string& name) override;
  std::optional<Message> ReceiveFor(const std::string& name,
                                    std::chrono::milliseconds timeout) override;
  std::optional<Message> TryReceive(const std::string& name) override;
  void CloseAll() override;
  bool HasEndpoint(const std::string& name) const override;
  bool EndpointClosed(const std::string& name) const override;
  size_t QueueDepth(const std::string& name) const override;
  BusStats Stats() const override;

  /// Hub: the bound listening port. Leaf: the hub port it dials.
  uint16_t port() const { return port_; }

  /// Leaf: true while the upstream link is established.
  bool connected() const;

  /// Stops the event loop and closes every connection and local mailbox.
  /// Idempotent; the destructor calls it.
  void Shutdown();

 private:
  using Mailbox = BlockingQueue<Message>;
  using Clock = std::chrono::steady_clock;

  struct Conn {
    net::Socket sock;
    FrameDecoder decoder;           // loop thread only
    std::string outbox;             // guarded by mu_
    size_t outbox_pos = 0;          // guarded by mu_
    bool want_write = false;        // loop thread only
    std::set<std::string> routes;   // endpoints announced via this conn
  };

  RpcBus(const RpcBusOptions& options, bool is_hub);

  Status Init();  // reactor + (hub) listen socket; starts the loop thread
  void HandleAccept();
  void HandleReadable(int fd);
  bool HandleFrame(int fd, Frame frame);  // false: the connection was closed
  void DeliverLocal(const std::string& to, Message message);
  void FlushOutboxes();
  void CloseConn(int fd);
  /// Leaf, loop thread only: arms the one-shot reconnect timer.
  void ScheduleReconnect(std::chrono::milliseconds delay);
  /// Leaf, loop thread only: one dial attempt; failure doubles the backoff
  /// (capped) and re-arms the timer.
  void TryDial();
  void AdoptConn(net::Socket sock, bool is_upstream)
      /* requires loop thread or pre-loop init */;
  Status EnqueueFrameLocked(Conn* conn, FrameType type,
                            std::string_view payload)
      /* requires mu_ */;
  void Wake();
  std::shared_ptr<Mailbox> FindMailbox(const std::string& name) const;
  std::vector<std::string> LocalEndpointsLocked() const /* requires mu_ */;

  const RpcBusOptions options_;
  const bool is_hub_;
  uint16_t port_ = 0;

  net::Socket listen_sock_;  // hub only
  /// The bus's reactor: conn/listen fd watchers plus the reconnect timer.
  std::unique_ptr<net::EventLoop> loop_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Mailbox>> endpoints_;
  std::unordered_map<std::string, int> routes_;  // hub: endpoint -> conn fd
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  int upstream_fd_ = -1;  // leaf: fd of the hub link, -1 while down

  // Reconnect state, loop thread only.
  std::chrono::milliseconds backoff_{0};

  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> sent_{0};
  std::atomic<uint64_t> delivered_{0};
  std::atomic<uint64_t> send_errors_{0};
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> reconnects_{0};

  std::thread loop_thread_;
};

}  // namespace rafiki::cluster

#endif  // RAFIKI_CLUSTER_RPC_BUS_H_
