#include "cluster/rpc_bus.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"

namespace rafiki::cluster {
namespace {

/// Once this much of an outbox has been flushed, reclaim the prefix.
constexpr size_t kOutboxCompactBytes = 1u << 20;

}  // namespace

Result<std::unique_ptr<RpcBus>> RpcBus::Listen(const RpcBusOptions& options) {
  std::unique_ptr<RpcBus> bus(new RpcBus(options, /*is_hub=*/true));
  Status status = bus->Init();
  if (!status.ok()) return status;
  return bus;
}

Result<std::unique_ptr<RpcBus>> RpcBus::Connect(const RpcBusOptions& options) {
  std::unique_ptr<RpcBus> bus(new RpcBus(options, /*is_hub=*/false));
  Status status = bus->Init();
  if (!status.ok()) return status;
  return bus;
}

RpcBus::RpcBus(const RpcBusOptions& options, bool is_hub)
    : options_(options), is_hub_(is_hub) {}

RpcBus::~RpcBus() { Shutdown(); }

Status RpcBus::Init() {
  loop_ = std::make_unique<net::EventLoop>();
  // Outboxes flush in the end-of-tick hook: every wakeup — readable
  // socket, EPOLLOUT readiness, or a sender's Wake() — ends with one drain
  // pass, exactly as each iteration of the old hand-rolled loop did.
  loop_->SetTickEndHook([this] { FlushOutboxes(); });

  if (is_hub_) {
    auto listening = net::ListenTcp(options_.port, /*backlog=*/128, &port_);
    if (!listening.ok()) return listening.status();
    listen_sock_ = std::move(listening).value();
    Status added = loop_->AddFd(listen_sock_.fd(), /*want_read=*/true,
                                /*want_write=*/false,
                                [this](uint32_t) { HandleAccept(); });
    if (!added.ok()) return added;
  } else {
    port_ = options_.port;
    auto sock = net::ConnectTcp(options_.connect_host, port_, /*timeout=*/0);
    if (sock.ok()) {
      AdoptConn(std::move(sock).value(), /*is_upstream=*/true);
    } else {
      // Not fatal: the reconnect timer keeps dialing with backoff, so a
      // worker may start before the master listens.
      backoff_ = options_.reconnect_initial;
      ScheduleReconnect(backoff_);
    }
  }

  loop_thread_ = std::thread([this] { loop_->Run(); });
  return Status::OK();
}

void RpcBus::HandleAccept() {
  while (true) {
    int fd = accept(listen_sock_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or a transient accept error: try again next wakeup
    }
    AdoptConn(net::Socket(fd), /*is_upstream=*/false);
  }
}

void RpcBus::AdoptConn(net::Socket sock, bool is_upstream) {
  int fd = sock.fd();
  if (!net::SetNonBlocking(fd, true).ok()) return;
  (void)net::SetNoDelay(fd);  // best-effort: latency, not correctness
  Status added =
      loop_->AddFd(fd, /*want_read=*/true, /*want_write=*/false,
                   [this, fd](uint32_t events) {
                     if (events & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
                       HandleReadable(fd);
                     }
                     // EPOLLOUT needs no per-event work: the end-of-tick
                     // FlushOutboxes drains every pending outbox.
                   });
  if (!added.ok()) {
    RAFIKI_LOG(WARNING) << "rpc bus watch add failed: " << added.ToString();
    return;  // sock closes on scope exit
  }
  auto conn = std::make_unique<Conn>();
  conn->sock = std::move(sock);
  std::lock_guard<std::mutex> lock(mu_);
  Conn* raw = (conns_[fd] = std::move(conn)).get();
  if (is_upstream) {
    upstream_fd_ = fd;
    std::vector<std::string> locals = LocalEndpointsLocked();
    if (!locals.empty()) {
      (void)EnqueueFrameLocked(raw, FrameType::kAnnounce,
                               EncodeEndpointList(locals));
    }
  } else {
    // Hub: seed the new leaf with every endpoint the cluster knows — hub
    // locals plus routes learned from other leaves.
    std::vector<std::string> known = LocalEndpointsLocked();
    for (const auto& [endpoint, via] : routes_) known.push_back(endpoint);
    if (!known.empty()) {
      (void)EnqueueFrameLocked(raw, FrameType::kAnnounce,
                               EncodeEndpointList(known));
    }
  }
}

void RpcBus::HandleReadable(int fd) {
  Conn* conn = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    conn = it->second.get();  // only the loop thread erases conns_
  }
  char buf[65536];
  while (true) {
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->decoder.Feed(buf, static_cast<size_t>(n));
      while (true) {
        auto next = conn->decoder.Next();
        if (!next.ok()) {
          RAFIKI_LOG(WARNING) << "rpc bus dropping peer (fd " << fd
                              << "): " << next.status().ToString();
          CloseConn(fd);
          return;
        }
        if (!next.value().has_value()) break;
        frames_received_.fetch_add(1, std::memory_order_relaxed);
        if (!HandleFrame(fd, std::move(*next.value()))) return;
      }
      if (n < static_cast<ssize_t>(sizeof(buf))) return;  // drained
      continue;
    }
    if (n == 0) {
      CloseConn(fd);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    CloseConn(fd);
    return;
  }
}

bool RpcBus::HandleFrame(int fd, Frame frame) {
  switch (frame.type) {
    case FrameType::kPing: {
      // The hub echoes pings; a leaf treats an incoming ping as the echo.
      if (is_hub_) {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = conns_.find(fd);
        if (it != conns_.end()) {
          (void)EnqueueFrameLocked(it->second.get(), FrameType::kPing, "");
        }
      }
      return true;
    }
    case FrameType::kAnnounce:
    case FrameType::kWithdraw: {
      auto decoded = DecodeEndpointList(frame.payload);
      if (!decoded.ok()) {
        RAFIKI_LOG(WARNING) << "rpc bus bad endpoint list: "
                            << decoded.status().ToString();
        CloseConn(fd);
        return false;
      }
      const bool add = frame.type == FrameType::kAnnounce;
      std::lock_guard<std::mutex> lock(mu_);
      auto it = conns_.find(fd);
      if (it == conns_.end()) return false;
      Conn* conn = it->second.get();
      for (const std::string& endpoint : decoded.value()) {
        if (add) {
          routes_[endpoint] = fd;
          conn->routes.insert(endpoint);
        } else {
          auto rit = routes_.find(endpoint);
          if (rit != routes_.end() && rit->second == fd) routes_.erase(rit);
          conn->routes.erase(endpoint);
        }
      }
      if (is_hub_) {
        // Re-gossip so every leaf sees the full cluster routing table.
        for (auto& [other_fd, other] : conns_) {
          if (other_fd == fd) continue;
          (void)EnqueueFrameLocked(other.get(), frame.type, frame.payload);
        }
      }
      return true;
    }
    case FrameType::kMessage: {
      auto decoded = DecodeEnvelope(frame.payload);
      if (!decoded.ok()) {
        RAFIKI_LOG(WARNING) << "rpc bus bad envelope: "
                            << decoded.status().ToString();
        CloseConn(fd);
        return false;
      }
      std::string& to = decoded.value().first;
      Message& message = decoded.value().second;
      if (std::shared_ptr<Mailbox> box = FindMailbox(to)) {
        DeliverLocal(to, std::move(message));
        return true;
      }
      if (!is_hub_) {
        // A leaf received a message for an endpoint it no longer owns
        // (removed after the hub forwarded). Count the drop.
        send_errors_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      std::lock_guard<std::mutex> lock(mu_);
      auto rit = routes_.find(to);
      if (rit == routes_.end()) {
        send_errors_.fetch_add(1, std::memory_order_relaxed);
        RAFIKI_LOG(WARNING) << "rpc bus dropping message for unroutable '"
                            << to << "'";
        return true;
      }
      auto cit = conns_.find(rit->second);
      if (cit == conns_.end() ||
          !EnqueueFrameLocked(cit->second.get(), FrameType::kMessage,
                              frame.payload)
               .ok()) {
        send_errors_.fetch_add(1, std::memory_order_relaxed);
      }
      return true;
    }
  }
  return true;  // unreachable: the decoder rejects unknown types
}

void RpcBus::DeliverLocal(const std::string& to, Message message) {
  std::shared_ptr<Mailbox> box = FindMailbox(to);
  // Counted before the push: a receiver that wakes on the push must see
  // the delivery in Stats(). A failed push rolls the count back.
  delivered_.fetch_add(1, std::memory_order_relaxed);
  if (box == nullptr || !box->TryPush(std::move(message))) {
    delivered_.fetch_sub(1, std::memory_order_relaxed);
    send_errors_.fetch_add(1, std::memory_order_relaxed);
    RAFIKI_LOG(WARNING) << "rpc bus dropping wire message for '" << to
                        << "' (mailbox missing or full)";
    return;
  }
}

void RpcBus::FlushOutboxes() {
  std::vector<int> dead;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [fd, conn] : conns_) {
      bool fatal = false;
      while (conn->outbox_pos < conn->outbox.size()) {
        ssize_t n = send(fd, conn->outbox.data() + conn->outbox_pos,
                         conn->outbox.size() - conn->outbox_pos,
                         MSG_NOSIGNAL);
        if (n > 0) {
          conn->outbox_pos += static_cast<size_t>(n);
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        fatal = true;
        break;
      }
      if (fatal) {
        dead.push_back(fd);
        continue;
      }
      if (conn->outbox_pos >= conn->outbox.size()) {
        conn->outbox.clear();
        conn->outbox_pos = 0;
        if (conn->want_write) {
          (void)loop_->ModifyFd(fd, /*want_read=*/true,
                                /*want_write=*/false);
          conn->want_write = false;
        }
      } else {
        if (conn->outbox_pos > kOutboxCompactBytes &&
            conn->outbox_pos > conn->outbox.size() / 2) {
          conn->outbox.erase(0, conn->outbox_pos);
          conn->outbox_pos = 0;
        }
        if (!conn->want_write) {
          (void)loop_->ModifyFd(fd, /*want_read=*/true,
                                /*want_write=*/true);
          conn->want_write = true;
        }
      }
    }
  }
  for (int fd : dead) CloseConn(fd);
}

void RpcBus::CloseConn(int fd) {
  std::unique_ptr<Conn> conn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    conn = std::move(it->second);
    conns_.erase(it);
    (void)loop_->RemoveFd(fd);
    // Only endpoints still routed through this fd are lost: a restarted
    // peer may have re-announced the same names over a newer connection,
    // and those routes (and the gossip about them) must survive.
    std::vector<std::string> lost;
    for (const std::string& endpoint : conn->routes) {
      auto rit = routes_.find(endpoint);
      if (rit != routes_.end() && rit->second == fd) {
        routes_.erase(rit);
        lost.push_back(endpoint);
      }
    }
    if (is_hub_ && !lost.empty()) {
      // Withdraw the dead leaf's endpoints from every surviving leaf.
      std::string payload = EncodeEndpointList(lost);
      for (auto& [other_fd, other] : conns_) {
        (void)EnqueueFrameLocked(other.get(), FrameType::kWithdraw, payload);
      }
    }
    if (!is_hub_ && fd == upstream_fd_) {
      upstream_fd_ = -1;
      routes_.clear();  // everything we knew came from the dead hub
    }
  }
  if (!is_hub_) {
    // Loop-thread-only state: retry at the next tick, then back off. The
    // wheel timer IS the deadline — no polling tick rounds it up.
    backoff_ = options_.reconnect_initial;
    ScheduleReconnect(std::chrono::milliseconds(0));
  }
  // `conn` destructs here: the socket closes after the watcher removal.
}

void RpcBus::ScheduleReconnect(std::chrono::milliseconds delay) {
  loop_->RunAfter(std::chrono::duration<double>(delay).count(),
                  [this] { TryDial(); });
}

void RpcBus::TryDial() {
  if (is_hub_ || stopping_.load(std::memory_order_acquire)) return;
  if (connected()) return;
  auto sock = net::ConnectTcp(options_.connect_host, port_, /*timeout=*/0);
  if (!sock.ok()) {
    backoff_ = backoff_.count() == 0
                   ? options_.reconnect_initial
                   : std::min(backoff_ * 2, options_.reconnect_max);
    ScheduleReconnect(backoff_);
    return;
  }
  AdoptConn(std::move(sock).value(), /*is_upstream=*/true);
  reconnects_.fetch_add(1, std::memory_order_relaxed);
  backoff_ = options_.reconnect_initial;
  RAFIKI_LOG(INFO) << "rpc bus reconnected to " << options_.connect_host
                   << ":" << port_;
}

Status RpcBus::EnqueueFrameLocked(Conn* conn, FrameType type,
                                  std::string_view payload) {
  size_t pending = conn->outbox.size() - conn->outbox_pos;
  if (pending + kFrameHeaderBytes + payload.size() >
      options_.outbox_capacity_bytes) {
    return Status::ResourceExhausted(
        StrFormat("peer outbox full (%zu bytes pending)", pending));
  }
  AppendFrame(type, payload, &conn->outbox);
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void RpcBus::Wake() { loop_->Wake(); }

Status RpcBus::RegisterEndpoint(const std::string& name) {
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = endpoints_.try_emplace(name, nullptr);
    if (!inserted) {
      return Status::AlreadyExists(
          StrFormat("endpoint '%s' exists", name.c_str()));
    }
    it->second = std::make_shared<Mailbox>(options_.mailbox_capacity);
    std::string payload = EncodeEndpointList({name});
    if (is_hub_) {
      for (auto& [fd, conn] : conns_) {
        (void)EnqueueFrameLocked(conn.get(), FrameType::kAnnounce, payload);
        wake = true;
      }
    } else if (upstream_fd_ >= 0) {
      auto cit = conns_.find(upstream_fd_);
      if (cit != conns_.end()) {
        (void)EnqueueFrameLocked(cit->second.get(), FrameType::kAnnounce,
                                 payload);
        wake = true;
      }
    }
  }
  if (wake) Wake();
  return Status::OK();
}

Status RpcBus::RemoveEndpoint(const std::string& name) {
  std::shared_ptr<Mailbox> box;
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = endpoints_.find(name);
    if (it == endpoints_.end()) {
      return Status::NotFound(StrFormat("no endpoint '%s'", name.c_str()));
    }
    box = it->second;
    endpoints_.erase(it);
    std::string payload = EncodeEndpointList({name});
    if (is_hub_) {
      for (auto& [fd, conn] : conns_) {
        (void)EnqueueFrameLocked(conn.get(), FrameType::kWithdraw, payload);
        wake = true;
      }
    } else if (upstream_fd_ >= 0) {
      auto cit = conns_.find(upstream_fd_);
      if (cit != conns_.end()) {
        (void)EnqueueFrameLocked(cit->second.get(), FrameType::kWithdraw,
                                 payload);
        wake = true;
      }
    }
  }
  box->Close();
  if (wake) Wake();
  return Status::OK();
}

Status RpcBus::Send(const std::string& to, Message message) {
  if (std::shared_ptr<Mailbox> box = FindMailbox(to)) {
    // Same ordering as DeliverLocal: the counters lead the push so a
    // receiver woken by it can never read a stale Stats().
    sent_.fetch_add(1, std::memory_order_relaxed);
    delivered_.fetch_add(1, std::memory_order_relaxed);
    if (!box->TryPush(std::move(message))) {
      sent_.fetch_sub(1, std::memory_order_relaxed);
      delivered_.fetch_sub(1, std::memory_order_relaxed);
      send_errors_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          StrFormat("mailbox '%s' full (%zu messages)", to.c_str(),
                    box->capacity()));
    }
    return Status::OK();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    int fd = -1;
    if (is_hub_) {
      auto rit = routes_.find(to);
      if (rit == routes_.end()) {
        send_errors_.fetch_add(1, std::memory_order_relaxed);
        return Status::NotFound(
            StrFormat("no route to endpoint '%s'", to.c_str()));
      }
      fd = rit->second;
    } else {
      if (upstream_fd_ < 0) {
        send_errors_.fetch_add(1, std::memory_order_relaxed);
        return Status::NotFound(StrFormat(
            "hub link down; endpoint '%s' unreachable", to.c_str()));
      }
      if (routes_.count(to) == 0) {
        send_errors_.fetch_add(1, std::memory_order_relaxed);
        return Status::NotFound(
            StrFormat("no route to endpoint '%s'", to.c_str()));
      }
      fd = upstream_fd_;
    }
    auto cit = conns_.find(fd);
    if (cit == conns_.end()) {
      send_errors_.fetch_add(1, std::memory_order_relaxed);
      return Status::NotFound(
          StrFormat("connection for '%s' is gone", to.c_str()));
    }
    Status status = EnqueueFrameLocked(cit->second.get(), FrameType::kMessage,
                                       EncodeEnvelope(to, message));
    if (!status.ok()) {
      send_errors_.fetch_add(1, std::memory_order_relaxed);
      return status;
    }
    sent_.fetch_add(1, std::memory_order_relaxed);
  }
  Wake();
  return Status::OK();
}

std::optional<Message> RpcBus::Receive(const std::string& name) {
  std::shared_ptr<Mailbox> box = FindMailbox(name);
  if (box == nullptr) return std::nullopt;
  return box->Pop();
}

std::optional<Message> RpcBus::ReceiveFor(const std::string& name,
                                          std::chrono::milliseconds timeout) {
  std::shared_ptr<Mailbox> box = FindMailbox(name);
  if (box == nullptr) return std::nullopt;
  return box->PopFor(timeout);
}

std::optional<Message> RpcBus::TryReceive(const std::string& name) {
  std::shared_ptr<Mailbox> box = FindMailbox(name);
  if (box == nullptr) return std::nullopt;
  return box->TryPop();
}

void RpcBus::CloseAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, box] : endpoints_) box->Close();
}

bool RpcBus::EndpointClosed(const std::string& name) const {
  std::shared_ptr<Mailbox> box = FindMailbox(name);
  return box == nullptr || box->closed();
}

bool RpcBus::HasEndpoint(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return endpoints_.count(name) > 0 || routes_.count(name) > 0;
}

size_t RpcBus::QueueDepth(const std::string& name) const {
  std::shared_ptr<Mailbox> box = FindMailbox(name);
  return box == nullptr ? 0 : box->size();
}

BusStats RpcBus::Stats() const {
  BusStats stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.endpoints = endpoints_.size();
    for (const auto& [name, box] : endpoints_) stats.queued += box->size();
  }
  stats.messages_sent = sent_.load(std::memory_order_relaxed);
  stats.messages_delivered = delivered_.load(std::memory_order_relaxed);
  stats.send_errors = send_errors_.load(std::memory_order_relaxed);
  stats.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  stats.frames_received = frames_received_.load(std::memory_order_relaxed);
  stats.reconnects = reconnects_.load(std::memory_order_relaxed);
  return stats;
}

bool RpcBus::connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return upstream_fd_ >= 0;
}

void RpcBus::Shutdown() {
  stopping_.store(true, std::memory_order_release);
  if (loop_ != nullptr) loop_->Stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, box] : endpoints_) box->Close();
  conns_.clear();
  routes_.clear();
  upstream_fd_ = -1;
  // Release the listening port now, not at destruction: a restarted hub
  // must be able to bind the same port, and a leaf redialing a shut-down
  // hub must get ECONNREFUSED instead of landing in a dead backlog.
  listen_sock_.Close();
  loop_.reset();
}

std::shared_ptr<RpcBus::Mailbox> RpcBus::FindMailbox(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = endpoints_.find(name);
  return it == endpoints_.end() ? nullptr : it->second;
}

std::vector<std::string> RpcBus::LocalEndpointsLocked() const {
  std::vector<std::string> names;
  names.reserve(endpoints_.size());
  for (const auto& [name, box] : endpoints_) names.push_back(name);
  return names;
}

}  // namespace rafiki::cluster
