#ifndef RAFIKI_CLUSTER_BUS_H_
#define RAFIKI_CLUSTER_BUS_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "cluster/message.h"
#include "common/status.h"

namespace rafiki::cluster {

/// Counters shared by every bus implementation. Frame counters are zero on
/// the in-process loopback bus (no wire); message counters tick on both.
struct BusStats {
  uint64_t endpoints = 0;           // locally-registered mailboxes
  uint64_t queued = 0;              // messages waiting across all mailboxes
  uint64_t messages_sent = 0;       // successful Send() calls
  uint64_t messages_delivered = 0;  // messages placed into a local mailbox
  uint64_t send_errors = 0;         // NotFound / ResourceExhausted sends
  uint64_t frames_sent = 0;         // TCP frames written (RpcBus only)
  uint64_t frames_received = 0;     // TCP frames decoded (RpcBus only)
  uint64_t reconnects = 0;          // upstream re-dials (RpcBus leaf only)
};

/// The channel between study masters and workers — the paper's RPC layer
/// between Docker containers (§6.1). Two implementations share this
/// contract: the in-process `MessageBus` (named mailboxes, the loopback
/// transport every existing test runs on) and the TCP `RpcBus`
/// (length-prefixed frames over real sockets, for multi-process tuning).
///
/// Semantics every implementation must honor:
///  * `Send` to an endpoint nobody registered (or whose peer died) fails
///    NotFound — a dropped RPC the protocol layers retry around;
///  * mailboxes are bounded: `Send` into a full mailbox fails
///    ResourceExhausted instead of buffering without limit;
///  * `Receive` blocks until a message arrives or the endpoint closes
///    (nullopt = closed-and-drained); `TryReceive` never blocks.
class Bus {
 public:
  virtual ~Bus() = default;

  /// Creates a local mailbox. AlreadyExists if the name is taken.
  virtual Status RegisterEndpoint(const std::string& name) = 0;

  /// Removes a local mailbox, waking any blocked receiver.
  virtual Status RemoveEndpoint(const std::string& name) = 0;

  /// Delivers `message` to `to`'s mailbox (local or across the wire).
  virtual Status Send(const std::string& to, Message message) = 0;

  /// Blocks until a message arrives at local endpoint `name` or it closes.
  virtual std::optional<Message> Receive(const std::string& name) = 0;

  /// Bounded-wait receive: nullopt on timeout as well as on close. Lets a
  /// worker notice a dead master instead of blocking forever on a reply
  /// that will never come.
  virtual std::optional<Message> ReceiveFor(
      const std::string& name, std::chrono::milliseconds timeout) = 0;

  /// Non-blocking receive from a local endpoint.
  virtual std::optional<Message> TryReceive(const std::string& name) = 0;

  /// Closes every local endpoint (used at shutdown).
  virtual void CloseAll() = 0;

  /// True if `name` is deliverable from here (local, or known-remote).
  virtual bool HasEndpoint(const std::string& name) const = 0;

  /// True if local endpoint `name` is closed (or never existed): no future
  /// Receive can yield a message. RPC-style callers use this to abort
  /// retry loops when their own bus is being torn down, instead of
  /// spinning out their full timeout budget.
  virtual bool EndpointClosed(const std::string& name) const = 0;

  /// Depth of a local mailbox (0 for unknown/remote endpoints).
  virtual size_t QueueDepth(const std::string& name) const = 0;

  virtual BusStats Stats() const = 0;
};

}  // namespace rafiki::cluster

#endif  // RAFIKI_CLUSTER_BUS_H_
