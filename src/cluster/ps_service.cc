#include "cluster/ps_service.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "ps/checkpoint_codec.h"

namespace rafiki::cluster {
namespace {

/// One request attempt: how long to keep resending into a down link, then
/// how long to wait for the reply. Three attempts cover a master restart.
constexpr auto kSendBudget = std::chrono::seconds(5);
constexpr auto kReplyBudget = std::chrono::seconds(5);
constexpr int kAttempts = 3;
constexpr auto kRetryPause = std::chrono::milliseconds(5);

}  // namespace

PsService::PsService(Bus* bus, ps::ParameterStore* store)
    : bus_(bus), store_(store) {
  RAFIKI_CHECK(bus != nullptr);
  RAFIKI_CHECK(store != nullptr);
}

PsService::~PsService() { Stop(); }

Status PsService::Start() {
  Status status = bus_->RegisterEndpoint(kPsEndpoint);
  if (!status.ok()) return status;
  started_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void PsService::Stop() {
  if (!started_.exchange(false)) return;
  // Removing the endpoint closes the mailbox, so Loop's Receive drains and
  // returns nullopt.
  (void)bus_->RemoveEndpoint(kPsEndpoint);
  if (thread_.joinable()) thread_.join();
}

void PsService::Loop() {
  while (auto msg = bus_->Receive(kPsEndpoint)) {
    switch (msg->type) {
      case MessageType::kPsPut:
        HandlePut(*msg);
        break;
      case MessageType::kPsGet:
        HandleGet(*msg);
        break;
      default:
        RAFIKI_LOG(WARNING) << "ps service ignoring " << msg->DebugString();
    }
  }
}

void PsService::HandlePut(const Message& request) {
  served_.fetch_add(1, std::memory_order_relaxed);
  Message reply;
  reply.type = MessageType::kPsAck;
  reply.from = kPsEndpoint;
  reply.trial_id = request.trial_id;  // echo the request id

  auto scope_it = request.str_fields.find("scope");
  auto ckpt_it = request.str_fields.find("ckpt");
  if (scope_it == request.str_fields.end() ||
      ckpt_it == request.str_fields.end()) {
    reply.str_fields["error"] = "kPsPut missing scope/ckpt";
  } else {
    auto ckpt = ps::DeserializeCheckpoint(ckpt_it->second);
    if (!ckpt.ok()) {
      reply.str_fields["error"] = ckpt.status().ToString();
    } else {
      Status status = store_->PutModel(scope_it->second, ckpt.value());
      if (!status.ok()) reply.str_fields["error"] = status.ToString();
    }
  }
  (void)bus_->Send(request.from, std::move(reply));
}

void PsService::HandleGet(const Message& request) {
  served_.fetch_add(1, std::memory_order_relaxed);
  Message reply;
  reply.type = MessageType::kPsValue;
  reply.from = kPsEndpoint;
  reply.trial_id = request.trial_id;

  auto scope_it = request.str_fields.find("scope");
  if (scope_it == request.str_fields.end()) {
    reply.str_fields["error"] = "kPsGet missing scope";
  } else {
    auto ckpt = store_->GetModel(scope_it->second);
    if (!ckpt.ok()) {
      reply.str_fields["error"] = ckpt.status().ToString();
    } else {
      reply.str_fields["ckpt"] = ps::SerializeCheckpoint(ckpt.value());
    }
  }
  (void)bus_->Send(request.from, std::move(reply));
}

RemoteParameterStore::RemoteParameterStore(Bus* bus,
                                           const std::string& client_name)
    : bus_(bus), reply_endpoint_("ps/reply/" + client_name) {
  RAFIKI_CHECK(bus != nullptr);
  RAFIKI_CHECK_OK(bus_->RegisterEndpoint(reply_endpoint_));
}

RemoteParameterStore::~RemoteParameterStore() {
  (void)bus_->RemoveEndpoint(reply_endpoint_);
}

Result<Message> RemoteParameterStore::Call(Message request,
                                           MessageType want) {
  Status last = Status::Unavailable("ps call never attempted");
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    int64_t id = next_request_.fetch_add(1, std::memory_order_relaxed);
    request.trial_id = id;
    request.from = reply_endpoint_;

    // Resend until the link is up and the frame is accepted. A closed
    // reply mailbox means our own bus is being torn down: no reply can
    // ever arrive, so give up instead of burning the timeout budget.
    bool sent = false;
    auto send_deadline = std::chrono::steady_clock::now() + kSendBudget;
    while (std::chrono::steady_clock::now() < send_deadline) {
      if (bus_->EndpointClosed(reply_endpoint_)) {
        return Status::Cancelled("ps reply endpoint closed (bus shutdown)");
      }
      Message copy = request;
      Status status = bus_->Send(kPsEndpoint, std::move(copy));
      if (status.ok()) {
        sent = true;
        break;
      }
      last = status;
      std::this_thread::sleep_for(kRetryPause);
    }
    if (!sent) continue;

    // Wait for the matching reply; stale ids from abandoned attempts are
    // discarded.
    auto reply_deadline = std::chrono::steady_clock::now() + kReplyBudget;
    while (true) {
      auto now = std::chrono::steady_clock::now();
      if (now >= reply_deadline) {
        last = Status::DeadlineExceeded("ps reply timed out");
        break;
      }
      auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              reply_deadline - now);
      std::optional<Message> reply =
          bus_->ReceiveFor(reply_endpoint_, remaining);
      if (!reply.has_value()) {
        if (bus_->EndpointClosed(reply_endpoint_)) {
          return Status::Cancelled(
              "ps reply endpoint closed (bus shutdown)");
        }
        continue;  // timeout
      }
      if (reply->trial_id != id || reply->type != want) continue;
      return std::move(*reply);
    }
  }
  return Status::Unavailable(
      StrFormat("ps unreachable after %d attempts: %s", kAttempts,
                last.ToString().c_str()));
}

Status RemoteParameterStore::PutModel(const std::string& scope,
                                      const ps::ModelCheckpoint& ckpt) {
  Message request;
  request.type = MessageType::kPsPut;
  request.str_fields["scope"] = scope;
  request.str_fields["ckpt"] = ps::SerializeCheckpoint(ckpt);
  auto reply = Call(std::move(request), MessageType::kPsAck);
  if (!reply.ok()) return reply.status();
  auto error_it = reply.value().str_fields.find("error");
  if (error_it != reply.value().str_fields.end()) {
    return Status::Internal(error_it->second);
  }
  return Status::OK();
}

Result<ps::ModelCheckpoint> RemoteParameterStore::GetModel(
    const std::string& scope) {
  Message request;
  request.type = MessageType::kPsGet;
  request.str_fields["scope"] = scope;
  auto reply = Call(std::move(request), MessageType::kPsValue);
  if (!reply.ok()) return reply.status();
  auto error_it = reply.value().str_fields.find("error");
  if (error_it != reply.value().str_fields.end()) {
    // Pass NotFound through: an empty best-scope is an expected miss that
    // the warm-start path treats as "train from scratch".
    if (error_it->second.find("NOT_FOUND") != std::string::npos) {
      return Status::NotFound(error_it->second);
    }
    return Status::Internal(error_it->second);
  }
  auto ckpt_it = reply.value().str_fields.find("ckpt");
  if (ckpt_it == reply.value().str_fields.end()) {
    return Status::Internal("kPsValue missing ckpt payload");
  }
  return ps::DeserializeCheckpoint(ckpt_it->second);
}

}  // namespace rafiki::cluster
