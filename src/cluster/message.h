#ifndef RAFIKI_CLUSTER_MESSAGE_H_
#define RAFIKI_CLUSTER_MESSAGE_H_

#include <cstdint>
#include <map>
#include <string>

namespace rafiki::cluster {

/// Message kinds exchanged between a study master and its workers —
/// exactly the protocol of Algorithms 1 and 2 in the paper, plus the
/// transport-level kinds needed to run it over real queues.
enum class MessageType {
  kRequest,       // worker -> master: give me a trial
  kTrial,         // master -> worker: here is a trial to evaluate
  kNoMoreTrials,  // master -> worker: advisor exhausted; stop asking
  kReport,        // worker -> master: intermediate performance p for trial
  kFinish,        // worker -> master: trial completed
  kPut,           // master -> worker: publish your parameters to the PS
  kStop,          // master -> worker: early-stop the current trial
  kShutdown,      // manager -> anyone: terminate event loop
  // Parameter-server access for out-of-process workers (§6.2): the PS
  // lives in the master process; worker processes reach it through these.
  kPsPut,    // worker -> ps service: store a checkpoint blob under a scope
  kPsGet,    // worker -> ps service: fetch the checkpoint of a scope
  kPsValue,  // ps service -> worker: kPsGet reply (ok flag + blob)
  kPsAck,    // ps service -> worker: kPsPut reply (ok flag)
};

const char* MessageTypeToString(MessageType type);

/// A schemaless message. Trials, performances and checkpoints are encoded
/// into the typed field maps, keeping this transport independent of the
/// tuning layer (the paper's masters/workers exchange JSON over RPC; this
/// struct plays that role in-process).
struct Message {
  MessageType type = MessageType::kShutdown;
  std::string from;      // sender endpoint
  int64_t trial_id = -1;
  double performance = 0.0;
  std::map<std::string, double> num_fields;
  std::map<std::string, std::string> str_fields;

  std::string DebugString() const;
};

}  // namespace rafiki::cluster

#endif  // RAFIKI_CLUSTER_MESSAGE_H_
