#ifndef RAFIKI_CLUSTER_PS_SERVICE_H_
#define RAFIKI_CLUSTER_PS_SERVICE_H_

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "cluster/bus.h"
#include "cluster/message.h"
#include "common/result.h"
#include "ps/parameter_store.h"

namespace rafiki::cluster {

/// Endpoint the master-side PS service listens on.
inline constexpr const char* kPsEndpoint = "ps";

/// Master-side loop exposing the parameter server on the bus, so workers
/// in other processes share the same PS through kPsPut/kPsGet messages.
/// Requests carry the caller's reply endpoint in `from` and a request id
/// in `trial_id` (echoed back, so stale replies are discarded); checkpoint
/// payloads travel as ps::SerializeCheckpoint bytes in str_fields["ckpt"].
class PsService {
 public:
  PsService(Bus* bus, ps::ParameterStore* store);
  ~PsService();
  PsService(const PsService&) = delete;
  PsService& operator=(const PsService&) = delete;

  /// Registers the "ps" endpoint and starts the serving thread.
  Status Start();

  /// Removes the endpoint and joins the thread. Idempotent.
  void Stop();

  uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();
  void HandlePut(const Message& request);
  void HandleGet(const Message& request);

  Bus* bus_;
  ps::ParameterStore* store_;
  std::thread thread_;
  std::atomic<bool> started_{false};
  std::atomic<uint64_t> served_{0};
};

/// Worker-side ParameterStore that forwards PutModel/GetModel to the
/// master's PsService across the bus. Blocking with bounded retries: each
/// call resends on a dropped link (the master restarting) and times out
/// with DeadlineExceeded rather than hanging a trial forever.
class RemoteParameterStore : public ps::ParameterStore {
 public:
  /// `client_name` must be unique per process (it names the private reply
  /// endpoint "ps/reply/<client_name>").
  RemoteParameterStore(Bus* bus, const std::string& client_name);
  ~RemoteParameterStore() override;

  Status PutModel(const std::string& scope,
                  const ps::ModelCheckpoint& ckpt) override;
  Result<ps::ModelCheckpoint> GetModel(const std::string& scope) override;

 private:
  /// Sends `request` (stamped with a fresh id) until the service answers
  /// with `want` carrying the same id, or the deadline budget runs out.
  Result<Message> Call(Message request, MessageType want);

  Bus* bus_;
  std::string reply_endpoint_;
  std::atomic<int64_t> next_request_{1};
};

}  // namespace rafiki::cluster

#endif  // RAFIKI_CLUSTER_PS_SERVICE_H_
