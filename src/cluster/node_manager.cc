#include "cluster/node_manager.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace rafiki::cluster {

NodeManager::~NodeManager() { Shutdown(); }

void NodeManager::Launch(Container& c) {
  c.token = std::make_shared<CancelToken>();
  c.running = std::make_shared<std::atomic<bool>>(true);
  auto token = c.token;  // keep alive for the thread's whole lifetime
  auto running = c.running;
  ContainerBody body = c.body;
  c.thread = std::thread([body = std::move(body), token, running]() {
    body(*token);
    running->store(false, std::memory_order_release);
  });
}

Status NodeManager::StartContainer(const std::string& name,
                                   ContainerBody body) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = containers_.try_emplace(name);
  if (!inserted) {
    return Status::AlreadyExists(
        StrFormat("container '%s' exists", name.c_str()));
  }
  it->second.body = std::move(body);
  Launch(it->second);
  return Status::OK();
}

Status NodeManager::KillContainer(const std::string& name) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = containers_.find(name);
  if (it == containers_.end()) {
    return Status::NotFound(StrFormat("no container '%s'", name.c_str()));
  }
  it->second.token->Cancel();
  std::thread t = std::move(it->second.thread);
  containers_.erase(it);
  lock.unlock();
  if (t.joinable()) t.join();
  return Status::OK();
}

Status NodeManager::RestartContainer(const std::string& name) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = containers_.find(name);
  if (it == containers_.end()) {
    return Status::NotFound(StrFormat("no container '%s'", name.c_str()));
  }
  it->second.token->Cancel();
  std::thread t = std::move(it->second.thread);
  lock.unlock();
  if (t.joinable()) t.join();
  lock.lock();
  it = containers_.find(name);
  if (it == containers_.end()) {
    return Status::NotFound(
        StrFormat("container '%s' vanished during restart", name.c_str()));
  }
  ++it->second.restarts;
  Launch(it->second);
  return Status::OK();
}

bool NodeManager::IsRunning(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = containers_.find(name);
  return it != containers_.end() &&
         it->second.running->load(std::memory_order_acquire);
}

int NodeManager::RestartCount(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = containers_.find(name);
  return it == containers_.end() ? 0 : it->second.restarts;
}

Status NodeManager::WaitContainer(const std::string& name) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = containers_.find(name);
  if (it == containers_.end()) {
    return Status::NotFound(StrFormat("no container '%s'", name.c_str()));
  }
  std::thread t = std::move(it->second.thread);
  containers_.erase(it);
  lock.unlock();
  if (t.joinable()) t.join();
  return Status::OK();
}

void NodeManager::Shutdown() {
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, c] : containers_) {
      c.token->Cancel();
      threads.push_back(std::move(c.thread));
    }
    containers_.clear();
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

std::vector<std::string> NodeManager::ListContainers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, c] : containers_) out.push_back(name);
  return out;
}

}  // namespace rafiki::cluster
