#ifndef RAFIKI_CLUSTER_NODE_MANAGER_H_
#define RAFIKI_CLUSTER_NODE_MANAGER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace rafiki::cluster {

/// Cooperative cancellation flag handed to every container body. Long
/// loops check `cancelled()` and exit promptly when the manager kills the
/// container (the in-process analogue of `docker kill`).
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// The Rafiki manager (§6.1): starts masters/workers as "containers"
/// (threads here instead of Docker), kills them for failure injection and
/// restarts them for recovery (§6.3 — workers are stateless, masters
/// recover from checkpoints).
class NodeManager {
 public:
  using ContainerBody = std::function<void(CancelToken&)>;

  NodeManager() = default;
  ~NodeManager();
  NodeManager(const NodeManager&) = delete;
  NodeManager& operator=(const NodeManager&) = delete;

  /// Launches a named container running `body` on its own thread. The body
  /// is retained so the container can be restarted.
  Status StartContainer(const std::string& name, ContainerBody body);

  /// Cancels and joins the container. NotFound if unknown.
  Status KillContainer(const std::string& name);

  /// Kills then relaunches a container with its retained body; increments
  /// its restart count (failure recovery).
  Status RestartContainer(const std::string& name);

  /// True if the container thread is still running.
  bool IsRunning(const std::string& name) const;

  int RestartCount(const std::string& name) const;

  /// Blocks until the container body returns on its own, then reaps it.
  Status WaitContainer(const std::string& name);

  /// Kills everything (also run by the destructor).
  void Shutdown();

  std::vector<std::string> ListContainers() const;

 private:
  struct Container {
    ContainerBody body;
    // Shared with the container thread: the token must outlive the body
    // even after the bookkeeping entry is erased by Kill/Wait.
    std::shared_ptr<CancelToken> token;
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> running;
    int restarts = 0;
  };

  void Launch(Container& c);

  mutable std::mutex mu_;
  std::unordered_map<std::string, Container> containers_;
};

}  // namespace rafiki::cluster

#endif  // RAFIKI_CLUSTER_NODE_MANAGER_H_
