#include "cluster/process_runner.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"

namespace rafiki::cluster {

ProcessRunner::~ProcessRunner() { Shutdown(); }

Result<pid_t> ProcessRunner::Fork(const ProcessSpec& spec) {
  std::vector<char*> argv;
  argv.reserve(spec.args.size() + 2);
  argv.push_back(const_cast<char*>(spec.binary.c_str()));
  for (const std::string& arg : spec.args) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);

  pid_t pid = fork();
  if (pid < 0) {
    return Status::Internal(StrFormat("fork: %s", std::strerror(errno)));
  }
  if (pid == 0) {
    // Child. Only async-signal-safe calls between fork and exec (the
    // parent may be multi-threaded).
    execv(spec.binary.c_str(), argv.data());
    _exit(127);  // exec failed; 127 matches the shell's convention
  }
  return pid;
}

ProcessExit ProcessRunner::MakeExit(const std::string& name,
                                    int wait_status) {
  ProcessExit exit;
  exit.name = name;
  if (WIFSIGNALED(wait_status)) {
    exit.signaled = true;
    exit.signal = WTERMSIG(wait_status);
  } else if (WIFEXITED(wait_status)) {
    exit.exit_code = WEXITSTATUS(wait_status);
  }
  return exit;
}

bool ProcessRunner::ReapLocked(const std::string& name, Process& proc,
                               bool block) {
  if (!proc.running) return true;
  int wait_status = 0;
  pid_t reaped;
  do {
    reaped = waitpid(proc.pid, &wait_status, block ? 0 : WNOHANG);
  } while (reaped < 0 && errno == EINTR);
  if (reaped == 0) return false;  // still running (WNOHANG)
  if (reaped < 0) {
    // ECHILD: someone else reaped it; treat as a clean exit of unknown
    // status rather than losing the entry.
    proc.exit = ProcessExit{name, 0, false, 0};
  } else {
    proc.exit = MakeExit(name, wait_status);
  }
  proc.running = false;
  return true;
}

Status ProcessRunner::Spawn(const std::string& name,
                            const ProcessSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = procs_.find(name);
  if (it != procs_.end() && !ReapLocked(name, it->second, /*block=*/false)) {
    return Status::AlreadyExists(
        StrFormat("process '%s' is running", name.c_str()));
  }
  auto forked = Fork(spec);
  if (!forked.ok()) return forked.status();
  Process& proc = procs_[name];
  int restarts = proc.restarts;  // survives respawn of a finished name
  proc = Process{};
  proc.spec = spec;
  proc.pid = forked.value();
  proc.running = true;
  proc.restarts = restarts;
  return Status::OK();
}

Status ProcessRunner::Kill(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = procs_.find(name);
  if (it == procs_.end()) {
    return Status::NotFound(StrFormat("no process '%s'", name.c_str()));
  }
  if (ReapLocked(name, it->second, /*block=*/false)) {
    return Status::FailedPrecondition(
        StrFormat("process '%s' already exited", name.c_str()));
  }
  kill(it->second.pid, SIGKILL);
  ReapLocked(name, it->second, /*block=*/true);
  return Status::OK();
}

Status ProcessRunner::Restart(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = procs_.find(name);
  if (it == procs_.end()) {
    return Status::NotFound(StrFormat("no process '%s'", name.c_str()));
  }
  Process& proc = it->second;
  if (!ReapLocked(name, proc, /*block=*/false)) {
    kill(proc.pid, SIGKILL);
    ReapLocked(name, proc, /*block=*/true);
  }
  auto forked = Fork(proc.spec);
  if (!forked.ok()) return forked.status();
  proc.pid = forked.value();
  proc.running = true;
  proc.restarts += 1;
  return Status::OK();
}

bool ProcessRunner::IsRunning(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = procs_.find(name);
  if (it == procs_.end()) return false;
  // const_cast: probing liveness reaps as a side effect, which only
  // mutates bookkeeping, not the observable set of processes.
  auto* self = const_cast<ProcessRunner*>(this);
  return !self->ReapLocked(name, const_cast<Process&>(it->second),
                           /*block=*/false);
}

int ProcessRunner::RestartCount(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = procs_.find(name);
  return it == procs_.end() ? 0 : it->second.restarts;
}

Result<ProcessExit> ProcessRunner::Wait(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = procs_.find(name);
  if (it == procs_.end()) {
    return Status::NotFound(StrFormat("no process '%s'", name.c_str()));
  }
  ReapLocked(name, it->second, /*block=*/true);
  return it->second.exit;
}

std::vector<ProcessExit> ProcessRunner::Poll() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ProcessExit> exits;
  for (auto& [name, proc] : procs_) {
    if (!proc.running) continue;
    if (ReapLocked(name, proc, /*block=*/false)) {
      exits.push_back(proc.exit);
    }
  }
  return exits;
}

Result<pid_t> ProcessRunner::Pid(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = procs_.find(name);
  if (it == procs_.end()) {
    return Status::NotFound(StrFormat("no process '%s'", name.c_str()));
  }
  return it->second.pid;
}

std::vector<std::string> ProcessRunner::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(procs_.size());
  for (const auto& [name, proc] : procs_) names.push_back(name);
  return names;
}

void ProcessRunner::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, proc] : procs_) {
    if (ReapLocked(name, proc, /*block=*/false)) continue;
    kill(proc.pid, SIGKILL);
    ReapLocked(name, proc, /*block=*/true);
  }
}

}  // namespace rafiki::cluster
