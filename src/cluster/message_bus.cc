#include "cluster/message_bus.h"

#include "common/string_util.h"

namespace rafiki::cluster {

Status MessageBus::RegisterEndpoint(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = endpoints_.try_emplace(name, nullptr);
  if (!inserted) {
    return Status::AlreadyExists(
        StrFormat("endpoint '%s' exists", name.c_str()));
  }
  it->second = std::make_shared<Mailbox>(mailbox_capacity_);
  return Status::OK();
}

Status MessageBus::RemoveEndpoint(const std::string& name) {
  std::shared_ptr<Mailbox> box;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = endpoints_.find(name);
    if (it == endpoints_.end()) {
      return Status::NotFound(StrFormat("no endpoint '%s'", name.c_str()));
    }
    box = it->second;
    endpoints_.erase(it);
  }
  box->Close();
  return Status::OK();
}

Status MessageBus::Send(const std::string& to, Message message) {
  std::shared_ptr<Mailbox> box = Find(to);
  if (box == nullptr) {
    send_errors_.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound(StrFormat("no endpoint '%s'", to.c_str()));
  }
  if (!box->TryPush(std::move(message))) {
    send_errors_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        StrFormat("mailbox '%s' full (%zu messages)", to.c_str(),
                  box->capacity()));
  }
  sent_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

std::optional<Message> MessageBus::Receive(const std::string& name) {
  std::shared_ptr<Mailbox> box = Find(name);
  if (box == nullptr) return std::nullopt;
  return box->Pop();
}

std::optional<Message> MessageBus::ReceiveFor(
    const std::string& name, std::chrono::milliseconds timeout) {
  std::shared_ptr<Mailbox> box = Find(name);
  if (box == nullptr) return std::nullopt;
  return box->PopFor(timeout);
}

std::optional<Message> MessageBus::TryReceive(const std::string& name) {
  std::shared_ptr<Mailbox> box = Find(name);
  if (box == nullptr) return std::nullopt;
  return box->TryPop();
}

void MessageBus::CloseAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, box] : endpoints_) box->Close();
}

bool MessageBus::EndpointClosed(const std::string& name) const {
  std::shared_ptr<Mailbox> box = Find(name);
  return box == nullptr || box->closed();
}

bool MessageBus::HasEndpoint(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return endpoints_.count(name) > 0;
}

size_t MessageBus::QueueDepth(const std::string& name) const {
  std::shared_ptr<Mailbox> box = Find(name);
  return box == nullptr ? 0 : box->size();
}

BusStats MessageBus::Stats() const {
  BusStats stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.endpoints = endpoints_.size();
    for (const auto& [name, box] : endpoints_) stats.queued += box->size();
  }
  stats.messages_sent = sent_.load(std::memory_order_relaxed);
  // Loopback delivery is synchronous: every successful send is a delivery.
  stats.messages_delivered = stats.messages_sent;
  stats.send_errors = send_errors_.load(std::memory_order_relaxed);
  return stats;
}

std::shared_ptr<MessageBus::Mailbox> MessageBus::Find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = endpoints_.find(name);
  return it == endpoints_.end() ? nullptr : it->second;
}

}  // namespace rafiki::cluster
