#include "cluster/frame.h"

#include <cstring>

#include "common/string_util.h"

namespace rafiki::cluster {
namespace {

// Little-endian primitive writers. memcpy keeps them alignment-safe; the
// build targets are little-endian (x86/ARM64), so no byte swapping.
void PutU16(uint16_t v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU32(uint32_t v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(uint64_t v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutDouble(double v, std::string* out) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits, out);
}

void PutString(std::string_view s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s.data(), s.size());
}

/// Bounds-checked little-endian reader over a payload slice.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ReadU8(uint8_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadI64(int64_t* v) { return ReadRaw(v, sizeof(*v)); }

  bool ReadDouble(double* v) {
    uint64_t bits;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool ReadString(std::string* v) {
    uint32_t len;
    if (!ReadU32(&len)) return false;
    if (remaining() < len) return false;
    v->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool ReadRaw(void* out, size_t n) {
    if (remaining() < n) return false;
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
};

constexpr uint8_t kMaxMessageType = static_cast<uint8_t>(MessageType::kPsAck);
constexpr uint8_t kMaxFrameType = static_cast<uint8_t>(FrameType::kPing);
constexpr uint8_t kMinFrameType = static_cast<uint8_t>(FrameType::kAnnounce);

Status Truncated(const char* what) {
  return Status::InvalidArgument(
      StrFormat("truncated %s payload", what));
}

}  // namespace

void AppendFrame(FrameType type, std::string_view payload, std::string* out) {
  RAFIKI_CHECK_LE(payload.size(), kMaxFramePayload);
  PutU32(kFrameMagic, out);
  out->push_back(static_cast<char>(kFrameVersion));
  out->push_back(static_cast<char>(type));
  PutU16(0, out);  // reserved
  PutU32(static_cast<uint32_t>(payload.size()), out);
  out->append(payload.data(), payload.size());
}

void FrameDecoder::Feed(const char* data, size_t len) {
  if (failed_) return;  // poisoned stream: drop bytes, keep the error
  buf_.append(data, len);
  // Reclaim consumed prefix once it dominates the buffer, so a long-lived
  // connection does not grow its buffer with every frame.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
}

Result<std::optional<Frame>> FrameDecoder::Next() {
  if (failed_) return error_;
  if (buffered() < kFrameHeaderBytes) return std::optional<Frame>();

  const char* head = buf_.data() + pos_;
  uint32_t magic;
  std::memcpy(&magic, head, sizeof(magic));
  if (magic != kFrameMagic) {
    failed_ = true;
    error_ = Status::InvalidArgument(
        StrFormat("bad frame magic 0x%08x", magic));
    return error_;
  }
  uint8_t version = static_cast<uint8_t>(head[4]);
  if (version != kFrameVersion) {
    failed_ = true;
    error_ = Status::Unimplemented(
        StrFormat("unsupported frame version %u", version));
    return error_;
  }
  uint8_t type = static_cast<uint8_t>(head[5]);
  if (type < kMinFrameType || type > kMaxFrameType) {
    failed_ = true;
    error_ = Status::InvalidArgument(
        StrFormat("unknown frame type %u", type));
    return error_;
  }
  uint16_t reserved;
  std::memcpy(&reserved, head + 6, sizeof(reserved));
  if (reserved != 0) {
    failed_ = true;
    error_ = Status::InvalidArgument(
        StrFormat("nonzero reserved field 0x%04x", reserved));
    return error_;
  }
  uint32_t payload_len;
  std::memcpy(&payload_len, head + 8, sizeof(payload_len));
  if (payload_len > kMaxFramePayload) {
    failed_ = true;
    error_ = Status::OutOfRange(
        StrFormat("frame payload of %u bytes exceeds cap %zu", payload_len,
                  kMaxFramePayload));
    return error_;
  }
  if (buffered() < kFrameHeaderBytes + payload_len) {
    return std::optional<Frame>();  // torn frame: wait for the rest
  }

  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.assign(head + kFrameHeaderBytes, payload_len);
  pos_ += kFrameHeaderBytes + payload_len;
  return std::optional<Frame>(std::move(frame));
}

std::string EncodeEnvelope(const std::string& to, const Message& message) {
  std::string out;
  PutString(to, &out);
  out.push_back(static_cast<char>(message.type));
  PutString(message.from, &out);
  PutU64(static_cast<uint64_t>(message.trial_id), &out);
  PutDouble(message.performance, &out);
  PutU32(static_cast<uint32_t>(message.num_fields.size()), &out);
  for (const auto& [key, value] : message.num_fields) {
    PutString(key, &out);
    PutDouble(value, &out);
  }
  PutU32(static_cast<uint32_t>(message.str_fields.size()), &out);
  for (const auto& [key, value] : message.str_fields) {
    PutString(key, &out);
    PutString(value, &out);
  }
  return out;
}

Result<std::pair<std::string, Message>> DecodeEnvelope(
    std::string_view payload) {
  Reader reader(payload);
  std::string to;
  if (!reader.ReadString(&to)) return Truncated("envelope destination");
  Message message;
  uint8_t type;
  if (!reader.ReadU8(&type)) return Truncated("message type");
  if (type > kMaxMessageType) {
    return Status::InvalidArgument(
        StrFormat("message type %u out of range", type));
  }
  message.type = static_cast<MessageType>(type);
  if (!reader.ReadString(&message.from)) return Truncated("message from");
  if (!reader.ReadI64(&message.trial_id)) return Truncated("trial id");
  if (!reader.ReadDouble(&message.performance)) {
    return Truncated("performance");
  }
  uint32_t num_count;
  if (!reader.ReadU32(&num_count)) return Truncated("num_fields count");
  for (uint32_t i = 0; i < num_count; ++i) {
    std::string key;
    double value;
    if (!reader.ReadString(&key) || !reader.ReadDouble(&value)) {
      return Truncated("num_fields entry");
    }
    message.num_fields[std::move(key)] = value;
  }
  uint32_t str_count;
  if (!reader.ReadU32(&str_count)) return Truncated("str_fields count");
  for (uint32_t i = 0; i < str_count; ++i) {
    std::string key;
    std::string value;
    if (!reader.ReadString(&key) || !reader.ReadString(&value)) {
      return Truncated("str_fields entry");
    }
    message.str_fields[std::move(key)] = std::move(value);
  }
  if (reader.remaining() != 0) {
    return Status::InvalidArgument(
        StrFormat("%zu trailing bytes after envelope", reader.remaining()));
  }
  return std::make_pair(std::move(to), std::move(message));
}

std::string EncodeEndpointList(const std::vector<std::string>& endpoints) {
  std::string out;
  PutU32(static_cast<uint32_t>(endpoints.size()), &out);
  for (const std::string& endpoint : endpoints) PutString(endpoint, &out);
  return out;
}

Result<std::vector<std::string>> DecodeEndpointList(
    std::string_view payload) {
  Reader reader(payload);
  uint32_t count;
  if (!reader.ReadU32(&count)) return Truncated("endpoint-list count");
  // An endpoint entry costs at least 4 bytes (its length prefix); anything
  // claiming more entries than the payload could hold is hostile.
  if (count > reader.remaining() / 4) {
    return Status::InvalidArgument(
        StrFormat("endpoint-list count %u exceeds payload", count));
  }
  std::vector<std::string> endpoints;
  endpoints.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string endpoint;
    if (!reader.ReadString(&endpoint)) return Truncated("endpoint entry");
    endpoints.push_back(std::move(endpoint));
  }
  if (reader.remaining() != 0) {
    return Status::InvalidArgument(StrFormat(
        "%zu trailing bytes after endpoint list", reader.remaining()));
  }
  return endpoints;
}

}  // namespace rafiki::cluster
