#include "serving/inference_runtime.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "serving/greedy_batch.h"
#include "serving/reward.h"

namespace rafiki::serving {
namespace {

/// Derives the feature dimension of a model: explicit override first, else
/// the leading dimension of the first rank-2 parameter (a Linear weight is
/// [in, out]).
int64_t DeriveInputDim(ServableModel& model) {
  if (model.input_dim > 0) return model.input_dim;
  for (nn::ParamTensor* p : model.net.Params()) {
    if (p->value.rank() == 2) return p->value.dim(0);
  }
  return 0;
}

/// Times one forward of a zeros batch, seconds. The batch is cold data, so
/// this measures the same compute path live requests take.
double TimeForward(nn::Net& net, int64_t batch, int64_t dim) {
  Tensor input({batch, dim});
  auto begin = std::chrono::steady_clock::now();
  net.Forward(input, /*train=*/false);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       begin)
      .count();
}

/// Fits the affine latency model c(b) = intercept + slope * b from timed
/// forwards at b = 1 and b = max(B), as the paper does from its two
/// calibration points (§5.1). Two repetitions each, keeping the minimum,
/// to shed first-touch noise.
model::ModelProfile CalibrateProfile(ServableModel& model, int64_t dim,
                                     int64_t max_batch, bool calibrate) {
  model::ModelProfile profile;
  profile.name = model.name;
  profile.top1_accuracy = model.accuracy;
  if (!calibrate || dim <= 0) return profile;  // zero-latency profile
  double c1 = TimeForward(model.net, 1, dim);
  c1 = std::min(c1, TimeForward(model.net, 1, dim));
  double cb = c1;
  if (max_batch > 1) {
    cb = TimeForward(model.net, max_batch, dim);
    cb = std::min(cb, TimeForward(model.net, max_batch, dim));
  }
  double slope = max_batch > 1
                     ? (cb - c1) / static_cast<double>(max_batch - 1)
                     : 0.0;
  slope = std::max(slope, 0.0);
  profile.latency_slope = slope;
  profile.latency_intercept = std::max(c1 - slope, 0.0);
  return profile;
}

/// variant_masks[L] drops the L slowest models (by latency at the largest
/// batch size) from the full ensemble — the controller's accuracy-for-
/// latency ladder. The last level keeps only the fastest model.
std::vector<uint32_t> BuildVariantMasks(
    const std::vector<model::ModelProfile>& profiles, int64_t max_batch) {
  size_t n = profiles.size();
  std::vector<size_t> by_slowest(n);
  for (size_t i = 0; i < n; ++i) by_slowest[i] = i;
  std::stable_sort(by_slowest.begin(), by_slowest.end(),
                   [&](size_t a, size_t b) {
                     return profiles[a].BatchLatency(max_batch) >
                            profiles[b].BatchLatency(max_batch);
                   });
  uint32_t mask = (1u << static_cast<uint32_t>(n)) - 1u;
  std::vector<uint32_t> masks;
  masks.reserve(n);
  for (size_t level = 0; level < n; ++level) {
    masks.push_back(mask);
    mask &= ~(1u << static_cast<uint32_t>(by_slowest[level]));
  }
  return masks;
}

/// Consecutive-tick thresholds for the controller's hysteresis (on top of
/// the dwell time): sustained signals, not single-tick spikes.
constexpr int kScaleDownTicks = 3;
constexpr int kDownshiftTicks = 3;
constexpr int kUpshiftTicks = 5;

}  // namespace

std::vector<EnsemblePrediction> MajorityVoteRows(
    const std::vector<std::vector<int64_t>>& votes,
    const std::vector<double>& accuracies) {
  RAFIKI_CHECK(!votes.empty());
  RAFIKI_CHECK_EQ(votes.size(), accuracies.size());
  size_t rows = votes[0].size();
  std::vector<EnsemblePrediction> out(rows);
  for (size_t r = 0; r < rows; ++r) {
    std::map<int64_t, int> counts;
    EnsemblePrediction& p = out[r];
    p.votes.reserve(votes.size());
    for (const std::vector<int64_t>& model_votes : votes) {
      RAFIKI_CHECK_EQ(model_votes.size(), rows);
      p.votes.push_back(model_votes[r]);
      ++counts[model_votes[r]];
    }
    int best_votes = 0;
    for (const auto& [label, n] : counts) best_votes = std::max(best_votes, n);
    double best_acc = -1.0;
    for (size_t m = 0; m < votes.size(); ++m) {
      int64_t label = votes[m][r];
      if (counts[label] == best_votes && accuracies[m] > best_acc) {
        best_acc = accuracies[m];
        p.label = label;
      }
    }
  }
  return out;
}

InferenceRuntime::~InferenceRuntime() {
  std::map<std::string, std::shared_ptr<Job>> jobs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs.swap(jobs_);
  }
  for (auto& [id, job] : jobs) StopJob(*job);
}

std::unique_ptr<SchedulerPolicy> InferenceRuntime::MakePolicy(
    const Job& job, size_t replica_index) {
  if (job.opts.policy_factory != nullptr) {
    PolicyInit init;
    init.num_models = job.prototypes.size();
    init.batch_sizes = job.opts.batch_sizes;
    init.accuracies = job.accuracies;
    init.profiles = &job.profiles;
    init.tau = job.opts.tau;
    init.beta = job.opts.beta;
    init.backoff_delta_fraction = job.opts.backoff_delta_fraction;
    init.replica_index = replica_index;
    init.num_replicas = job.max_replicas;
    return job.opts.policy_factory(init);
  }
  if (job.prototypes.size() == 1) {
    return std::make_unique<GreedyBatchPolicy>(
        /*model_index=*/0, job.opts.backoff_delta_fraction);
  }
  return std::make_unique<SyncEnsembleGreedyPolicy>(
      job.opts.backoff_delta_fraction);
}

Result<std::string> InferenceRuntime::Deploy(const std::string& job_id,
                                             std::vector<ServableModel> models,
                                             RuntimeOptions options) {
  if (job_id.empty()) return Status::InvalidArgument("empty job id");
  if (models.empty()) return Status::InvalidArgument("no models to deploy");
  if (models.size() > 31) {
    return Status::InvalidArgument("at most 31 models per ensemble");
  }
  if (options.tau <= 0.0) return Status::InvalidArgument("tau must be > 0");
  if (options.batch_sizes.empty()) {
    return Status::InvalidArgument("batch_sizes must be non-empty");
  }
  for (int64_t b : options.batch_sizes) {
    if (b <= 0) return Status::InvalidArgument("batch sizes must be positive");
  }
  if (options.queue_capacity == 0) {
    return Status::InvalidArgument("queue capacity must be positive");
  }
  if (options.replicas < 1 || options.min_replicas < 1) {
    return Status::InvalidArgument("replicas and min_replicas must be >= 1");
  }
  if (options.max_replicas < 0) {
    return Status::InvalidArgument("max_replicas must be >= 0");
  }

  auto job = std::make_shared<Job>();
  job->id = job_id;
  job->opts = options;
  job->prototypes = std::move(models);
  job->epoch = std::chrono::steady_clock::now();
  job->min_replicas = static_cast<size_t>(options.min_replicas);
  job->max_replicas =
      options.max_replicas > 0
          ? static_cast<size_t>(options.max_replicas)
          : std::max<size_t>(static_cast<size_t>(options.replicas),
                             job->min_replicas);
  if (job->max_replicas < job->min_replicas) {
    return Status::InvalidArgument("max_replicas < min_replicas");
  }
  if (job->max_replicas > 64) {
    return Status::InvalidArgument("at most 64 replicas per job");
  }
  size_t initial = std::clamp(static_cast<size_t>(options.replicas),
                              job->min_replicas, job->max_replicas);

  job->input_dim = DeriveInputDim(job->prototypes.front());
  if (job->input_dim <= 0) {
    return Status::InvalidArgument(
        StrFormat("cannot derive input dim of model '%s'",
                  job->prototypes.front().name.c_str()));
  }
  int64_t max_b = *std::max_element(options.batch_sizes.begin(),
                                    options.batch_sizes.end());
  for (ServableModel& m : job->prototypes) {
    int64_t dim = DeriveInputDim(m);
    if (dim != job->input_dim) {
      return Status::InvalidArgument(
          StrFormat("model '%s' input dim %lld != %lld", m.name.c_str(),
                    static_cast<long long>(dim),
                    static_cast<long long>(job->input_dim)));
    }
    job->profiles.push_back(
        CalibrateProfile(m, job->input_dim, max_b, options.calibrate));
    job->accuracies.push_back(m.accuracy);
  }
  job->variant_masks = BuildVariantMasks(job->profiles, max_b);
  {
    // Validate the factory once before committing the job: a factory that
    // yields no policy is a deploy-time error, not a scale-up surprise.
    std::unique_ptr<SchedulerPolicy> probe = MakePolicy(*job, 0);
    if (probe == nullptr) {
      return Status::InvalidArgument("policy_factory returned no policy");
    }
    job->policy_name = probe->name();
  }
  job->slots.resize(job->max_replicas);

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (jobs_.count(job_id) > 0) {
      return Status::AlreadyExists(
          StrFormat("inference job '%s' already deployed", job_id.c_str()));
    }
    jobs_[job_id] = job;
  }
  for (size_t i = 0; i < initial; ++i) StartReplica(job, i);
  if (options.autoscale) {
    job->controller = std::thread([job] { ControllerLoop(job); });
  }
  return job_id;
}

std::shared_ptr<InferenceRuntime::Job> InferenceRuntime::FindJob(
    const std::string& job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  return it == jobs_.end() ? nullptr : it->second;
}

Status InferenceRuntime::Undeploy(const std::string& job_id) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(job_id);
    if (it == jobs_.end()) {
      return Status::NotFound(
          StrFormat("no inference job '%s'", job_id.c_str()));
    }
    job = std::move(it->second);
    jobs_.erase(it);
  }
  StopJob(*job);
  return Status::OK();
}

void InferenceRuntime::StartReplica(const std::shared_ptr<Job>& job,
                                    size_t index) {
  Replica* r;
  if (job->created.load(std::memory_order_relaxed) <= index) {
    auto fresh = std::make_unique<Replica>();
    fresh->index = index;
    fresh->ring = std::make_unique<MpscRing<Pending>>(job->opts.queue_capacity);
    fresh->models.reserve(job->prototypes.size());
    for (const ServableModel& proto : job->prototypes) {
      ServableModel clone;
      clone.net = proto.net.Clone();
      clone.accuracy = proto.accuracy;
      clone.name = proto.name;
      clone.input_dim = job->input_dim;
      fresh->models.push_back(std::move(clone));
    }
    fresh->profiles = job->profiles;
    fresh->policy = MakePolicy(*job, index);
    RAFIKI_CHECK(fresh->policy != nullptr);  // validated at Deploy
    job->slots[index] = std::move(fresh);
    r = job->slots[index].get();
    // Publish the slot before it becomes routable (paired with the
    // acquire loads in SubmitAsync / Metrics).
    job->created.store(index + 1, std::memory_order_release);
  } else {
    // Re-activating a slot retired earlier: its previous dispatcher was
    // joined and its ring fully drained, so Reopen is safe. Policy state
    // (e.g. a learned RL agent) carries over.
    r = job->slots[index].get();
    r->ring->Reopen();
    r->stopping.store(false, std::memory_order_release);
  }
  r->dispatcher = std::thread([job, r] { ReplicaLoop(job, r); });
  job->active.store(index + 1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(job->mu);
    job->replicas_peak =
        std::max(job->replicas_peak, static_cast<int64_t>(index + 1));
  }
}

void InferenceRuntime::RetireReplica(Job& job, size_t index) {
  Replica& r = *job.slots[index];
  // Unpublish from the router first: new submissions stop picking this
  // slot. Racing producers that already picked it bounce off the closed
  // ring (kClosed) and re-route.
  job.active.store(index, std::memory_order_release);
  // Close the ring BEFORE publishing `stopping` (the dispatcher's drain
  // invariant: when it acquire-loads stopping == true, the closed bit is
  // already visible, so DrainClosed observes every accepted value).
  r.ring->Close();
  r.stopping.store(true, std::memory_order_release);
  r.doorbell.Notify();
  if (r.dispatcher.joinable()) r.dispatcher.join();
}

void InferenceRuntime::StopJob(Job& job) {
  // Stop the controller first so no resize can race the teardown; after
  // the join, this thread is the only lifecycle writer.
  if (job.controller.joinable()) {
    {
      std::lock_guard<std::mutex> lock(job.ctl_mu);
      job.ctl_stop = true;
    }
    job.ctl_cv.notify_all();
    job.controller.join();
  }
  // Job-level stopping turns the dispatchers' drain path from "re-route to
  // a surviving replica" into "fail as dropped". Published before any
  // per-replica stopping store, so a dispatcher that observes its own
  // stopping flag also observes the job flag.
  job.stopping.store(true, std::memory_order_release);
  size_t created = job.created.load(std::memory_order_acquire);
  for (size_t i = 0; i < created; ++i) {
    Replica& r = *job.slots[i];
    if (!r.stopping.load(std::memory_order_acquire)) {
      r.ring->Close();
      r.stopping.store(true, std::memory_order_release);
    }
    r.doorbell.Notify();
  }
  for (size_t i = 0; i < created; ++i) {
    if (job.slots[i]->dispatcher.joinable()) job.slots[i]->dispatcher.join();
  }
  job.active.store(0, std::memory_order_release);
}

Status InferenceRuntime::SubmitAsync(const std::string& job_id,
                                     Tensor features, Callback done) {
  if (done == nullptr) {
    return Status::InvalidArgument("SubmitAsync requires a callback");
  }
  std::shared_ptr<Job> job = FindJob(job_id);
  if (job == nullptr) {
    return Status::NotFound(StrFormat("no inference job '%s'",
                                      job_id.c_str()));
  }
  if (features.rank() == 1) features.Reshape({1, features.numel()});
  if (features.rank() != 2 || features.dim(0) != 1) {
    return Status::InvalidArgument("features must be [dim] or [1, dim]");
  }
  if (features.dim(1) != job->input_dim) {
    return Status::InvalidArgument(
        StrFormat("feature dim %lld != model input dim %lld",
                  static_cast<long long>(features.dim(1)),
                  static_cast<long long>(job->input_dim)));
  }

  if (job->stopping.load(std::memory_order_acquire)) {
    return Status::NotFound(
        StrFormat("inference job '%s' is undeploying", job_id.c_str()));
  }

  Pending pending;
  pending.features = std::move(features);
  pending.done = std::move(done);
  pending.arrival = job->NowSeconds();

  // Lock-free admission: count the arrival, reserve a queue slot on the
  // job-wide atomic gauge (the exact-capacity gate), then route to the
  // least-loaded replica. The gauge reservation also guarantees the
  // chosen ring has room (rings are sized >= queue_capacity).
  job->arrived.fetch_add(1, std::memory_order_relaxed);
  int64_t depth = job->queued.fetch_add(1, std::memory_order_acq_rel);
  if (depth >= static_cast<int64_t>(job->opts.queue_capacity)) {
    job->queued.fetch_sub(1, std::memory_order_acq_rel);
    job->dropped.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable(
        StrFormat("inference job '%s' queue full", job_id.c_str()));
  }
  for (int attempt = 0;; ++attempt) {
    if (job->stopping.load(std::memory_order_acquire)) {
      // Undeploy raced us after the reservation. The request was never
      // accepted, so the arrival is uncounted again — the books still
      // close at arrived == processed + dropped + expired.
      job->queued.fetch_sub(1, std::memory_order_acq_rel);
      job->arrived.fetch_sub(1, std::memory_order_relaxed);
      return Status::NotFound(
          StrFormat("inference job '%s' is undeploying", job_id.c_str()));
    }
    // Least-loaded router: queued + inflight approximates each replica's
    // time-to-drain. Racy reads are fine — misrouting costs balance, not
    // correctness, and stealing re-levels any transient skew.
    size_t active = job->active.load(std::memory_order_acquire);
    size_t best = SIZE_MAX;
    int64_t best_load = INT64_MAX;
    for (size_t i = 0; i < active; ++i) {
      Replica* r = job->slots[i].get();
      if (r->stopping.load(std::memory_order_relaxed)) continue;
      int64_t load = r->queued.load(std::memory_order_relaxed) +
                     r->inflight.load(std::memory_order_relaxed);
      if (load < best_load) {
        best_load = load;
        best = i;
      }
    }
    if (best == SIZE_MAX) {
      // No routable replica this instant (mid-resize window, or Deploy
      // still starting the first dispatcher). Brief and self-correcting:
      // yield and re-scan, bounded so a wedged job cannot hang callers.
      if (attempt >= 1024) {
        job->queued.fetch_sub(1, std::memory_order_acq_rel);
        job->dropped.fetch_add(1, std::memory_order_relaxed);
        return Status::Unavailable(
            StrFormat("inference job '%s' has no routable replica",
                      job_id.c_str()));
      }
      std::this_thread::yield();
      continue;
    }
    Replica* r = job->slots[best].get();
    r->queued.fetch_add(1, std::memory_order_acq_rel);
    if (r->ring->TryPush(std::move(pending)) ==
        MpscRing<Pending>::PushResult::kOk) {
      r->doorbell.Notify();
      return Status::OK();
    }
    // kClosed: the replica retired between the scan and the push (TryPush
    // leaves `pending` intact on failure) — undo its gauge and re-scan.
    // kFull is unreachable (ring >= job capacity gate) but handled the
    // same way for robustness.
    r->queued.fetch_sub(1, std::memory_order_acq_rel);
  }
}

Result<std::future<Result<EnsemblePrediction>>> InferenceRuntime::Submit(
    const std::string& job_id, Tensor features) {
  auto promise =
      std::make_shared<std::promise<Result<EnsemblePrediction>>>();
  std::future<Result<EnsemblePrediction>> future = promise->get_future();
  RAFIKI_RETURN_IF_ERROR(SubmitAsync(
      job_id, std::move(features),
      [promise](Result<EnsemblePrediction> answer) {
        promise->set_value(std::move(answer));
      }));
  return future;
}

Result<std::vector<EnsemblePrediction>> InferenceRuntime::QueryBatch(
    const std::string& job_id, const Tensor& features) {
  if (features.rank() != 2) {
    return Status::InvalidArgument("features must be [batch, dim]");
  }
  int64_t rows = features.dim(0);
  int64_t dim = features.dim(1);
  std::vector<std::future<Result<EnsemblePrediction>>> futures;
  futures.reserve(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    Tensor row({1, dim});
    std::memcpy(row.data(), features.data() + r * dim,
                static_cast<size_t>(dim) * sizeof(float));
    // Backpressure: a full queue is retryable; give the dispatchers a
    // bounded amount of time to drain before giving up on the whole batch.
    int attempts = 0;
    for (;;) {
      Result<std::future<Result<EnsemblePrediction>>> submitted =
          Submit(job_id, std::move(row));
      if (submitted.ok()) {
        futures.push_back(std::move(*submitted));
        break;
      }
      if (!submitted.status().IsUnavailable() || ++attempts > 2000) {
        return submitted.status();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      Tensor retry({1, dim});
      std::memcpy(retry.data(), features.data() + r * dim,
                  static_cast<size_t>(dim) * sizeof(float));
      row = std::move(retry);
    }
  }
  std::vector<EnsemblePrediction> out;
  out.reserve(futures.size());
  for (auto& future : futures) {
    Result<EnsemblePrediction> answer = future.get();
    if (!answer.ok()) return answer.status();
    out.push_back(std::move(*answer));
  }
  return out;
}

Result<InferenceJobMetrics> InferenceRuntime::Metrics(
    const std::string& job_id) const {
  std::shared_ptr<Job> job = FindJob(job_id);
  if (job == nullptr) {
    return Status::NotFound(StrFormat("no inference job '%s'",
                                      job_id.c_str()));
  }
  InferenceJobMetrics stats;
  stats.policy = job->policy_name;
  {
    std::lock_guard<std::mutex> lock(job->mu);
    stats.replicas_peak = job->replicas_peak;
    stats.scale_ups = job->scale_ups;
    stats.scale_downs = job->scale_downs;
    stats.variant_shifts = job->variant_shifts;
  }
  stats.arrived = job->arrived.load(std::memory_order_relaxed);
  stats.dropped = job->dropped.load(std::memory_order_relaxed);
  stats.queue_depth = job->queued.load(std::memory_order_relaxed);
  stats.variant_level = job->variant_level.load(std::memory_order_relaxed);
  size_t active = job->active.load(std::memory_order_acquire);
  size_t created = job->created.load(std::memory_order_acquire);
  stats.replicas = static_cast<int64_t>(active);
  double latency_sum = 0.0;
  LatencyHistogram hist;
  stats.replica_gauges.reserve(created);
  for (size_t i = 0; i < created; ++i) {
    Replica& r = *job->slots[i];
    // One mutex hold per replica covers its whole gauge row (queue depth,
    // processed, steals) plus the aggregate fold, so each row is an
    // internally consistent snapshot.
    std::lock_guard<std::mutex> lock(r.mu);
    ReplicaGauges g;
    g.replica = static_cast<int64_t>(i);
    g.active = i < active;
    g.queue_depth = r.queued.load(std::memory_order_relaxed) +
                    r.inflight.load(std::memory_order_relaxed);
    g.processed = r.stats.processed;
    g.steals = r.steals.load(std::memory_order_relaxed);
    stats.replica_gauges.push_back(g);
    stats.processed += r.stats.processed;
    stats.overdue += r.stats.overdue;
    stats.expired += r.stats.expired;
    stats.batches += r.stats.batches;
    stats.max_batch = std::max(stats.max_batch, r.stats.max_batch);
    stats.learn_steps += r.stats.learn_steps;
    stats.reward_sum += r.stats.reward_sum;
    stats.accuracy_sum += r.stats.accuracy_sum;
    stats.reward_overdue += r.stats.reward_overdue;
    stats.reward_pending_overdue += r.stats.reward_pending_overdue;
    stats.steals += g.steals;
    latency_sum += r.stats.latency_sum;
    hist.Merge(r.stats.latency_hist);
  }
  if (stats.batches > 0) {
    stats.mean_batch = static_cast<double>(stats.processed) /
                       static_cast<double>(stats.batches);
  }
  if (stats.processed > 0) {
    stats.mean_latency = latency_sum / static_cast<double>(stats.processed);
    stats.p50_latency = hist.P50();
    stats.p95_latency = hist.P95();
    stats.p99_latency = hist.P99();
  }
  return stats;
}

std::vector<std::string> InferenceRuntime::Jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(id);
  return out;
}

void InferenceRuntime::MaybePostSteal(Job& job, Replica& self) {
  size_t active = job.active.load(std::memory_order_acquire);
  if (active <= 1) return;
  size_t victim = SIZE_MAX;
  auto best_q = static_cast<int64_t>(job.opts.steal_threshold);
  for (size_t i = 0; i < active; ++i) {
    Replica* r = job.slots[i].get();
    if (r == &self || r->stopping.load(std::memory_order_relaxed)) continue;
    int64_t q = r->queued.load(std::memory_order_relaxed);
    if (q > best_q) {
      best_q = q;
      victim = i;
    }
  }
  if (victim == SIZE_MAX) return;
  // One pending thief per victim; losing the CAS means someone else asked
  // first, and our doorbell timeout retries soon anyway.
  uint32_t expected = kNoThief;
  job.slots[victim]->steal_request.compare_exchange_strong(
      expected, static_cast<uint32_t>(self.index),
      std::memory_order_acq_rel, std::memory_order_relaxed);
}

void InferenceRuntime::ServiceStealRequest(Job& job, Replica& self,
                                           RingDeque<Pending>& lq) {
  if (self.steal_request.load(std::memory_order_relaxed) == kNoThief) return;
  uint32_t thief_idx =
      self.steal_request.exchange(kNoThief, std::memory_order_acq_rel);
  if (thief_idx == kNoThief) return;
  // A surplus below the threshold drops the request: the thief retries
  // against the then-longest queue after its poll timeout.
  if (lq.size() <= job.opts.steal_threshold) return;
  if (thief_idx >= job.created.load(std::memory_order_acquire)) return;
  Replica* thief = job.slots[thief_idx].get();
  if (thief == &self) return;
  // Donate half the local queue, oldest first (they reach service soonest
  // on the idle thief). The donation runs the ordinary MPSC producer
  // protocol against the thief's ring, so the thief's single-consumer
  // invariant — and hence exactly-once completion — is untouched.
  size_t donate = lq.size() / 2;
  int64_t moved = 0;
  for (size_t i = 0; i < donate; ++i) {
    if (thief->stopping.load(std::memory_order_relaxed)) break;
    Pending p = std::move(lq.front());
    lq.pop_front();
    thief->queued.fetch_add(1, std::memory_order_acq_rel);
    self.queued.fetch_sub(1, std::memory_order_acq_rel);
    if (thief->ring->TryPush(std::move(p)) !=
        MpscRing<Pending>::PushResult::kOk) {
      // Thief retired under us (TryPush left `p` intact): undo the gauge
      // transfer and keep the request local.
      thief->queued.fetch_sub(1, std::memory_order_acq_rel);
      self.queued.fetch_add(1, std::memory_order_acq_rel);
      lq.push_back(std::move(p));
      break;
    }
    ++moved;
  }
  if (moved > 0) {
    thief->steals.fetch_add(moved, std::memory_order_relaxed);
    thief->doorbell.Notify();
  }
}

void InferenceRuntime::ReplicaLoop(const std::shared_ptr<Job>& job,
                                   Replica* self) {
  const RuntimeOptions& opts = job->opts;
  const double delta = opts.backoff_delta_fraction * opts.tau;
  MpscRing<Pending>& ring = *self->ring;
  // Dispatcher-local FIFO: the ring is drained into it in batches, and the
  // policy works against it without any shared lock. Requests here still
  // count as "queued" — the gauges drop only when they are batched,
  // expired, donated, or failed at shutdown.
  RingDeque<Pending> lq;
  auto take = [&lq](Pending&& p) { lq.push_back(std::move(p)); };
  std::vector<Pending> expired;  // scratch, capacity reused
  // Expiries not yet folded into a reward: Equation 7 charges overdue at
  // batch completion, so an expired (504) request is charged against the
  // NEXT batch this replica dispatches — exactly once. The carry persists
  // across a scale-down/up cycle of this slot.
  int64_t expired_unrewarded = self->expired_carry;
  self->expired_carry = 0;
  const uint32_t all_models_mask =
      (1u << static_cast<uint32_t>(self->models.size())) - 1u;

  while (!self->stopping.load(std::memory_order_acquire)) {
    ring.ConsumeBatch(opts.queue_capacity, take);
    ServiceStealRequest(*job, *self, lq);
    if (lq.empty()) {
      // Before sleeping, ask the most loaded replica for work; its
      // donation lands in our ring and rings our doorbell.
      MaybePostSteal(*job, *self);
      // PrepareWait/recheck closes the race with a push that lands between
      // the emptiness check and the futex wait; the timeout re-evaluates
      // deadline pressure (and retries the steal).
      uint32_t epoch = self->doorbell.PrepareWait();
      if (self->stopping.load(std::memory_order_acquire) ||
          ring.ApproxSize() > 0) {
        self->doorbell.CancelWait();
        continue;
      }
      self->doorbell.Wait(epoch, opts.max_poll_seconds);
      continue;
    }

    double now = job->NowSeconds();
    if (opts.expire_overdue) {
      // Queue-deadline: a request already older than tau cannot possibly
      // meet the SLO — answer it kDeadlineExceeded now instead of letting
      // it occupy batch capacity. FIFO queue, so waits are longest at the
      // front and the scan stops at the first fresh request.
      while (!lq.empty() && now - lq.front().arrival > opts.tau) {
        expired.push_back(std::move(lq.front()));
        lq.pop_front();
      }
      if (!expired.empty()) {
        auto n = static_cast<int64_t>(expired.size());
        self->queued.fetch_sub(n, std::memory_order_acq_rel);
        job->queued.fetch_sub(n, std::memory_order_acq_rel);
        expired_unrewarded += n;
        {
          std::lock_guard<std::mutex> lock(self->mu);
          self->stats.expired += n;
          self->stats.overdue += n;
          self->stats.reward_pending_overdue += n;
        }
        for (Pending& p : expired) {
          p.done(Status::DeadlineExceeded(
              StrFormat("queue wait exceeded tau=%.6fs", opts.tau)));
        }
        expired.clear();
        continue;
      }
    }
    ServingObs obs;
    obs.tau = opts.tau;
    obs.batch_sizes = &opts.batch_sizes;
    obs.models = &self->profiles;
    obs.queue_len = lq.size();
    // Stamp the queue features at the moment Decide() runs, not at tick
    // start: the expiry scan and its 504 continuations above take real
    // time, and a stale `now` would understate every wait the agent sees.
    // Producers stamp `arrival` before the ring push the dispatcher
    // consumed, and the clock is monotonic, so waits are never negative.
    now = job->NowSeconds();
    obs.now = now;
    size_t wait_count = std::min<size_t>(lq.size(), 64);
    obs.queue_waits.reserve(wait_count);
    for (size_t i = 0; i < wait_count; ++i) {
      double wait = now - lq[i].arrival;
#ifndef NDEBUG
      RAFIKI_CHECK_GE(wait, 0.0) << "stale queue-wait feature";
#endif
      obs.queue_waits.push_back(wait);
    }
    // This replica is the only executor of its clones and runs batches
    // synchronously, so every model is free at decision time.
    obs.busy_remaining.assign(self->profiles.size(), 0.0);

    ServingAction action = self->policy->Decide(obs);
    int64_t b = std::min<int64_t>(action.batch_size,
                                  static_cast<int64_t>(lq.size()));
    if (!action.process || b <= 0) {
      // Algorithm 3 said wait: sleep until the oldest request would trip
      // the deadline flush (c(b_eff) + w(q_0) + delta >= tau) or a new
      // arrival rings the doorbell and re-triggers a decision.
      int64_t feasible =
          LargestFeasibleBatch(opts.batch_sizes, obs.queue_len);
      int64_t effective =
          feasible > 0 ? feasible : static_cast<int64_t>(obs.queue_len);
      double worst_latency = 0.0;
      for (const model::ModelProfile& m : self->profiles) {
        worst_latency = std::max(worst_latency, m.BatchLatency(effective));
      }
      double oldest = obs.queue_waits.empty() ? 0.0 : obs.queue_waits[0];
      double until_flush = opts.tau - delta - worst_latency - oldest;
      double sleep_s =
          std::clamp(until_flush, 100e-6, opts.max_poll_seconds);
      uint32_t epoch = self->doorbell.PrepareWait();
      if (self->stopping.load(std::memory_order_acquire) ||
          ring.ApproxSize() > 0) {
        self->doorbell.CancelWait();
      } else {
        self->doorbell.Wait(epoch, sleep_s);
      }
      continue;
    }

    std::vector<Pending> batch;
    batch.reserve(static_cast<size_t>(b));
    for (int64_t i = 0; i < b; ++i) {
      batch.push_back(std::move(lq.front()));
      lq.pop_front();
    }
    self->queued.fetch_sub(b, std::memory_order_acq_rel);
    job->queued.fetch_sub(b, std::memory_order_acq_rel);
    self->inflight.store(b, std::memory_order_relaxed);
    // Sanitize the mask for execution (the policy's own action object is
    // preserved for Feedback, which re-encodes it): bits beyond the
    // deployed models are dropped, and an empty selection degrades to the
    // full ensemble. The controller's variant mask is applied last and
    // wins — under a downshift the slowest models must not run even if
    // the policy selected only them.
    uint32_t mask = action.model_mask & all_models_mask;
    if (mask == 0) mask = all_models_mask;
    int level = std::clamp(
        job->variant_level.load(std::memory_order_relaxed), 0,
        static_cast<int>(job->variant_masks.size()) - 1);
    uint32_t variant = job->variant_masks[static_cast<size_t>(level)];
    uint32_t exec = mask & variant;
    if (exec == 0) exec = variant;
    double reward =
        ProcessBatch(*job, *self, std::move(batch), exec, expired_unrewarded);
    self->inflight.store(0, std::memory_order_relaxed);
    expired_unrewarded = 0;
    // Online learning from the realized outcome (no-op for greedy): runs
    // on this dispatcher thread, after the stats fold, so Metrics readers
    // never see a batch whose reward is missing.
    self->policy->Feedback(obs, action, reward);
  }

  // Drain: whoever retired us closed the ring before `stopping` became
  // visible, so DrainClosed observes every request any producer ever
  // enqueued here.
  ring.DrainClosed(take);
  self->expired_carry = expired_unrewarded;
  if (job->stopping.load(std::memory_order_acquire)) {
    // Undeploy: the requests arrived but will never be served — fail them
    // as dropped (keeps arrived == processed + dropped + expired).
    if (!lq.empty()) {
      auto n = static_cast<int64_t>(lq.size());
      self->queued.fetch_sub(n, std::memory_order_acq_rel);
      job->queued.fetch_sub(n, std::memory_order_acq_rel);
      job->dropped.fetch_add(n, std::memory_order_relaxed);
    }
    while (!lq.empty()) {
      Pending p = std::move(lq.front());
      lq.pop_front();
      p.done(Status::Unavailable(
          StrFormat("inference job '%s' undeployed", job->id.c_str())));
    }
    return;
  }
  // Scale-down: the job lives on, so every drained request is re-routed
  // to a surviving replica (the controller guarantees at least
  // min_replicas >= 1 stay active). Only if re-routing is truly
  // impossible — Undeploy racing in behind us — does a request fail.
  while (!lq.empty()) {
    Pending p = std::move(lq.front());
    lq.pop_front();
    bool moved = false;
    while (!moved) {
      if (job->stopping.load(std::memory_order_acquire)) break;
      size_t active = job->active.load(std::memory_order_acquire);
      size_t best = SIZE_MAX;
      int64_t best_load = INT64_MAX;
      for (size_t i = 0; i < active; ++i) {
        Replica* r = job->slots[i].get();
        if (r == self || r->stopping.load(std::memory_order_relaxed)) {
          continue;
        }
        int64_t load = r->queued.load(std::memory_order_relaxed) +
                       r->inflight.load(std::memory_order_relaxed);
        if (load < best_load) {
          best_load = load;
          best = i;
        }
      }
      if (best == SIZE_MAX) {
        std::this_thread::yield();
        continue;
      }
      Replica* target = job->slots[best].get();
      target->queued.fetch_add(1, std::memory_order_acq_rel);
      self->queued.fetch_sub(1, std::memory_order_acq_rel);
      if (target->ring->TryPush(std::move(p)) ==
          MpscRing<Pending>::PushResult::kOk) {
        target->doorbell.Notify();
        moved = true;
      } else {
        self->queued.fetch_add(1, std::memory_order_acq_rel);
        target->queued.fetch_sub(1, std::memory_order_acq_rel);
      }
    }
    if (!moved) {
      self->queued.fetch_sub(1, std::memory_order_acq_rel);
      job->queued.fetch_sub(1, std::memory_order_acq_rel);
      job->dropped.fetch_add(1, std::memory_order_relaxed);
      p.done(Status::Unavailable(
          StrFormat("inference job '%s' undeployed", job->id.c_str())));
    }
  }
}

void InferenceRuntime::ControllerLoop(const std::shared_ptr<Job>& job) {
  const RuntimeOptions& opts = job->opts;
  const int64_t max_b = *std::max_element(opts.batch_sizes.begin(),
                                          opts.batch_sizes.end());
  const auto max_level =
      static_cast<int>(job->variant_masks.size()) - 1;
  double last_resize = job->NowSeconds();
  double last_shift = last_resize;
  int low_ticks = 0;
  int high_overdue_ticks = 0;
  int low_overdue_ticks = 0;
  int64_t prev_overdue = 0;
  int64_t prev_completed = 0;

  std::unique_lock<std::mutex> lock(job->ctl_mu);
  for (;;) {
    job->ctl_cv.wait_for(lock,
                         std::chrono::duration<double>(opts.autoscale_interval),
                         [&] { return job->ctl_stop; });
    if (job->ctl_stop) break;
    lock.unlock();

    size_t active = job->active.load(std::memory_order_acquire);
    int64_t queued = job->queued.load(std::memory_order_relaxed);
    int64_t inflight = 0;
    for (size_t i = 0; i < active; ++i) {
      inflight += job->slots[i]->inflight.load(std::memory_order_relaxed);
    }
    double now = job->NowSeconds();

    // Horizontal scaling, with hysteresis: a dwell between resizes, and
    // scale-down additionally requires several consecutive low ticks.
    auto up_at = static_cast<int64_t>(opts.scale_up_pressure *
                                      static_cast<double>(active) *
                                      static_cast<double>(max_b));
    auto down_at = static_cast<int64_t>(
        opts.scale_down_pressure * static_cast<double>(active - 1) *
        static_cast<double>(max_b));
    if (active < job->max_replicas && queued > up_at &&
        now - last_resize >= opts.autoscale_dwell) {
      StartReplica(job, active);
      {
        std::lock_guard<std::mutex> stats_lock(job->mu);
        ++job->scale_ups;
      }
      last_resize = now;
      low_ticks = 0;
    } else if (active > job->min_replicas) {
      if (queued + inflight <= down_at) {
        ++low_ticks;
      } else {
        low_ticks = 0;
      }
      if (low_ticks >= kScaleDownTicks &&
          now - last_resize >= opts.autoscale_dwell) {
        RetireReplica(*job, active - 1);
        {
          std::lock_guard<std::mutex> stats_lock(job->mu);
          ++job->scale_downs;
        }
        last_resize = now;
        low_ticks = 0;
      }
    } else {
      low_ticks = 0;
    }

    // Accuracy-for-latency variant ladder (Loki-style): once horizontal
    // scaling is exhausted and the overdue fraction stays high, drop the
    // slowest models; restore them when pressure stays low.
    if (max_level > 0) {
      int64_t overdue = 0;
      int64_t completed = 0;
      size_t created = job->created.load(std::memory_order_acquire);
      for (size_t i = 0; i < created; ++i) {
        Replica& r = *job->slots[i];
        std::lock_guard<std::mutex> stats_lock(r.mu);
        overdue += r.stats.overdue;
        completed += r.stats.processed + r.stats.expired;
      }
      int64_t d_over = overdue - prev_overdue;
      int64_t d_comp = completed - prev_completed;
      prev_overdue = overdue;
      prev_completed = completed;
      if (d_comp > 0) {
        double rate = static_cast<double>(d_over) /
                      static_cast<double>(d_comp);
        if (rate > opts.downshift_overdue_rate) {
          ++high_overdue_ticks;
          low_overdue_ticks = 0;
        } else if (rate < opts.upshift_overdue_rate &&
                   queued <= static_cast<int64_t>(active) * max_b) {
          ++low_overdue_ticks;
          high_overdue_ticks = 0;
        } else {
          high_overdue_ticks = 0;
          low_overdue_ticks = 0;
        }
      }
      int level = job->variant_level.load(std::memory_order_relaxed);
      if (level < max_level && high_overdue_ticks >= kDownshiftTicks &&
          active >= job->max_replicas &&
          now - last_shift >= opts.autoscale_dwell) {
        job->variant_level.store(level + 1, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> stats_lock(job->mu);
          ++job->variant_shifts;
        }
        last_shift = now;
        high_overdue_ticks = 0;
      } else if (level > 0 && low_overdue_ticks >= kUpshiftTicks &&
                 now - last_shift >= 2.0 * opts.autoscale_dwell) {
        job->variant_level.store(level - 1, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> stats_lock(job->mu);
          ++job->variant_shifts;
        }
        last_shift = now;
        low_overdue_ticks = 0;
      }
    }

    lock.lock();
  }
}

double InferenceRuntime::EnsembleAccuracy(const Job& job, uint32_t mask) {
  if (job.opts.ensemble_accuracy != nullptr) {
    return job.opts.ensemble_accuracy(mask);
  }
  double best = 0.0;
  for (size_t m = 0; m < job.accuracies.size(); ++m) {
    if (mask & (1u << m)) best = std::max(best, job.accuracies[m]);
  }
  return best;
}

double InferenceRuntime::ProcessBatch(Job& job, Replica& self,
                                      std::vector<Pending> batch,
                                      uint32_t model_mask,
                                      int64_t expired_unrewarded) {
  auto b = static_cast<int64_t>(batch.size());
  Tensor features({b, job.input_dim});
  for (int64_t r = 0; r < b; ++r) {
    std::memcpy(features.data() + r * job.input_dim,
                batch[static_cast<size_t>(r)].features.data(),
                static_cast<size_t>(job.input_dim) * sizeof(float));
  }

  // Only the models the policy (and variant) selected run — on this
  // replica's own clones; the vote and its accuracy tie-break are over
  // that subset.
  std::vector<std::vector<int64_t>> votes;
  std::vector<double> vote_accuracies;
  votes.reserve(self.models.size());
  for (size_t m = 0; m < self.models.size(); ++m) {
    if ((model_mask & (1u << m)) == 0) continue;
    Tensor logits = self.models[m].net.Forward(features, /*train=*/false);
    votes.push_back(logits.ArgmaxRows());
    vote_accuracies.push_back(job.accuracies[m]);
  }
  std::vector<EnsemblePrediction> answers =
      MajorityVoteRows(votes, vote_accuracies);

  double completion = job.NowSeconds();
  int64_t overdue = 0;
  double latency_sum = 0.0;
  for (const Pending& p : batch) {
    double latency = completion - p.arrival;
    latency_sum += latency;
    if (latency > job.opts.tau) ++overdue;
  }
  // Realized Equation 7 reward for this dispatch: the batch's own overdue
  // completions plus any expiries on this replica since its previous
  // batch, each charged exactly once.
  double accuracy = EnsembleAccuracy(job, model_mask);
  int64_t charged = overdue + expired_unrewarded;
  double reward = BatchReward(accuracy, b, charged, job.opts.beta);
  {
    std::lock_guard<std::mutex> lock(self.mu);
    self.stats.processed += b;
    self.stats.overdue += overdue;
    ++self.stats.batches;
    self.stats.max_batch = std::max(self.stats.max_batch, b);
    self.stats.reward_sum += reward;
    self.stats.accuracy_sum += accuracy * static_cast<double>(b);
    self.stats.reward_overdue += charged;
    self.stats.reward_pending_overdue -= expired_unrewarded;
    if (self.policy->learns()) ++self.stats.learn_steps;
    self.stats.latency_sum += latency_sum;
    for (const Pending& p : batch) {
      self.stats.latency_hist.Add(completion - p.arrival);
    }
  }
  // Invoke continuations after the counters: a caller resumed by its
  // callback immediately sees its own request reflected in Metrics().
  for (int64_t r = 0; r < b; ++r) {
    batch[static_cast<size_t>(r)].done(
        std::move(answers[static_cast<size_t>(r)]));
  }
  return reward;
}

}  // namespace rafiki::serving
