#include "serving/inference_runtime.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "serving/greedy_batch.h"
#include "serving/reward.h"

namespace rafiki::serving {
namespace {

/// Derives the feature dimension of a model: explicit override first, else
/// the leading dimension of the first rank-2 parameter (a Linear weight is
/// [in, out]).
int64_t DeriveInputDim(ServableModel& model) {
  if (model.input_dim > 0) return model.input_dim;
  for (nn::ParamTensor* p : model.net.Params()) {
    if (p->value.rank() == 2) return p->value.dim(0);
  }
  return 0;
}

/// Times one forward of a zeros batch, seconds. The batch is cold data, so
/// this measures the same compute path live requests take.
double TimeForward(nn::Net& net, int64_t batch, int64_t dim) {
  Tensor input({batch, dim});
  auto begin = std::chrono::steady_clock::now();
  net.Forward(input, /*train=*/false);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       begin)
      .count();
}

/// Fits the affine latency model c(b) = intercept + slope * b from timed
/// forwards at b = 1 and b = max(B), as the paper does from its two
/// calibration points (§5.1). Two repetitions each, keeping the minimum,
/// to shed first-touch noise.
model::ModelProfile CalibrateProfile(ServableModel& model, int64_t dim,
                                     int64_t max_batch, bool calibrate) {
  model::ModelProfile profile;
  profile.name = model.name;
  profile.top1_accuracy = model.accuracy;
  if (!calibrate || dim <= 0) return profile;  // zero-latency profile
  double c1 = TimeForward(model.net, 1, dim);
  c1 = std::min(c1, TimeForward(model.net, 1, dim));
  double cb = c1;
  if (max_batch > 1) {
    cb = TimeForward(model.net, max_batch, dim);
    cb = std::min(cb, TimeForward(model.net, max_batch, dim));
  }
  double slope = max_batch > 1
                     ? (cb - c1) / static_cast<double>(max_batch - 1)
                     : 0.0;
  slope = std::max(slope, 0.0);
  profile.latency_slope = slope;
  profile.latency_intercept = std::max(c1 - slope, 0.0);
  return profile;
}

}  // namespace

std::vector<EnsemblePrediction> MajorityVoteRows(
    const std::vector<std::vector<int64_t>>& votes,
    const std::vector<double>& accuracies) {
  RAFIKI_CHECK(!votes.empty());
  RAFIKI_CHECK_EQ(votes.size(), accuracies.size());
  size_t rows = votes[0].size();
  std::vector<EnsemblePrediction> out(rows);
  for (size_t r = 0; r < rows; ++r) {
    std::map<int64_t, int> counts;
    EnsemblePrediction& p = out[r];
    p.votes.reserve(votes.size());
    for (const std::vector<int64_t>& model_votes : votes) {
      RAFIKI_CHECK_EQ(model_votes.size(), rows);
      p.votes.push_back(model_votes[r]);
      ++counts[model_votes[r]];
    }
    int best_votes = 0;
    for (const auto& [label, n] : counts) best_votes = std::max(best_votes, n);
    double best_acc = -1.0;
    for (size_t m = 0; m < votes.size(); ++m) {
      int64_t label = votes[m][r];
      if (counts[label] == best_votes && accuracies[m] > best_acc) {
        best_acc = accuracies[m];
        p.label = label;
      }
    }
  }
  return out;
}

InferenceRuntime::~InferenceRuntime() {
  std::map<std::string, std::shared_ptr<Job>> jobs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs.swap(jobs_);
  }
  for (auto& [id, job] : jobs) StopJob(*job);
}

Result<std::string> InferenceRuntime::Deploy(const std::string& job_id,
                                             std::vector<ServableModel> models,
                                             RuntimeOptions options) {
  if (job_id.empty()) return Status::InvalidArgument("empty job id");
  if (models.empty()) return Status::InvalidArgument("no models to deploy");
  if (models.size() > 31) {
    return Status::InvalidArgument("at most 31 models per ensemble");
  }
  if (options.tau <= 0.0) return Status::InvalidArgument("tau must be > 0");
  if (options.batch_sizes.empty()) {
    return Status::InvalidArgument("batch_sizes must be non-empty");
  }
  for (int64_t b : options.batch_sizes) {
    if (b <= 0) return Status::InvalidArgument("batch sizes must be positive");
  }
  if (options.queue_capacity == 0) {
    return Status::InvalidArgument("queue capacity must be positive");
  }

  auto job = std::make_shared<Job>();
  job->id = job_id;
  job->opts = options;
  job->models = std::move(models);
  job->epoch = std::chrono::steady_clock::now();
  job->ring = std::make_unique<MpscRing<Pending>>(options.queue_capacity);

  job->input_dim = DeriveInputDim(job->models.front());
  if (job->input_dim <= 0) {
    return Status::InvalidArgument(
        StrFormat("cannot derive input dim of model '%s'",
                  job->models.front().name.c_str()));
  }
  int64_t max_b = *std::max_element(options.batch_sizes.begin(),
                                    options.batch_sizes.end());
  for (ServableModel& m : job->models) {
    int64_t dim = DeriveInputDim(m);
    if (dim != job->input_dim) {
      return Status::InvalidArgument(
          StrFormat("model '%s' input dim %lld != %lld", m.name.c_str(),
                    static_cast<long long>(dim),
                    static_cast<long long>(job->input_dim)));
    }
    job->profiles.push_back(
        CalibrateProfile(m, job->input_dim, max_b, options.calibrate));
    job->accuracies.push_back(m.accuracy);
  }
  if (options.policy_factory != nullptr) {
    PolicyInit init;
    init.num_models = job->models.size();
    init.batch_sizes = options.batch_sizes;
    init.accuracies = job->accuracies;
    init.profiles = &job->profiles;
    init.tau = options.tau;
    init.beta = options.beta;
    init.backoff_delta_fraction = options.backoff_delta_fraction;
    job->policy = options.policy_factory(init);
    if (job->policy == nullptr) {
      return Status::InvalidArgument("policy_factory returned no policy");
    }
  } else if (job->models.size() == 1) {
    job->policy = std::make_unique<GreedyBatchPolicy>(
        /*model_index=*/0, options.backoff_delta_fraction);
  } else {
    job->policy = std::make_unique<SyncEnsembleGreedyPolicy>(
        options.backoff_delta_fraction);
  }
  job->stats.policy = job->policy->name();

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (jobs_.count(job_id) > 0) {
      return Status::AlreadyExists(
          StrFormat("inference job '%s' already deployed", job_id.c_str()));
    }
    jobs_[job_id] = job;
  }
  job->dispatcher = std::thread([job] { DispatchLoop(job); });
  return job_id;
}

std::shared_ptr<InferenceRuntime::Job> InferenceRuntime::FindJob(
    const std::string& job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  return it == jobs_.end() ? nullptr : it->second;
}

Status InferenceRuntime::Undeploy(const std::string& job_id) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(job_id);
    if (it == jobs_.end()) {
      return Status::NotFound(
          StrFormat("no inference job '%s'", job_id.c_str()));
    }
    job = std::move(it->second);
    jobs_.erase(it);
  }
  StopJob(*job);
  return Status::OK();
}

void InferenceRuntime::StopJob(Job& job) {
  // Close the ring BEFORE publishing `stopping`: when the dispatcher
  // acquire-loads stopping == true, the closed bit is already visible, so
  // its final DrainClosed() observes every value a producer ever enqueued.
  if (job.ring != nullptr) job.ring->Close();
  job.stopping.store(true, std::memory_order_release);
  job.doorbell.Notify();
  if (job.dispatcher.joinable()) job.dispatcher.join();
}

Status InferenceRuntime::SubmitAsync(const std::string& job_id,
                                     Tensor features, Callback done) {
  if (done == nullptr) {
    return Status::InvalidArgument("SubmitAsync requires a callback");
  }
  std::shared_ptr<Job> job = FindJob(job_id);
  if (job == nullptr) {
    return Status::NotFound(StrFormat("no inference job '%s'",
                                      job_id.c_str()));
  }
  if (features.rank() == 1) features.Reshape({1, features.numel()});
  if (features.rank() != 2 || features.dim(0) != 1) {
    return Status::InvalidArgument("features must be [dim] or [1, dim]");
  }
  if (features.dim(1) != job->input_dim) {
    return Status::InvalidArgument(
        StrFormat("feature dim %lld != model input dim %lld",
                  static_cast<long long>(features.dim(1)),
                  static_cast<long long>(job->input_dim)));
  }

  if (job->stopping.load(std::memory_order_acquire)) {
    return Status::NotFound(
        StrFormat("inference job '%s' is undeploying", job_id.c_str()));
  }

  Pending pending;
  pending.features = std::move(features);
  pending.done = std::move(done);
  pending.arrival = job->NowSeconds();

  // Lock-free admission: count the arrival, reserve a queue slot on the
  // atomic gauge (the exact-capacity gate), then publish into the ring.
  job->arrived.fetch_add(1, std::memory_order_relaxed);
  int64_t depth = job->queued.fetch_add(1, std::memory_order_acq_rel);
  if (depth >= static_cast<int64_t>(job->opts.queue_capacity)) {
    job->queued.fetch_sub(1, std::memory_order_acq_rel);
    job->dropped.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable(
        StrFormat("inference job '%s' queue full", job_id.c_str()));
  }
  switch (job->ring->TryPush(std::move(pending))) {
    case MpscRing<Pending>::PushResult::kOk:
      break;
    case MpscRing<Pending>::PushResult::kClosed:
      // Undeploy raced us after the reservation. The request was never
      // accepted, so the arrival is uncounted again — the books still
      // close at arrived == processed + dropped + expired.
      job->queued.fetch_sub(1, std::memory_order_acq_rel);
      job->arrived.fetch_sub(1, std::memory_order_relaxed);
      return Status::NotFound(
          StrFormat("inference job '%s' is undeploying", job_id.c_str()));
    case MpscRing<Pending>::PushResult::kFull:
      // Unreachable: the `queued` gate is tighter than the ring capacity.
      job->queued.fetch_sub(1, std::memory_order_acq_rel);
      job->dropped.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(
          StrFormat("inference job '%s' queue full", job_id.c_str()));
  }
  job->doorbell.Notify();
  return Status::OK();
}

Result<std::future<Result<EnsemblePrediction>>> InferenceRuntime::Submit(
    const std::string& job_id, Tensor features) {
  auto promise =
      std::make_shared<std::promise<Result<EnsemblePrediction>>>();
  std::future<Result<EnsemblePrediction>> future = promise->get_future();
  RAFIKI_RETURN_IF_ERROR(SubmitAsync(
      job_id, std::move(features),
      [promise](Result<EnsemblePrediction> answer) {
        promise->set_value(std::move(answer));
      }));
  return future;
}

Result<std::vector<EnsemblePrediction>> InferenceRuntime::QueryBatch(
    const std::string& job_id, const Tensor& features) {
  if (features.rank() != 2) {
    return Status::InvalidArgument("features must be [batch, dim]");
  }
  int64_t rows = features.dim(0);
  int64_t dim = features.dim(1);
  std::vector<std::future<Result<EnsemblePrediction>>> futures;
  futures.reserve(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    Tensor row({1, dim});
    std::memcpy(row.data(), features.data() + r * dim,
                static_cast<size_t>(dim) * sizeof(float));
    // Backpressure: a full queue is retryable; give the dispatcher a bounded
    // amount of time to drain before giving up on the whole batch.
    int attempts = 0;
    for (;;) {
      Result<std::future<Result<EnsemblePrediction>>> submitted =
          Submit(job_id, std::move(row));
      if (submitted.ok()) {
        futures.push_back(std::move(*submitted));
        break;
      }
      if (!submitted.status().IsUnavailable() || ++attempts > 2000) {
        return submitted.status();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      Tensor retry({1, dim});
      std::memcpy(retry.data(), features.data() + r * dim,
                  static_cast<size_t>(dim) * sizeof(float));
      row = std::move(retry);
    }
  }
  std::vector<EnsemblePrediction> out;
  out.reserve(futures.size());
  for (auto& future : futures) {
    Result<EnsemblePrediction> answer = future.get();
    if (!answer.ok()) return answer.status();
    out.push_back(std::move(*answer));
  }
  return out;
}

Result<InferenceJobMetrics> InferenceRuntime::Metrics(
    const std::string& job_id) const {
  std::shared_ptr<Job> job = FindJob(job_id);
  if (job == nullptr) {
    return Status::NotFound(StrFormat("no inference job '%s'",
                                      job_id.c_str()));
  }
  std::lock_guard<std::mutex> lock(job->mu);
  InferenceJobMetrics stats = job->stats;
  stats.arrived = job->arrived.load(std::memory_order_relaxed);
  stats.dropped = job->dropped.load(std::memory_order_relaxed);
  if (stats.batches > 0) {
    stats.mean_batch = static_cast<double>(stats.processed) /
                       static_cast<double>(stats.batches);
  }
  if (stats.processed > 0) {
    stats.mean_latency = job->latency_sum /
                         static_cast<double>(stats.processed);
    stats.p50_latency = job->latency_hist.P50();
    stats.p95_latency = job->latency_hist.P95();
    stats.p99_latency = job->latency_hist.P99();
  }
  stats.queue_depth = job->queued.load(std::memory_order_relaxed);
  return stats;
}

std::vector<std::string> InferenceRuntime::Jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(id);
  return out;
}

void InferenceRuntime::DispatchLoop(const std::shared_ptr<Job>& job) {
  const RuntimeOptions& opts = job->opts;
  const double delta = opts.backoff_delta_fraction * opts.tau;
  MpscRing<Pending>& ring = *job->ring;
  // Dispatcher-local FIFO: the ring is drained into it in batches, and the
  // policy works against it without any shared lock. Requests here still
  // count as "queued" — the gauge drops only when they are batched,
  // expired, or failed at shutdown.
  RingDeque<Pending> lq;
  auto take = [&lq](Pending&& p) { lq.push_back(std::move(p)); };
  std::vector<Pending> expired;  // scratch, capacity reused
  // Expiries not yet folded into a reward: Equation 7 charges overdue at
  // batch completion, so an expired (504) request is charged against the
  // NEXT dispatched batch — exactly once. Dispatcher-local; the
  // reward_pending_overdue gauge mirrors it for observers.
  int64_t expired_unrewarded = 0;
  const uint32_t all_models_mask =
      (1u << static_cast<uint32_t>(job->models.size())) - 1u;

  while (!job->stopping.load(std::memory_order_acquire)) {
    ring.ConsumeBatch(opts.queue_capacity, take);
    if (lq.empty()) {
      // Sleep until a producer rings the doorbell. PrepareWait/recheck
      // closes the race with a push that lands between the emptiness check
      // and the futex wait; the timeout re-evaluates deadline pressure.
      uint32_t epoch = job->doorbell.PrepareWait();
      if (job->stopping.load(std::memory_order_acquire) ||
          ring.ApproxSize() > 0) {
        job->doorbell.CancelWait();
        continue;
      }
      job->doorbell.Wait(epoch, opts.max_poll_seconds);
      continue;
    }

    double now = job->NowSeconds();
    if (opts.expire_overdue) {
      // Queue-deadline: a request already older than tau cannot possibly
      // meet the SLO — answer it kDeadlineExceeded now instead of letting
      // it occupy batch capacity. FIFO queue, so waits are longest at the
      // front and the scan stops at the first fresh request.
      while (!lq.empty() && now - lq.front().arrival > opts.tau) {
        expired.push_back(std::move(lq.front()));
        lq.pop_front();
      }
      if (!expired.empty()) {
        auto n = static_cast<int64_t>(expired.size());
        job->queued.fetch_sub(n, std::memory_order_acq_rel);
        expired_unrewarded += n;
        {
          std::lock_guard<std::mutex> lock(job->mu);
          job->stats.expired += n;
          job->stats.overdue += n;
          job->stats.reward_pending_overdue += n;
        }
        for (Pending& p : expired) {
          p.done(Status::DeadlineExceeded(
              StrFormat("queue wait exceeded tau=%.6fs", opts.tau)));
        }
        expired.clear();
        continue;
      }
    }
    ServingObs obs;
    obs.tau = opts.tau;
    obs.batch_sizes = &opts.batch_sizes;
    obs.models = &job->profiles;
    obs.queue_len = lq.size();
    // Stamp the queue features at the moment Decide() runs, not at tick
    // start: the expiry scan and its 504 continuations above take real
    // time, and a stale `now` would understate every wait the agent sees.
    // Producers stamp `arrival` before the ring push the dispatcher
    // consumed, and the clock is monotonic, so waits are never negative.
    now = job->NowSeconds();
    obs.now = now;
    size_t wait_count = std::min<size_t>(lq.size(), 64);
    obs.queue_waits.reserve(wait_count);
    for (size_t i = 0; i < wait_count; ++i) {
      double wait = now - lq[i].arrival;
#ifndef NDEBUG
      RAFIKI_CHECK_GE(wait, 0.0) << "stale queue-wait feature";
#endif
      obs.queue_waits.push_back(wait);
    }
    // The dispatcher is the only executor and runs batches synchronously,
    // so every model is free at decision time.
    obs.busy_remaining.assign(job->profiles.size(), 0.0);

    ServingAction action = job->policy->Decide(obs);
    int64_t b = std::min<int64_t>(action.batch_size,
                                  static_cast<int64_t>(lq.size()));
    if (!action.process || b <= 0) {
      // Algorithm 3 said wait: sleep until the oldest request would trip
      // the deadline flush (c(b_eff) + w(q_0) + delta >= tau) or a new
      // arrival rings the doorbell and re-triggers a decision.
      int64_t feasible =
          LargestFeasibleBatch(opts.batch_sizes, obs.queue_len);
      int64_t effective =
          feasible > 0 ? feasible : static_cast<int64_t>(obs.queue_len);
      double worst_latency = 0.0;
      for (const model::ModelProfile& m : job->profiles) {
        worst_latency = std::max(worst_latency, m.BatchLatency(effective));
      }
      double oldest = obs.queue_waits.empty() ? 0.0 : obs.queue_waits[0];
      double until_flush = opts.tau - delta - worst_latency - oldest;
      double sleep_s =
          std::clamp(until_flush, 100e-6, opts.max_poll_seconds);
      uint32_t epoch = job->doorbell.PrepareWait();
      if (job->stopping.load(std::memory_order_acquire) ||
          ring.ApproxSize() > 0) {
        job->doorbell.CancelWait();
      } else {
        job->doorbell.Wait(epoch, sleep_s);
      }
      continue;
    }

    std::vector<Pending> batch;
    batch.reserve(static_cast<size_t>(b));
    for (int64_t i = 0; i < b; ++i) {
      batch.push_back(std::move(lq.front()));
      lq.pop_front();
    }
    job->queued.fetch_sub(b, std::memory_order_acq_rel);
    // Sanitize the mask for execution (the policy's own action object is
    // preserved for Feedback, which re-encodes it): bits beyond the
    // deployed models are dropped, and an empty selection degrades to the
    // full ensemble so the batch is still answered.
    uint32_t mask = action.model_mask & all_models_mask;
    if (mask == 0) mask = all_models_mask;
    double reward =
        ProcessBatch(*job, std::move(batch), mask, expired_unrewarded);
    expired_unrewarded = 0;
    // Online learning from the realized outcome (no-op for greedy): runs
    // on this dispatcher thread, after the stats fold, so Metrics readers
    // never see a batch whose reward is missing.
    job->policy->Feedback(obs, action, reward);
  }

  // Shutdown: StopJob closed the ring before `stopping` became visible, so
  // DrainClosed observes every request any producer ever enqueued. Fail
  // them (plus anything already local); they arrived but were never
  // served, so they count as dropped (keeps arrived == processed +
  // dropped + expired after Undeploy).
  ring.DrainClosed(take);
  if (!lq.empty()) {
    auto n = static_cast<int64_t>(lq.size());
    job->queued.fetch_sub(n, std::memory_order_acq_rel);
    job->dropped.fetch_add(n, std::memory_order_relaxed);
  }
  while (!lq.empty()) {
    Pending p = std::move(lq.front());
    lq.pop_front();
    p.done(Status::Unavailable(
        StrFormat("inference job '%s' undeployed", job->id.c_str())));
  }
}

double InferenceRuntime::EnsembleAccuracy(const Job& job, uint32_t mask) {
  if (job.opts.ensemble_accuracy != nullptr) {
    return job.opts.ensemble_accuracy(mask);
  }
  double best = 0.0;
  for (size_t m = 0; m < job.accuracies.size(); ++m) {
    if (mask & (1u << m)) best = std::max(best, job.accuracies[m]);
  }
  return best;
}

double InferenceRuntime::ProcessBatch(Job& job, std::vector<Pending> batch,
                                      uint32_t model_mask,
                                      int64_t expired_unrewarded) {
  auto b = static_cast<int64_t>(batch.size());
  Tensor features({b, job.input_dim});
  for (int64_t r = 0; r < b; ++r) {
    std::memcpy(features.data() + r * job.input_dim,
                batch[static_cast<size_t>(r)].features.data(),
                static_cast<size_t>(job.input_dim) * sizeof(float));
  }

  // Only the models the policy selected run (the ensemble bit-vector v of
  // §5.2); the vote and its accuracy tie-break are over that subset.
  std::vector<std::vector<int64_t>> votes;
  std::vector<double> vote_accuracies;
  votes.reserve(job.models.size());
  for (size_t m = 0; m < job.models.size(); ++m) {
    if ((model_mask & (1u << m)) == 0) continue;
    Tensor logits = job.models[m].net.Forward(features, /*train=*/false);
    votes.push_back(logits.ArgmaxRows());
    vote_accuracies.push_back(job.accuracies[m]);
  }
  std::vector<EnsemblePrediction> answers =
      MajorityVoteRows(votes, vote_accuracies);

  double completion = job.NowSeconds();
  int64_t overdue = 0;
  double latency_sum = 0.0;
  for (const Pending& p : batch) {
    double latency = completion - p.arrival;
    latency_sum += latency;
    if (latency > job.opts.tau) ++overdue;
  }
  // Realized Equation 7 reward for this dispatch: the batch's own overdue
  // completions plus any expiries since the previous batch, each charged
  // exactly once.
  double accuracy = EnsembleAccuracy(job, model_mask);
  int64_t charged = overdue + expired_unrewarded;
  double reward = BatchReward(accuracy, b, charged, job.opts.beta);
  {
    std::lock_guard<std::mutex> lock(job.mu);
    job.stats.processed += b;
    job.stats.overdue += overdue;
    ++job.stats.batches;
    job.stats.max_batch = std::max(job.stats.max_batch, b);
    job.stats.reward_sum += reward;
    job.stats.accuracy_sum += accuracy * static_cast<double>(b);
    job.stats.reward_overdue += charged;
    job.stats.reward_pending_overdue -= expired_unrewarded;
    if (job.policy->learns()) ++job.stats.learn_steps;
    job.latency_sum += latency_sum;
    for (const Pending& p : batch) {
      job.latency_hist.Add(completion - p.arrival);
    }
  }
  // Invoke continuations after the counters: a caller resumed by its
  // callback immediately sees its own request reflected in Metrics().
  for (int64_t r = 0; r < b; ++r) {
    batch[static_cast<size_t>(r)].done(
        std::move(answers[static_cast<size_t>(r)]));
  }
  return reward;
}

}  // namespace rafiki::serving
