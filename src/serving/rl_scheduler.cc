#include "serving/rl_scheduler.h"

#include <algorithm>

#include "common/logging.h"

namespace rafiki::serving {

RlSchedulerPolicy::RlSchedulerPolicy(
    size_t num_models, std::vector<int64_t> batch_sizes,
    const model::EnsembleAccuracyTable* accuracy_table,
    RlSchedulerOptions options)
    : num_models_(num_models),
      batch_sizes_(std::move(batch_sizes)),
      accuracy_table_(accuracy_table),
      options_(options) {
  RAFIKI_CHECK_GT(num_models, 0u);
  RAFIKI_CHECK_LE(num_models, 8u);
  RAFIKI_CHECK(!batch_sizes_.empty());
  if (num_models > 1) {
    RAFIKI_CHECK(accuracy_table != nullptr)
        << "multi-model scheduler needs a(M[v])";
  }
  num_actions_ = static_cast<int>(((1u << num_models_) - 1) *
                                  batch_sizes_.size());
  // State: queue waits + queue length + (multi-model only) c(m,b) matrix
  // and per-model busy time (§7.2.1 removes model status for |M| = 1).
  state_dim_ = options_.queue_feature_len + 1;
  if (num_models_ > 1) {
    state_dim_ += static_cast<int>(num_models_ * batch_sizes_.size());
    state_dim_ += static_cast<int>(num_models_);
  }
  rl::ActorCriticOptions agent = options_.agent;
  agent.state_dim = state_dim_;
  agent.num_actions = num_actions_;
  agent_ = std::make_unique<rl::ActorCritic>(agent);
  max_batch_ = static_cast<double>(
      *std::max_element(batch_sizes_.begin(), batch_sizes_.end()));
}

std::vector<double> RlSchedulerPolicy::Featurize(
    const ServingObs& obs) const {
  std::vector<double> f;
  f.reserve(static_cast<size_t>(state_dim_));
  // Queue status: waiting times normalized by tau, padded/truncated.
  // Features are clamped so a deep backlog cannot saturate the MLP (the
  // policy still sees "very late" but gradients stay well-scaled).
  for (int i = 0; i < options_.queue_feature_len; ++i) {
    double w = i < static_cast<int>(obs.queue_waits.size())
                   ? obs.queue_waits[static_cast<size_t>(i)]
                   : 0.0;
    f.push_back(std::min(w / obs.tau, 4.0));
  }
  f.push_back(std::min(
      static_cast<double>(obs.queue_len) / (2.0 * max_batch_), 4.0));
  if (num_models_ > 1) {
    // Model status: c(m, b) matrix (normalized by tau)...
    for (size_t m = 0; m < num_models_; ++m) {
      for (int64_t b : batch_sizes_) {
        f.push_back((*obs.models)[m].BatchLatency(b) / obs.tau);
      }
    }
    // ...and time left to finish already-dispatched requests.
    for (size_t m = 0; m < num_models_; ++m) {
      f.push_back(obs.busy_remaining[m] / obs.tau);
    }
  }
  RAFIKI_CHECK_EQ(static_cast<int>(f.size()), state_dim_);
  return f;
}

ServingAction RlSchedulerPolicy::DecodeAction(int action) const {
  RAFIKI_CHECK_GE(action, 0);
  RAFIKI_CHECK_LT(action, num_actions_);
  int num_b = static_cast<int>(batch_sizes_.size());
  uint32_t mask = static_cast<uint32_t>(action / num_b) + 1;  // skip v=0
  int64_t batch = batch_sizes_[static_cast<size_t>(action % num_b)];
  return ServingAction{true, mask, batch};
}

int RlSchedulerPolicy::EncodeAction(const ServingAction& action) const {
  int num_b = static_cast<int>(batch_sizes_.size());
  auto it = std::find(batch_sizes_.begin(), batch_sizes_.end(),
                      action.batch_size);
  RAFIKI_CHECK(it != batch_sizes_.end());
  int b_idx = static_cast<int>(it - batch_sizes_.begin());
  return static_cast<int>(action.model_mask - 1) * num_b + b_idx;
}

ServingAction RlSchedulerPolicy::Decide(const ServingObs& obs) {
  if (obs.queue_len == 0) return ServingAction{};  // nothing to schedule

  // Action masking: dispatching to a busy model is physically impossible
  // (the paper's containers process one batch at a time), so restrict the
  // policy to subsets of the free models and renormalize.
  uint32_t free_mask = 0;
  for (size_t m = 0; m < num_models_; ++m) {
    if (obs.busy_remaining[m] <= 0.0) free_mask |= 1u << m;
  }
  if (free_mask == 0) return ServingAction{};  // everything busy

  int num_b = static_cast<int>(batch_sizes_.size());
  std::vector<bool> valid(static_cast<size_t>(num_actions_), false);
  for (int a = 0; a < num_actions_; ++a) {
    uint32_t mask = static_cast<uint32_t>(a / num_b) + 1;
    valid[static_cast<size_t>(a)] = (mask & ~free_mask) == 0;
  }

  std::vector<double> state = Featurize(obs);
  int a = agent_->ActMasked(state, valid, options_.explore);
  if (a < 0) return ServingAction{};
  return DecodeAction(a);
}

void RlSchedulerPolicy::Feedback(const ServingObs& obs,
                                 const ServingAction& action, double reward) {
  std::vector<double> state = Featurize(obs);
  int64_t effective_batch = std::min<int64_t>(
      action.batch_size, static_cast<int64_t>(obs.queue_len));
  double shaped = reward;
  if (options_.throughput_shaping > 0.0 && effective_batch > 0) {
    // Requests already past the SLO at dispatch time.
    int64_t o_pre = 0;
    int64_t limit = std::min<int64_t>(
        effective_batch, static_cast<int64_t>(obs.queue_waits.size()));
    for (int64_t i = 0; i < limit; ++i) {
      if (obs.queue_waits[static_cast<size_t>(i)] > obs.tau) ++o_pre;
    }
    if (o_pre > 0) {
      double c_fastest = 1e300;
      for (const model::ModelProfile& m : *obs.models) {
        c_fastest = std::min(c_fastest, m.BatchLatency(effective_batch));
      }
      double c_chosen = 0.0;
      for (size_t m = 0; m < num_models_; ++m) {
        if (action.model_mask & (1u << m)) {
          c_chosen = std::max(c_chosen,
                              (*obs.models)[m].BatchLatency(effective_batch));
        }
      }
      shaped += options_.throughput_shaping * static_cast<double>(o_pre) *
                (c_fastest / std::max(c_chosen, 1e-9));
    }
  }
  agent_->Record(state, EncodeAction(action), NormalizeReward(shaped));
}

double RlSchedulerPolicy::NormalizeReward(double raw_reward) const {
  return raw_reward / max_batch_;
}

PolicyFactory MakeRlSchedulerFactory(RlSchedulerOptions options) {
  return [options](const PolicyInit& init)
             -> std::unique_ptr<SchedulerPolicy> {
    std::shared_ptr<const model::EnsembleAccuracyTable> table;
    if (init.num_models > 1) {
      // a(M[v]) for the joint mask/batch action space, estimated over the
      // job's calibrated profiles with the paper's correlated-error model.
      table = std::make_shared<model::EnsembleAccuracyTable>(
          *init.profiles, model::PredictionSimOptions{},
          /*num_requests=*/20000);
    }
    auto policy = std::make_unique<RlSchedulerPolicy>(
        init.num_models, init.batch_sizes, table.get(), options);
    policy->OwnAccuracyTable(std::move(table));
    return policy;
  };
}

}  // namespace rafiki::serving
