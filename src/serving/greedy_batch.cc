#include "serving/greedy_batch.h"

#include <algorithm>

#include "common/logging.h"

namespace rafiki::serving {

int64_t LargestFeasibleBatch(const std::vector<int64_t>& batch_sizes,
                             size_t queue_len) {
  int64_t best = 0;
  for (int64_t b : batch_sizes) {
    if (b <= static_cast<int64_t>(queue_len)) best = std::max(best, b);
  }
  return best;
}

GreedyBatchPolicy::GreedyBatchPolicy(size_t model_index,
                                     double backoff_delta_fraction)
    : model_index_(model_index), backoff_fraction_(backoff_delta_fraction) {}

ServingAction GreedyBatchPolicy::Decide(const ServingObs& obs) {
  RAFIKI_CHECK(obs.batch_sizes != nullptr && obs.models != nullptr);
  RAFIKI_CHECK_LT(model_index_, obs.models->size());
  ServingAction wait;
  if (obs.queue_len == 0) return wait;
  if (obs.busy_remaining[model_index_] > 0.0) return wait;  // model busy

  const model::ModelProfile& m = (*obs.models)[model_index_];
  int64_t max_b = *std::max_element(obs.batch_sizes->begin(),
                                    obs.batch_sizes->end());
  uint32_t mask = 1u << model_index_;
  if (static_cast<int64_t>(obs.queue_len) >= max_b) {
    return ServingAction{true, mask, max_b};  // Alg. 3 line 3-5
  }
  int64_t b = LargestFeasibleBatch(*obs.batch_sizes, obs.queue_len);
  // Queue shorter than min(B): flush a partial batch only under deadline
  // pressure.
  int64_t effective = b > 0 ? b : static_cast<int64_t>(obs.queue_len);
  double oldest_wait = obs.queue_waits.empty() ? 0.0 : obs.queue_waits[0];
  double delta = backoff_fraction_ * obs.tau;
  if (m.BatchLatency(effective) + oldest_wait + delta >= obs.tau) {
    return ServingAction{true, mask, effective};  // Alg. 3 line 8-10
  }
  return wait;
}

SyncEnsembleGreedyPolicy::SyncEnsembleGreedyPolicy(
    double backoff_delta_fraction)
    : backoff_fraction_(backoff_delta_fraction) {}

ServingAction SyncEnsembleGreedyPolicy::Decide(const ServingObs& obs) {
  ServingAction wait;
  if (obs.queue_len == 0) return wait;
  size_t n = obs.models->size();
  uint32_t all = (1u << n) - 1;
  // Synchronous: every model must be free.
  for (size_t i = 0; i < n; ++i) {
    if (obs.busy_remaining[i] > 0.0) return wait;
  }
  // Ensemble latency is gated by the slowest model.
  auto ensemble_latency = [&](int64_t b) {
    double worst = 0.0;
    for (const model::ModelProfile& m : *obs.models) {
      worst = std::max(worst, m.BatchLatency(b));
    }
    return worst;
  };
  int64_t max_b = *std::max_element(obs.batch_sizes->begin(),
                                    obs.batch_sizes->end());
  if (static_cast<int64_t>(obs.queue_len) >= max_b) {
    return ServingAction{true, all, max_b};
  }
  int64_t b = LargestFeasibleBatch(*obs.batch_sizes, obs.queue_len);
  int64_t effective = b > 0 ? b : static_cast<int64_t>(obs.queue_len);
  double oldest_wait = obs.queue_waits.empty() ? 0.0 : obs.queue_waits[0];
  double delta = backoff_fraction_ * obs.tau;
  if (ensemble_latency(effective) + oldest_wait + delta >= obs.tau) {
    return ServingAction{true, all, effective};
  }
  return wait;
}

AsyncNoEnsemblePolicy::AsyncNoEnsemblePolicy(double backoff_delta_fraction)
    : backoff_fraction_(backoff_delta_fraction) {}

ServingAction AsyncNoEnsemblePolicy::Decide(const ServingObs& obs) {
  ServingAction wait;
  if (obs.queue_len == 0) return wait;
  size_t n = obs.models->size();
  // Round-robin over FREE models so different batches land on different
  // models concurrently (maximum throughput, no ensembling).
  for (size_t probe = 0; probe < n; ++probe) {
    size_t i = (next_model_ + probe) % n;
    if (obs.busy_remaining[i] > 0.0) continue;
    const model::ModelProfile& m = (*obs.models)[i];
    uint32_t mask = 1u << i;
    int64_t max_b = *std::max_element(obs.batch_sizes->begin(),
                                      obs.batch_sizes->end());
    if (static_cast<int64_t>(obs.queue_len) >= max_b) {
      next_model_ = (i + 1) % n;
      return ServingAction{true, mask, max_b};
    }
    int64_t b = LargestFeasibleBatch(*obs.batch_sizes, obs.queue_len);
    int64_t effective = b > 0 ? b : static_cast<int64_t>(obs.queue_len);
    double oldest_wait = obs.queue_waits.empty() ? 0.0 : obs.queue_waits[0];
    double delta = backoff_fraction_ * obs.tau;
    if (m.BatchLatency(effective) + oldest_wait + delta >= obs.tau) {
      next_model_ = (i + 1) % n;
      return ServingAction{true, mask, effective};
    }
    // This model could serve but the deadline test says wait; other models
    // would decide the same (shared queue), so stop probing.
    return wait;
  }
  return wait;
}

}  // namespace rafiki::serving
