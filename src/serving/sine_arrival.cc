#include "serving/sine_arrival.h"

#include <cmath>

#include "common/logging.h"

namespace rafiki::serving {
namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

SineArrivalProcess::SineArrivalProcess(double target_rate, double period,
                                       uint64_t seed, double noise_stddev)
    : target_(target_rate),
      period_(period),
      noise_stddev_(noise_stddev),
      rng_(seed) {
  RAFIKI_CHECK_GT(target_rate, 0.0);
  RAFIKI_CHECK_GT(period, 0.0);
  // Equations 8-9: peak = 1.1 r*, above-target arc = 20% of the cycle.
  // sin threshold at the 20% arc edges: cos(0.2*pi).
  // Derivation: b + gamma = 1.1 r* and b + gamma*s = r* with s the sine
  // value at the 20%-arc edge => gamma (1 - s) = 0.1 r*.
  double s = std::cos(0.2 * kPi);  // ~0.809
  gamma_ = 0.1 * target_rate / (1.0 - s);
  b_ = target_rate - gamma_ * s;
  RAFIKI_CHECK_GE(b_ - gamma_, 0.0) << "negative arrival rate at trough";
}

double SineArrivalProcess::Rate(double t) const {
  return gamma_ * std::sin(2.0 * kPi * t / period_) + b_;
}

int64_t SineArrivalProcess::Arrivals(double t, double delta) {
  RAFIKI_CHECK_GE(delta, 0.0);
  double phi = rng_.Gaussian(0.0, noise_stddev_);
  double expected = delta * Rate(t) * (1.0 + phi);
  if (expected < 0.0) expected = 0.0;
  expected += residual_;
  auto n = static_cast<int64_t>(std::floor(expected));
  residual_ = expected - static_cast<double>(n);
  return n;
}

double SineArrivalProcess::FractionAboveTarget(int samples) const {
  int above = 0;
  for (int i = 0; i < samples; ++i) {
    double t = period_ * static_cast<double>(i) / samples;
    if (Rate(t) > target_) ++above;
  }
  return static_cast<double>(above) / samples;
}

}  // namespace rafiki::serving
