#ifndef RAFIKI_SERVING_REQUEST_H_
#define RAFIKI_SERVING_REQUEST_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/logging.h"

namespace rafiki::serving {

/// One inference request as seen by the scheduler.
struct Request {
  int64_t id = 0;
  double arrival_time = 0.0;
};

/// FIFO request queue (§5: "we process the requests in the queue
/// sequentially following FIFO"). q_k in the paper is the k-th oldest
/// request; q_{:k} the oldest k.
class RequestQueue {
 public:
  /// Caps the queue; beyond it new requests are dropped (and counted), as
  /// with any bounded serving system ("new requests have to be dropped",
  /// §7.2).
  explicit RequestQueue(size_t capacity = 100000) : capacity_(capacity) {}

  /// Returns false (and counts a drop) when full.
  bool Push(const Request& request) {
    if (queue_.size() >= capacity_) {
      ++dropped_;
      return false;
    }
    queue_.push_back(request);
    return true;
  }

  /// Removes and returns the oldest `n` requests (q_{:n}).
  std::vector<Request> PopOldest(size_t n) {
    RAFIKI_CHECK_LE(n, queue_.size());
    std::vector<Request> out(queue_.begin(),
                             queue_.begin() + static_cast<long>(n));
    queue_.erase(queue_.begin(), queue_.begin() + static_cast<long>(n));
    return out;
  }

  size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }
  size_t dropped() const { return dropped_; }

  /// Waiting time of the oldest request w(q_0); 0 when empty.
  double OldestWait(double now) const {
    return queue_.empty() ? 0.0 : now - queue_.front().arrival_time;
  }

  /// Waiting times of up to `max_count` oldest requests (the queue-status
  /// feature vector of §5.2 before padding).
  std::vector<double> Waits(double now, size_t max_count) const {
    std::vector<double> out;
    size_t n = std::min(max_count, queue_.size());
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out.push_back(now - queue_[i].arrival_time);
    }
    return out;
  }

 private:
  size_t capacity_;
  std::deque<Request> queue_;
  size_t dropped_ = 0;
};

}  // namespace rafiki::serving

#endif  // RAFIKI_SERVING_REQUEST_H_
