#ifndef RAFIKI_SERVING_RL_SCHEDULER_H_
#define RAFIKI_SERVING_RL_SCHEDULER_H_

#include <memory>
#include <string>
#include <vector>

#include "model/prediction_sim.h"
#include "rl/actor_critic.h"
#include "serving/policy.h"

namespace rafiki::serving {

/// The paper's RL scheduler (§5.2): an actor-critic agent whose
///  * state is the queue status (per-request waiting times, padded/
///    truncated to a fixed length) concatenated with the model status
///    (c(m, b) for all m in M, b in B, and each model's remaining busy
///    time);
///  * action jointly selects the model subset v (ensemble bit-vector,
///    v = 0 excluded) and the batch size b — an action space of size
///    (2^|M| - 1) * |B|;
///  * reward is Equation 7, normalized to keep gradients well-scaled.
///
/// For the single-model experiments (Figures 10/13) construct it with
/// |M| = 1: the mask collapses and only the batch size is learned, with the
/// model-status features removed from the state as §7.2.1 describes.
struct RlSchedulerOptions {
  /// Queue-status feature length (pad with 0 / truncate, §5.2).
  int queue_feature_len = 20;
  double beta = 1.0;  // Equation 7 balance
  rl::ActorCriticOptions agent;
  /// Optional penalty when the chosen action is invalid (a selected model
  /// is busy): the scheduler waits instead. Defaults to 0 (no feedback) —
  /// the decision point recurs every tick while models are busy, so even a
  /// small penalty accumulates against exactly the large ensembles and
  /// batches that Equation 7 is supposed to reward, biasing the agent
  /// toward single models. The paper's reward is Equation 7 alone.
  double invalid_action_penalty = 0.0;
  /// Drain-rate shaping added to the AGENT's reward (never to the reported
  /// Equation 7 metrics). Needed for learnability at overload: once the
  /// backlog exceeds tau, every request of every action is overdue and
  /// Equation 7 is identically zero, so the policy gradient vanishes
  /// exactly when the scheduler must learn to drain (Figure 15's max-rate
  /// regime). The bonus is self-gating: it only counts requests that were
  /// ALREADY overdue when dispatched (o_pre), scaled by how fast the
  /// chosen ensemble clears them relative to the fastest single model:
  ///   shaped = Eq7 + shaping * o_pre * (c_fastest(b) / c(v, b)).
  /// For healthy queues o_pre = 0 and the reward is exactly Equation 7;
  /// when drowned it implements Equation 5's minimize-exceeding-time
  /// objective (the only good left for doomed requests is draining them
  /// quickly).
  double throughput_shaping = 0.5;
  bool explore = true;
};

class RlSchedulerPolicy : public SchedulerPolicy {
 public:
  /// `accuracy_table` provides a(M[v]) (Figure 6 surrogate accuracies);
  /// may be null when |M| == 1 (single-model accuracy is constant and
  /// drops out of the decision).
  RlSchedulerPolicy(size_t num_models, std::vector<int64_t> batch_sizes,
                    const model::EnsembleAccuracyTable* accuracy_table,
                    RlSchedulerOptions options);

  ServingAction Decide(const ServingObs& obs) override;
  void Feedback(const ServingObs& obs, const ServingAction& action,
                double reward) override;
  bool learns() const override { return true; }
  std::string name() const override { return "rl"; }

  /// Normalizes an Equation 7 reward into roughly [-beta, 1].
  double NormalizeReward(double raw_reward) const;

  int num_actions() const { return num_actions_; }
  int state_dim() const { return state_dim_; }
  rl::ActorCritic& agent() { return *agent_; }

  /// Toggles exploration (benches train with it on, then evaluate the
  /// learned policy greedily).
  void set_explore(bool explore) { options_.explore = explore; }

  /// Builds the §5.2 state feature vector (public for tests).
  std::vector<double> Featurize(const ServingObs& obs) const;

  /// Transfers ownership of the accuracy table the constructor was pointed
  /// at (used by MakeRlSchedulerFactory, which builds the table and the
  /// policy together).
  void OwnAccuracyTable(std::shared_ptr<const model::EnsembleAccuracyTable> t) {
    owned_table_ = std::move(t);
  }

 private:
  ServingAction DecodeAction(int action) const;
  int EncodeAction(const ServingAction& action) const;

  size_t num_models_;
  std::vector<int64_t> batch_sizes_;
  const model::EnsembleAccuracyTable* accuracy_table_;
  std::shared_ptr<const model::EnsembleAccuracyTable> owned_table_;
  RlSchedulerOptions options_;
  int num_actions_;
  int state_dim_;
  std::unique_ptr<rl::ActorCritic> agent_;
  double max_batch_;
};

/// RuntimeOptions::policy_factory adapter: builds a per-job RL scheduler
/// from the deploy-time PolicyInit. For |M| > 1 it Monte-Carlo-estimates
/// and owns the a(M[v]) surrogate table (Figure 6) over the calibrated
/// profiles; for |M| = 1 the mask collapses per §7.2.1 and no table is
/// needed.
PolicyFactory MakeRlSchedulerFactory(RlSchedulerOptions options = {});

}  // namespace rafiki::serving

#endif  // RAFIKI_SERVING_RL_SCHEDULER_H_
