#ifndef RAFIKI_SERVING_POLICY_H_
#define RAFIKI_SERVING_POLICY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/profile.h"

namespace rafiki::serving {

/// What a scheduling policy observes at a decision point — the paper's
/// state (§5.2): the queue status (waiting time of each queued request) and
/// the model status (c(m, b) for every model and batch size, plus the time
/// left for each model to finish its dispatched requests).
struct ServingObs {
  double now = 0.0;
  double tau = 0.0;                            // latency SLO
  const std::vector<int64_t>* batch_sizes = nullptr;      // B
  const std::vector<model::ModelProfile>* models = nullptr;  // M
  std::vector<double> queue_waits;             // oldest first, un-padded
  size_t queue_len = 0;
  std::vector<double> busy_remaining;          // per model, seconds (>= 0)
};

/// A scheduling decision: which models (ensemble selection bit-vector v)
/// process the next batch of which size. `process == false` waits.
struct ServingAction {
  bool process = false;
  uint32_t model_mask = 0;
  int64_t batch_size = 0;
};

/// Interface shared by the greedy policy (Algorithm 3), the two baselines
/// of §7.2.2, and the RL scheduler.
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  virtual ServingAction Decide(const ServingObs& obs) = 0;

  /// Reward feedback (Equation 7) for the action returned by the matching
  /// Decide call; no-op for non-learning policies.
  virtual void Feedback(const ServingObs& obs, const ServingAction& action,
                        double reward) {}

  virtual std::string name() const = 0;
};

/// Largest batch size in B that is <= queue_len; 0 when queue_len is below
/// min(B) (Algorithm 3 line 7).
int64_t LargestFeasibleBatch(const std::vector<int64_t>& batch_sizes,
                             size_t queue_len);

}  // namespace rafiki::serving

#endif  // RAFIKI_SERVING_POLICY_H_
