#ifndef RAFIKI_SERVING_POLICY_H_
#define RAFIKI_SERVING_POLICY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "model/profile.h"

namespace rafiki::serving {

/// What a scheduling policy observes at a decision point — the paper's
/// state (§5.2): the queue status (waiting time of each queued request) and
/// the model status (c(m, b) for every model and batch size, plus the time
/// left for each model to finish its dispatched requests).
struct ServingObs {
  double now = 0.0;
  double tau = 0.0;                            // latency SLO
  const std::vector<int64_t>* batch_sizes = nullptr;      // B
  const std::vector<model::ModelProfile>* models = nullptr;  // M
  std::vector<double> queue_waits;             // oldest first, un-padded
  size_t queue_len = 0;
  std::vector<double> busy_remaining;          // per model, seconds (>= 0)
};

/// A scheduling decision: which models (ensemble selection bit-vector v)
/// process the next batch of which size. `process == false` waits.
struct ServingAction {
  bool process = false;
  uint32_t model_mask = 0;
  int64_t batch_size = 0;
};

/// Interface shared by the greedy policy (Algorithm 3), the two baselines
/// of §7.2.2, and the RL scheduler.
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  virtual ServingAction Decide(const ServingObs& obs) = 0;

  /// Reward feedback (Equation 7) for the action returned by the matching
  /// Decide call; no-op for non-learning policies. Only ever invoked for
  /// dispatch actions (process == true), with the same obs Decide saw.
  virtual void Feedback(const ServingObs& obs, const ServingAction& action,
                        double reward) {}

  /// True for policies whose Feedback() updates an agent (drives the
  /// learn_steps metric; lets callers know a warm-up phase is meaningful).
  virtual bool learns() const { return false; }

  virtual std::string name() const = 0;
};

/// Deploy-time view handed to a PolicyFactory: everything needed to size a
/// per-job policy. `profiles` points at the job's calibrated c(m, b) table
/// and is only guaranteed valid for the duration of the factory call —
/// policies receive the live profiles again through every ServingObs.
struct PolicyInit {
  size_t num_models = 0;
  std::vector<int64_t> batch_sizes;            // B
  std::vector<double> accuracies;              // per deployed model
  const std::vector<model::ModelProfile>* profiles = nullptr;
  double tau = 0.0;
  double beta = 1.0;
  double backoff_delta_fraction = 0.1;
  /// Which serving replica this policy will drive (each replica dispatcher
  /// owns its own policy instance), and how many replicas the job may run.
  /// Factories can use the index to decorrelate exploration seeds.
  size_t replica_index = 0;
  size_t num_replicas = 1;
};

/// Builds the per-job scheduling policy at deploy time. The returned
/// policy is owned by the job and called exclusively from its dispatcher
/// thread (Decide and Feedback both), so it needs no internal locking.
using PolicyFactory =
    std::function<std::unique_ptr<SchedulerPolicy>(const PolicyInit&)>;

/// Largest batch size in B that is <= queue_len; 0 when queue_len is below
/// min(B) (Algorithm 3 line 7).
int64_t LargestFeasibleBatch(const std::vector<int64_t>& batch_sizes,
                             size_t queue_len);

}  // namespace rafiki::serving

#endif  // RAFIKI_SERVING_POLICY_H_
