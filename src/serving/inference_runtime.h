#ifndef RAFIKI_SERVING_INFERENCE_RUNTIME_H_
#define RAFIKI_SERVING_INFERENCE_RUNTIME_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/mpsc_ring.h"
#include "common/result.h"
#include "common/stats.h"
#include "model/profile.h"
#include "nn/net.h"
#include "serving/policy.h"
#include "tensor/tensor.h"

namespace rafiki::serving {

/// One deployed model: a real network plus the metadata the ensemble vote
/// and the batching policy need.
struct ServableModel {
  nn::Net net;
  /// Validation accuracy; used for the paper's best-accuracy tie-break and
  /// reported as the profile's top-1 accuracy.
  double accuracy = 0.0;
  std::string name = "model";
  /// Expected feature dimension; 0 derives it from the first rank-2
  /// parameter tensor (a Linear weight [in, out]).
  int64_t input_dim = 0;
};

/// Serving configuration of one inference job (the knobs of §5 / Alg. 3).
struct RuntimeOptions {
  /// Latency SLO tau, seconds. Requests answered later than this count as
  /// overdue (they are still answered — the SLO is soft, as in the paper).
  double tau = 0.02;
  /// Candidate batch sizes B.
  std::vector<int64_t> batch_sizes = {1, 2, 4, 8, 16, 32};
  /// Bounded request queue; submissions beyond it are rejected
  /// (kUnavailable) and counted as dropped. The gauge is job-wide: the sum
  /// of all replica queues never exceeds it.
  size_t queue_capacity = 4096;
  /// AIMD back-off constant delta = fraction * tau (Alg. 3).
  double backoff_delta_fraction = 0.1;
  /// Upper bound on one dispatcher sleep, so deadline pressure is
  /// re-evaluated at least this often even without new arrivals.
  double max_poll_seconds = 0.005;
  /// Measure c(m, b) with real forwards at deploy time so the policy sees
  /// calibrated latency profiles; OFF uses zero-latency profiles (the
  /// policy then flushes purely on queue waiting time).
  bool calibrate = true;
  /// When ON, a request whose queue wait alone already exceeds tau is
  /// completed early with kDeadlineExceeded (the gateway maps it to HTTP
  /// 504) instead of occupying batch capacity for an answer that is
  /// already overdue. Counted in both `overdue` and `expired`. OFF by
  /// default: the paper's SLO is soft, so the classic behaviour is to
  /// answer late rather than not at all.
  bool expire_overdue = false;
  /// Pluggable scheduling-policy hook: when set, each replica's policy is
  /// built from it at deploy/scale-up time (e.g. MakeRlSchedulerFactory)
  /// and drives every dispatch decision on that replica; when null the
  /// paper's greedy Algorithm 3 (single model) / sync-ensemble greedy
  /// (|M| > 1) is used. Each policy instance runs exclusively on its
  /// replica's dispatcher thread.
  PolicyFactory policy_factory;
  /// Equation 7 accuracy/latency balance for the realized per-batch reward
  /// fed back through SchedulerPolicy::Feedback.
  double beta = 1.0;
  /// Surrogate ensemble accuracy a(M[v]) used in the reward; null defaults
  /// to the most accurate selected member (exact for |M| = 1, a lower
  /// bound for larger ensembles — plug an EnsembleAccuracyTable here for
  /// the Figure 6 surrogate).
  std::function<double(uint32_t)> ensemble_accuracy;

  /// --- Replicated serving plane (DESIGN.md §15) ---
  /// Initial number of replica dispatchers. Each replica owns clones of
  /// every deployed net, its own submit ring, doorbell, latency profile
  /// copy, and policy instance; a least-loaded router shards submissions
  /// across them and idle replicas steal work from loaded ones.
  int replicas = 1;
  /// Autoscaling bounds. max_replicas == 0 defaults to
  /// max(replicas, min_replicas). Replica slots up to max_replicas are
  /// addressable for the job's whole life (nets are cloned lazily on first
  /// activation), so max_replicas bounds peak memory.
  int min_replicas = 1;
  int max_replicas = 0;
  /// ON starts a ReplicaController thread that resizes the replica set
  /// within [min_replicas, max_replicas] from queue pressure and, once
  /// horizontal scaling is exhausted, downshifts the ensemble variant
  /// (drops the slowest models) under sustained overdue pressure —
  /// accuracy traded for latency, with hysteresis both ways.
  bool autoscale = false;
  /// Controller tick period, seconds.
  double autoscale_interval = 0.02;
  /// Minimum time between two resize (or variant-shift) actions: the
  /// hysteresis dwell that prevents flapping.
  double autoscale_dwell = 0.25;
  /// Scale up when queued > scale_up_pressure * active * max(B): the
  /// backlog exceeds what the active replicas clear in one full batch each.
  double scale_up_pressure = 1.0;
  /// Scale down when queued + inflight stays below
  /// scale_down_pressure * (active - 1) * max(B) for several consecutive
  /// ticks — the remaining replicas absorb the load with slack.
  double scale_down_pressure = 0.25;
  /// Variant downshift when the per-tick overdue fraction (d overdue /
  /// d completions) exceeds this while the replica set is maxed out;
  /// upshift restores accuracy when it falls back below
  /// upshift_overdue_rate with an idle queue.
  double downshift_overdue_rate = 0.20;
  double upshift_overdue_rate = 0.02;
  /// A victim replica donates half its local queue to a requesting thief
  /// only while holding more than this many requests.
  size_t steal_threshold = 2;
};

/// Point-in-time gauges of one serving replica, read under the same mutex
/// hold as its processed counter so the triple is internally consistent.
struct ReplicaGauges {
  /// Slot index; slots keep their lifetime counters across scale-down, so
  /// an inactive slot still reports what it processed while it ran.
  int64_t replica = 0;
  bool active = false;
  int64_t queue_depth = 0;
  int64_t processed = 0;
  /// Requests this replica stole (received via donation) from loaded
  /// replicas while it was idle.
  int64_t steals = 0;
};

/// Per-job serving counters (the live analogue of ServingMetrics).
/// Conservation: at any quiescent point arrived == processed + dropped +
/// expired + queued, and after Undeploy arrived == processed + dropped +
/// expired — summed over every replica the job ever ran.
struct InferenceJobMetrics {
  int64_t arrived = 0;
  int64_t processed = 0;
  /// Served (or expired) later than tau after submission.
  int64_t overdue = 0;
  /// Rejected at a full queue plus requests failed by Undeploy.
  int64_t dropped = 0;
  /// Completed early with kDeadlineExceeded because the queue wait already
  /// exceeded tau (only with RuntimeOptions::expire_overdue).
  int64_t expired = 0;
  int64_t batches = 0;
  int64_t max_batch = 0;
  double mean_batch = 0.0;    // processed / batches
  double mean_latency = 0.0;  // seconds, submission -> response
  /// Requests waiting in any replica queue at the moment Metrics() was
  /// read.
  int64_t queue_depth = 0;
  /// Latency percentiles over all processed requests (log-bucketed
  /// histogram, so values are quantized to bucket midpoints).
  double p50_latency = 0.0;
  double p95_latency = 0.0;
  double p99_latency = 0.0;
  /// Scheduling-policy gauges. `reward_sum` accumulates the realized
  /// Equation 7 reward a(M[v]) * (b - beta * overdue) per dispatched
  /// batch; `accuracy_sum` accumulates a(M[v]) * b (so a window's mean
  /// served accuracy is delta(accuracy_sum) / delta(processed));
  /// `learn_steps` counts Feedback deliveries to learning policies.
  /// Expiry accounting: an expired (504) request is charged to the reward
  /// of the NEXT batch its replica dispatches, exactly once —
  /// `reward_overdue` counts overdue already charged,
  /// `reward_pending_overdue` expiries awaiting their charge; at any
  /// quiescent point overdue == reward_overdue + reward_pending_overdue.
  std::string policy;
  int64_t learn_steps = 0;
  double reward_sum = 0.0;
  double accuracy_sum = 0.0;
  int64_t reward_overdue = 0;
  int64_t reward_pending_overdue = 0;
  /// Replicated-plane gauges: currently active replica dispatchers, the
  /// lifetime peak, controller resize counts, total stolen requests, and
  /// the current accuracy variant (0 = full ensemble; level L drops the L
  /// slowest models).
  int64_t replicas = 0;
  int64_t replicas_peak = 0;
  int64_t scale_ups = 0;
  int64_t scale_downs = 0;
  int64_t steals = 0;
  int64_t variant_level = 0;
  int64_t variant_shifts = 0;
  /// One entry per replica slot ever activated, in slot order.
  std::vector<ReplicaGauges> replica_gauges;
};

/// Majority-vote answer with per-model transparency (§5.2 / Figure 6).
struct EnsemblePrediction {
  int64_t label = -1;
  /// One label per model that voted — the policy-selected subset, which is
  /// every deployed model under the default greedy policies.
  std::vector<int64_t> votes;
};

/// Majority vote over per-model row labels with the paper's best-accuracy
/// tie-break. `votes[m][r]` is model m's label for row r; `accuracies[m]`
/// breaks ties toward the most accurate model. Exposed for tests.
std::vector<EnsemblePrediction> MajorityVoteRows(
    const std::vector<std::vector<int64_t>>& votes,
    const std::vector<double>& accuracies);

/// The live serving tier: owns deployed models, accepts concurrent
/// `Submit` calls, and answers them from per-job replica dispatcher
/// threads that form batches with the paper's greedy policy (Algorithm 3;
/// the sync-ensemble variant when several models are deployed) against the
/// latency SLO tau.
///
/// Ownership / threading model (see DESIGN.md §15 "Replicated serving
/// plane"):
///  * Jobs live behind `std::shared_ptr`; callers, dispatchers, and the
///    controller hold snapshots, so `Undeploy` can never free a job under
///    a concurrent query.
///  * The registry mutex only guards the id -> job map. The submit path is
///    lock-free: producers reserve capacity on a job-wide atomic gauge,
///    pick the least-loaded replica (queue depth + inflight batch), push
///    into that replica's bounded MPSC ring, and ring its futex doorbell.
///  * Each replica owns deep clones of every net (`nn::Net` is stateful
///    during Forward), its own policy instance, and its own mutex-guarded
///    stats, so replicas never share mutable state on the hot path. An
///    idle replica posts a steal request on the most loaded replica before
///    sleeping; the victim donates half its local queue through the
///    thief's ring (the normal MPSC producer path), so correctness is
///    unchanged by stealing.
///  * A `ReplicaController` thread (opt-in) resizes the replica set within
///    [min, max] and downshifts the ensemble variant under sustained
///    overdue pressure. Retired replicas re-route their drained queues to
///    the surviving replicas, keeping conservation and exactly-once
///    completion across every resize.
///  * `Undeploy` stops the controller, closes every ring (every racing or
///    later Submit observes kClosed — nothing can be enqueued past the
///    close), signals the dispatchers and joins them; accepted-but-
///    unserved requests are failed with kUnavailable and counted as
///    dropped, keeping the books exact.
class InferenceRuntime {
 public:
  /// Continuation invoked exactly once with the request's outcome.
  /// Runs on a replica dispatcher thread — it must be fast (hand heavy
  /// work elsewhere) and must NOT call Undeploy or destroy the runtime
  /// (the dispatcher would join itself).
  using Callback = std::function<void(Result<EnsemblePrediction>)>;

  InferenceRuntime() = default;
  ~InferenceRuntime();

  InferenceRuntime(const InferenceRuntime&) = delete;
  InferenceRuntime& operator=(const InferenceRuntime&) = delete;

  /// Deploys `models` as job `job_id` and starts its replica dispatchers
  /// (and controller, with autoscale). AlreadyExists if the id is taken.
  Result<std::string> Deploy(const std::string& job_id,
                             std::vector<ServableModel> models,
                             RuntimeOptions options = {});

  /// Stops the controller and every dispatcher, fails queued requests
  /// (kUnavailable) and releases the job. NotFound for unknown ids. Safe
  /// to race with Submit.
  Status Undeploy(const std::string& job_id);

  /// Enqueues one request (features: [dim] or [1, dim]) with a
  /// continuation: `done` is invoked from a replica dispatcher thread when
  /// the batch containing the request completes (or when it expires / is
  /// failed by Undeploy). The submitting thread is never blocked.
  /// A non-OK return means the request was NOT enqueued and `done` will
  /// never run: NotFound (unknown/undeploying job), Unavailable (queue
  /// full; retryable), InvalidArgument (wrong feature dimension).
  /// Once enqueued, `done` runs exactly once with either a prediction,
  /// kDeadlineExceeded (queue wait > tau, with expire_overdue), or
  /// kUnavailable (job undeployed while queued) — regardless of how many
  /// times the request migrates between replicas (stealing, scale-down).
  Status SubmitAsync(const std::string& job_id, Tensor features,
                     Callback done);

  /// Future-based wrapper over SubmitAsync for callers that want to block.
  Result<std::future<Result<EnsemblePrediction>>> Submit(
      const std::string& job_id, Tensor features);

  /// Synchronous convenience for bulk callers (the SQL UDF): submits every
  /// row of `features` [n, dim] through the batched path, applying
  /// backpressure (bounded retries) when the queue is momentarily full,
  /// and waits for all answers.
  Result<std::vector<EnsemblePrediction>> QueryBatch(const std::string& job_id,
                                                     const Tensor& features);

  /// Live counters of one job, aggregated over all its replicas.
  Result<InferenceJobMetrics> Metrics(const std::string& job_id) const;

  /// Ids of currently deployed jobs.
  std::vector<std::string> Jobs() const;

 private:
  struct Pending {
    Tensor features;  // [1, dim]
    Callback done;    // invoked exactly once, on some dispatcher thread
    double arrival = 0.0;  // job-clock seconds
  };

  /// Lifetime counters one replica dispatcher accumulates, guarded by the
  /// replica's mutex. They survive scale-down (slots are never destroyed),
  /// so job aggregates stay exact across any resize history.
  struct ReplicaStats {
    int64_t processed = 0;
    int64_t overdue = 0;
    int64_t expired = 0;
    int64_t batches = 0;
    int64_t max_batch = 0;
    int64_t learn_steps = 0;
    double reward_sum = 0.0;
    double accuracy_sum = 0.0;
    int64_t reward_overdue = 0;
    int64_t reward_pending_overdue = 0;
    double latency_sum = 0.0;
    LatencyHistogram latency_hist;
  };

  static constexpr uint32_t kNoThief = UINT32_MAX;

  /// One replica dispatcher: its own submit ring, doorbell, net clones,
  /// profile copy, policy, and stats. Constructed once (lazily, at first
  /// activation) and then reused across scale-down/up cycles: the ring is
  /// closed and reopened, the thread restarted, and the policy retains its
  /// learned state.
  struct Replica {
    size_t index = 0;
    /// Sized >= queue_capacity: the job-wide `queued` gate bounds the total
    /// pendings anywhere at queue_capacity, so one ring can absorb them
    /// all and kFull is unreachable even under donation and re-routing.
    std::unique_ptr<MpscRing<Pending>> ring;
    FutexDoorbell doorbell;
    /// This replica is being retired (scale-down or Undeploy). Set only
    /// after its ring is closed.
    std::atomic<bool> stopping{false};
    /// Requests admitted to this replica, not yet batched/expired/moved.
    std::atomic<int64_t> queued{0};
    /// Size of the batch currently executing (router load signal).
    std::atomic<int64_t> inflight{0};
    /// Index of an idle replica asking for work, or kNoThief. Written by
    /// thieves (CAS from kNoThief), consumed by this replica's dispatcher.
    std::atomic<uint32_t> steal_request{kNoThief};
    /// Requests donated INTO this replica by loaded victims.
    std::atomic<int64_t> steals{0};
    /// Expiries awaiting their Equation 7 charge when the dispatcher last
    /// exited; reloaded on restart so the exactly-once charge survives a
    /// scale-down/up cycle. Dispatcher-only (threads are joined between).
    int64_t expired_carry = 0;
    std::vector<ServableModel> models;          // deep clones, this thread only
    std::vector<model::ModelProfile> profiles;  // copy of job calibration
    std::unique_ptr<SchedulerPolicy> policy;    // this thread only
    std::thread dispatcher;
    std::mutex mu;  // guards stats
    ReplicaStats stats;
  };

  struct Job {
    std::string id;
    RuntimeOptions opts;
    int64_t input_dim = 0;
    size_t min_replicas = 1;
    size_t max_replicas = 1;
    /// Pristine models as deployed; never served, only cloned when a
    /// replica slot is first activated. Calibration ran on these once.
    std::vector<ServableModel> prototypes;
    std::vector<model::ModelProfile> profiles;  // calibrated c(m, b)
    std::vector<double> accuracies;
    /// variant_masks[L] = deployed-model bit-mask with the L slowest
    /// models (by full-batch latency) removed; level 0 is the full
    /// ensemble and the last level keeps only the fastest model.
    std::vector<uint32_t> variant_masks;
    std::chrono::steady_clock::time_point epoch;
    std::string policy_name;

    /// Fixed-size slot table (max_replicas entries, never resized after
    /// Deploy). slots[i] is constructed at most once — publication is
    /// ordered by `created` — and never destroyed while the job lives, so
    /// lock-free readers can traverse it safely.
    std::vector<std::unique_ptr<Replica>> slots;
    /// Routable replicas: slots [0, active) serve traffic. Only Deploy,
    /// the controller, and StopJob write it (mutually serialized).
    std::atomic<size_t> active{0};
    /// Constructed slots: [0, created) are safe to dereference.
    std::atomic<size_t> created{0};
    /// Job-level shutdown (Undeploy), as opposed to per-replica stopping.
    std::atomic<bool> stopping{false};
    /// Current accuracy variant level, applied by every replica at batch
    /// execution time.
    std::atomic<int> variant_level{0};

    /// Producer-side counters. `queued` counts requests admitted but not
    /// yet batched, expired, or failed (all rings + all local queues): the
    /// "queued" term of the conservation identity and the admission gate.
    std::atomic<int64_t> arrived{0};
    std::atomic<int64_t> dropped{0};
    std::atomic<int64_t> queued{0};

    /// ReplicaController plumbing (autoscale only).
    std::thread controller;
    std::mutex ctl_mu;
    std::condition_variable ctl_cv;
    bool ctl_stop = false;

    std::mutex mu;  // guards the controller-written gauges below
    int64_t replicas_peak = 0;
    int64_t scale_ups = 0;
    int64_t scale_downs = 0;
    int64_t variant_shifts = 0;

    double NowSeconds() const {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           epoch)
          .count();
    }
  };

  std::shared_ptr<Job> FindJob(const std::string& job_id) const;
  static void StopJob(Job& job);
  /// Builds the policy instance for one replica (factory or greedy
  /// default).
  static std::unique_ptr<SchedulerPolicy> MakePolicy(const Job& job,
                                                     size_t replica_index);
  /// Activates slot `index` (== job->active): constructs it on first use
  /// (net clones, ring, policy) or reopens its ring, starts its dispatcher
  /// thread, then publishes the new active count. Caller must be the only
  /// lifecycle writer (Deploy before threads exist, else the controller).
  static void StartReplica(const std::shared_ptr<Job>& job, size_t index);
  /// Retires the highest active slot: unpublishes it from the router,
  /// closes its ring, and joins its dispatcher — which re-routes every
  /// drained request to the surviving replicas, so nothing is lost or
  /// answered twice. Same caller constraint as StartReplica.
  static void RetireReplica(Job& job, size_t index);
  static void ReplicaLoop(const std::shared_ptr<Job>& job, Replica* self);
  static void ControllerLoop(const std::shared_ptr<Job>& job);
  /// Before sleeping on an empty queue: ask the most loaded replica
  /// (queue > steal_threshold) for work by CAS-posting our index into its
  /// steal_request.
  static void MaybePostSteal(Job& job, Replica& self);
  /// At the loop top: if a thief asked and we hold a surplus, donate half
  /// our local queue through the thief's ring and ring its doorbell.
  static void ServiceStealRequest(Job& job, Replica& self,
                                  RingDeque<Pending>& lq);
  /// Runs one batch on the replica's clones of the models selected by
  /// `model_mask`, answers its continuations, and folds the realized
  /// Equation 7 reward — including `expired_unrewarded` not-yet-charged
  /// expiries — into the replica stats in one atomic update. Returns the
  /// reward for the policy's Feedback.
  static double ProcessBatch(Job& job, Replica& self,
                             std::vector<Pending> batch, uint32_t model_mask,
                             int64_t expired_unrewarded);
  static double EnsembleAccuracy(const Job& job, uint32_t model_mask);

  mutable std::mutex mu_;  // guards jobs_ only
  std::map<std::string, std::shared_ptr<Job>> jobs_;
};

}  // namespace rafiki::serving

#endif  // RAFIKI_SERVING_INFERENCE_RUNTIME_H_
