#ifndef RAFIKI_SERVING_INFERENCE_RUNTIME_H_
#define RAFIKI_SERVING_INFERENCE_RUNTIME_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/mpsc_ring.h"
#include "common/result.h"
#include "common/stats.h"
#include "model/profile.h"
#include "nn/net.h"
#include "serving/policy.h"
#include "tensor/tensor.h"

namespace rafiki::serving {

/// One deployed model: a real network plus the metadata the ensemble vote
/// and the batching policy need.
struct ServableModel {
  nn::Net net;
  /// Validation accuracy; used for the paper's best-accuracy tie-break and
  /// reported as the profile's top-1 accuracy.
  double accuracy = 0.0;
  std::string name = "model";
  /// Expected feature dimension; 0 derives it from the first rank-2
  /// parameter tensor (a Linear weight [in, out]).
  int64_t input_dim = 0;
};

/// Serving configuration of one inference job (the knobs of §5 / Alg. 3).
struct RuntimeOptions {
  /// Latency SLO tau, seconds. Requests answered later than this count as
  /// overdue (they are still answered — the SLO is soft, as in the paper).
  double tau = 0.02;
  /// Candidate batch sizes B.
  std::vector<int64_t> batch_sizes = {1, 2, 4, 8, 16, 32};
  /// Bounded request queue; submissions beyond it are rejected
  /// (kUnavailable) and counted as dropped.
  size_t queue_capacity = 4096;
  /// AIMD back-off constant delta = fraction * tau (Alg. 3).
  double backoff_delta_fraction = 0.1;
  /// Upper bound on one dispatcher sleep, so deadline pressure is
  /// re-evaluated at least this often even without new arrivals.
  double max_poll_seconds = 0.005;
  /// Measure c(m, b) with real forwards at deploy time so the policy sees
  /// calibrated latency profiles; OFF uses zero-latency profiles (the
  /// policy then flushes purely on queue waiting time).
  bool calibrate = true;
  /// When ON, a request whose queue wait alone already exceeds tau is
  /// completed early with kDeadlineExceeded (the gateway maps it to HTTP
  /// 504) instead of occupying batch capacity for an answer that is
  /// already overdue. Counted in both `overdue` and `expired`. OFF by
  /// default: the paper's SLO is soft, so the classic behaviour is to
  /// answer late rather than not at all.
  bool expire_overdue = false;
  /// Pluggable scheduling-policy hook: when set, the per-job policy is
  /// built from it at deploy time (e.g. MakeRlSchedulerFactory) and drives
  /// every dispatch decision; when null the paper's greedy Algorithm 3
  /// (single model) / sync-ensemble greedy (|M| > 1) is used. The policy
  /// runs exclusively on the job's dispatcher thread.
  PolicyFactory policy_factory;
  /// Equation 7 accuracy/latency balance for the realized per-batch reward
  /// fed back through SchedulerPolicy::Feedback.
  double beta = 1.0;
  /// Surrogate ensemble accuracy a(M[v]) used in the reward; null defaults
  /// to the most accurate selected member (exact for |M| = 1, a lower
  /// bound for larger ensembles — plug an EnsembleAccuracyTable here for
  /// the Figure 6 surrogate).
  std::function<double(uint32_t)> ensemble_accuracy;
};

/// Per-job serving counters (the live analogue of ServingMetrics).
/// Conservation: at any quiescent point arrived == processed + dropped +
/// expired + queued, and after Undeploy arrived == processed + dropped +
/// expired.
struct InferenceJobMetrics {
  int64_t arrived = 0;
  int64_t processed = 0;
  /// Served (or expired) later than tau after submission.
  int64_t overdue = 0;
  /// Rejected at a full queue plus requests failed by Undeploy.
  int64_t dropped = 0;
  /// Completed early with kDeadlineExceeded because the queue wait already
  /// exceeded tau (only with RuntimeOptions::expire_overdue).
  int64_t expired = 0;
  int64_t batches = 0;
  int64_t max_batch = 0;
  double mean_batch = 0.0;    // processed / batches
  double mean_latency = 0.0;  // seconds, submission -> response
  /// Requests waiting in the queue at the moment Metrics() was read.
  int64_t queue_depth = 0;
  /// Latency percentiles over all processed requests (log-bucketed
  /// histogram, so values are quantized to bucket midpoints).
  double p50_latency = 0.0;
  double p95_latency = 0.0;
  double p99_latency = 0.0;
  /// Scheduling-policy gauges. `reward_sum` accumulates the realized
  /// Equation 7 reward a(M[v]) * (b - beta * overdue) per dispatched
  /// batch; `accuracy_sum` accumulates a(M[v]) * b (so a window's mean
  /// served accuracy is delta(accuracy_sum) / delta(processed));
  /// `learn_steps` counts Feedback deliveries to a learning policy.
  /// Expiry accounting: an expired (504) request is charged to the reward
  /// of the NEXT dispatched batch, exactly once — `reward_overdue` counts
  /// overdue already charged, `reward_pending_overdue` expiries awaiting
  /// their charge; at any quiescent point
  ///   overdue == reward_overdue + reward_pending_overdue.
  std::string policy;
  int64_t learn_steps = 0;
  double reward_sum = 0.0;
  double accuracy_sum = 0.0;
  int64_t reward_overdue = 0;
  int64_t reward_pending_overdue = 0;
};

/// Majority-vote answer with per-model transparency (§5.2 / Figure 6).
struct EnsemblePrediction {
  int64_t label = -1;
  /// One label per model that voted — the policy-selected subset, which is
  /// every deployed model under the default greedy policies.
  std::vector<int64_t> votes;
};

/// Majority vote over per-model row labels with the paper's best-accuracy
/// tie-break. `votes[m][r]` is model m's label for row r; `accuracies[m]`
/// breaks ties toward the most accurate model. Exposed for tests.
std::vector<EnsemblePrediction> MajorityVoteRows(
    const std::vector<std::vector<int64_t>>& votes,
    const std::vector<double>& accuracies);

/// The live serving tier: owns deployed models, accepts concurrent
/// `Submit` calls into a bounded FIFO queue, and answers them from a
/// per-job dispatcher thread that forms batches with the paper's greedy
/// policy (Algorithm 3; the sync-ensemble variant when several models are
/// deployed) against the latency SLO tau.
///
/// Ownership / threading model (see DESIGN.md §"Inference runtime"):
///  * Jobs live behind `std::shared_ptr`; callers and the dispatcher hold
///    snapshots, so `Undeploy` can never free a job under a concurrent
///    query (the use-after-free the old facade had is gone by
///    construction).
///  * The registry mutex only guards the id -> job map. The submit path is
///    lock-free: producers reserve capacity on an atomic gauge, push into a
///    bounded MPSC ring, and ring a futex doorbell; the dispatcher drains
///    the ring in batches into a thread-local queue. A job mutex remains
///    only around the dispatcher-written metrics, for Metrics() snapshots.
///  * All forwards for one job run on its single dispatcher thread, so
///    `nn::Net` (which is stateful during Forward) needs no internal
///    locking.
///  * `Undeploy` closes the ring (every racing or later Submit observes
///    kClosed — nothing can be enqueued past the close), signals the
///    dispatcher and joins it; accepted-but-unserved requests are failed
///    with kUnavailable and counted as dropped, keeping the books exact.
class InferenceRuntime {
 public:
  /// Continuation invoked exactly once with the request's outcome.
  /// Runs on the job's dispatcher thread — it must be fast (hand heavy
  /// work elsewhere) and must NOT call Undeploy or destroy the runtime
  /// (the dispatcher would join itself).
  using Callback = std::function<void(Result<EnsemblePrediction>)>;

  InferenceRuntime() = default;
  ~InferenceRuntime();

  InferenceRuntime(const InferenceRuntime&) = delete;
  InferenceRuntime& operator=(const InferenceRuntime&) = delete;

  /// Deploys `models` as job `job_id` and starts its dispatcher.
  /// AlreadyExists if the id is taken.
  Result<std::string> Deploy(const std::string& job_id,
                             std::vector<ServableModel> models,
                             RuntimeOptions options = {});

  /// Stops the dispatcher, fails queued requests (kUnavailable) and
  /// releases the job. NotFound for unknown ids. Safe to race with Submit.
  Status Undeploy(const std::string& job_id);

  /// Enqueues one request (features: [dim] or [1, dim]) with a
  /// continuation: `done` is invoked from the dispatcher thread when the
  /// batch containing the request completes (or when it expires /
  /// is failed by Undeploy). The submitting thread is never blocked.
  /// A non-OK return means the request was NOT enqueued and `done` will
  /// never run: NotFound (unknown/undeploying job), Unavailable (queue
  /// full; retryable), InvalidArgument (wrong feature dimension).
  /// Once enqueued, `done` runs exactly once with either a prediction,
  /// kDeadlineExceeded (queue wait > tau, with expire_overdue), or
  /// kUnavailable (job undeployed while queued).
  Status SubmitAsync(const std::string& job_id, Tensor features,
                     Callback done);

  /// Future-based wrapper over SubmitAsync for callers that want to block.
  Result<std::future<Result<EnsemblePrediction>>> Submit(
      const std::string& job_id, Tensor features);

  /// Synchronous convenience for bulk callers (the SQL UDF): submits every
  /// row of `features` [n, dim] through the batched path, applying
  /// backpressure (bounded retries) when the queue is momentarily full,
  /// and waits for all answers.
  Result<std::vector<EnsemblePrediction>> QueryBatch(const std::string& job_id,
                                                     const Tensor& features);

  /// Live counters of one job.
  Result<InferenceJobMetrics> Metrics(const std::string& job_id) const;

  /// Ids of currently deployed jobs.
  std::vector<std::string> Jobs() const;

 private:
  struct Pending {
    Tensor features;  // [1, dim]
    Callback done;    // invoked exactly once, dispatcher thread
    double arrival = 0.0;  // job-clock seconds
  };

  struct Job {
    std::string id;
    RuntimeOptions opts;
    std::vector<ServableModel> models;
    std::vector<model::ModelProfile> profiles;  // calibrated c(m, b)
    std::vector<double> accuracies;
    int64_t input_dim = 0;
    std::unique_ptr<SchedulerPolicy> policy;  // dispatcher-thread only
    std::chrono::steady_clock::time_point epoch;

    /// Lock-free submit path. Producers push, the dispatcher is the sole
    /// consumer; the doorbell wakes it without a syscall when it is busy.
    /// Sized >= opts.queue_capacity (the ring rounds up to a power of
    /// two); `queued` — not ring occupancy — is the admission gate, so the
    /// configured capacity stays exact.
    std::unique_ptr<MpscRing<Pending>> ring;
    FutexDoorbell doorbell;
    std::atomic<bool> stopping{false};

    /// Producer-side counters. `queued` counts requests admitted but not
    /// yet batched, expired, or failed (ring + dispatcher-local queue): the
    /// "queued" term of the conservation identity and the admission gate.
    std::atomic<int64_t> arrived{0};
    std::atomic<int64_t> dropped{0};
    std::atomic<int64_t> queued{0};

    std::mutex mu;  // guards the dispatcher-written fields below
    InferenceJobMetrics stats;      // processed/overdue/expired/batches/...
    double latency_sum = 0.0;
    LatencyHistogram latency_hist;

    std::thread dispatcher;

    double NowSeconds() const {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           epoch)
          .count();
    }
  };

  std::shared_ptr<Job> FindJob(const std::string& job_id) const;
  static void StopJob(Job& job);
  static void DispatchLoop(const std::shared_ptr<Job>& job);
  /// Runs one batch on the models selected by `model_mask`, answers its
  /// continuations, and folds the realized Equation 7 reward — including
  /// `expired_unrewarded` not-yet-charged expiries — into the job stats in
  /// one atomic update. Returns the reward for the policy's Feedback.
  static double ProcessBatch(Job& job, std::vector<Pending> batch,
                             uint32_t model_mask, int64_t expired_unrewarded);
  static double EnsembleAccuracy(const Job& job, uint32_t model_mask);

  mutable std::mutex mu_;  // guards jobs_ only
  std::map<std::string, std::shared_ptr<Job>> jobs_;
};

}  // namespace rafiki::serving

#endif  // RAFIKI_SERVING_INFERENCE_RUNTIME_H_
