#ifndef RAFIKI_SERVING_SIMULATOR_H_
#define RAFIKI_SERVING_SIMULATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/prediction_sim.h"
#include "model/profile.h"
#include "serving/policy.h"
#include "serving/request.h"
#include "serving/sine_arrival.h"

namespace rafiki::serving {

/// Discrete-event serving-node simulator (§7.2's "environment simulator").
/// Virtual time advances in fixed decision intervals; a 1500-simulated-
/// second experiment completes in well under a minute of real time while
/// running the identical policy code a wall-clock deployment would.
struct ServingSimOptions {
  /// Latency SLO tau; §7.2.1 uses 2 * c_inception_v3(64) = 0.56 s.
  double tau = 0.56;
  /// Candidate batch sizes B (significant-difference spacing, §5.1).
  std::vector<int64_t> batch_sizes = {16, 32, 48, 64};
  double duration_seconds = 1500.0;
  /// Time between decision sweeps.
  double decision_interval = 0.02;
  /// Metrics aggregation window (one plotted point per window).
  double metrics_window = 10.0;
  /// Equation 7 balance between accuracy and overdue penalty.
  double beta = 1.0;
  size_t queue_capacity = 20000;
};

/// One aggregated metrics window (a point on the Figures 10/13-16 curves).
/// The raw counts back the per-second rates exactly; batches completing
/// after the run's end are folded into the final window, so
/// sum(windows[i].processed) == ServingMetrics::total_processed.
struct WindowSample {
  double t_begin = 0.0;
  int64_t arrived = 0;
  int64_t processed = 0;
  int64_t overdue = 0;           // includes queue drops and end residual
  double arrived_per_sec = 0.0;
  double processed_per_sec = 0.0;
  double overdue_per_sec = 0.0;  // includes queue drops
  double mean_accuracy = 0.0;    // surrogate accuracy of processed requests
  double mean_reward = 0.0;      // Equation 7 per dispatched batch
};

/// Full-run aggregates. Conservation invariants (asserted in tests):
///   total_arrived == total_processed + total_dropped + total_residual
///   sum(windows[i].processed) == total_processed
///   sum(windows[i].overdue) == total_overdue + total_dropped
struct ServingMetrics {
  std::vector<WindowSample> windows;
  int64_t total_arrived = 0;
  int64_t total_processed = 0;
  /// Requests answered later than tau, plus the end-of-run residual (queued
  /// requests that never got served are overdue by construction).
  int64_t total_overdue = 0;
  int64_t total_dropped = 0;
  /// Requests still queued when the run ended.
  int64_t total_residual = 0;
  double mean_accuracy = 0.0;
  double mean_latency = 0.0;
  double total_reward = 0.0;

  double OverdueFraction() const {
    return total_processed == 0
               ? 0.0
               : static_cast<double>(total_overdue) /
                     static_cast<double>(total_processed);
  }
};

class ServingSimulator {
 public:
  /// `accuracy_table` supplies a(M[v]); null is allowed for single-model
  /// runs (the model's own top-1 accuracy is used).
  ServingSimulator(std::vector<model::ModelProfile> models,
                   const model::EnsembleAccuracyTable* accuracy_table,
                   ServingSimOptions options);

  /// Runs one experiment: `policy` schedules, `arrivals` drives load.
  ServingMetrics Run(SchedulerPolicy& policy, SineArrivalProcess& arrivals);

  const std::vector<model::ModelProfile>& models() const { return models_; }
  const ServingSimOptions& options() const { return options_; }

 private:
  std::vector<model::ModelProfile> models_;
  const model::EnsembleAccuracyTable* accuracy_table_;
  ServingSimOptions options_;
};

}  // namespace rafiki::serving

#endif  // RAFIKI_SERVING_SIMULATOR_H_
