#include "serving/simulator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "serving/reward.h"

namespace rafiki::serving {
namespace {

/// Per-window accumulators flushed into WindowSample points.
struct WindowAccum {
  int64_t arrived = 0;
  int64_t processed = 0;
  int64_t overdue = 0;
  double accuracy_sum = 0.0;
  double reward_sum = 0.0;
  int64_t batches = 0;
};

}  // namespace

ServingSimulator::ServingSimulator(
    std::vector<model::ModelProfile> models,
    const model::EnsembleAccuracyTable* accuracy_table,
    ServingSimOptions options)
    : models_(std::move(models)),
      accuracy_table_(accuracy_table),
      options_(std::move(options)) {
  RAFIKI_CHECK(!models_.empty());
  RAFIKI_CHECK(!options_.batch_sizes.empty());
  if (models_.size() > 1) {
    RAFIKI_CHECK(accuracy_table != nullptr);
  }
}

ServingMetrics ServingSimulator::Run(SchedulerPolicy& policy,
                                     SineArrivalProcess& arrivals) {
  const double dt = options_.decision_interval;
  const double duration = options_.duration_seconds;
  const size_t num_models = models_.size();
  const auto num_windows = static_cast<size_t>(
      std::ceil(duration / options_.metrics_window));
  RAFIKI_CHECK_GE(num_windows, 1u) << "run must span at least one window";

  RequestQueue queue(options_.queue_capacity);
  std::vector<double> busy_until(num_models, 0.0);
  std::vector<WindowAccum> windows(num_windows + 1);
  ServingMetrics metrics;
  double latency_sum = 0.0;
  int64_t next_id = 0;
  size_t prev_dropped = 0;

  auto window_of = [&](double t) {
    auto w = static_cast<size_t>(t / options_.metrics_window);
    return std::min(w, num_windows);
  };

  for (double t = 0.0; t < duration; t += dt) {
    // 1. New arrivals.
    int64_t n = arrivals.Arrivals(t, dt);
    for (int64_t i = 0; i < n; ++i) {
      queue.Push(Request{next_id++, t});
    }
    metrics.total_arrived += n;
    windows[window_of(t)].arrived += n;
    // Queue drops are overdue-by-construction (no response within tau).
    size_t dropped = queue.dropped();
    if (dropped > prev_dropped) {
      auto newly = static_cast<int64_t>(dropped - prev_dropped);
      windows[window_of(t)].overdue += newly;
      metrics.total_dropped += newly;
      prev_dropped = dropped;
    }

    // 2. Decision sweep: at most one dispatch per model per instant.
    for (size_t sweep = 0; sweep < num_models; ++sweep) {
      if (queue.empty()) break;

      ServingObs obs;
      obs.now = t;
      obs.tau = options_.tau;
      obs.batch_sizes = &options_.batch_sizes;
      obs.models = &models_;
      obs.queue_len = queue.size();
      obs.queue_waits = queue.Waits(t, 64);
      obs.busy_remaining.resize(num_models);
      for (size_t m = 0; m < num_models; ++m) {
        obs.busy_remaining[m] = std::max(0.0, busy_until[m] - t);
      }

      ServingAction action = policy.Decide(obs);
      if (!action.process || action.model_mask == 0) break;

      // The simulator enforces physical constraints: selected models must
      // be free, and the batch cannot exceed the queue.
      bool any_busy = false;
      for (size_t m = 0; m < num_models; ++m) {
        if ((action.model_mask & (1u << m)) && obs.busy_remaining[m] > 0.0) {
          any_busy = true;
        }
      }
      if (any_busy) break;  // policy was already penalized in Decide

      int64_t b_eff = std::min<int64_t>(action.batch_size,
                                        static_cast<int64_t>(queue.size()));
      if (b_eff <= 0) break;
      std::vector<Request> batch = queue.PopOldest(
          static_cast<size_t>(b_eff));

      // Dispatch: every selected model processes the batch; the ensemble
      // response is gated by the slowest selected model (§5.2).
      double completion = t;
      for (size_t m = 0; m < num_models; ++m) {
        if (!(action.model_mask & (1u << m))) continue;
        busy_until[m] = t + models_[m].BatchLatency(b_eff);
        completion = std::max(completion, busy_until[m]);
      }

      double accuracy =
          accuracy_table_ != nullptr
              ? accuracy_table_->Accuracy(action.model_mask)
              : models_.front().top1_accuracy;

      int64_t overdue = 0;
      for (const Request& r : batch) {
        double latency = completion - r.arrival_time;
        latency_sum += latency;
        if (latency > options_.tau) ++overdue;
      }

      double reward = BatchReward(accuracy, b_eff, overdue, options_.beta);
      policy.Feedback(obs, action, reward);

      WindowAccum& w = windows[window_of(completion)];
      w.processed += b_eff;
      w.overdue += overdue;
      w.accuracy_sum += accuracy * static_cast<double>(b_eff);
      w.reward_sum += reward;
      ++w.batches;

      metrics.total_processed += b_eff;
      metrics.total_overdue += overdue;
      metrics.mean_accuracy += accuracy * static_cast<double>(b_eff);
      metrics.total_reward += reward;
    }
  }

  // Requests still queued at end-of-run never got a response within tau:
  // count them as overdue and charge them to the final window.
  auto residual = static_cast<int64_t>(queue.size());
  metrics.total_residual = residual;
  metrics.total_overdue += residual;
  windows[num_windows - 1].overdue += residual;

  // Batches whose completion time landed past `duration` were accumulated
  // in the overflow bucket; fold it into the last window so window sums
  // and run totals agree.
  if (windows[num_windows].arrived != 0 || windows[num_windows].processed != 0 ||
      windows[num_windows].overdue != 0 || windows[num_windows].batches != 0) {
    WindowAccum& last = windows[num_windows - 1];
    const WindowAccum& overflow = windows[num_windows];
    last.arrived += overflow.arrived;
    last.processed += overflow.processed;
    last.overdue += overflow.overdue;
    last.accuracy_sum += overflow.accuracy_sum;
    last.reward_sum += overflow.reward_sum;
    last.batches += overflow.batches;
  }

  // Flush windows into samples.
  for (size_t w = 0; w < num_windows; ++w) {
    const WindowAccum& acc = windows[w];
    WindowSample s;
    s.t_begin = static_cast<double>(w) * options_.metrics_window;
    s.arrived = acc.arrived;
    s.processed = acc.processed;
    s.overdue = acc.overdue;
    s.arrived_per_sec =
        static_cast<double>(acc.arrived) / options_.metrics_window;
    s.processed_per_sec =
        static_cast<double>(acc.processed) / options_.metrics_window;
    s.overdue_per_sec =
        static_cast<double>(acc.overdue) / options_.metrics_window;
    s.mean_accuracy = acc.processed == 0
                          ? 0.0
                          : acc.accuracy_sum /
                                static_cast<double>(acc.processed);
    s.mean_reward = acc.batches == 0
                        ? 0.0
                        : acc.reward_sum / static_cast<double>(acc.batches);
    metrics.windows.push_back(s);
  }
  if (metrics.total_processed > 0) {
    metrics.mean_accuracy /= static_cast<double>(metrics.total_processed);
    metrics.mean_latency =
        latency_sum / static_cast<double>(metrics.total_processed);
  }
  return metrics;
}

}  // namespace rafiki::serving
