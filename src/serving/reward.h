#ifndef RAFIKI_SERVING_REWARD_H_
#define RAFIKI_SERVING_REWARD_H_

#include <cstdint>

namespace rafiki::serving {

/// Equation 7: the reward for dispatching one batch without ground-truth
/// labels,
///
///   a(M[v]) * (b - beta * |{s in batch : l(s) > tau}|)
///
/// where a(M[v]) is the surrogate (validation) accuracy of the selected
/// ensemble, b the batch size, and beta the accuracy/latency balance.
inline double BatchReward(double ensemble_accuracy, int64_t batch_size,
                          int64_t overdue_count, double beta) {
  return ensemble_accuracy *
         (static_cast<double>(batch_size) -
          beta * static_cast<double>(overdue_count));
}

}  // namespace rafiki::serving

#endif  // RAFIKI_SERVING_REWARD_H_
