#ifndef RAFIKI_SERVING_GREEDY_BATCH_H_
#define RAFIKI_SERVING_GREEDY_BATCH_H_

#include <string>
#include <vector>

#include "serving/policy.h"

namespace rafiki::serving {

/// Algorithm 3: the greedy batching policy for a single inference model.
///
///   b = max(B)
///   if len(q) >= b:            infer(q_{:b})
///   else:
///     b = max{b in B, b <= len(q)}
///     if c(b) + w(q_0) + delta >= tau:  infer(q_{:b})
///
/// delta is the AIMD-style back-off constant (delta = 0.1 * tau in the
/// paper). When the queue is shorter than min(B), the policy waits until
/// the oldest request is about to overdue, then flushes a partial batch —
/// these leftover flushes are the overdue spikes the paper attributes to
/// "the mismatch of the queue size and the batch size" (Figures 13/14c).
class GreedyBatchPolicy : public SchedulerPolicy {
 public:
  /// `model_index` selects which catalog entry this node serves.
  GreedyBatchPolicy(size_t model_index, double backoff_delta_fraction = 0.1);

  ServingAction Decide(const ServingObs& obs) override;
  std::string name() const override { return "greedy"; }

 private:
  size_t model_index_;
  double backoff_fraction_;
};

/// §7.2.2 baseline 1: runs ALL models synchronously on every batch
/// (maximum-accuracy ensemble) with greedy batch sizing; the batch latency
/// is the slowest model's c(m, b).
class SyncEnsembleGreedyPolicy : public SchedulerPolicy {
 public:
  explicit SyncEnsembleGreedyPolicy(double backoff_delta_fraction = 0.1);

  ServingAction Decide(const ServingObs& obs) override;
  std::string name() const override { return "sync_ensemble_greedy"; }

 private:
  double backoff_fraction_;
};

/// §7.2.2 baseline 2: no ensembling — each batch goes to one (free) model,
/// round-robin, with greedy batch sizing per that model's latency.
class AsyncNoEnsemblePolicy : public SchedulerPolicy {
 public:
  explicit AsyncNoEnsemblePolicy(double backoff_delta_fraction = 0.1);

  ServingAction Decide(const ServingObs& obs) override;
  std::string name() const override { return "async_no_ensemble"; }

 private:
  double backoff_fraction_;
  size_t next_model_ = 0;
};

}  // namespace rafiki::serving

#endif  // RAFIKI_SERVING_GREEDY_BATCH_H_
