#ifndef RAFIKI_SERVING_SINE_ARRIVAL_H_
#define RAFIKI_SERVING_SINE_ARRIVAL_H_

#include <cstdint>

#include "common/rng.h"

namespace rafiki::serving {

/// The paper's request-arrival environment simulator (§7.2, Figure 12,
/// Equations 8-9): a sine-modulated rate
///
///   r(t) = gamma * sin(2*pi*t / T) + b
///
/// calibrated against a target throughput r* (the serving system's maximum
/// r_u or minimum r_l) such that
///   * the rate exceeds r* for 20% of each cycle (Equation 8 — simulating
///     periods of overwhelming load), and
///   * the peak rate is 1.1 * r* (Equation 9 — so the queue does not fill
///     up unboundedly).
/// Solving both: gamma = (0.1 / (1 - cos(0.2*pi))) * r*,
/// b = r* - gamma * cos(0.2*pi).
///
/// The number of new requests over a span delta is
///   delta * r(t) * (1 + phi),  phi ~ N(0, 0.1)
/// — the small noise prevents the RL algorithm from simply memorizing the
/// sine function.
class SineArrivalProcess {
 public:
  SineArrivalProcess(double target_rate, double period, uint64_t seed,
                     double noise_stddev = 0.1);

  /// Instantaneous (noise-free) rate at time t, requests/second.
  double Rate(double t) const;

  /// Number of requests arriving in [t, t + delta): noisy, integerized
  /// with a fractional accumulator so no arrivals are lost to rounding.
  int64_t Arrivals(double t, double delta);

  double gamma() const { return gamma_; }
  double offset() const { return b_; }
  double peak_rate() const { return gamma_ + b_; }
  double target_rate() const { return target_; }
  /// Fraction of a cycle with rate above the target (~0.2 by calibration).
  double FractionAboveTarget(int samples = 10000) const;

 private:
  double target_;
  double period_;
  double gamma_;
  double b_;
  double noise_stddev_;
  Rng rng_;
  double residual_ = 0.0;
};

}  // namespace rafiki::serving

#endif  // RAFIKI_SERVING_SINE_ARRIVAL_H_
