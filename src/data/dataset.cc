#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace rafiki::data {

Dataset Dataset::Slice(int64_t begin, int64_t end) const {
  RAFIKI_CHECK_GE(begin, 0);
  RAFIKI_CHECK_LE(end, size());
  RAFIKI_CHECK_LE(begin, end);
  int64_t n = end - begin;
  int64_t row = x.numel() / std::max<int64_t>(size(), 1);
  Shape shape = x.shape();
  shape[0] = n;
  Dataset out;
  out.num_classes = num_classes;
  out.x = Tensor(shape);
  std::copy(x.data() + begin * row, x.data() + end * row, out.x.data());
  out.labels.assign(labels.begin() + begin, labels.begin() + end);
  return out;
}

Dataset MakeSyntheticTask(const SyntheticTaskOptions& options) {
  Rng rng(options.seed);
  int64_t n = options.num_classes * options.samples_per_class;
  Dataset out;
  out.num_classes = options.num_classes;
  out.x = Tensor({n, options.input_dim});
  out.labels.resize(static_cast<size_t>(n));

  // Random unit-ish centers scaled by `separation`.
  std::vector<std::vector<double>> centers(
      static_cast<size_t>(options.num_classes));
  for (auto& c : centers) {
    c.resize(static_cast<size_t>(options.input_dim));
    double norm = 0.0;
    for (double& v : c) {
      v = rng.Gaussian();
      norm += v * v;
    }
    norm = std::sqrt(std::max(norm, 1e-9));
    for (double& v : c) v = v / norm * options.separation;
  }

  int64_t idx = 0;
  for (int64_t k = 0; k < options.num_classes; ++k) {
    for (int64_t s = 0; s < options.samples_per_class; ++s, ++idx) {
      out.labels[static_cast<size_t>(idx)] = k;
      float* row = out.x.data() + idx * options.input_dim;
      for (int64_t d = 0; d < options.input_dim; ++d) {
        row[d] = static_cast<float>(centers[static_cast<size_t>(k)]
                                           [static_cast<size_t>(d)] +
                                    rng.Gaussian(0.0, options.spread));
      }
    }
  }
  return out;
}

Dataset MakeSyntheticImages(const SyntheticImageOptions& options) {
  Rng rng(options.seed);
  int64_t n = options.num_classes * options.samples_per_class;
  Dataset out;
  out.num_classes = options.num_classes;
  out.x = Tensor({n, options.channels, options.height, options.width});
  out.labels.resize(static_cast<size_t>(n));

  // One smooth sinusoidal template per (class, channel).
  auto tmpl = [&](int64_t k, int64_t c, int64_t y, int64_t x) -> double {
    double fy = 0.5 + 0.5 * static_cast<double>(k % 4);
    double fx = 0.5 + 0.5 * static_cast<double>((k + c) % 3);
    return std::sin(fy * y * 0.7 + k) * std::cos(fx * x * 0.5 + c);
  };

  int64_t idx = 0;
  int64_t plane = options.height * options.width;
  for (int64_t k = 0; k < options.num_classes; ++k) {
    for (int64_t s = 0; s < options.samples_per_class; ++s, ++idx) {
      out.labels[static_cast<size_t>(idx)] = k;
      float* base = out.x.data() + idx * options.channels * plane;
      for (int64_t c = 0; c < options.channels; ++c) {
        for (int64_t y = 0; y < options.height; ++y) {
          for (int64_t x = 0; x < options.width; ++x) {
            base[c * plane + y * options.width + x] = static_cast<float>(
                tmpl(k, c, y, x) + rng.Gaussian(0.0, options.noise));
          }
        }
      }
    }
  }
  return out;
}

DataSplits SplitDataset(const Dataset& dataset, double train_fraction,
                        double validation_fraction, Rng& rng) {
  RAFIKI_CHECK_GT(train_fraction, 0.0);
  RAFIKI_CHECK_GE(validation_fraction, 0.0);
  RAFIKI_CHECK_LE(train_fraction + validation_fraction, 1.0);
  int64_t n = dataset.size();
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  int64_t row = dataset.x.numel() / std::max<int64_t>(n, 1);
  auto take = [&](int64_t begin, int64_t end) {
    Dataset out;
    out.num_classes = dataset.num_classes;
    if (end == begin) return out;  // empty split: rank-0 tensor
    Shape shape = dataset.x.shape();
    shape[0] = end - begin;
    out.x = Tensor(shape);
    out.labels.resize(static_cast<size_t>(end - begin));
    for (int64_t i = begin; i < end; ++i) {
      int64_t src = order[static_cast<size_t>(i)];
      std::copy(dataset.x.data() + src * row,
                dataset.x.data() + (src + 1) * row,
                out.x.data() + (i - begin) * row);
      out.labels[static_cast<size_t>(i - begin)] =
          dataset.labels[static_cast<size_t>(src)];
    }
    return out;
  };

  int64_t n_train = static_cast<int64_t>(train_fraction * n);
  int64_t n_val = static_cast<int64_t>(validation_fraction * n);
  DataSplits splits;
  splits.train = take(0, n_train);
  splits.validation = take(n_train, n_train + n_val);
  splits.test = take(n_train + n_val, n);
  return splits;
}

BatchIterator::BatchIterator(const Dataset& dataset, int64_t batch_size,
                             Rng rng)
    : dataset_(dataset), batch_size_(batch_size), rng_(rng) {
  RAFIKI_CHECK_GT(batch_size, 0);
  order_.resize(static_cast<size_t>(dataset.size()));
  std::iota(order_.begin(), order_.end(), 0);
  rng_.Shuffle(order_);
}

bool BatchIterator::Next(Tensor* x, std::vector<int64_t>* labels) {
  int64_t n = dataset_.size();
  if (cursor_ >= n) return false;
  int64_t end = std::min(cursor_ + batch_size_, n);
  int64_t b = end - cursor_;
  int64_t row = dataset_.x.numel() / std::max<int64_t>(n, 1);
  // Reuse the caller's buffers: only the leading (batch) dimension varies
  // across calls, so a warm x/labels pair is refilled without allocating.
  Shape shape = dataset_.x.shape();
  shape[0] = b;
  x->EnsureShape(shape);
  labels->resize(static_cast<size_t>(b));
  for (int64_t i = 0; i < b; ++i) {
    int64_t src = order_[static_cast<size_t>(cursor_ + i)];
    std::copy(dataset_.x.data() + src * row,
              dataset_.x.data() + (src + 1) * row, x->data() + i * row);
    (*labels)[static_cast<size_t>(i)] =
        dataset_.labels[static_cast<size_t>(src)];
  }
  cursor_ = end;
  return true;
}

void BatchIterator::Reset() {
  cursor_ = 0;
  rng_.Shuffle(order_);
}

int64_t BatchIterator::batches_per_epoch() const {
  return (dataset_.size() + batch_size_ - 1) / batch_size_;
}

}  // namespace rafiki::data
