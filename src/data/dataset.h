#ifndef RAFIKI_DATA_DATASET_H_
#define RAFIKI_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace rafiki::data {

/// An in-memory labeled dataset. `x` is either [n, d] feature rows or
/// [n, c, h, w] images; `labels` holds one class id per example.
///
/// The paper trains on CIFAR-10 / ImageNet; we substitute deterministic
/// synthetic datasets that expose the same knobs (class count, input shape,
/// task difficulty) so the tuning/serving machinery exercises identical code
/// paths (see DESIGN.md §1).
struct Dataset {
  Tensor x;
  std::vector<int64_t> labels;
  int64_t num_classes = 0;

  int64_t size() const { return static_cast<int64_t>(labels.size()); }

  /// Rows [begin, end) as a new dataset (shares nothing; copies).
  Dataset Slice(int64_t begin, int64_t end) const;
};

/// Train/validation/test split.
struct DataSplits {
  Dataset train;
  Dataset validation;
  Dataset test;
};

/// Options for the Gaussian-mixture classification task ("CIFAR-like"
/// feature version). Class k has a random unit-norm center; samples are
/// center + spread * N(0, I). Smaller `separation` makes the task harder.
struct SyntheticTaskOptions {
  int64_t num_classes = 10;
  int64_t samples_per_class = 100;
  int64_t input_dim = 32;
  double separation = 2.0;   // distance scale between class centers
  double spread = 1.0;       // within-class stddev
  uint64_t seed = 7;
};

/// Generates the feature-vector classification task.
Dataset MakeSyntheticTask(const SyntheticTaskOptions& options);

/// Options for a small synthetic image task (rank-4 input), used by the
/// Conv2D path and the preprocessing pipeline.
struct SyntheticImageOptions {
  int64_t num_classes = 4;
  int64_t samples_per_class = 32;
  int64_t channels = 3;
  int64_t height = 16;
  int64_t width = 16;
  double noise = 0.3;
  uint64_t seed = 11;
};

/// Generates images as per-class smooth templates plus Gaussian noise.
Dataset MakeSyntheticImages(const SyntheticImageOptions& options);

/// Shuffles and splits `dataset` into train/validation/test with the given
/// fractions (test receives the remainder).
DataSplits SplitDataset(const Dataset& dataset, double train_fraction,
                        double validation_fraction, Rng& rng);

/// Iterates minibatches over a dataset, reshuffling each epoch.
class BatchIterator {
 public:
  BatchIterator(const Dataset& dataset, int64_t batch_size, Rng rng);

  /// Fills `x`/`labels` with the next minibatch; returns false at epoch end
  /// (after which `Reset()` starts a new shuffled epoch).
  bool Next(Tensor* x, std::vector<int64_t>* labels);
  void Reset();

  int64_t batches_per_epoch() const;

 private:
  const Dataset& dataset_;
  int64_t batch_size_;
  Rng rng_;
  std::vector<int64_t> order_;
  int64_t cursor_ = 0;
};

}  // namespace rafiki::data

#endif  // RAFIKI_DATA_DATASET_H_
