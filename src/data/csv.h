#ifndef RAFIKI_DATA_CSV_H_
#define RAFIKI_DATA_CSV_H_

#include <string>

#include "common/result.h"
#include "data/dataset.h"

namespace rafiki::data {

/// CSV codecs for feature-vector datasets — the practical ingestion path a
/// database user takes into `rafiki.import_*` when their data is tabular
/// rather than images. Row format: `f1,f2,...,fd,label` with an integer
/// class label in the last column. A header line is optional on read and
/// always written as `x0,...,x<d-1>,label`.

/// Renders the dataset as CSV text.
std::string DatasetToCsv(const Dataset& dataset);

/// Parses CSV text into a dataset. Rows must be rectangular; labels must
/// be non-negative integers. `num_classes` is inferred as max(label) + 1
/// unless `expected_classes` > 0 (then out-of-range labels fail).
Result<Dataset> DatasetFromCsv(const std::string& csv,
                               int64_t expected_classes = 0);

}  // namespace rafiki::data

#endif  // RAFIKI_DATA_CSV_H_
