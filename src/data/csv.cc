#include "data/csv.h"

#include <algorithm>
#include <cstdlib>

#include "common/string_util.h"

namespace rafiki::data {

std::string DatasetToCsv(const Dataset& dataset) {
  RAFIKI_CHECK_EQ(dataset.x.rank(), 2u) << "CSV export needs [n, d] data";
  int64_t n = dataset.size();
  int64_t d = dataset.x.dim(1);
  std::string out;
  out.reserve(static_cast<size_t>(n * (d + 1) * 12));
  for (int64_t j = 0; j < d; ++j) {
    out += StrFormat("x%lld,", static_cast<long long>(j));
  }
  out += "label\n";
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) {
      out += StrFormat("%.9g,", dataset.x.at(i * d + j));
    }
    out += StrFormat("%lld\n", static_cast<long long>(
                                   dataset.labels[static_cast<size_t>(i)]));
  }
  return out;
}

Result<Dataset> DatasetFromCsv(const std::string& csv,
                               int64_t expected_classes) {
  std::vector<std::vector<float>> rows;
  std::vector<int64_t> labels;
  int64_t width = -1;
  size_t line_no = 0;
  for (const std::string& line : Split(csv, '\n')) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<std::string> fields = Split(line, ',');
    if (fields.size() < 2) {
      return Status::InvalidArgument(
          StrFormat("line %zu: need at least one feature and a label",
                    line_no));
    }
    // Optional header: skip if the first field is not numeric.
    char* end = nullptr;
    std::strtod(fields[0].c_str(), &end);
    if (end == fields[0].c_str()) {
      if (rows.empty()) continue;  // header
      return Status::InvalidArgument(
          StrFormat("line %zu: non-numeric field '%s'", line_no,
                    fields[0].c_str()));
    }
    if (width < 0) {
      width = static_cast<int64_t>(fields.size()) - 1;
    } else if (static_cast<int64_t>(fields.size()) - 1 != width) {
      return Status::InvalidArgument(
          StrFormat("line %zu: expected %lld features, got %zu", line_no,
                    static_cast<long long>(width), fields.size() - 1));
    }
    std::vector<float> row(static_cast<size_t>(width));
    for (int64_t j = 0; j < width; ++j) {
      const std::string& f = fields[static_cast<size_t>(j)];
      end = nullptr;
      row[static_cast<size_t>(j)] =
          std::strtof(f.c_str(), &end);
      if (end == f.c_str()) {
        return Status::InvalidArgument(
            StrFormat("line %zu: bad feature '%s'", line_no, f.c_str()));
      }
    }
    const std::string& label_field = fields.back();
    end = nullptr;
    long long label = std::strtoll(label_field.c_str(), &end, 10);
    if (end == label_field.c_str() || label < 0) {
      return Status::InvalidArgument(
          StrFormat("line %zu: bad label '%s'", line_no,
                    label_field.c_str()));
    }
    if (expected_classes > 0 && label >= expected_classes) {
      return Status::OutOfRange(
          StrFormat("line %zu: label %lld >= %lld classes", line_no, label,
                    static_cast<long long>(expected_classes)));
    }
    rows.push_back(std::move(row));
    labels.push_back(label);
  }
  if (rows.empty()) {
    return Status::InvalidArgument("CSV contains no data rows");
  }
  Dataset out;
  auto n = static_cast<int64_t>(rows.size());
  out.x = Tensor({n, width});
  for (int64_t i = 0; i < n; ++i) {
    std::copy(rows[static_cast<size_t>(i)].begin(),
              rows[static_cast<size_t>(i)].end(), out.x.data() + i * width);
  }
  out.labels = std::move(labels);
  out.num_classes =
      expected_classes > 0
          ? expected_classes
          : *std::max_element(out.labels.begin(), out.labels.end()) + 1;
  return out;
}

}  // namespace rafiki::data
