#include "data/preprocess.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rafiki::data {
namespace {

constexpr double kPi = 3.14159265358979323846;

void CheckNchw(const Tensor& t) {
  RAFIKI_CHECK_EQ(t.rank(), 4u) << "expected NCHW batch";
}

}  // namespace

NormalizeOp::NormalizeOp(std::vector<float> channel_mean,
                         std::vector<float> channel_std)
    : mean_(std::move(channel_mean)), std_(std::move(channel_std)) {
  RAFIKI_CHECK_EQ(mean_.size(), std_.size());
  for (float s : std_) RAFIKI_CHECK_GT(s, 0.0f);
}

void NormalizeOp::Apply(Tensor* batch, Rng& rng) const {
  CheckNchw(*batch);
  int64_t n = batch->dim(0), c = batch->dim(1);
  int64_t plane = batch->dim(2) * batch->dim(3);
  RAFIKI_CHECK_EQ(static_cast<size_t>(c), mean_.size());
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      float* p = batch->data() + (i * c + ch) * plane;
      float m = mean_[static_cast<size_t>(ch)];
      float inv = 1.0f / std_[static_cast<size_t>(ch)];
      for (int64_t j = 0; j < plane; ++j) p[j] = (p[j] - m) * inv;
    }
  }
}

PadCropOp::PadCropOp(int64_t pad) : pad_(pad) { RAFIKI_CHECK_GE(pad, 0); }

void PadCropOp::Apply(Tensor* batch, Rng& rng) const {
  CheckNchw(*batch);
  if (pad_ == 0) return;
  int64_t n = batch->dim(0), c = batch->dim(1);
  int64_t h = batch->dim(2), w = batch->dim(3);
  Tensor out(batch->shape());
  for (int64_t i = 0; i < n; ++i) {
    // Crop offset within the padded image, shared across channels.
    int64_t oy = rng.UniformInt(0, 2 * pad_);
    int64_t ox = rng.UniformInt(0, 2 * pad_);
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* src = batch->data() + (i * c + ch) * h * w;
      float* dst = out.data() + (i * c + ch) * h * w;
      for (int64_t y = 0; y < h; ++y) {
        for (int64_t x = 0; x < w; ++x) {
          int64_t sy = y + oy - pad_;
          int64_t sx = x + ox - pad_;
          dst[y * w + x] = (sy >= 0 && sy < h && sx >= 0 && sx < w)
                               ? src[sy * w + sx]
                               : 0.0f;
        }
      }
    }
  }
  *batch = std::move(out);
}

RandomFlipOp::RandomFlipOp(double p) : p_(p) {
  RAFIKI_CHECK_GE(p, 0.0);
  RAFIKI_CHECK_LE(p, 1.0);
}

void RandomFlipOp::Apply(Tensor* batch, Rng& rng) const {
  CheckNchw(*batch);
  int64_t n = batch->dim(0), c = batch->dim(1);
  int64_t h = batch->dim(2), w = batch->dim(3);
  for (int64_t i = 0; i < n; ++i) {
    if (!rng.Bernoulli(p_)) continue;
    for (int64_t ch = 0; ch < c; ++ch) {
      float* p = batch->data() + (i * c + ch) * h * w;
      for (int64_t y = 0; y < h; ++y) {
        std::reverse(p + y * w, p + (y + 1) * w);
      }
    }
  }
}

RandomRotationOp::RandomRotationOp(double max_degrees)
    : max_degrees_(max_degrees) {
  RAFIKI_CHECK_GE(max_degrees, 0.0);
}

void RandomRotationOp::Apply(Tensor* batch, Rng& rng) const {
  CheckNchw(*batch);
  if (max_degrees_ == 0.0) return;
  int64_t n = batch->dim(0), c = batch->dim(1);
  int64_t h = batch->dim(2), w = batch->dim(3);
  Tensor out(batch->shape());
  for (int64_t i = 0; i < n; ++i) {
    double theta =
        rng.Uniform(-max_degrees_, max_degrees_) * kPi / 180.0;
    double ct = std::cos(theta), st = std::sin(theta);
    double cy = (h - 1) / 2.0, cx = (w - 1) / 2.0;
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* src = batch->data() + (i * c + ch) * h * w;
      float* dst = out.data() + (i * c + ch) * h * w;
      for (int64_t y = 0; y < h; ++y) {
        for (int64_t x = 0; x < w; ++x) {
          // Inverse-map the output pixel to the source image.
          double dy = y - cy, dx = x - cx;
          auto sy = static_cast<int64_t>(std::lround(ct * dy + st * dx + cy));
          auto sx = static_cast<int64_t>(std::lround(-st * dy + ct * dx + cx));
          dst[y * w + x] = (sy >= 0 && sy < h && sx >= 0 && sx < w)
                               ? src[sy * w + sx]
                               : 0.0f;
        }
      }
    }
  }
  *batch = std::move(out);
}

namespace {

/// Symmetric eigendecomposition by cyclic Jacobi rotations. `a` is [d, d]
/// row-major and is destroyed; eigenvectors land in the columns of `v`.
void JacobiEigen(std::vector<double>& a, std::vector<double>& v, int64_t d) {
  v.assign(static_cast<size_t>(d * d), 0.0);
  for (int64_t i = 0; i < d; ++i) v[static_cast<size_t>(i * d + i)] = 1.0;
  for (int sweep = 0; sweep < 64; ++sweep) {
    double off = 0.0;
    for (int64_t p = 0; p < d; ++p)
      for (int64_t q = p + 1; q < d; ++q)
        off += a[static_cast<size_t>(p * d + q)] *
               a[static_cast<size_t>(p * d + q)];
    if (off < 1e-18) break;
    for (int64_t p = 0; p < d; ++p) {
      for (int64_t q = p + 1; q < d; ++q) {
        double apq = a[static_cast<size_t>(p * d + q)];
        if (std::fabs(apq) < 1e-15) continue;
        double app = a[static_cast<size_t>(p * d + p)];
        double aqq = a[static_cast<size_t>(q * d + q)];
        double phi = 0.5 * std::atan2(2.0 * apq, aqq - app);
        double cph = std::cos(phi), sph = std::sin(phi);
        for (int64_t k = 0; k < d; ++k) {
          double akp = a[static_cast<size_t>(k * d + p)];
          double akq = a[static_cast<size_t>(k * d + q)];
          a[static_cast<size_t>(k * d + p)] = cph * akp - sph * akq;
          a[static_cast<size_t>(k * d + q)] = sph * akp + cph * akq;
        }
        for (int64_t k = 0; k < d; ++k) {
          double apk = a[static_cast<size_t>(p * d + k)];
          double aqk = a[static_cast<size_t>(q * d + k)];
          a[static_cast<size_t>(p * d + k)] = cph * apk - sph * aqk;
          a[static_cast<size_t>(q * d + k)] = sph * apk + cph * aqk;
        }
        for (int64_t k = 0; k < d; ++k) {
          double vkp = v[static_cast<size_t>(k * d + p)];
          double vkq = v[static_cast<size_t>(k * d + q)];
          v[static_cast<size_t>(k * d + p)] = cph * vkp - sph * vkq;
          v[static_cast<size_t>(k * d + q)] = sph * vkp + cph * vkq;
        }
      }
    }
  }
}

}  // namespace

Whitener::Whitener(const Tensor& train_features, WhitenKind kind,
                   double epsilon)
    : kind_(kind) {
  RAFIKI_CHECK_EQ(train_features.rank(), 2u);
  int64_t n = train_features.dim(0);
  int64_t d = train_features.dim(1);
  RAFIKI_CHECK_GT(n, 1);

  mean_.assign(static_cast<size_t>(d), 0.0f);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) {
      mean_[static_cast<size_t>(j)] += train_features.at(i * d + j);
    }
  }
  for (float& m : mean_) m /= static_cast<float>(n);

  // Covariance.
  std::vector<double> cov(static_cast<size_t>(d * d), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) {
      double xj = train_features.at(i * d + j) - mean_[static_cast<size_t>(j)];
      for (int64_t k = j; k < d; ++k) {
        double xk =
            train_features.at(i * d + k) - mean_[static_cast<size_t>(k)];
        cov[static_cast<size_t>(j * d + k)] += xj * xk;
      }
    }
  }
  for (int64_t j = 0; j < d; ++j) {
    for (int64_t k = j; k < d; ++k) {
      double v = cov[static_cast<size_t>(j * d + k)] / (n - 1);
      cov[static_cast<size_t>(j * d + k)] = v;
      cov[static_cast<size_t>(k * d + j)] = v;
    }
  }

  std::vector<double> vecs;
  JacobiEigen(cov, vecs, d);
  // Eigenvalues on the diagonal after rotation.
  std::vector<double> evals(static_cast<size_t>(d));
  for (int64_t j = 0; j < d; ++j)
    evals[static_cast<size_t>(j)] = cov[static_cast<size_t>(j * d + j)];

  // PCA whitening: W = U diag(1/sqrt(l+eps)); ZCA: W = U diag(...) U^T.
  transform_ = Tensor({d, d});
  std::vector<double> scaled(static_cast<size_t>(d * d), 0.0);
  for (int64_t j = 0; j < d; ++j) {
    double s = 1.0 / std::sqrt(std::max(evals[static_cast<size_t>(j)], 0.0) +
                               epsilon);
    for (int64_t i = 0; i < d; ++i) {
      scaled[static_cast<size_t>(i * d + j)] =
          vecs[static_cast<size_t>(i * d + j)] * s;
    }
  }
  if (kind == WhitenKind::kPca) {
    for (int64_t i = 0; i < d; ++i)
      for (int64_t j = 0; j < d; ++j)
        transform_.at(i * d + j) =
            static_cast<float>(scaled[static_cast<size_t>(i * d + j)]);
  } else {
    // ZCA: scaled * U^T.
    for (int64_t i = 0; i < d; ++i) {
      for (int64_t j = 0; j < d; ++j) {
        double acc = 0.0;
        for (int64_t k = 0; k < d; ++k) {
          acc += scaled[static_cast<size_t>(i * d + k)] *
                 vecs[static_cast<size_t>(j * d + k)];
        }
        transform_.at(i * d + j) = static_cast<float>(acc);
      }
    }
  }
}

void Whitener::Apply(Tensor* batch) const {
  RAFIKI_CHECK_EQ(batch->rank(), 2u);
  int64_t d = batch->dim(1);
  RAFIKI_CHECK_EQ(d, transform_.dim(0));
  Tensor centered = *batch;
  int64_t b = batch->dim(0);
  for (int64_t i = 0; i < b; ++i) {
    for (int64_t j = 0; j < d; ++j) {
      centered.at(i * d + j) -= mean_[static_cast<size_t>(j)];
    }
  }
  *batch = MatMul(centered, transform_);
}

void Pipeline::Add(std::unique_ptr<PreprocessOp> op) {
  ops_.push_back(std::move(op));
}

void Pipeline::Apply(Tensor* batch, Rng& rng) const {
  for (const auto& op : ops_) op->Apply(batch, rng);
}

std::vector<std::string> Pipeline::OpNames() const {
  std::vector<std::string> out;
  out.reserve(ops_.size());
  for (const auto& op : ops_) out.push_back(op->name());
  return out;
}

void ComputeChannelStats(const Tensor& images, std::vector<float>* mean,
                         std::vector<float>* stddev) {
  RAFIKI_CHECK_EQ(images.rank(), 4u);
  int64_t n = images.dim(0), c = images.dim(1);
  int64_t plane = images.dim(2) * images.dim(3);
  mean->assign(static_cast<size_t>(c), 0.0f);
  stddev->assign(static_cast<size_t>(c), 0.0f);
  for (int64_t ch = 0; ch < c; ++ch) {
    double sum = 0.0, sq = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const float* p = images.data() + (i * c + ch) * plane;
      for (int64_t j = 0; j < plane; ++j) {
        sum += p[j];
        sq += static_cast<double>(p[j]) * p[j];
      }
    }
    double cnt = static_cast<double>(n * plane);
    double m = sum / cnt;
    double var = std::max(sq / cnt - m * m, 1e-12);
    (*mean)[static_cast<size_t>(ch)] = static_cast<float>(m);
    (*stddev)[static_cast<size_t>(ch)] = static_cast<float>(std::sqrt(var));
  }
}

}  // namespace rafiki::data
