#ifndef RAFIKI_DATA_PREPROCESS_H_
#define RAFIKI_DATA_PREPROCESS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "tensor/tensor.h"

namespace rafiki::data {

/// Data-preprocessing operators — Table 1 group 1 of the paper (image
/// rotation, image cropping, whitening {PCA, ZCA}, plus the standard
/// CIFAR-10 pipeline of §7.1: per-channel standardization, 4-pixel pad +
/// random crop, random horizontal flip).
///
/// Each op transforms a batch in place; stochastic ops draw from the Rng
/// that is passed per call so trials stay reproducible.
class PreprocessOp {
 public:
  virtual ~PreprocessOp() = default;
  virtual void Apply(Tensor* batch, Rng& rng) const = 0;
  virtual std::string name() const = 0;
};

/// Per-channel standardization of an NCHW batch using the provided
/// statistics (computed once on the training set, as in the paper).
class NormalizeOp : public PreprocessOp {
 public:
  NormalizeOp(std::vector<float> channel_mean,
              std::vector<float> channel_std);
  void Apply(Tensor* batch, Rng& rng) const override;
  std::string name() const override { return "normalize"; }

 private:
  std::vector<float> mean_;
  std::vector<float> std_;
};

/// Pads each image with `pad` zero pixels on every side, then takes a random
/// crop back at the original size.
class PadCropOp : public PreprocessOp {
 public:
  explicit PadCropOp(int64_t pad);
  void Apply(Tensor* batch, Rng& rng) const override;
  std::string name() const override { return "pad_crop"; }

 private:
  int64_t pad_;
};

/// Mirrors each image horizontally with probability p.
class RandomFlipOp : public PreprocessOp {
 public:
  explicit RandomFlipOp(double p);
  void Apply(Tensor* batch, Rng& rng) const override;
  std::string name() const override { return "flip"; }

 private:
  double p_;
};

/// Rotates each image by a uniform angle in [-max_degrees, max_degrees]
/// (nearest-neighbour resampling around the image center).
class RandomRotationOp : public PreprocessOp {
 public:
  explicit RandomRotationOp(double max_degrees);
  void Apply(Tensor* batch, Rng& rng) const override;
  std::string name() const override { return "rotate"; }

 private:
  double max_degrees_;
};

/// Whitening method for feature-matrix datasets.
enum class WhitenKind { kPca, kZca };

/// Computes a whitening transform from [n, d] training features and applies
/// it to batches (rank-2 only). Eigen-decomposition is done with a Jacobi
/// sweep — d is small for the synthetic tasks.
class Whitener {
 public:
  /// Fits on training features; `epsilon` regularizes small eigenvalues.
  Whitener(const Tensor& train_features, WhitenKind kind,
           double epsilon = 1e-5);

  /// Applies x -> (x - mean) W to a [b, d] batch.
  void Apply(Tensor* batch) const;

  WhitenKind kind() const { return kind_; }
  /// Covariance of transformed training data should be ~identity; exposed
  /// for property tests.
  const Tensor& transform() const { return transform_; }

 private:
  WhitenKind kind_;
  std::vector<float> mean_;
  Tensor transform_;  // [d, d]
};

/// An ordered preprocessing pipeline assembled from knob values.
class Pipeline {
 public:
  void Add(std::unique_ptr<PreprocessOp> op);
  void Apply(Tensor* batch, Rng& rng) const;
  size_t size() const { return ops_.size(); }
  std::vector<std::string> OpNames() const;

 private:
  std::vector<std::unique_ptr<PreprocessOp>> ops_;
};

/// Per-channel mean/std over an NCHW dataset (for NormalizeOp).
void ComputeChannelStats(const Tensor& images, std::vector<float>* mean,
                         std::vector<float>* stddev);

}  // namespace rafiki::data

#endif  // RAFIKI_DATA_PREPROCESS_H_
