#ifndef RAFIKI_COMMON_RESULT_H_
#define RAFIKI_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace rafiki {

/// Either a value of type T or a non-OK Status, akin to absl::StatusOr /
/// arrow::Result. Accessing the value of an errored Result is a fatal
/// programming error (the process aborts), so callers must check `ok()`.
template <typename T>
class Result {
 public:
  /// Implicitly constructible from a value (success)...
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// ...or from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {
    RAFIKI_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    RAFIKI_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    RAFIKI_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    RAFIKI_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace rafiki

/// Evaluates `rexpr` (a Result<T>), propagating the error or binding the
/// value to `lhs`.
#define RAFIKI_ASSIGN_OR_RETURN(lhs, rexpr)            \
  RAFIKI_ASSIGN_OR_RETURN_IMPL_(                       \
      RAFIKI_STATUS_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define RAFIKI_STATUS_CONCAT_INNER_(a, b) a##b
#define RAFIKI_STATUS_CONCAT_(a, b) RAFIKI_STATUS_CONCAT_INNER_(a, b)

#define RAFIKI_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                  \
  if (!result.ok()) return result.status();               \
  lhs = std::move(result).value()

#endif  // RAFIKI_COMMON_RESULT_H_
