#ifndef RAFIKI_COMMON_STATUS_H_
#define RAFIKI_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace rafiki {

/// Canonical error codes, mirroring the subset used across the codebase.
/// Library code never throws; fallible operations return `Status` or
/// `Result<T>` (see result.h), in the style of RocksDB/Arrow.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnavailable = 6,
  kCancelled = 7,
  kDeadlineExceeded = 8,
  kInternal = 9,
  kUnimplemented = 10,
  kResourceExhausted = 11,
};

/// Human-readable name for a status code ("OK", "NOT_FOUND", ...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value. Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace rafiki

/// Propagates a non-OK Status to the caller.
#define RAFIKI_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::rafiki::Status _rafiki_status_ = (expr);      \
    if (!_rafiki_status_.ok()) return _rafiki_status_; \
  } while (0)

#endif  // RAFIKI_COMMON_STATUS_H_
