#ifndef RAFIKI_COMMON_MPSC_RING_H_
#define RAFIKI_COMMON_MPSC_RING_H_

// Flat queue structures for the serving data plane.
//
// MpscRing<T> is a bounded lock-free multi-producer/single-consumer ring
// (Vyukov-style sequence-stamped slots) used as the submit queue between
// request handlers and a dispatcher thread. FutexDoorbell is the matching
// wakeup primitive: producers ring it after a push, the consumer sleeps on
// it (with a timeout) when the ring is empty, and the syscall is skipped
// entirely when nobody is waiting. RingDeque<T> is a plain single-threaded
// growable circular buffer used for capacity-retaining FIFO scratch queues
// (it grows on demand but never shrinks, so steady-state push/pop performs
// no allocation).

#include <linux/futex.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rafiki {

/// Bounded lock-free MPSC ring. Capacity is rounded up to a power of two.
///
/// Protocol: every slot carries a sequence stamp. A producer claims a
/// position by CAS on the tail counter, writes the value, then publishes by
/// stamping the slot with position+1; the consumer pops position `head` only
/// once the stamp equals head+1 and releases the slot for the next lap by
/// stamping it head+capacity. Close() sets a high bit in the tail counter
/// via fetch_or, which makes every in-flight and future claim-CAS fail, so
/// no value can be enqueued after Close() — the consumer's final
/// DrainClosed() therefore observes every value that was ever accepted.
template <typename T>
class MpscRing {
 public:
  enum class PushResult { kOk, kFull, kClosed };

  explicit MpscRing(size_t min_capacity) {
    size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    slots_ = std::vector<Slot>(cap);
    mask_ = cap - 1;
    for (size_t i = 0; i < cap; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  size_t capacity() const { return mask_ + 1; }

  /// Producer side. kFull means the consumer has fallen a full lap behind;
  /// kClosed means Close() happened first and the value was not consumed.
  PushResult TryPush(T&& value) {
    uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      if (pos & kClosedBit) return PushResult::kClosed;
      Slot& slot = slots_[pos & mask_];
      uint64_t seq = slot.seq.load(std::memory_order_acquire);
      int64_t dif = static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          slot.value = std::move(value);
          slot.seq.store(pos + 1, std::memory_order_release);
          return PushResult::kOk;
        }
        // CAS failure reloaded `pos`; loop re-checks the closed bit.
      } else if (dif < 0) {
        return PushResult::kFull;
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Consumer side: pops up to `max` values, invoking sink(T&&) for each.
  /// Returns the number popped. Single consumer only.
  template <typename Sink>
  size_t ConsumeBatch(size_t max, Sink&& sink) {
    size_t n = 0;
    uint64_t head = head_.load(std::memory_order_relaxed);
    while (n < max) {
      Slot& slot = slots_[head & mask_];
      uint64_t seq = slot.seq.load(std::memory_order_acquire);
      if (seq != head + 1) break;  // empty, or a claim not yet published
      sink(std::move(slot.value));
      slot.value = T{};  // release owned resources even if the sink didn't
      slot.seq.store(head + capacity(), std::memory_order_release);
      ++head;
      ++n;
    }
    head_.store(head, std::memory_order_relaxed);
    return n;
  }

  /// Marks the ring closed. After this returns, every TryPush reports
  /// kClosed (including pushes already racing with the close).
  void Close() { tail_.fetch_or(kClosedBit, std::memory_order_acq_rel); }

  bool closed() const {
    return (tail_.load(std::memory_order_relaxed) & kClosedBit) != 0;
  }

  /// Re-opens a closed ring so a restarted consumer can serve it again
  /// (replica scale-up after a scale-down). Call only after the previous
  /// consumer's DrainClosed() has returned and that consumer is gone:
  /// positions continue where they left off, so the slot stamps stay
  /// consistent across the close/reopen cycle. A producer whose claim-CAS
  /// races the Close/Reopen pair either observes the closed bit (kClosed,
  /// no value enqueued) or lands its push at a position past the drained
  /// range — never inside it — so no accepted value is ever lost.
  void Reopen() { tail_.fetch_and(~kClosedBit, std::memory_order_acq_rel); }

  /// Consumer side, only after Close(): drains every accepted value,
  /// spin-waiting for claims that were in flight when the ring closed.
  template <typename Sink>
  size_t DrainClosed(Sink&& sink) {
    uint64_t end = tail_.load(std::memory_order_acquire) & ~kClosedBit;
    uint64_t head = head_.load(std::memory_order_relaxed);
    size_t n = 0;
    while (head < end) {
      Slot& slot = slots_[head & mask_];
      while (slot.seq.load(std::memory_order_acquire) != head + 1) {
        // The claimant is between its CAS and its publish store.
      }
      sink(std::move(slot.value));
      slot.value = T{};  // release owned resources even if the sink didn't
      slot.seq.store(head + capacity(), std::memory_order_release);
      ++head;
      ++n;
    }
    head_.store(head, std::memory_order_relaxed);
    return n;
  }

  /// Racy size estimate, for gauges only.
  size_t ApproxSize() const {
    uint64_t tail = tail_.load(std::memory_order_relaxed) & ~kClosedBit;
    uint64_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }

 private:
  static constexpr uint64_t kClosedBit = 1ull << 63;

  struct Slot {
    std::atomic<uint64_t> seq{0};
    T value{};
  };

  // Producers contend on tail_, the consumer owns head_: separate lines.
  alignas(64) std::atomic<uint64_t> tail_{0};
  alignas(64) std::atomic<uint64_t> head_{0};
  alignas(64) std::vector<Slot> slots_;
  size_t mask_ = 0;
};

/// Futex-based wakeup for a single sleeping consumer. The fast path
/// (consumer busy, or nobody waiting) is one or two atomic ops and no
/// syscall. The wait protocol is the standard one that cannot lose a
/// wakeup:
///
///   consumer: e = PrepareWait(); if (work) { CancelWait(); } else Wait(e);
///   producer: <publish work>; Notify();
///
/// PrepareWait registers the waiter BEFORE the consumer re-checks for work,
/// and Notify bumps the epoch word BEFORE checking for waiters (both
/// seq_cst), so either the consumer sees the work, or the producer sees the
/// waiter / the epoch no longer matches and the futex wait returns at once.
class FutexDoorbell {
 public:
  static_assert(sizeof(std::atomic<uint32_t>) == sizeof(uint32_t));

  /// Registers the (single) consumer as a waiter; returns the epoch to
  /// pass to Wait. The registration is a 0/1 flag, not a count: the ring
  /// is single-consumer, and a flag lets Notify claim the registration
  /// with one exchange so a burst of pushes pays exactly one wake per
  /// sleep — not one per push while the woken consumer waits for CPU.
  uint32_t PrepareWait() {
    waiters_.store(1, std::memory_order_seq_cst);
    return word_.load(std::memory_order_seq_cst);
  }

  /// Undoes PrepareWait when the re-check found work.
  void CancelWait() { waiters_.store(0, std::memory_order_seq_cst); }

  /// Sleeps until Notify() bumps the epoch past `expected`, or the timeout
  /// (seconds; <= 0 means no timeout) elapses. Deregisters the waiter.
  void Wait(uint32_t expected, double timeout_seconds) {
    timespec ts;
    timespec* tsp = nullptr;
    if (timeout_seconds > 0) {
      ts.tv_sec = static_cast<time_t>(timeout_seconds);
      ts.tv_nsec = static_cast<long>(
          (timeout_seconds - static_cast<double>(ts.tv_sec)) * 1e9);
      tsp = &ts;
    }
    syscall(SYS_futex, reinterpret_cast<uint32_t*>(&word_),
            FUTEX_WAIT_PRIVATE, expected, tsp, nullptr, 0);
    // Notify usually cleared the flag already; clearing again covers the
    // timeout path and is idempotent.
    waiters_.store(0, std::memory_order_seq_cst);
  }

  /// Producer side: called after publishing work. When nobody is waiting
  /// this is a single uncontended load: the epoch only has to move when a
  /// registered waiter could sleep on the old value. A waiter that races
  /// past this load has not called Wait yet — its post-PrepareWait
  /// re-check of the queue (both seq_cst, Dekker-style) sees the item
  /// published before this load and cancels instead of sleeping. The
  /// exchange arbitrates concurrent producers: exactly one claims the
  /// registration and issues the wake; a missed FUTEX_WAIT is impossible
  /// because the epoch bump happens before the wake, so a consumer that
  /// was still short of the syscall sees the moved epoch and returns.
  void Notify() {
    if (waiters_.load(std::memory_order_seq_cst) == 0) return;
    if (waiters_.exchange(0, std::memory_order_seq_cst) == 0) return;
    word_.fetch_add(1, std::memory_order_seq_cst);
    syscall(SYS_futex, reinterpret_cast<uint32_t*>(&word_),
            FUTEX_WAKE_PRIVATE, INT32_MAX, nullptr, nullptr, 0);
  }

 private:
  std::atomic<uint32_t> word_{0};
  std::atomic<uint32_t> waiters_{0};
};

/// Growable single-threaded circular FIFO. Unlike std::deque it is one flat
/// allocation that is reused forever: steady-state push/pop never touches
/// the heap. Indexing is relative to the front.
template <typename T>
class RingDeque {
 public:
  RingDeque() = default;

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  void push_back(T&& value) {
    if (size_ == buf_.size()) Grow();
    buf_[(head_ + size_) & (buf_.size() - 1)] = std::move(value);
    ++size_;
  }

  T& front() { return buf_[head_]; }
  T& operator[](size_t i) { return buf_[(head_ + i) & (buf_.size() - 1)]; }

  void pop_front() {
    buf_[head_] = T{};  // release owned resources promptly
    head_ = (head_ + 1) & (buf_.size() - 1);
    --size_;
  }

  void clear() {
    while (size_ > 0) pop_front();
  }

 private:
  void Grow() {
    size_t cap = buf_.empty() ? 16 : buf_.size() * 2;
    std::vector<T> next(cap);
    for (size_t i = 0; i < size_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> buf_;
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace rafiki

#endif  // RAFIKI_COMMON_MPSC_RING_H_
