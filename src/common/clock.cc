#include "common/clock.h"

#include <chrono>
#include <thread>

#include "common/logging.h"

namespace rafiki {
namespace {

double MonotonicSeconds() {
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

}  // namespace

RealClock::RealClock() : origin_(MonotonicSeconds()) {}

double RealClock::Now() const { return MonotonicSeconds() - origin_; }

void RealClock::Sleep(double seconds) {
  if (seconds <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

void SimClock::Advance(double seconds) {
  RAFIKI_CHECK_GE(seconds, 0.0);
  std::lock_guard<std::mutex> lock(mu_);
  now_ += seconds;
}

void SimClock::AdvanceTo(double t) {
  std::lock_guard<std::mutex> lock(mu_);
  RAFIKI_CHECK_GE(t, now_);
  now_ = t;
}

}  // namespace rafiki
