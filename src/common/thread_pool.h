#ifndef RAFIKI_COMMON_THREAD_POOL_H_
#define RAFIKI_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rafiki {

/// Persistent fixed-size worker pool with a `ParallelFor` helper used by the
/// compute kernels (`tensor/kernels.h`) to split GEMM row blocks across
/// cores.
///
/// Design notes:
///  - Workers are spawned once and live until destruction; a `ParallelFor`
///    call costs one mutex round-trip plus wakeups, not thread creation.
///  - The calling thread participates: it runs the first chunk itself, so a
///    pool of size 1 (or a serial fallback) never deadlocks and small calls
///    stay on the caller's core.
///  - Nested calls are safe: a `ParallelFor` issued from inside a worker (or
///    from inside another `ParallelFor` body) runs inline on the calling
///    thread instead of re-entering the queue, so the pool can never
///    self-deadlock waiting on its own workers.
///  - Exceptions thrown by chunk bodies are captured; the first one is
///    rethrown on the calling thread after every chunk has finished, leaving
///    the pool in a usable state.
///
/// Determinism: `ParallelFor` only changes *which thread* runs a chunk,
/// never the iteration order inside a chunk, so kernels that keep each
/// output element inside a single chunk produce bit-identical results for
/// any thread count.
class ThreadPool {
 public:
  /// Pool with `num_threads` workers; values < 1 are clamped to 1. A pool of
  /// size 1 runs everything inline on the caller.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide shared pool. Size comes from the `RAFIKI_NUM_THREADS`
  /// environment variable when set (and >= 1), otherwise
  /// `std::thread::hardware_concurrency()`. Constructed on first use.
  static ThreadPool& Global();

  /// Number of threads that can run chunks concurrently (workers + caller).
  int num_threads() const { return num_threads_; }

  /// Splits [begin, end) into contiguous chunks of at least `grain`
  /// iterations and runs `fn(chunk_begin, chunk_end)` across the pool.
  /// Blocks until every chunk has completed. Empty ranges return
  /// immediately. Runs inline when the range fits one grain, the pool is
  /// size 1, or the call is nested inside another pool task.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

 private:
  void WorkerLoop();

  int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> tasks_;
  bool shutdown_ = false;
};

}  // namespace rafiki

#endif  // RAFIKI_COMMON_THREAD_POOL_H_
