#ifndef RAFIKI_COMMON_RNG_H_
#define RAFIKI_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace rafiki {

/// Deterministic, explicitly-seeded random number generator used everywhere
/// stochastic behaviour is needed. Every experiment takes a seed so runs are
/// reproducible; `Fork()` derives decorrelated child streams (one per
/// worker / per trial) without the children sharing state.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Index in [0, n); n must be > 0.
  size_t Index(size_t n) {
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
  }

  /// Gaussian sample with the given mean and standard deviation.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  /// True with probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p < 0 ? 0 : (p > 1 ? 1 : p));
    return dist(engine_);
  }

  /// Log-uniform double in [lo, hi); lo, hi must be positive.
  double LogUniform(double lo, double hi);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = Index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator. Uses SplitMix64 on the parent
  /// stream so forked streams do not overlap in practice. Mutates the parent
  /// stream — callers sharing an Rng across threads must use Mix() instead.
  Rng Fork();

  /// Stateless SplitMix64 mix. Deriving per-task seeds as
  /// `Mix(base_seed + task_id)` gives decorrelated streams without any
  /// shared mutable state, so it is safe from concurrent threads.
  static uint64_t Mix(uint64_t x);

  /// Raw 64-bit draw.
  uint64_t Next64() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace rafiki

#endif  // RAFIKI_COMMON_RNG_H_
