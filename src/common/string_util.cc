#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace rafiki {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace rafiki
