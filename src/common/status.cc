#include "common/status.h"

namespace rafiki {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace rafiki
