#include "common/logging.h"

#include <execinfo.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace rafiki {
namespace {

std::atomic<int> g_min_severity{static_cast<int>(LogSeverity::kInfo)};

std::mutex& EmitMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

char SeverityChar(LogSeverity s) {
  switch (s) {
    case LogSeverity::kDebug:
      return 'D';
    case LogSeverity::kInfo:
      return 'I';
    case LogSeverity::kWarning:
      return 'W';
    case LogSeverity::kError:
      return 'E';
    case LogSeverity::kFatal:
      return 'F';
  }
  return '?';
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(static_cast<int>(severity), std::memory_order_relaxed);
}

LogSeverity MinLogSeverity() {
  return static_cast<LogSeverity>(
      g_min_severity.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << SeverityChar(severity) << " [" << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  const bool enabled =
      static_cast<int>(severity_) >=
          g_min_severity.load(std::memory_order_relaxed) ||
      severity_ == LogSeverity::kFatal;
  if (enabled) {
    std::lock_guard<std::mutex> lock(EmitMutex());
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) {
    // Best-effort stack trace so fatal invariant violations are debuggable
    // in the field (mangled frames; feed through c++filt).
    void* frames[32];
    int depth = backtrace(frames, 32);
    backtrace_symbols_fd(frames, depth, /*stderr=*/2);
    std::abort();
  }
}

}  // namespace internal
}  // namespace rafiki
