#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace rafiki {

namespace {

/// True while the current thread is executing a pool task (worker loop or a
/// ParallelFor body). Used to run nested calls inline.
thread_local bool tls_in_pool_task = false;

int GlobalPoolSize() {
  if (const char* env = std::getenv("RAFIKI_NUM_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) return static_cast<int>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  // The caller participates in every ParallelFor, so spawn one fewer worker
  // than the advertised concurrency.
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(GlobalPoolSize());
  return pool;
}

void ThreadPool::WorkerLoop() {
  tls_in_pool_task = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown with drained queue
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  if (begin >= end) return;
  grain = std::max<int64_t>(1, grain);
  int64_t range = end - begin;
  int64_t max_chunks = (range + grain - 1) / grain;
  int64_t num_chunks = std::min<int64_t>(num_threads_, max_chunks);
  if (num_chunks <= 1 || tls_in_pool_task) {
    // Serial fast path; also covers nested calls, which must not block on
    // workers that may themselves be waiting on this call's parent.
    fn(begin, end);
    return;
  }

  // Completion state shared with the workers. Stack lifetime is safe: this
  // call does not return until every chunk has run.
  struct SharedState {
    std::mutex mu;
    std::condition_variable done_cv;
    int64_t pending;
    std::exception_ptr first_error;
  } state;
  state.pending = num_chunks - 1;  // chunk 0 runs on the caller

  int64_t chunk = range / num_chunks;
  int64_t rem = range % num_chunks;
  // Chunk i covers [begin + i*chunk + min(i, rem), ...): first `rem` chunks
  // get one extra iteration so sizes differ by at most 1.
  auto chunk_bounds = [&](int64_t i) {
    int64_t b = begin + i * chunk + std::min(i, rem);
    int64_t e = b + chunk + (i < rem ? 1 : 0);
    return std::pair<int64_t, int64_t>(b, e);
  };

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int64_t i = 1; i < num_chunks; ++i) {
      auto [b, e] = chunk_bounds(i);
      tasks_.emplace_back([&state, &fn, b, e] {
        try {
          fn(b, e);
        } catch (...) {
          std::lock_guard<std::mutex> g(state.mu);
          if (!state.first_error) state.first_error = std::current_exception();
        }
        std::lock_guard<std::mutex> g(state.mu);
        if (--state.pending == 0) state.done_cv.notify_one();
      });
    }
  }
  work_cv_.notify_all();

  auto [b0, e0] = chunk_bounds(0);
  bool was_in_task = tls_in_pool_task;
  tls_in_pool_task = true;
  try {
    fn(b0, e0);
  } catch (...) {
    std::lock_guard<std::mutex> g(state.mu);
    if (!state.first_error) state.first_error = std::current_exception();
  }
  tls_in_pool_task = was_in_task;

  {
    std::unique_lock<std::mutex> lock(state.mu);
    state.done_cv.wait(lock, [&] { return state.pending == 0; });
  }
  if (state.first_error) std::rethrow_exception(state.first_error);
}

}  // namespace rafiki
