#ifndef RAFIKI_COMMON_STATS_H_
#define RAFIKI_COMMON_STATS_H_

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace rafiki {

/// Online mean/variance/min/max accumulator (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x);
  void Merge(const RunningStat& other);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  std::string ToString() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width-bucket histogram over [lo, hi); out-of-range samples land in
/// the first/last bucket. Used for the Figure 8(b)/9(b) accuracy histograms.
/// Memory is O(buckets) regardless of sample count — individual samples are
/// not retained (they used to be, which grew without bound on the serving
/// path).
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);
  size_t BucketCount(size_t i) const { return counts_[i]; }
  size_t num_buckets() const { return counts_.size(); }
  /// Inclusive lower edge of bucket i.
  double BucketLo(size_t i) const;
  size_t total() const { return total_; }
  /// Count of samples in buckets at or above the one containing
  /// `threshold`. Quantized to bucket edges: the threshold is effectively
  /// floored to its bucket's lower edge, so samples in [BucketLo(i),
  /// threshold) of that bucket are included. Exact whenever `threshold`
  /// lies on a bucket edge. Thresholds below `lo` count everything;
  /// thresholds at or above `hi` count nothing (out-of-range samples were
  /// clamped into the edge buckets when added).
  size_t CountAtLeast(double threshold) const;

  std::string ToString() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

/// Log-bucketed latency histogram with quantile queries: geometric buckets
/// spanning [min_value, min_value * growth^buckets), each ~`growth`-1
/// relative resolution (default 10%, 1 us .. ~3000 s). Constant memory,
/// O(buckets) quantile; the serving runtime and the load generator use it
/// for p50/p95/p99. Quantiles return the geometric midpoint of the
/// selected bucket, so their relative error is bounded by the growth
/// factor. Not internally synchronized.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(double min_value = 1e-6, double growth = 1.1,
                            size_t buckets = 224);

  void Add(double x);
  void Merge(const LatencyHistogram& other);

  size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Value at quantile q in [0, 1]; 0 when empty. Q(0) and Q(1) return the
  /// exact observed min/max.
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }

  std::string ToString() const;

 private:
  size_t BucketIndex(double x) const;

  double min_value_;
  double log_growth_;
  std::vector<size_t> counts_;
  size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exponentially-weighted moving average, used for rate estimation in the
/// serving scheduler state.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}
  void Add(double x);
  double value() const { return value_; }
  bool empty() const { return !initialized_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace rafiki

#endif  // RAFIKI_COMMON_STATS_H_
