#ifndef RAFIKI_COMMON_STATS_H_
#define RAFIKI_COMMON_STATS_H_

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace rafiki {

/// Online mean/variance/min/max accumulator (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x);
  void Merge(const RunningStat& other);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  std::string ToString() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width-bucket histogram over [lo, hi); out-of-range samples land in
/// the first/last bucket. Used for the Figure 8(b)/9(b) accuracy histograms.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);
  size_t BucketCount(size_t i) const { return counts_[i]; }
  size_t num_buckets() const { return counts_.size(); }
  /// Inclusive lower edge of bucket i.
  double BucketLo(size_t i) const;
  size_t total() const { return total_; }
  /// Count of samples with value >= threshold.
  size_t CountAtLeast(double threshold) const;

  std::string ToString() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<size_t> counts_;
  std::vector<double> samples_;  // retained for CountAtLeast exactness
  size_t total_ = 0;
};

/// Exponentially-weighted moving average, used for rate estimation in the
/// serving scheduler state.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}
  void Add(double x);
  double value() const { return value_; }
  bool empty() const { return !initialized_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace rafiki

#endif  // RAFIKI_COMMON_STATS_H_
