#ifndef RAFIKI_COMMON_LOGGING_H_
#define RAFIKI_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace rafiki {

enum class LogSeverity { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Minimum severity that is emitted; defaults to kInfo. Thread-safe.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
/// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when a log statement is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace rafiki

#define RAFIKI_LOG_DEBUG ::rafiki::LogSeverity::kDebug
#define RAFIKI_LOG_INFO ::rafiki::LogSeverity::kInfo
#define RAFIKI_LOG_WARNING ::rafiki::LogSeverity::kWarning
#define RAFIKI_LOG_ERROR ::rafiki::LogSeverity::kError
#define RAFIKI_LOG_FATAL ::rafiki::LogSeverity::kFatal

/// RAFIKI_LOG(INFO) << "message"; Severity below the configured minimum is
/// evaluated but discarded (FATAL always aborts).
#define RAFIKI_LOG(severity)                                          \
  ::rafiki::internal::LogMessage(RAFIKI_LOG_##severity, __FILE__, __LINE__)

/// Fatal-on-false invariant check, usable in headers. Expands to a
/// statement; extra context can be streamed: RAFIKI_CHECK(x) << "detail".
/// The `while` executes at most once because ~LogMessage aborts on FATAL.
#define RAFIKI_CHECK(cond)                                          \
  while (!(cond))                                                   \
  ::rafiki::internal::LogMessage(RAFIKI_LOG_FATAL, __FILE__, __LINE__) \
      << "Check failed: " #cond " "

#define RAFIKI_CHECK_OP_(a, b, op)                                         \
  RAFIKI_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define RAFIKI_CHECK_EQ(a, b) RAFIKI_CHECK_OP_(a, b, ==)
#define RAFIKI_CHECK_NE(a, b) RAFIKI_CHECK_OP_(a, b, !=)
#define RAFIKI_CHECK_LT(a, b) RAFIKI_CHECK_OP_(a, b, <)
#define RAFIKI_CHECK_LE(a, b) RAFIKI_CHECK_OP_(a, b, <=)
#define RAFIKI_CHECK_GT(a, b) RAFIKI_CHECK_OP_(a, b, >)
#define RAFIKI_CHECK_GE(a, b) RAFIKI_CHECK_OP_(a, b, >=)

/// Fatal unless the Status expression is OK.
#define RAFIKI_CHECK_OK(expr)                                       \
  do {                                                              \
    ::rafiki::Status _rafiki_chk_status_ = (expr);                  \
    RAFIKI_CHECK(_rafiki_chk_status_.ok())                          \
        << _rafiki_chk_status_.ToString();                          \
  } while (0)

#endif  // RAFIKI_COMMON_LOGGING_H_
