#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace rafiki {

void RunningStat::Add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double n1 = static_cast<double>(count_);
  double n2 = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

std::string RunningStat::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "n=%zu mean=%.4f sd=%.4f min=%.4f max=%.4f",
                count_, mean(), stddev(), min(), max());
  return buf;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)) {
  RAFIKI_CHECK_GT(hi, lo);
  RAFIKI_CHECK_GT(buckets, 0u);
  counts_.assign(buckets, 0);
}

void Histogram::Add(double x) {
  double idx = (x - lo_) / width_;
  auto i = static_cast<long>(std::floor(idx));
  if (i < 0) i = 0;
  if (i >= static_cast<long>(counts_.size()))
    i = static_cast<long>(counts_.size()) - 1;
  ++counts_[static_cast<size_t>(i)];
  samples_.push_back(x);
  ++total_;
}

double Histogram::BucketLo(size_t i) const {
  return lo_ + static_cast<double>(i) * width_;
}

size_t Histogram::CountAtLeast(double threshold) const {
  return static_cast<size_t>(
      std::count_if(samples_.begin(), samples_.end(),
                    [&](double v) { return v >= threshold; }));
}

std::string Histogram::ToString() const {
  std::string out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "[%.2f,%.2f): %zu\n", BucketLo(i),
                  BucketLo(i) + width_, counts_[i]);
    out += buf;
  }
  return out;
}

void Ewma::Add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

}  // namespace rafiki
