#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace rafiki {

void RunningStat::Add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double n1 = static_cast<double>(count_);
  double n2 = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

std::string RunningStat::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "n=%zu mean=%.4f sd=%.4f min=%.4f max=%.4f",
                count_, mean(), stddev(), min(), max());
  return buf;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)) {
  RAFIKI_CHECK_GT(hi, lo);
  RAFIKI_CHECK_GT(buckets, 0u);
  counts_.assign(buckets, 0);
}

void Histogram::Add(double x) {
  double idx = (x - lo_) / width_;
  auto i = static_cast<long>(std::floor(idx));
  if (i < 0) i = 0;
  if (i >= static_cast<long>(counts_.size()))
    i = static_cast<long>(counts_.size()) - 1;
  ++counts_[static_cast<size_t>(i)];
  ++total_;
}

double Histogram::BucketLo(size_t i) const {
  return lo_ + static_cast<double>(i) * width_;
}

size_t Histogram::CountAtLeast(double threshold) const {
  auto first = static_cast<long>(std::floor((threshold - lo_) / width_));
  if (first <= 0) return total_;
  size_t begin = std::min(static_cast<size_t>(first), counts_.size());
  size_t sum = 0;
  for (size_t i = begin; i < counts_.size(); ++i) sum += counts_[i];
  return sum;
}

std::string Histogram::ToString() const {
  std::string out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "[%.2f,%.2f): %zu\n", BucketLo(i),
                  BucketLo(i) + width_, counts_[i]);
    out += buf;
  }
  return out;
}

LatencyHistogram::LatencyHistogram(double min_value, double growth,
                                   size_t buckets)
    : min_value_(min_value), log_growth_(std::log(growth)) {
  RAFIKI_CHECK_GT(min_value, 0.0);
  RAFIKI_CHECK_GT(growth, 1.0);
  RAFIKI_CHECK_GT(buckets, 0u);
  counts_.assign(buckets, 0);
}

size_t LatencyHistogram::BucketIndex(double x) const {
  if (x <= min_value_) return 0;
  auto i = static_cast<long>(std::floor(std::log(x / min_value_) /
                                        log_growth_));
  if (i < 0) i = 0;
  if (i >= static_cast<long>(counts_.size()))
    i = static_cast<long>(counts_.size()) - 1;
  return static_cast<size_t>(i);
}

void LatencyHistogram::Add(double x) {
  ++counts_[BucketIndex(x)];
  ++count_;
  sum_ += x;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  RAFIKI_CHECK_EQ(counts_.size(), other.counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  // Rank of the requested quantile among the sorted samples (1-based).
  auto rank = static_cast<size_t>(std::ceil(q * static_cast<double>(count_)));
  rank = std::max<size_t>(rank, 1);
  size_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      // Geometric midpoint of bucket i: [min*g^i, min*g^(i+1)).
      double value =
          min_value_ * std::exp(log_growth_ * (static_cast<double>(i) + 0.5));
      // Never report outside the observed range (edge buckets absorb
      // clamped samples).
      return std::clamp(value, min_, max_);
    }
  }
  return max_;
}

std::string LatencyHistogram::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.6f p50=%.6f p95=%.6f p99=%.6f max=%.6f",
                count_, mean(), P50(), P95(), P99(), max());
  return buf;
}

void Ewma::Add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

}  // namespace rafiki
