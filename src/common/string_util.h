#ifndef RAFIKI_COMMON_STRING_UTIL_H_
#define RAFIKI_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace rafiki {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits `s` on the single character `sep`; keeps empty fields.
std::vector<std::string> Split(const std::string& s, char sep);

/// True if `s` begins with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(const std::string& s, const std::string& suffix);

}  // namespace rafiki

#endif  // RAFIKI_COMMON_STRING_UTIL_H_
