#ifndef RAFIKI_COMMON_CLOCK_H_
#define RAFIKI_COMMON_CLOCK_H_

#include <memory>
#include <mutex>

namespace rafiki {

/// Time source abstraction. Serving experiments run against a discrete-event
/// `SimClock` (a 1500-simulated-second run completes in well under a minute
/// of real time), while the same policy code can run against `RealClock`.
/// Times are seconds as double, matching the paper's units (tau = 0.56s...).
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time, in seconds.
  virtual double Now() const = 0;
  /// Blocks (real clock) or advances virtual time (sim clock) by `seconds`.
  virtual void Sleep(double seconds) = 0;
};

/// Wall-clock time (monotonic).
class RealClock : public Clock {
 public:
  RealClock();
  double Now() const override;
  void Sleep(double seconds) override;

 private:
  double origin_;
};

/// Virtual clock advanced explicitly by the discrete-event simulator.
/// Thread-safe.
class SimClock : public Clock {
 public:
  explicit SimClock(double start = 0.0) : now_(start) {}

  double Now() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return now_;
  }

  void Sleep(double seconds) override { Advance(seconds); }

  /// Moves time forward; negative advances are a programming error.
  void Advance(double seconds);

  /// Jumps to an absolute time >= Now().
  void AdvanceTo(double t);

 private:
  mutable std::mutex mu_;
  double now_;
};

}  // namespace rafiki

#endif  // RAFIKI_COMMON_CLOCK_H_
