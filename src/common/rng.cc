#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace rafiki {

uint64_t Rng::Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double Rng::LogUniform(double lo, double hi) {
  RAFIKI_CHECK_GT(lo, 0.0);
  RAFIKI_CHECK_GT(hi, lo);
  double u = Uniform(std::log(lo), std::log(hi));
  return std::exp(u);
}

Rng Rng::Fork() { return Rng(Mix(engine_())); }

}  // namespace rafiki
