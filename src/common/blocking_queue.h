#ifndef RAFIKI_COMMON_BLOCKING_QUEUE_H_
#define RAFIKI_COMMON_BLOCKING_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace rafiki {

/// Multi-producer / multi-consumer FIFO queue, optionally bounded. This is
/// the transport underneath `cluster::MessageBus`, standing in for the RPC
/// channels between Rafiki masters and workers.
///
/// `Close()` wakes all blocked consumers; after close, `Pop()` drains the
/// remaining items and then returns nullopt.
template <typename T>
class BlockingQueue {
 public:
  /// `capacity` of 0 means unbounded. A bounded queue rejects `TryPush`
  /// beyond the cap; `Push` still always accepts (legacy unbounded path).
  explicit BlockingQueue(size_t capacity = 0) : capacity_(capacity) {}
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Enqueues an item. Pushing to a closed queue is a silent no-op (the
  /// receiver is gone; matches dropping an RPC to a dead node).
  void Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  /// Bounded enqueue: false iff the queue is at capacity (backpressure);
  /// pushing to a closed queue still "succeeds" by dropping, matching
  /// `Push`'s dead-receiver semantics.
  [[nodiscard]] bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return true;
      if (capacity_ != 0 && items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Blocks up to `timeout` for an item. nullopt on timeout or on
  /// closed-and-drained; callers that need to distinguish check closed().
  template <typename Rep, typename Period>
  std::optional<T> PopFor(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, timeout, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Marks the queue closed and wakes all waiters.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_ = 0;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace rafiki

#endif  // RAFIKI_COMMON_BLOCKING_QUEUE_H_
