#ifndef RAFIKI_TENSOR_TENSOR_H_
#define RAFIKI_TENSOR_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace rafiki {

/// Tensor shape: dimension sizes, all positive.
using Shape = std::vector<int64_t>;

/// Number of elements of a shape.
int64_t ShapeNumel(const Shape& shape);

/// "(3, 256, 256)"-style rendering.
std::string ShapeToString(const Shape& shape);

/// Dense row-major float32 n-dimensional array with value semantics.
///
/// This is the parameter/activation representation shared by the neural-net
/// layers (`rafiki::nn`), the parameter server (`rafiki::ps`) and the RL
/// models. It deliberately implements only what those consumers need:
/// creation/fill, elementwise arithmetic, GEMM, reductions, and row-wise
/// softmax/argmax.
class Tensor {
 public:
  /// Empty tensor (rank 0, no elements).
  Tensor() = default;
  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);
  /// Tensor initialized from a flat value list (must match the shape size).
  Tensor(Shape shape, std::vector<float> values);

  /// Factory helpers -------------------------------------------------------
  static Tensor Zeros(Shape shape);
  static Tensor Full(Shape shape, float value);
  /// I.i.d. Gaussian entries with the given stddev (weight init, Table 1
  /// group-3 hyper-parameter).
  static Tensor Randn(Shape shape, Rng& rng, float stddev = 1.0f);

  /// Shape/metadata ---------------------------------------------------------
  const Shape& shape() const { return shape_; }
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  int64_t dim(size_t i) const {
    RAFIKI_CHECK_LT(i, shape_.size());
    return shape_[i];
  }
  size_t rank() const { return shape_.size(); }
  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Element access ---------------------------------------------------------
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& at(int64_t i) {
    RAFIKI_CHECK_LT(i, numel());
    return data_[static_cast<size_t>(i)];
  }
  float at(int64_t i) const {
    RAFIKI_CHECK_LT(i, numel());
    return data_[static_cast<size_t>(i)];
  }
  /// 2-D accessor; tensor must be rank 2.
  float& at2(int64_t r, int64_t c);
  float at2(int64_t r, int64_t c) const;

  /// In-place mutators -------------------------------------------------------
  /// Re-shapes the tensor, reusing the existing heap block whenever the
  /// element count already matches (the steady-state case for workspace
  /// buffers — see nn::Workspace). Contents are unspecified after a size
  /// change; capacity never shrinks, so alternating between two sizes
  /// allocates at most once per size.
  void EnsureShape(const Shape& shape);
  /// Rank-specific fast paths: a `Shape` is itself a heap vector, so hot
  /// loops must not build one per call just to discover it already matches.
  void EnsureShape2(int64_t rows, int64_t cols) {
    if (shape_.size() == 2 && shape_[0] == rows && shape_[1] == cols) return;
    EnsureShape({rows, cols});
  }
  void EnsureShape4(int64_t n, int64_t c, int64_t h, int64_t w) {
    if (shape_.size() == 4 && shape_[0] == n && shape_[1] == c &&
        shape_[2] == h && shape_[3] == w) {
      return;
    }
    EnsureShape({n, c, h, w});
  }
  /// EnsureShape(other.shape()) + element copy. Allocation-free once this
  /// tensor has seen `other`'s size.
  void CopyFrom(const Tensor& other);
  void Fill(float value);
  void AddInPlace(const Tensor& other);           // this += other
  void SubInPlace(const Tensor& other);           // this -= other
  void MulInPlace(float scalar);                  // this *= s
  void Axpy(float alpha, const Tensor& x);        // this += alpha * x
  /// Reshape in place; the element count must be preserved. Takes a
  /// reference so reshaping to a persistent cached shape never allocates
  /// (vector copy-assignment reuses capacity).
  void Reshape(const Shape& shape);

  /// Pure operations ----------------------------------------------------------
  Tensor Add(const Tensor& other) const;
  Tensor Sub(const Tensor& other) const;
  Tensor Mul(float scalar) const;
  Tensor Hadamard(const Tensor& other) const;     // elementwise product
  /// Elementwise max(x, 0).
  Tensor Relu() const;

  /// Reductions ---------------------------------------------------------------
  float Sum() const;
  float Mean() const;
  float MaxAbs() const;
  /// Squared L2 norm.
  float SquaredNorm() const;

  /// Row-wise ops over a rank-2 tensor [rows, cols] ---------------------------
  /// Numerically-stable softmax of each row.
  Tensor SoftmaxRows() const;
  /// Index of the max entry of each row.
  std::vector<int64_t> ArgmaxRows() const;

  std::string DebugString(int64_t max_elems = 8) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

/// C = A x B for A[m,k], B[k,n]; shapes are checked.
Tensor MatMul(const Tensor& a, const Tensor& b);
/// C = A^T x B for A[k,m], B[k,n].
Tensor MatMulTransA(const Tensor& a, const Tensor& b);
/// C = A x B^T for A[m,k], B[n,k].
Tensor MatMulTransB(const Tensor& a, const Tensor& b);

}  // namespace rafiki

#endif  // RAFIKI_TENSOR_TENSOR_H_
