#include "tensor/kernels.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/thread_pool.h"

namespace rafiki::kernels {
namespace {

// Blocking parameters, chosen empirically for baseline x86-64 (SSE2) codegen
// on this repo's reference hardware: a short-and-wide 2 x 32 register tile
// auto-vectorizes to eight 128-bit accumulator strips per row and beat
// squarer tiles (4x8, 4x16, 6x8) by 1.3-6x in a sweep. The packed B
// micro-panel (kKc x kNr floats = 32 KB) stays L1/L2-hot across a row
// sweep; the packed A panel (<= kMc x kKc floats = 128 KB) stays in L2.
constexpr int64_t kMr = 2;
constexpr int64_t kNr = 32;
constexpr int64_t kKc = 256;
constexpr int64_t kMc = 128;

/// Packs an mr x kc block of A (general strides) into an interleaved panel:
/// buf[l * kMr + i] = A(row0 + i, col0 + l). Rows beyond mr are
/// zero-padded so the micro-kernel always runs the full kMr height.
void PackA(const float* a, int64_t row_stride, int64_t col_stride,
           int64_t row0, int64_t mr, int64_t col0, int64_t kc, float* buf) {
  for (int64_t l = 0; l < kc; ++l) {
    const float* src = a + (col0 + l) * col_stride + row0 * row_stride;
    float* dst = buf + l * kMr;
    int64_t i = 0;
    for (; i < mr; ++i) dst[i] = src[i * row_stride];
    for (; i < kMr; ++i) dst[i] = 0.0f;
  }
}

/// Packs a kc x nr block of B (general strides) into an interleaved panel:
/// buf[l * kNr + j] = B(row0 + l, col0 + j), zero-padded to the full kNr
/// width.
void PackB(const float* b, int64_t row_stride, int64_t col_stride,
           int64_t row0, int64_t kc, int64_t col0, int64_t nr, float* buf) {
  for (int64_t l = 0; l < kc; ++l) {
    const float* src = b + (row0 + l) * row_stride + col0 * col_stride;
    float* dst = buf + l * kNr;
    int64_t j = 0;
    for (; j < nr; ++j) dst[j] = src[j * col_stride];
    for (; j < kNr; ++j) dst[j] = 0.0f;
  }
}

/// kMr x kNr register-tiled micro-kernel: accumulates a_panel * b_panel over
/// kc depth steps and adds the tile into C. Both panels are contiguous and
/// interleaved, so every inner loop is unit-stride and auto-vectorizes.
void MicroKernel(const float* a_panel, const float* b_panel, int64_t kc,
                 float* c, int64_t ldc, int64_t mr, int64_t nr) {
  float acc[kMr][kNr] = {};
  for (int64_t l = 0; l < kc; ++l) {
    const float* bp = b_panel + l * kNr;
    const float* ap = a_panel + l * kMr;
    for (int64_t i = 0; i < kMr; ++i) {
      float av = ap[i];
      for (int64_t j = 0; j < kNr; ++j) acc[i][j] += av * bp[j];
    }
  }
  for (int64_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    for (int64_t j = 0; j < nr; ++j) crow[j] += acc[i][j];
  }
}

/// Computes C[rows row_begin..row_end) += A * B with general element strides
/// for A and B (which is how the transpose variants are expressed). Each C
/// element is accumulated in ascending-k order independent of the row
/// partition, so the result is bit-identical for any thread count.
void GemmChunk(const float* a, int64_t a_rs, int64_t a_cs, const float* b,
               int64_t b_rs, int64_t b_cs, float* c, int64_t row_begin,
               int64_t row_end, int64_t k, int64_t n) {
  // Reused packing scratch: grows once per thread to the blocking maximum
  // and is fully overwritten by PackA/PackB before each use, so small GEMMs
  // (one Linear step in a tuning trial) pay no allocation or zero-fill.
  thread_local std::vector<float> a_buf;
  thread_local std::vector<float> b_buf;
  int64_t kc_max = std::min(kKc, k);
  int64_t mc_max = std::min(kMc, row_end - row_begin);
  int64_t a_tiles = (mc_max + kMr - 1) / kMr;
  a_buf.resize(static_cast<size_t>(a_tiles * kMr * kc_max));
  b_buf.resize(static_cast<size_t>(kc_max * kNr));
  for (int64_t l0 = 0; l0 < k; l0 += kKc) {
    int64_t kc = std::min(kKc, k - l0);
    for (int64_t i0 = row_begin; i0 < row_end; i0 += kMc) {
      int64_t mc = std::min(kMc, row_end - i0);
      for (int64_t it = 0; it < mc; it += kMr) {
        int64_t mr = std::min(kMr, mc - it);
        PackA(a, a_rs, a_cs, i0 + it, mr, l0, kc,
              a_buf.data() + (it / kMr) * kMr * kc);
      }
      for (int64_t j0 = 0; j0 < n; j0 += kNr) {
        int64_t nr = std::min(kNr, n - j0);
        PackB(b, b_rs, b_cs, l0, kc, j0, nr, b_buf.data());
        for (int64_t it = 0; it < mc; it += kMr) {
          int64_t mr = std::min(kMr, mc - it);
          MicroKernel(a_buf.data() + (it / kMr) * kMr * kc, b_buf.data(), kc,
                      c + (i0 + it) * n + j0, n, mr, nr);
        }
      }
    }
  }
}

void GemmDriver(const float* a, int64_t a_rs, int64_t a_cs, const float* b,
                int64_t b_rs, int64_t b_cs, float* c, int64_t m, int64_t k,
                int64_t n, ThreadPool* pool) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  int64_t flops = 2 * m * k * n;
  if (pool == nullptr) pool = &ThreadPool::Global();
  if (flops < kGemmParallelMinFlops || pool->num_threads() <= 1) {
    GemmChunk(a, a_rs, a_cs, b, b_rs, b_cs, c, 0, m, k, n);
    return;
  }
  // Row-block parallelism: every thread owns a contiguous slice of C rows.
  // Grain keeps chunks at least one register tile tall.
  int64_t grain = std::max<int64_t>(
      kMr, (m + pool->num_threads() - 1) / pool->num_threads());
  pool->ParallelFor(0, m, grain,
                    [&](int64_t row_begin, int64_t row_end) {
                      GemmChunk(a, a_rs, a_cs, b, b_rs, b_cs, c, row_begin,
                                row_end, k, n);
                    });
}

}  // namespace

void GemmNN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n, ThreadPool* pool) {
  GemmDriver(a, /*a_rs=*/k, /*a_cs=*/1, b, /*b_rs=*/n, /*b_cs=*/1, c, m, k, n,
             pool);
}

void GemmTN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n, ThreadPool* pool) {
  // A is stored [k, m]; element (i, l) of the logical A^T is a[l * m + i].
  GemmDriver(a, /*a_rs=*/1, /*a_cs=*/m, b, /*b_rs=*/n, /*b_cs=*/1, c, m, k, n,
             pool);
}

void GemmNT(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n, ThreadPool* pool) {
  // B is stored [n, k]; element (l, j) of the logical B^T is b[j * k + l].
  GemmDriver(a, /*a_rs=*/k, /*a_cs=*/1, b, /*b_rs=*/1, /*b_cs=*/k, c, m, k, n,
             pool);
}

void Im2Col(const float* src, int64_t channels, int64_t height, int64_t width,
            int64_t kernel, int64_t pad, float* col) {
  int64_t out_h = height + 2 * pad - kernel + 1;
  int64_t out_w = width + 2 * pad - kernel + 1;
  float* out = col;
  for (int64_t c = 0; c < channels; ++c) {
    const float* plane = src + c * height * width;
    for (int64_t ky = 0; ky < kernel; ++ky) {
      for (int64_t kx = 0; kx < kernel; ++kx) {
        // Output x reads input x + kx - pad; the in-bounds run is
        // [x_lo, x_hi) and everything outside is zero padding.
        int64_t x_lo = std::max<int64_t>(0, pad - kx);
        int64_t x_hi = std::min(out_w, width + pad - kx);
        for (int64_t y = 0; y < out_h; ++y, out += out_w) {
          int64_t iy = y + ky - pad;
          if (iy < 0 || iy >= height || x_lo >= x_hi) {
            std::memset(out, 0, static_cast<size_t>(out_w) * sizeof(float));
            continue;
          }
          if (x_lo > 0)
            std::memset(out, 0, static_cast<size_t>(x_lo) * sizeof(float));
          std::memcpy(out + x_lo, plane + iy * width + (x_lo + kx - pad),
                      static_cast<size_t>(x_hi - x_lo) * sizeof(float));
          if (x_hi < out_w)
            std::memset(out + x_hi, 0,
                        static_cast<size_t>(out_w - x_hi) * sizeof(float));
        }
      }
    }
  }
}

void Col2Im(const float* col, int64_t channels, int64_t height, int64_t width,
            int64_t kernel, int64_t pad, float* dst) {
  int64_t out_h = height + 2 * pad - kernel + 1;
  int64_t out_w = width + 2 * pad - kernel + 1;
  const float* in = col;
  for (int64_t c = 0; c < channels; ++c) {
    float* plane = dst + c * height * width;
    for (int64_t ky = 0; ky < kernel; ++ky) {
      for (int64_t kx = 0; kx < kernel; ++kx) {
        int64_t x_lo = std::max<int64_t>(0, pad - kx);
        int64_t x_hi = std::min(out_w, width + pad - kx);
        for (int64_t y = 0; y < out_h; ++y, in += out_w) {
          int64_t iy = y + ky - pad;
          if (iy < 0 || iy >= height || x_lo >= x_hi) continue;
          float* row = plane + iy * width + (x_lo + kx - pad);
          const float* src_row = in + x_lo;
          int64_t len = x_hi - x_lo;
          for (int64_t x = 0; x < len; ++x) row[x] += src_row[x];
        }
      }
    }
  }
}

}  // namespace rafiki::kernels
