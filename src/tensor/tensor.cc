#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/string_util.h"
#include "tensor/kernels.h"

namespace rafiki {

int64_t ShapeNumel(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    RAFIKI_CHECK_GT(d, 0) << "shape dims must be positive";
    RAFIKI_CHECK(!__builtin_mul_overflow(n, d, &n))
        << "shape numel overflows int64: " << ShapeToString(shape);
  }
  return shape.empty() ? 0 : n;
}

std::string ShapeToString(const Shape& shape) {
  std::string out = "(";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(shape[i]);
  }
  out += ")";
  return out;
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<size_t>(ShapeNumel(shape_)), 0.0f);
}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  RAFIKI_CHECK_EQ(ShapeNumel(shape_), static_cast<int64_t>(data_.size()));
}

Tensor Tensor::Zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Randn(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data_[static_cast<size_t>(i)] =
        static_cast<float>(rng.Gaussian(0.0, stddev));
  }
  return t;
}

float& Tensor::at2(int64_t r, int64_t c) {
  RAFIKI_CHECK_EQ(rank(), 2u);
  RAFIKI_CHECK_LT(r, shape_[0]);
  RAFIKI_CHECK_LT(c, shape_[1]);
  return data_[static_cast<size_t>(r * shape_[1] + c)];
}

float Tensor::at2(int64_t r, int64_t c) const {
  return const_cast<Tensor*>(this)->at2(r, c);
}

void Tensor::EnsureShape(const Shape& shape) {
  if (shape_ == shape) return;
  // resize() keeps capacity on shrink and is a no-op when only the shape
  // (not the element count) changes, so warm buffers never reallocate.
  data_.resize(static_cast<size_t>(ShapeNumel(shape)));
  shape_ = shape;
}

void Tensor::CopyFrom(const Tensor& other) {
  EnsureShape(other.shape_);
  std::copy(other.data_.begin(), other.data_.end(), data_.begin());
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::AddInPlace(const Tensor& other) {
  RAFIKI_CHECK(SameShape(other))
      << ShapeToString(shape_) << " vs " << ShapeToString(other.shape_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::SubInPlace(const Tensor& other) {
  RAFIKI_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Tensor::MulInPlace(float scalar) {
  for (float& v : data_) v *= scalar;
}

void Tensor::Axpy(float alpha, const Tensor& x) {
  RAFIKI_CHECK(SameShape(x));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * x.data_[i];
}

void Tensor::Reshape(const Shape& shape) {
  RAFIKI_CHECK_EQ(ShapeNumel(shape), numel());
  shape_ = shape;
}

Tensor Tensor::Add(const Tensor& other) const {
  Tensor out = *this;
  out.AddInPlace(other);
  return out;
}

Tensor Tensor::Sub(const Tensor& other) const {
  Tensor out = *this;
  out.SubInPlace(other);
  return out;
}

Tensor Tensor::Mul(float scalar) const {
  Tensor out = *this;
  out.MulInPlace(scalar);
  return out;
}

Tensor Tensor::Hadamard(const Tensor& other) const {
  RAFIKI_CHECK(SameShape(other));
  Tensor out = *this;
  for (size_t i = 0; i < out.data_.size(); ++i)
    out.data_[i] *= other.data_[i];
  return out;
}

Tensor Tensor::Relu() const {
  Tensor out = *this;
  for (float& v : out.data_) v = v > 0.0f ? v : 0.0f;
  return out;
}

float Tensor::Sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return static_cast<float>(s);
}

float Tensor::Mean() const {
  return data_.empty() ? 0.0f
                       : Sum() / static_cast<float>(data_.size());
}

float Tensor::MaxAbs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

float Tensor::SquaredNorm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return static_cast<float>(s);
}

Tensor Tensor::SoftmaxRows() const {
  RAFIKI_CHECK_EQ(rank(), 2u);
  int64_t rows = shape_[0], cols = shape_[1];
  Tensor out(shape_);
  for (int64_t r = 0; r < rows; ++r) {
    const float* in = data() + r * cols;
    float* o = out.data() + r * cols;
    float mx = *std::max_element(in, in + cols);
    double denom = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      o[c] = std::exp(in[c] - mx);
      denom += o[c];
    }
    float inv = static_cast<float>(1.0 / denom);
    for (int64_t c = 0; c < cols; ++c) o[c] *= inv;
  }
  return out;
}

std::vector<int64_t> Tensor::ArgmaxRows() const {
  RAFIKI_CHECK_EQ(rank(), 2u);
  int64_t rows = shape_[0], cols = shape_[1];
  std::vector<int64_t> out(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    const float* in = data() + r * cols;
    out[static_cast<size_t>(r)] =
        std::max_element(in, in + cols) - in;
  }
  return out;
}

std::string Tensor::DebugString(int64_t max_elems) const {
  std::string out = "Tensor" + ShapeToString(shape_) + " [";
  int64_t n = std::min<int64_t>(numel(), max_elems);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%.4f", data_[static_cast<size_t>(i)]);
  }
  if (numel() > n) out += ", ...";
  out += "]";
  return out;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  RAFIKI_CHECK_EQ(a.rank(), 2u);
  RAFIKI_CHECK_EQ(b.rank(), 2u);
  RAFIKI_CHECK_EQ(a.dim(1), b.dim(0));
  int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  kernels::GemmNN(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  RAFIKI_CHECK_EQ(a.rank(), 2u);
  RAFIKI_CHECK_EQ(b.rank(), 2u);
  RAFIKI_CHECK_EQ(a.dim(0), b.dim(0));
  int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  kernels::GemmTN(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  RAFIKI_CHECK_EQ(a.rank(), 2u);
  RAFIKI_CHECK_EQ(b.rank(), 2u);
  RAFIKI_CHECK_EQ(a.dim(1), b.dim(1));
  int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c({m, n});
  kernels::GemmNT(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

}  // namespace rafiki
