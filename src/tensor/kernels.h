#ifndef RAFIKI_TENSOR_KERNELS_H_
#define RAFIKI_TENSOR_KERNELS_H_

#include <cstdint>

namespace rafiki {

class ThreadPool;

/// Raw single-precision compute kernels behind `Tensor`'s public GEMM API
/// and the `nn::Conv2D` im2col path. All matrices are dense row-major.
///
/// The GEMM kernels are cache-blocked and register-tiled: A and B panels are
/// packed into contiguous interleaved buffers sized for L1/L2, and an
/// MR x NR micro-kernel accumulates into registers with unit-stride inner
/// loops the compiler auto-vectorizes. Work is split across the thread pool
/// by row blocks of C; each output element is produced by exactly one chunk
/// with a fixed k-accumulation order, so results are bit-identical for any
/// thread count (including the serial small-problem fallback).
namespace kernels {

/// All three GEMM variants *accumulate*: C[m,n] += A·B. Pass a
/// zero-initialized C for a plain product; pass an existing gradient buffer
/// to fuse the accumulation (as `nn::Conv2D::Backward` does). `pool`
/// defaults to `ThreadPool::Global()`; problems below
/// `kGemmParallelMinFlops` run serially on the calling thread either way.

/// C[m,n] += A[m,k] * B[k,n].
void GemmNN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n, ThreadPool* pool = nullptr);

/// C[m,n] += A[k,m]^T * B[k,n].
void GemmTN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n, ThreadPool* pool = nullptr);

/// C[m,n] += A[m,k] * B[n,k]^T.
void GemmNT(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n, ThreadPool* pool = nullptr);

/// Multiplications below which GEMM stays on the calling thread. Exposed so
/// benchmarks/tests can reason about the serial fallback.
constexpr int64_t kGemmParallelMinFlops = 1 << 20;

/// Unpacks one NCHW sample into an im2col matrix for a stride-1 square
/// convolution with symmetric zero padding.
///
/// `src` points at sample data [channels, height, width]; `col` receives
/// [channels * kernel * kernel, out_h * out_w] row-major where out_h =
/// height + 2*pad - kernel + 1 (likewise out_w), and row (c*kernel + ky) *
/// kernel + kx holds the input pixel each output position reads at that tap.
void Im2Col(const float* src, int64_t channels, int64_t height, int64_t width,
            int64_t kernel, int64_t pad, float* col);

/// Adjoint of `Im2Col`: accumulates (`+=`) the column matrix back into the
/// NCHW sample gradient. `dst` must be zeroed (or hold a partial gradient)
/// on entry.
void Col2Im(const float* col, int64_t channels, int64_t height, int64_t width,
            int64_t kernel, int64_t pad, float* dst);

}  // namespace kernels
}  // namespace rafiki

#endif  // RAFIKI_TENSOR_KERNELS_H_
