#ifndef RAFIKI_RAFIKI_RAFIKI_H_
#define RAFIKI_RAFIKI_RAFIKI_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/message_bus.h"
#include "cluster/node_manager.h"
#include "common/result.h"
#include "data/dataset.h"
#include "model/registry.h"
#include "nn/net.h"
#include "ps/parameter_server.h"
#include "serving/inference_runtime.h"
#include "storage/blob_store.h"
#include "tuning/bayes_opt.h"
#include "tuning/study.h"

namespace rafiki::api {

/// Search algorithm used by a training job's TrialAdvisor.
enum class AdvisorKind { kRandomSearch, kGridSearch, kBayesOpt };

/// Configuration of one training job — the facade equivalent of the
/// Figure 2 train.py snippet (task, dataset, input/output shapes, and the
/// HyperConf tuning options).
struct TrainConfig {
  std::string task = "ImageClassification";
  std::string dataset;        // handle returned by ImportDataset
  Shape input_shape;          // e.g. {32} feature dim or {3, 32, 32}
  Shape output_shape;         // e.g. {10} classes
  tuning::StudyConfig hyper;  // HyperConf
  AdvisorKind advisor = AdvisorKind::kRandomSearch;
  int num_workers = 2;
  uint64_t seed = 1;
};

/// A deployable trained model: the PS scope holding its parameters plus its
/// validation accuracy (what `rafiki.get_models(job_id)` returns).
struct ModelHandle {
  std::string scope;       // parameter-server scope
  std::string model_name;  // architecture identifier
  double accuracy = 0.0;
};

/// Status of a submitted job.
struct JobInfo {
  std::string job_id;
  bool done = false;
  double best_performance = 0.0;
  tuning::Trial best_trial;
  int64_t trials_finished = 0;
};

/// Tuning-plane gauges across every training job (GET /cluster/metrics):
/// worker-container liveness and restarts, the summed trial ledger, and
/// the message-bus counters.
struct ClusterMetrics {
  int64_t workers_alive = 0;    // worker containers currently running
  int64_t workers_total = 0;    // worker containers ever started
  int64_t worker_restarts = 0;  // summed container restart counts
  int64_t trials_proposed = 0;
  int64_t trials_completed = 0;
  int64_t trials_lost = 0;
  int64_t trials_active = 0;  // trials in flight right now
  cluster::BusStats bus;
};

/// One inference answer.
struct Prediction {
  int64_t label = -1;
  /// Labels voted by each deployed model (ensemble transparency).
  std::vector<int64_t> votes;
};

/// The Rafiki service facade (Figure 2): dataset import into distributed
/// storage, training jobs with distributed hyper-parameter tuning, instant
/// deployment of the trained parameters from the parameter server, and
/// query serving with ensemble modeling.
///
/// One instance owns the shared substrate of §3: the HDFS stand-in
/// (BlobStore), the parameter server, the message bus and the node manager
/// — training and inference deliberately share them (the paper's "unified
/// system architecture ... avoids technical debts").
class Rafiki {
 public:
  Rafiki();
  ~Rafiki();

  /// Datasets ---------------------------------------------------------------

  /// Uploads a dataset into storage (rafiki.import_images). Returns the
  /// dataset handle.
  Result<std::string> ImportDataset(const std::string& name,
                                    const data::Dataset& dataset);
  /// Fetches a dataset back (rafiki.download).
  Result<data::Dataset> DownloadDataset(const std::string& name);

  /// Training ----------------------------------------------------------------

  /// Submits a training job; returns the job id immediately, training runs
  /// on background containers (Figure 2: job.run() -> job_id).
  Result<std::string> Train(const TrainConfig& config);

  /// Polls job progress.
  Result<JobInfo> GetJobInfo(const std::string& job_id);

  /// Blocks until the job finishes; returns the final info.
  Result<JobInfo> WaitJob(const std::string& job_id);

  /// Deployable models of a finished training job, best first
  /// (rafiki.get_models).
  Result<std::vector<ModelHandle>> GetModels(const std::string& job_id);

  /// Inference ----------------------------------------------------------------

  /// Deploys an ensemble of trained models for serving; returns the
  /// inference job id (rafiki.Inference(models).run()). Parameters are
  /// fetched from the PS — instant deployment after training (§3). The
  /// deployed job is served by the batched inference runtime with default
  /// RuntimeOptions; the overload takes explicit serving options (SLO tau,
  /// candidate batch sizes, queue capacity).
  Result<std::string> Deploy(const std::vector<ModelHandle>& models);
  Result<std::string> Deploy(const std::vector<ModelHandle>& models,
                             const serving::RuntimeOptions& options);

  /// Serves one request (rafiki.query): the request is enqueued into the
  /// job's bounded queue, batched by the greedy policy (Algorithm 3)
  /// against the latency SLO, and answered with the ensemble majority vote
  /// and the paper's best-accuracy tie-break.
  Result<Prediction> Query(const std::string& inference_job_id,
                           const Tensor& features);

  /// Continuation-based variant of Query: `done` runs on the job's
  /// dispatcher thread when the batch containing the request completes
  /// (or when it expires / the job is undeployed). A non-OK return means
  /// the request was not enqueued and `done` will never run. `done` must
  /// not call Undeploy or destroy this Rafiki.
  Status QueryAsync(const std::string& inference_job_id, Tensor features,
                    std::function<void(Result<Prediction>)> done);

  /// Batch variant used by the SQL UDF; rows go through the same batched
  /// runtime path with backpressure.
  Result<std::vector<Prediction>> QueryBatch(
      const std::string& inference_job_id, const Tensor& features);

  /// Tears down a deployed inference job; in-flight queued requests fail
  /// with kUnavailable.
  Status Undeploy(const std::string& inference_job_id);

  /// Live serving counters of a deployed job (arrived / processed /
  /// overdue / dropped / batch stats / mean latency).
  Result<serving::InferenceJobMetrics> InferenceMetrics(
      const std::string& inference_job_id);

  /// Live tuning-plane gauges: worker containers alive / restarted, the
  /// trial ledger summed over all training jobs, and bus counters.
  ClusterMetrics GetClusterMetrics();

  /// Shared substrate (exposed for tests and advanced use).
  ps::ParameterServer& parameter_server() { return ps_; }
  storage::BlobStore& blob_store() { return store_; }
  const model::TaskRegistry& registry() const { return registry_; }
  serving::InferenceRuntime& inference_runtime() { return runtime_; }

 private:
  struct TrainJob {
    TrainConfig config;
    std::unique_ptr<tuning::HyperSpace> space;
    std::unique_ptr<tuning::TrialAdvisor> advisor;
    std::unique_ptr<trainer::TrainerFactory> factory;
    std::unique_ptr<tuning::StudyMaster> master;
    std::vector<std::unique_ptr<tuning::StudyWorker>> workers;
    data::Dataset train_split;
    data::Dataset val_split;
    bool done = false;
  };

  Result<TrainJob*> FindTrainJob(const std::string& job_id);

  std::mutex mu_;  // guards train_jobs_ and next_job_
  storage::BlobStore store_;
  ps::ParameterServer ps_;
  cluster::MessageBus bus_;
  cluster::NodeManager manager_;
  model::TaskRegistry registry_;
  /// Thread-safe serving tier: owns deployed models behind shared_ptr
  /// snapshots, so Query/Undeploy races are safe by construction.
  serving::InferenceRuntime runtime_;
  std::map<std::string, std::unique_ptr<TrainJob>> train_jobs_;
  int64_t next_job_ = 0;
};

/// Rebuilds an inference-only MLP from a checkpoint's parameter shapes
/// (fc0/weight [in, h0], fc1/weight [h0, h1], ...). Exposed for tests.
Result<nn::Net> BuildMlpFromCheckpoint(const ps::ModelCheckpoint& ckpt);

}  // namespace rafiki::api

#endif  // RAFIKI_RAFIKI_RAFIKI_H_
