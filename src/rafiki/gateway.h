#ifndef RAFIKI_RAFIKI_GATEWAY_H_
#define RAFIKI_RAFIKI_GATEWAY_H_

#include <functional>
#include <map>
#include <string>

#include "rafiki/rafiki.h"

namespace rafiki::api {

/// A parsed gateway request: "METHOD /path key=value&key=value\nBODY".
struct GatewayRequest {
  std::string method;  // GET / POST
  std::string path;    // e.g. /train, /jobs/job0, /query
  std::map<std::string, std::string> params;
  std::string body;    // e.g. comma-separated feature floats for /query
};

/// A gateway response: status code + compact key=value payload.
struct GatewayResponse {
  int status = 200;
  std::string body;

  std::string ToString() const;
};

/// The service front door of Figure 2 / Figure 18: application users
/// (mobile apps, SQL UDFs — `curl -F image.jpg http://rafiki/api`) talk to
/// Rafiki through a small request/response protocol rather than linking
/// the library. This gateway implements that surface as a deterministic
/// text protocol on top of the facade; the real socket front-end
/// (net::HttpServer via MakeGatewayHttpHandler) adapts HTTP requests onto
/// `Dispatch()` 1:1.
///
/// Endpoints:
///   POST /train    dataset=<name>&trials=N&workers=N&collaborative=0|1&
///                  advisor=random|grid|bayes   -> job_id=...
///   GET  /jobs/<job_id>                        -> done=0|1&best=...&trials=N
///   POST /deploy   job=<job_id>                -> job_id=infer...
///   POST /query    job=<infer_id>  body: "v1,v2,..." -> label=K&votes=...
///   POST /jobs/<infer_id>/query    body: "v1,v2,..." -> label=K&votes=...
///   GET  /jobs/<infer_id>/metrics              -> arrived=..&processed=..&
///                  overdue=..&dropped=..&expired=..&batches=..&
///                  max_batch=..&mean_batch=..&mean_latency=..&queue=..&
///                  p50=..&p95=..&p99=..   (live serving counters +
///                  latency percentiles)
///   POST /undeploy job=<infer_id>              -> ok
///   GET  /cluster/metrics                      -> workers_alive=..&
///                  workers_total=..&worker_restarts=..&trials_proposed=..&
///                  trials_completed=..&trials_lost=..&trials_active=..&
///                  bus_endpoints=..&bus_queued=..&bus_sent=..&
///                  bus_delivered=..&bus_send_errors=..&bus_frames_sent=..&
///                  bus_frames_received=..&bus_reconnects=..  (tuning-plane
///                  gauges across every training job)
///
/// Error mapping: unknown path -> 404; known path with the wrong method ->
/// 405; oversized request line or body -> 413; queue full -> 503; queue
/// deadline exceeded -> 504.
class Gateway {
 public:
  /// Request-line and body size caps enforced by Handle() (413 beyond).
  static constexpr size_t kMaxRequestLine = 8 * 1024;
  static constexpr size_t kMaxBodyBytes = 1 << 20;

  explicit Gateway(Rafiki* rafiki);

  /// Parses and serves one request string; never throws, all errors map to
  /// 4xx/5xx responses.
  GatewayResponse Handle(const std::string& raw_request);

  /// Routes an already-parsed request. Thread-safe (the gateway is
  /// stateless; the facade synchronizes internally) — the HTTP front-end
  /// calls this concurrently from its handler pool.
  GatewayResponse Dispatch(const GatewayRequest& request);

  /// Continuation invoked exactly once with the response. Synchronous
  /// routes (and early errors) run it on the calling thread before
  /// DispatchAsync returns; async query completions run it later on the
  /// inference job's dispatcher thread — it must be cheap and thread-safe.
  using AsyncCompletion = std::function<void(GatewayResponse)>;

  /// Splits the data plane from the control plane: query routes
  /// (POST /query, POST /jobs/<id>/query) go through the facade's
  /// continuation chain so the calling thread never blocks while the
  /// request waits in a batch queue; every other route (train / deploy /
  /// status / metrics / undeploy) is control plane and is answered
  /// synchronously via Dispatch before DispatchAsync returns.
  void DispatchAsync(const GatewayRequest& request, AsyncCompletion done);

  /// Request parser (exposed for tests). Parameter keys and values are
  /// percent-decoded ('+' in a value decodes to space), so real HTTP query
  /// strings round-trip through the text protocol unchanged.
  static Result<GatewayRequest> Parse(const std::string& raw_request);

 private:
  GatewayResponse Train(const GatewayRequest& request);
  GatewayResponse JobStatus(const std::string& job_id);
  GatewayResponse InferMetrics(const std::string& job_id);
  GatewayResponse ClusterMetricsRoute();
  GatewayResponse Deploy(const GatewayRequest& request);
  GatewayResponse Query(const GatewayRequest& request);
  GatewayResponse QueryJob(const std::string& job_id,
                           const GatewayRequest& request);
  void QueryAsync(const std::string& job_id, const GatewayRequest& request,
                  AsyncCompletion done);
  GatewayResponse Undeploy(const GatewayRequest& request);

  Rafiki* rafiki_;
};

}  // namespace rafiki::api

#endif  // RAFIKI_RAFIKI_GATEWAY_H_
