#ifndef RAFIKI_RAFIKI_HTTP_GATEWAY_H_
#define RAFIKI_RAFIKI_HTTP_GATEWAY_H_

#include "net/http.h"
#include "net/http_server.h"
#include "rafiki/gateway.h"

namespace rafiki::api {

/// Maps one parsed HTTP request onto the gateway's request form:
/// percent-decoded path, query parameters decoded key/value ('+' in values
/// becomes space), body passed through verbatim.
Result<GatewayRequest> FromHttp(const net::HttpRequest& http);

/// Maps a gateway response onto HTTP (status + key=value text body).
net::HttpResponse ToHttp(const GatewayResponse& response);

/// A thread-safe net::HttpServer handler that serves `gateway` — the glue
/// between the epoll front door and the routing layer. `gateway` must
/// outlive the server.
net::HttpServer::Handler MakeGatewayHttpHandler(Gateway* gateway);

}  // namespace rafiki::api

#endif  // RAFIKI_RAFIKI_HTTP_GATEWAY_H_
