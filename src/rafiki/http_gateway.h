#ifndef RAFIKI_RAFIKI_HTTP_GATEWAY_H_
#define RAFIKI_RAFIKI_HTTP_GATEWAY_H_

#include <functional>

#include "net/http.h"
#include "net/http_server.h"
#include "rafiki/gateway.h"

namespace rafiki::api {

/// Optional front-door gauge source for the metrics route. When provided,
/// successful `GET /jobs/<id>/metrics` responses are extended with
/// `inflight=&inflight_peak=&handler_busy=&async_pending=` so handler-pool
/// occupancy and parked async responses are observable independently of
/// the job-level queue. Must be callable from any handler thread.
using ServerStatsFn = std::function<net::HttpServerStats()>;

/// Maps one parsed HTTP request onto the gateway's request form:
/// percent-decoded path, query parameters decoded key/value ('+' in values
/// becomes space), body passed through verbatim.
Result<GatewayRequest> FromHttp(const net::HttpRequest& http);

/// Maps a gateway response onto HTTP (status + key=value text body).
net::HttpResponse ToHttp(const GatewayResponse& response);

/// A thread-safe net::HttpServer handler that serves `gateway` — the glue
/// between the epoll front door and the routing layer. `gateway` must
/// outlive the server. Every route is answered synchronously: a query
/// pins its handler thread until the batch completes.
net::HttpServer::Handler MakeGatewayHttpHandler(
    Gateway* gateway, ServerStatsFn server_stats = nullptr);

/// Async variant: query routes hand their ResponseWriter to the inference
/// runtime's continuation chain and release the handler thread
/// immediately, so in-flight queries are bounded by the server's
/// max_inflight rather than its handler-pool size. Control-plane routes
/// still complete inline. `gateway` must outlive the server.
net::HttpServer::AsyncHandler MakeGatewayAsyncHttpHandler(
    Gateway* gateway, ServerStatsFn server_stats = nullptr);

}  // namespace rafiki::api

#endif  // RAFIKI_RAFIKI_HTTP_GATEWAY_H_
