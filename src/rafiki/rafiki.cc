#include "rafiki/rafiki.h"

#include <algorithm>
#include <map>
#include <thread>

#include "common/logging.h"
#include "common/string_util.h"
#include "storage/serialize.h"
#include "trainer/real_trainer.h"

namespace rafiki::api {
namespace {

/// Default hyper-parameter space for the built-in MLP trainer: the paper's
/// group-3 optimization knobs (Table 1, §7.1.1) plus one architecture knob.
std::unique_ptr<tuning::HyperSpace> MakeDefaultSpace() {
  auto space = std::make_unique<tuning::HyperSpace>();
  RAFIKI_CHECK_OK(space->AddRangeKnob("learning_rate",
                                      tuning::KnobDtype::kFloat, 1e-3, 0.5,
                                      /*log_scale=*/true));
  RAFIKI_CHECK_OK(
      space->AddRangeKnob("momentum", tuning::KnobDtype::kFloat, 0.0, 0.99));
  RAFIKI_CHECK_OK(space->AddRangeKnob("weight_decay",
                                      tuning::KnobDtype::kFloat, 1e-6, 1e-2,
                                      /*log_scale=*/true));
  RAFIKI_CHECK_OK(
      space->AddRangeKnob("dropout", tuning::KnobDtype::kFloat, 0.0, 0.5));
  RAFIKI_CHECK_OK(space->AddRangeKnob("init_std", tuning::KnobDtype::kFloat,
                                      1e-2, 0.5, /*log_scale=*/true));
  RAFIKI_CHECK_OK(
      space->AddNumericCategoricalKnob("hidden_units", {32, 64, 128}));
  return space;
}

}  // namespace

Result<nn::Net> BuildMlpFromCheckpoint(const ps::ModelCheckpoint& ckpt) {
  // Collect fcN/weight + fcN/bias pairs in layer order.
  std::map<int, const Tensor*> weights;
  std::map<int, const Tensor*> biases;
  for (const auto& [name, tensor] : ckpt.params) {
    int layer = -1;
    char kind[16] = {0};
    if (std::sscanf(name.c_str(), "fc%d/%15s", &layer, kind) == 2) {
      if (std::string(kind) == "weight") weights[layer] = &tensor;
      if (std::string(kind) == "bias") biases[layer] = &tensor;
    }
  }
  if (weights.empty()) {
    return Status::InvalidArgument("checkpoint has no fc layers");
  }
  nn::Net net;
  Rng rng(0);
  int count = 0;
  int total = static_cast<int>(weights.size());
  for (const auto& [layer, weight] : weights) {
    auto bias_it = biases.find(layer);
    if (bias_it == biases.end()) {
      return Status::InvalidArgument(
          StrFormat("checkpoint missing bias for fc%d", layer));
    }
    if (weight->rank() != 2) {
      return Status::InvalidArgument("weight tensor must be rank 2");
    }
    auto linear = std::make_unique<nn::Linear>(
        weight->dim(0), weight->dim(1), /*init_std=*/0.0f, rng,
        StrFormat("fc%d", layer));
    std::vector<nn::ParamTensor*> params = linear->Params();
    params[0]->value = *weight;
    params[1]->value = *bias_it->second;
    net.Add(std::move(linear));
    if (++count < total) {
      net.Add(std::make_unique<nn::Relu>(StrFormat("relu%d", layer)));
    }
  }
  return net;
}

Rafiki::Rafiki() : registry_(model::TaskRegistry::BuiltIn()) {}

Rafiki::~Rafiki() { manager_.Shutdown(); }

Result<std::string> Rafiki::ImportDataset(const std::string& name,
                                          const data::Dataset& dataset) {
  if (name.empty()) return Status::InvalidArgument("empty dataset name");
  if (dataset.size() == 0) return Status::InvalidArgument("empty dataset");
  std::string key = "datasets/" + name;
  RAFIKI_RETURN_IF_ERROR(store_.Put(key, storage::SerializeDataset(dataset)));
  return key;
}

Result<data::Dataset> Rafiki::DownloadDataset(const std::string& name) {
  std::string key = StartsWith(name, "datasets/") ? name : "datasets/" + name;
  RAFIKI_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, store_.Get(key));
  return storage::DeserializeDataset(bytes);
}

Result<std::string> Rafiki::Train(const TrainConfig& config) {
  RAFIKI_ASSIGN_OR_RETURN(data::Dataset dataset,
                          DownloadDataset(config.dataset));
  if (!config.output_shape.empty() &&
      config.output_shape[0] != dataset.num_classes) {
    return Status::InvalidArgument(
        StrFormat("output shape %lld != dataset classes %lld",
                  static_cast<long long>(config.output_shape[0]),
                  static_cast<long long>(dataset.num_classes)));
  }

  std::lock_guard<std::mutex> lock(mu_);
  std::string job_id = StrFormat("job%lld",
                                 static_cast<long long>(next_job_++));
  auto job = std::make_unique<TrainJob>();
  job->config = config;
  job->space = MakeDefaultSpace();

  Rng rng(config.seed);
  data::DataSplits splits = data::SplitDataset(dataset, 0.7, 0.15, rng);
  job->train_split = std::move(splits.train);
  job->val_split = std::move(splits.validation);

  switch (config.advisor) {
    case AdvisorKind::kRandomSearch:
      job->advisor = std::make_unique<tuning::RandomSearchAdvisor>(
          job->space.get(), config.hyper.max_trials, config.seed);
      break;
    case AdvisorKind::kGridSearch:
      job->advisor = std::make_unique<tuning::GridSearchAdvisor>(
          job->space.get(), /*points_per_knob=*/2);
      break;
    case AdvisorKind::kBayesOpt: {
      tuning::BayesOptOptions options;
      options.max_trials = config.hyper.max_trials;
      options.seed = config.seed;
      job->advisor = std::make_unique<tuning::BayesOptAdvisor>(
          job->space.get(), options);
      break;
    }
  }

  trainer::RealTrainerOptions trainer_options;
  trainer_options.seed = config.seed;
  job->factory = std::make_unique<trainer::RealTrainerFactory>(
      &job->train_split, &job->val_split, trainer_options);

  tuning::StudyConfig hyper = config.hyper;
  hyper.num_workers = config.num_workers;
  job->master = std::make_unique<tuning::StudyMaster>(
      job_id, hyper, job->advisor.get(), &bus_, &store_);
  tuning::StudyMaster* master = job->master.get();
  RAFIKI_RETURN_IF_ERROR(manager_.StartContainer(
      job_id + "/master",
      [master](cluster::CancelToken& token) { master->Run(token); }));

  Rng seeds(config.seed + 1);
  for (int i = 0; i < config.num_workers; ++i) {
    job->workers.push_back(std::make_unique<tuning::StudyWorker>(
        job_id, StrFormat("w%d", i), hyper, job->factory.get(), &bus_, &ps_,
        seeds.Fork().Next64()));
    tuning::StudyWorker* worker = job->workers.back().get();
    RAFIKI_RETURN_IF_ERROR(manager_.StartContainer(
        StrFormat("%s/worker/%d", job_id.c_str(), i),
        [worker](cluster::CancelToken& token) { worker->Run(token); }));
  }

  train_jobs_[job_id] = std::move(job);
  return job_id;
}

Result<Rafiki::TrainJob*> Rafiki::FindTrainJob(const std::string& job_id) {
  auto it = train_jobs_.find(job_id);
  if (it == train_jobs_.end()) {
    return Status::NotFound(StrFormat("no job '%s'", job_id.c_str()));
  }
  return it->second.get();
}

Result<JobInfo> Rafiki::GetJobInfo(const std::string& job_id) {
  std::lock_guard<std::mutex> lock(mu_);
  RAFIKI_ASSIGN_OR_RETURN(TrainJob * job, FindTrainJob(job_id));
  JobInfo info;
  info.job_id = job_id;
  info.done = job->done || !manager_.IsRunning(job_id + "/master");
  if (info.done) {
    job->done = true;
    const tuning::StudyStats& stats = job->master->stats();
    info.best_performance = stats.best_performance;
    info.best_trial = stats.best_trial;
    info.trials_finished = static_cast<int64_t>(stats.trials.size());
  }
  return info;
}

Result<JobInfo> Rafiki::WaitJob(const std::string& job_id) {
  while (true) {
    RAFIKI_ASSIGN_OR_RETURN(JobInfo info, GetJobInfo(job_id));
    if (info.done) return info;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

Result<std::vector<ModelHandle>> Rafiki::GetModels(
    const std::string& job_id) {
  RAFIKI_ASSIGN_OR_RETURN(JobInfo info, GetJobInfo(job_id));
  if (!info.done) {
    return Status::FailedPrecondition(
        StrFormat("job '%s' still training", job_id.c_str()));
  }
  std::string scope = "study/" + job_id + "/best";
  RAFIKI_ASSIGN_OR_RETURN(ps::ModelCheckpoint ckpt, ps_.GetModel(scope));
  ModelHandle handle;
  handle.scope = scope;
  handle.model_name = "mlp";
  handle.accuracy = ckpt.meta.accuracy;
  return std::vector<ModelHandle>{handle};
}

Result<std::string> Rafiki::Deploy(const std::vector<ModelHandle>& models) {
  return Deploy(models, serving::RuntimeOptions{});
}

Result<std::string> Rafiki::Deploy(const std::vector<ModelHandle>& models,
                                   const serving::RuntimeOptions& options) {
  if (models.empty()) return Status::InvalidArgument("no models to deploy");
  std::vector<serving::ServableModel> servables;
  servables.reserve(models.size());
  for (const ModelHandle& handle : models) {
    // Instant deployment: parameters come straight from the PS (§3).
    RAFIKI_ASSIGN_OR_RETURN(ps::ModelCheckpoint ckpt,
                            ps_.GetModel(handle.scope));
    RAFIKI_ASSIGN_OR_RETURN(nn::Net net, BuildMlpFromCheckpoint(ckpt));
    serving::ServableModel servable;
    servable.net = std::move(net);
    servable.accuracy =
        handle.accuracy > 0.0 ? handle.accuracy : ckpt.meta.accuracy;
    servable.name = handle.model_name;
    servables.push_back(std::move(servable));
  }
  std::string job_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_id = StrFormat("infer%lld", static_cast<long long>(next_job_++));
  }
  return runtime_.Deploy(job_id, std::move(servables), options);
}

Result<std::vector<Prediction>> Rafiki::QueryBatch(
    const std::string& inference_job_id, const Tensor& features) {
  RAFIKI_ASSIGN_OR_RETURN(std::vector<serving::EnsemblePrediction> answers,
                          runtime_.QueryBatch(inference_job_id, features));
  std::vector<Prediction> out;
  out.reserve(answers.size());
  for (serving::EnsemblePrediction& a : answers) {
    out.push_back(Prediction{a.label, std::move(a.votes)});
  }
  return out;
}

Result<Prediction> Rafiki::Query(const std::string& inference_job_id,
                                 const Tensor& features) {
  RAFIKI_ASSIGN_OR_RETURN(auto future,
                          runtime_.Submit(inference_job_id, features));
  RAFIKI_ASSIGN_OR_RETURN(serving::EnsemblePrediction answer, future.get());
  return Prediction{answer.label, std::move(answer.votes)};
}

Status Rafiki::QueryAsync(const std::string& inference_job_id,
                          Tensor features,
                          std::function<void(Result<Prediction>)> done) {
  if (done == nullptr) {
    return Status::InvalidArgument("QueryAsync requires a callback");
  }
  return runtime_.SubmitAsync(
      inference_job_id, std::move(features),
      [done = std::move(done)](Result<serving::EnsemblePrediction> answer) {
        if (!answer.ok()) {
          done(answer.status());
          return;
        }
        done(Prediction{answer->label, std::move(answer->votes)});
      });
}

Status Rafiki::Undeploy(const std::string& inference_job_id) {
  return runtime_.Undeploy(inference_job_id);
}

Result<serving::InferenceJobMetrics> Rafiki::InferenceMetrics(
    const std::string& inference_job_id) {
  return runtime_.Metrics(inference_job_id);
}

ClusterMetrics Rafiki::GetClusterMetrics() {
  ClusterMetrics out;
  for (const std::string& name : manager_.ListContainers()) {
    if (name.find("/worker/") == std::string::npos) continue;
    ++out.workers_total;
    if (manager_.IsRunning(name)) ++out.workers_alive;
    out.worker_restarts += manager_.RestartCount(name);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, job] : train_jobs_) {
      tuning::TrialLedger ledger = job->master->ledger();
      out.trials_proposed += ledger.proposed;
      out.trials_completed += ledger.completed;
      out.trials_lost += ledger.lost;
      out.trials_active += ledger.active;
    }
  }
  out.bus = bus_.Stats();
  return out;
}

}  // namespace rafiki::api
