#include "rafiki/gateway.h"

#include <cerrno>
#include <cstdlib>

#include "common/string_util.h"
#include "net/http.h"
#include "serving/rl_scheduler.h"

namespace rafiki::api {
namespace {

GatewayResponse Error(int status, const std::string& message) {
  return GatewayResponse{status, "error=" + message};
}

GatewayResponse FromStatus(const Status& status) {
  int code = 500;
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      code = 400;
      break;
    case StatusCode::kNotFound:
      code = 404;
      break;
    case StatusCode::kFailedPrecondition:
      code = 409;
      break;
    case StatusCode::kResourceExhausted:
      code = 429;  // bounded mailbox / quota overflow
      break;
    case StatusCode::kUnavailable:
      code = 503;  // retryable: queue full / shedding
      break;
    case StatusCode::kDeadlineExceeded:
      code = 504;  // queue wait exceeded the job's SLO tau
      break;
    default:
      code = 500;
  }
  return Error(code, status.ToString());
}

/// Parses the /query feature body ("v1,v2,...") into a [1, dim] tensor.
Result<Tensor> ParseFeatureBody(const GatewayRequest& request) {
  if (request.body.empty()) {
    return Status::InvalidArgument(
        "missing feature body (comma-separated floats)");
  }
  std::vector<float> values;
  for (const std::string& field : Split(request.body, ',')) {
    if (field.empty()) return Status::InvalidArgument("empty feature field");
    char* end = nullptr;
    float v = std::strtof(field.c_str(), &end);
    if (end == field.c_str()) {
      return Status::InvalidArgument(
          StrFormat("bad feature '%s'", field.c_str()));
    }
    values.push_back(v);
  }
  // Size must be read before the move: argument evaluation order is
  // unspecified and GCC moves the by-value parameter first.
  auto num_features = static_cast<int64_t>(values.size());
  return Tensor({1, num_features}, std::move(values));
}

GatewayResponse FormatPrediction(const Prediction& prediction) {
  std::vector<std::string> votes;
  votes.reserve(prediction.votes.size());
  for (int64_t v : prediction.votes) votes.push_back(std::to_string(v));
  return GatewayResponse{
      200, StrFormat("label=%lld&votes=%s",
                     static_cast<long long>(prediction.label),
                     Join(votes, ",").c_str())};
}

/// Job id of a "/jobs/<id>/query" path ("" when malformed).
std::string QueryRouteJobId(const std::string& path) {
  return path.size() > 6 + 6 ? path.substr(6, path.size() - 6 - 6)
                             : std::string();
}

}  // namespace

std::string GatewayResponse::ToString() const {
  return StrFormat("%d %s", status, body.c_str());
}

Gateway::Gateway(Rafiki* rafiki) : rafiki_(rafiki) {
  RAFIKI_CHECK(rafiki != nullptr);
}

Result<GatewayRequest> Gateway::Parse(const std::string& raw_request) {
  // "METHOD /path[?|space]params\n body..."
  size_t newline = raw_request.find('\n');
  std::string head = raw_request.substr(0, newline);
  // Tolerate CRLF request lines (any real socket front-end sends them);
  // without this the path/params would carry an embedded '\r'.
  if (!head.empty() && head.back() == '\r') head.pop_back();
  GatewayRequest out;
  if (newline != std::string::npos) {
    out.body = raw_request.substr(newline + 1);
  }
  std::vector<std::string> parts = Split(head, ' ');
  if (parts.size() < 2 || parts[0].empty() || parts[1].empty()) {
    return Status::InvalidArgument("request must be 'METHOD /path [params]'");
  }
  out.method = parts[0];
  out.path = parts[1];
  if (out.path[0] != '/') {
    return Status::InvalidArgument("path must start with '/'");
  }
  std::string params;
  size_t qmark = out.path.find('?');
  if (qmark != std::string::npos) {
    params = out.path.substr(qmark + 1);
    out.path = out.path.substr(0, qmark);
  } else if (parts.size() >= 3) {
    params = parts[2];
  }
  if (!params.empty()) {
    for (const std::string& pair : Split(params, '&')) {
      if (pair.empty()) continue;
      size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument(
            StrFormat("malformed parameter '%s'", pair.c_str()));
      }
      // Real HTTP front-ends send percent-encoded query strings; decode so
      // "name=caf%C3%A9&note=a+b" means what the client wrote.
      out.params[net::PercentDecode(pair.substr(0, eq))] =
          net::PercentDecode(pair.substr(eq + 1), /*plus_as_space=*/true);
    }
  }
  return out;
}

GatewayResponse Gateway::Handle(const std::string& raw_request) {
  // Bounded buffering: a hostile or broken client must not make the
  // gateway swallow arbitrarily large request lines or bodies.
  size_t newline = raw_request.find('\n');
  size_t head_len = newline == std::string::npos ? raw_request.size()
                                                 : newline;
  if (head_len > kMaxRequestLine) {
    return Error(413, StrFormat("request line of %zu bytes exceeds %zu",
                                head_len, kMaxRequestLine));
  }
  if (newline != std::string::npos &&
      raw_request.size() - newline - 1 > kMaxBodyBytes) {
    return Error(413, StrFormat("body of %zu bytes exceeds %zu",
                                raw_request.size() - newline - 1,
                                kMaxBodyBytes));
  }
  Result<GatewayRequest> parsed = Parse(raw_request);
  if (!parsed.ok()) return FromStatus(parsed.status());
  return Dispatch(*parsed);
}

GatewayResponse Gateway::Dispatch(const GatewayRequest& request) {
  const std::string& path = request.path;
  // POST-only action routes.
  if (path == "/train" || path == "/deploy" || path == "/query" ||
      path == "/undeploy") {
    if (request.method != "POST") {
      return Error(405, StrFormat("use POST %s", path.c_str()));
    }
    if (path == "/train") return Train(request);
    if (path == "/deploy") return Deploy(request);
    if (path == "/query") return Query(request);
    return Undeploy(request);
  }
  if (path == "/cluster/metrics") {
    if (request.method != "GET") {
      return Error(405, "use GET /cluster/metrics");
    }
    return ClusterMetricsRoute();
  }
  // Job-scoped routes: POST /jobs/<id>/query (the data plane), GET for
  // status/metrics.
  if (StartsWith(path, "/jobs/")) {
    if (EndsWith(path, "/query")) {
      if (request.method != "POST") {
        return Error(405, StrFormat("use POST %s", path.c_str()));
      }
      std::string job_id = QueryRouteJobId(path);
      if (job_id.empty()) return Error(400, "missing job id in path");
      return QueryJob(job_id, request);
    }
    if (request.method != "GET") {
      return Error(405, StrFormat("use GET %s", path.c_str()));
    }
    if (EndsWith(path, "/metrics")) {
      std::string job_id = path.substr(6, path.size() - 6 - 8);
      if (!job_id.empty()) return InferMetrics(job_id);
    }
    return JobStatus(path.substr(6));
  }
  return Error(404, StrFormat("no route %s %s", request.method.c_str(),
                              path.c_str()));
}

void Gateway::DispatchAsync(const GatewayRequest& request,
                            AsyncCompletion done) {
  RAFIKI_CHECK(done != nullptr);
  const std::string& path = request.path;
  if (request.method == "POST") {
    if (path == "/query") {
      auto it = request.params.find("job");
      if (it == request.params.end()) {
        done(Error(400, "missing job parameter"));
        return;
      }
      QueryAsync(it->second, request, std::move(done));
      return;
    }
    if (StartsWith(path, "/jobs/") && EndsWith(path, "/query")) {
      std::string job_id = QueryRouteJobId(path);
      if (job_id.empty()) {
        done(Error(400, "missing job id in path"));
        return;
      }
      QueryAsync(job_id, request, std::move(done));
      return;
    }
  }
  // Control plane (and non-query errors): answer inline.
  done(Dispatch(request));
}

GatewayResponse Gateway::Train(const GatewayRequest& request) {
  auto it = request.params.find("dataset");
  if (it == request.params.end()) {
    return Error(400, "missing dataset parameter");
  }
  TrainConfig config;
  config.dataset = it->second;
  // Strict integer parsing: the whole value must be consumed, so
  // "trials=abc" or "epochs=3x" is a 400 instead of silently becoming 0.
  Status parse_error = Status::OK();
  auto get_int = [&](const char* key, int64_t fallback) -> int64_t {
    auto p = request.params.find(key);
    if (p == request.params.end()) return fallback;
    const std::string& value = p->second;
    errno = 0;
    char* end = nullptr;
    long long parsed = std::strtoll(value.c_str(), &end, 10);
    if (value.empty() || end != value.c_str() + value.size() ||
        errno == ERANGE) {
      if (parse_error.ok()) {
        parse_error = Status::InvalidArgument(StrFormat(
            "parameter '%s' must be an integer, got '%s'", key,
            value.c_str()));
      }
      return fallback;
    }
    return parsed;
  };
  config.hyper.max_trials = get_int("trials", 8);
  config.hyper.max_epochs_per_trial =
      static_cast<int>(get_int("epochs", 10));
  config.num_workers = static_cast<int>(get_int("workers", 2));
  config.hyper.collaborative = get_int("collaborative", 0) != 0;
  config.seed = static_cast<uint64_t>(get_int("seed", 1));
  if (!parse_error.ok()) return FromStatus(parse_error);
  auto adv = request.params.find("advisor");
  if (adv != request.params.end()) {
    if (adv->second == "grid") {
      config.advisor = AdvisorKind::kGridSearch;
    } else if (adv->second == "bayes") {
      config.advisor = AdvisorKind::kBayesOpt;
    } else if (adv->second == "random") {
      config.advisor = AdvisorKind::kRandomSearch;
    } else {
      return Error(400, "advisor must be random|grid|bayes");
    }
  }
  if (config.hyper.max_trials <= 0 || config.num_workers <= 0) {
    return Error(400, "trials and workers must be positive");
  }
  if (config.hyper.max_epochs_per_trial < 1) {
    return Error(400, "epochs must be >= 1");
  }
  Result<std::string> job = rafiki_->Train(config);
  if (!job.ok()) return FromStatus(job.status());
  return GatewayResponse{200, "job_id=" + *job};
}

GatewayResponse Gateway::JobStatus(const std::string& job_id) {
  Result<JobInfo> info = rafiki_->GetJobInfo(job_id);
  if (!info.ok()) return FromStatus(info.status());
  return GatewayResponse{
      200, StrFormat("done=%d&best=%.6f&trials=%lld", info->done ? 1 : 0,
                     info->best_performance,
                     static_cast<long long>(info->trials_finished))};
}

GatewayResponse Gateway::Deploy(const GatewayRequest& request) {
  auto it = request.params.find("job");
  if (it == request.params.end()) return Error(400, "missing job parameter");
  // Per-job scheduling-policy selection; validated before the model lookup
  // so a bad policy is a 400 even for unknown jobs.
  serving::RuntimeOptions options;
  auto policy = request.params.find("policy");
  if (policy != request.params.end()) {
    if (policy->second == "rl") {
      options.policy_factory = serving::MakeRlSchedulerFactory();
    } else if (policy->second != "greedy") {
      return Error(400, "policy must be greedy|rl");
    }
  }
  // Replicated serving plane: `replicas=N` caps the job at N dispatcher
  // replicas. Static by default (all N start immediately); `autoscale=1`
  // instead starts at one replica and lets the ReplicaController grow and
  // shrink the set within [1, N] from queue pressure.
  auto get_int = [&](const char* key, long long fallback,
                     bool* ok) -> long long {
    auto p = request.params.find(key);
    if (p == request.params.end()) return fallback;
    const std::string& value = p->second;
    errno = 0;
    char* end = nullptr;
    long long parsed = std::strtoll(value.c_str(), &end, 10);
    if (value.empty() || end != value.c_str() + value.size() ||
        errno == ERANGE) {
      *ok = false;
      return fallback;
    }
    return parsed;
  };
  bool params_ok = true;
  long long replicas = get_int("replicas", 1, &params_ok);
  long long autoscale = get_int("autoscale", 0, &params_ok);
  if (!params_ok || replicas < 1 || replicas > 64) {
    return Error(400, "replicas must be an integer in [1, 64]");
  }
  options.max_replicas = static_cast<int>(replicas);
  if (autoscale != 0) {
    options.autoscale = true;
    options.replicas = 1;
    options.min_replicas = 1;
  } else {
    options.replicas = static_cast<int>(replicas);
  }
  Result<std::vector<ModelHandle>> models = rafiki_->GetModels(it->second);
  if (!models.ok()) return FromStatus(models.status());
  Result<std::string> deployed = rafiki_->Deploy(*models, options);
  if (!deployed.ok()) return FromStatus(deployed.status());
  return GatewayResponse{200, "job_id=" + *deployed};
}

GatewayResponse Gateway::Query(const GatewayRequest& request) {
  auto it = request.params.find("job");
  if (it == request.params.end()) return Error(400, "missing job parameter");
  return QueryJob(it->second, request);
}

GatewayResponse Gateway::QueryJob(const std::string& job_id,
                                  const GatewayRequest& request) {
  Result<Tensor> features = ParseFeatureBody(request);
  if (!features.ok()) return Error(400, features.status().message());
  Result<Prediction> prediction = rafiki_->Query(job_id, *features);
  if (!prediction.ok()) return FromStatus(prediction.status());
  return FormatPrediction(*prediction);
}

void Gateway::QueryAsync(const std::string& job_id,
                         const GatewayRequest& request,
                         AsyncCompletion done) {
  Result<Tensor> features = ParseFeatureBody(request);
  if (!features.ok()) {
    done(Error(400, features.status().message()));
    return;
  }
  Status submitted = rafiki_->QueryAsync(
      job_id, std::move(*features), [done](Result<Prediction> prediction) {
        if (!prediction.ok()) {
          done(FromStatus(prediction.status()));
          return;
        }
        done(FormatPrediction(*prediction));
      });
  // A rejected submission never runs the continuation: answer inline
  // (404 unknown job, 503 queue full, 400 bad dimension).
  if (!submitted.ok()) done(FromStatus(submitted));
}

GatewayResponse Gateway::InferMetrics(const std::string& job_id) {
  Result<serving::InferenceJobMetrics> metrics =
      rafiki_->InferenceMetrics(job_id);
  if (!metrics.ok()) return FromStatus(metrics.status());
  std::string body =
      StrFormat("arrived=%lld&processed=%lld&overdue=%lld&dropped=%lld&"
                "expired=%lld&batches=%lld&max_batch=%lld&mean_batch=%.3f&"
                "mean_latency=%.6f&queue=%lld&p50=%.6f&p95=%.6f&p99=%.6f&"
                "policy=%s&learn_steps=%lld&reward=%.6f&accuracy_sum=%.6f&"
                "reward_overdue=%lld&reward_pending=%lld",
                static_cast<long long>(metrics->arrived),
                static_cast<long long>(metrics->processed),
                static_cast<long long>(metrics->overdue),
                static_cast<long long>(metrics->dropped),
                static_cast<long long>(metrics->expired),
                static_cast<long long>(metrics->batches),
                static_cast<long long>(metrics->max_batch),
                metrics->mean_batch, metrics->mean_latency,
                static_cast<long long>(metrics->queue_depth),
                metrics->p50_latency, metrics->p95_latency,
                metrics->p99_latency, metrics->policy.c_str(),
                static_cast<long long>(metrics->learn_steps),
                metrics->reward_sum, metrics->accuracy_sum,
                static_cast<long long>(metrics->reward_overdue),
                static_cast<long long>(metrics->reward_pending_overdue));
  body += StrFormat(
      "&replicas=%lld&replicas_peak=%lld&scale_ups=%lld&scale_downs=%lld&"
      "steals=%lld&variant_level=%lld&variant_shifts=%lld",
      static_cast<long long>(metrics->replicas),
      static_cast<long long>(metrics->replicas_peak),
      static_cast<long long>(metrics->scale_ups),
      static_cast<long long>(metrics->scale_downs),
      static_cast<long long>(metrics->steals),
      static_cast<long long>(metrics->variant_level),
      static_cast<long long>(metrics->variant_shifts));
  // One gauge row per replica slot ever activated; each row was read under
  // that replica's stats mutex, so depth/processed/steals are consistent.
  for (const serving::ReplicaGauges& g : metrics->replica_gauges) {
    body += StrFormat(
        "&r%lld_active=%d&r%lld_queue=%lld&r%lld_processed=%lld&"
        "r%lld_steals=%lld",
        static_cast<long long>(g.replica), g.active ? 1 : 0,
        static_cast<long long>(g.replica),
        static_cast<long long>(g.queue_depth),
        static_cast<long long>(g.replica),
        static_cast<long long>(g.processed),
        static_cast<long long>(g.replica),
        static_cast<long long>(g.steals));
  }
  return GatewayResponse{200, std::move(body)};
}

GatewayResponse Gateway::ClusterMetricsRoute() {
  ClusterMetrics m = rafiki_->GetClusterMetrics();
  std::string body = StrFormat(
      "workers_alive=%lld&workers_total=%lld&worker_restarts=%lld&"
      "trials_proposed=%lld&trials_completed=%lld&trials_lost=%lld&"
      "trials_active=%lld",
      static_cast<long long>(m.workers_alive),
      static_cast<long long>(m.workers_total),
      static_cast<long long>(m.worker_restarts),
      static_cast<long long>(m.trials_proposed),
      static_cast<long long>(m.trials_completed),
      static_cast<long long>(m.trials_lost),
      static_cast<long long>(m.trials_active));
  body += StrFormat(
      "&bus_endpoints=%llu&bus_queued=%llu&bus_sent=%llu&"
      "bus_delivered=%llu&bus_send_errors=%llu&bus_frames_sent=%llu&"
      "bus_frames_received=%llu&bus_reconnects=%llu",
      static_cast<unsigned long long>(m.bus.endpoints),
      static_cast<unsigned long long>(m.bus.queued),
      static_cast<unsigned long long>(m.bus.messages_sent),
      static_cast<unsigned long long>(m.bus.messages_delivered),
      static_cast<unsigned long long>(m.bus.send_errors),
      static_cast<unsigned long long>(m.bus.frames_sent),
      static_cast<unsigned long long>(m.bus.frames_received),
      static_cast<unsigned long long>(m.bus.reconnects));
  return GatewayResponse{200, std::move(body)};
}

GatewayResponse Gateway::Undeploy(const GatewayRequest& request) {
  auto it = request.params.find("job");
  if (it == request.params.end()) return Error(400, "missing job parameter");
  Status status = rafiki_->Undeploy(it->second);
  if (!status.ok()) return FromStatus(status);
  return GatewayResponse{200, "ok"};
}

}  // namespace rafiki::api
