#include "rafiki/http_gateway.h"

#include "common/string_util.h"

namespace rafiki::api {

Result<GatewayRequest> FromHttp(const net::HttpRequest& http) {
  GatewayRequest out;
  out.method = http.method;
  out.path = net::PercentDecode(http.path);
  if (out.path.empty() || out.path[0] != '/') {
    return Status::InvalidArgument("path must start with '/'");
  }
  if (!http.query.empty()) {
    for (const std::string& pair : Split(http.query, '&')) {
      if (pair.empty()) continue;
      size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument(
            StrFormat("malformed parameter '%s'", pair.c_str()));
      }
      out.params[net::PercentDecode(pair.substr(0, eq))] =
          net::PercentDecode(pair.substr(eq + 1), /*plus_as_space=*/true);
    }
  }
  out.body = http.body;
  return out;
}

net::HttpResponse ToHttp(const GatewayResponse& response) {
  net::HttpResponse http;
  http.status = response.status;
  http.body = response.body + "\n";
  return http;
}

namespace {

/// Extends a successful metrics-route body with the front door's own
/// gauges (handler-pool occupancy vs parked async responses), keyed off
/// the decoded request path so only `GET /jobs/<id>/metrics` pays it.
void MaybeAppendServerGauges(const std::string& path,
                             const ServerStatsFn& server_stats,
                             GatewayResponse* response) {
  if (!server_stats || response->status != 200 ||
      !EndsWith(path, "/metrics")) {
    return;
  }
  net::HttpServerStats stats = server_stats();
  response->body += StrFormat(
      "&inflight=%llu&inflight_peak=%llu&handler_busy=%llu&async_pending=%llu",
      static_cast<unsigned long long>(stats.inflight),
      static_cast<unsigned long long>(stats.inflight_peak),
      static_cast<unsigned long long>(stats.handler_busy),
      static_cast<unsigned long long>(stats.async_pending));
}

}  // namespace

net::HttpServer::Handler MakeGatewayHttpHandler(Gateway* gateway,
                                                ServerStatsFn server_stats) {
  return [gateway, server_stats](const net::HttpRequest& http) {
    Result<GatewayRequest> request = FromHttp(http);
    if (!request.ok()) {
      return ToHttp(GatewayResponse{
          400, "error=" + request.status().ToString()});
    }
    GatewayResponse response = gateway->Dispatch(*request);
    MaybeAppendServerGauges(request->path, server_stats, &response);
    return ToHttp(response);
  };
}

net::HttpServer::AsyncHandler MakeGatewayAsyncHttpHandler(
    Gateway* gateway, ServerStatsFn server_stats) {
  return [gateway, server_stats](const net::HttpRequest& http,
                                 net::HttpServer::ResponseWriter writer) {
    Result<GatewayRequest> request = FromHttp(http);
    if (!request.ok()) {
      writer.Complete(ToHttp(
          GatewayResponse{400, "error=" + request.status().ToString()}));
      return;
    }
    // The writer rides the continuation: control-plane routes complete it
    // before DispatchAsync returns, query routes complete it from the
    // inference dispatcher thread at batch completion.
    std::string path = request->path;
    gateway->DispatchAsync(
        *request, [writer, server_stats, path](GatewayResponse response) {
          MaybeAppendServerGauges(path, server_stats, &response);
          net::HttpServer::ResponseWriter w = writer;
          // Build the reply in the request's pooled slot: completing with
          // the writer's own response() skips the copy into the slot.
          net::HttpResponse& out = w.response();
          out.status = response.status;
          out.body.assign(response.body);
          out.body.push_back('\n');
          w.Complete(out);
        });
  };
}

}  // namespace rafiki::api
