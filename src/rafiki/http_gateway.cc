#include "rafiki/http_gateway.h"

#include "common/string_util.h"

namespace rafiki::api {

Result<GatewayRequest> FromHttp(const net::HttpRequest& http) {
  GatewayRequest out;
  out.method = http.method;
  out.path = net::PercentDecode(http.path);
  if (out.path.empty() || out.path[0] != '/') {
    return Status::InvalidArgument("path must start with '/'");
  }
  if (!http.query.empty()) {
    for (const std::string& pair : Split(http.query, '&')) {
      if (pair.empty()) continue;
      size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument(
            StrFormat("malformed parameter '%s'", pair.c_str()));
      }
      out.params[net::PercentDecode(pair.substr(0, eq))] =
          net::PercentDecode(pair.substr(eq + 1), /*plus_as_space=*/true);
    }
  }
  out.body = http.body;
  return out;
}

net::HttpResponse ToHttp(const GatewayResponse& response) {
  net::HttpResponse http;
  http.status = response.status;
  http.body = response.body + "\n";
  return http;
}

net::HttpServer::Handler MakeGatewayHttpHandler(Gateway* gateway) {
  return [gateway](const net::HttpRequest& http) {
    Result<GatewayRequest> request = FromHttp(http);
    if (!request.ok()) {
      return ToHttp(GatewayResponse{
          400, "error=" + request.status().ToString()});
    }
    return ToHttp(gateway->Dispatch(*request));
  };
}

}  // namespace rafiki::api
