#include "rl/actor_critic.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "nn/loss.h"

namespace rafiki::rl {
namespace {

nn::SgdOptions MakeSgd(double lr) {
  nn::SgdOptions o;
  o.learning_rate = lr;
  o.momentum = 0.9;
  o.weight_decay = 0.0;
  return o;
}

}  // namespace

ActorCritic::ActorCritic(ActorCriticOptions options)
    : options_(options),
      rng_(options.seed),
      policy_opt_(MakeSgd(options.policy_lr)),
      value_opt_(MakeSgd(options.value_lr)) {
  RAFIKI_CHECK_GT(options.state_dim, 0);
  RAFIKI_CHECK_GT(options.num_actions, 1);
  policy_ = nn::MakeMlp({options.state_dim, options.hidden,
                         options.num_actions},
                        /*init_std=*/0.1f, /*dropout=*/0.0f, rng_);
  value_ = nn::MakeMlp({options.state_dim, options.hidden, 1},
                       /*init_std=*/0.1f, /*dropout=*/0.0f, rng_);
}

Tensor ActorCritic::StatesToTensor(const std::vector<Step>& steps) const {
  Tensor x({static_cast<int64_t>(steps.size()), options_.state_dim});
  for (size_t i = 0; i < steps.size(); ++i) {
    RAFIKI_CHECK_EQ(steps[i].state.size(),
                    static_cast<size_t>(options_.state_dim));
    for (int d = 0; d < options_.state_dim; ++d) {
      x.at2(static_cast<int64_t>(i), d) =
          static_cast<float>(steps[i].state[d]);
    }
  }
  return x;
}

std::vector<double> ActorCritic::Probabilities(
    const std::vector<double>& state) {
  RAFIKI_CHECK_EQ(state.size(), static_cast<size_t>(options_.state_dim));
  Tensor x({1, options_.state_dim});
  for (int d = 0; d < options_.state_dim; ++d) {
    x.at(d) = static_cast<float>(state[d]);
  }
  Tensor probs = policy_.Forward(x, /*train=*/false).SoftmaxRows();
  std::vector<double> out(static_cast<size_t>(options_.num_actions));
  for (int a = 0; a < options_.num_actions; ++a) out[a] = probs.at(a);
  return out;
}

double ActorCritic::Value(const std::vector<double>& state) {
  Tensor x({1, options_.state_dim});
  for (int d = 0; d < options_.state_dim; ++d) {
    x.at(d) = static_cast<float>(state[d]);
  }
  return value_.Forward(x, /*train=*/false).at(0);
}

int ActorCritic::ActMasked(const std::vector<double>& state,
                           const std::vector<bool>& valid, bool explore) {
  RAFIKI_CHECK_EQ(valid.size(), static_cast<size_t>(options_.num_actions));
  std::vector<double> probs = Probabilities(state);
  double total = 0.0;
  for (size_t a = 0; a < probs.size(); ++a) {
    if (!valid[a]) probs[a] = 0.0;
    total += probs[a];
  }
  if (total <= 0.0) {
    // All valid actions have ~zero mass (or none valid): fall back to a
    // uniform draw over the valid set.
    std::vector<int> candidates;
    for (size_t a = 0; a < valid.size(); ++a) {
      if (valid[a]) candidates.push_back(static_cast<int>(a));
    }
    if (candidates.empty()) return -1;
    return candidates[rng_.Index(candidates.size())];
  }
  if (!explore) {
    return static_cast<int>(std::max_element(probs.begin(), probs.end()) -
                            probs.begin());
  }
  if (rng_.Bernoulli(options_.explore_eps)) {
    std::vector<int> candidates;
    for (size_t a = 0; a < valid.size(); ++a) {
      if (valid[a]) candidates.push_back(static_cast<int>(a));
    }
    return candidates[rng_.Index(candidates.size())];
  }
  double u = rng_.Uniform(0.0, total);
  double acc = 0.0;
  for (size_t a = 0; a < probs.size(); ++a) {
    acc += probs[a];
    if (u < acc) return static_cast<int>(a);
  }
  for (size_t a = probs.size(); a > 0; --a) {
    if (valid[a - 1]) return static_cast<int>(a - 1);
  }
  return -1;
}

int ActorCritic::Act(const std::vector<double>& state, bool explore) {
  std::vector<double> probs = Probabilities(state);
  if (!explore) {
    return static_cast<int>(std::max_element(probs.begin(), probs.end()) -
                            probs.begin());
  }
  if (rng_.Bernoulli(options_.explore_eps)) {
    return static_cast<int>(rng_.Index(probs.size()));
  }
  double u = rng_.Uniform();
  double acc = 0.0;
  for (size_t a = 0; a < probs.size(); ++a) {
    acc += probs[a];
    if (u < acc) return static_cast<int>(a);
  }
  return options_.num_actions - 1;
}

void ActorCritic::Record(const std::vector<double>& state, int action,
                         double reward) {
  RAFIKI_CHECK_GE(action, 0);
  RAFIKI_CHECK_LT(action, options_.num_actions);
  buffer_.push_back(Step{state, action, reward});
  if (static_cast<int>(buffer_.size()) >= options_.update_every) Update();
}

void ActorCritic::Flush() {
  if (!buffer_.empty()) Update();
}

void ActorCritic::Update() {
  size_t n = buffer_.size();
  RAFIKI_CHECK_GT(n, 0u);

  // Discounted returns, bootstrapping from V of the final state (the
  // trajectory continues beyond the segment).
  std::vector<double> returns(n);
  double running = Value(buffer_.back().state);
  for (size_t ii = n; ii > 0; --ii) {
    size_t i = ii - 1;
    running = buffer_[i].reward + options_.gamma * running;
    returns[i] = running;
  }

  Tensor states = StatesToTensor(buffer_);

  // Critic update: V(s) -> returns.
  value_.ZeroGrad();
  Tensor v = value_.Forward(states, /*train=*/true);
  std::vector<float> targets(n);
  for (size_t i = 0; i < n; ++i) targets[i] = static_cast<float>(returns[i]);
  nn::LossResult vloss = nn::MeanSquaredError(v, targets);
  value_.Backward(vloss.grad);
  value_opt_.Step(value_.Params());

  // Advantages with the (pre-update) baseline.
  std::vector<double> adv(n);
  double adv_mean = 0.0;
  for (size_t i = 0; i < n; ++i) {
    adv[i] = returns[i] - static_cast<double>(v.at(static_cast<int64_t>(i)));
    adv_mean += adv[i];
  }
  adv_mean /= static_cast<double>(n);
  double adv_sq = 0.0;
  for (size_t i = 0; i < n; ++i) {
    adv[i] -= adv_mean;
    adv_sq += adv[i] * adv[i];
  }
  double adv_std = std::sqrt(adv_sq / static_cast<double>(n) + 1e-8);
  for (double& a : adv) a /= adv_std;

  int A = options_.num_actions;
  float inv_n = 1.0f / static_cast<float>(n);

  if (options_.update_rule == PolicyUpdateRule::kReinforceBaseline) {
    // Actor update via the surrogate objective (Equation 3):
    // dL/dlogits = (softmax - onehot(a)) * advantage / n, plus an entropy
    // bonus gradient softmax * (log softmax + H).
    policy_.ZeroGrad();
    Tensor logits = policy_.Forward(states, /*train=*/true);
    Tensor probs = logits.SoftmaxRows();
    Tensor grad(logits.shape());
    for (size_t i = 0; i < n; ++i) {
      auto r = static_cast<int64_t>(i);
      double entropy = 0.0;
      for (int a = 0; a < A; ++a) {
        double p = probs.at2(r, a);
        entropy -= p * std::log(std::max(p, 1e-12));
      }
      for (int a = 0; a < A; ++a) {
        double p = probs.at2(r, a);
        double g =
            (p - (a == buffer_[i].action ? 1.0 : 0.0)) * adv[i] * inv_n;
        // Entropy maximization: dH/dlogit_a = -p * (log p + H); we
        // subtract coef * dH to ascend entropy.
        double gh = -p * (std::log(std::max(p, 1e-12)) + entropy);
        grad.at2(r, a) = static_cast<float>(
            g - options_.entropy_coef * gh * inv_n);
      }
    }
    policy_.Backward(grad);
    policy_opt_.Step(policy_.Params());
  } else {
    // PPO-clip (Schulman et al., the paper's [24]): freeze the behaviour
    // probabilities pi_old(a|s), then take several epochs maximizing
    //   min(r * A, clip(r, 1-eps, 1+eps) * A),  r = pi(a|s) / pi_old(a|s).
    Tensor old_logits = policy_.Forward(states, /*train=*/false);
    Tensor old_probs = old_logits.SoftmaxRows();
    std::vector<double> pi_old(n);
    for (size_t i = 0; i < n; ++i) {
      pi_old[i] = std::max<double>(
          old_probs.at2(static_cast<int64_t>(i), buffer_[i].action), 1e-8);
    }
    for (int epoch = 0; epoch < options_.ppo_epochs; ++epoch) {
      policy_.ZeroGrad();
      Tensor logits = policy_.Forward(states, /*train=*/true);
      Tensor probs = logits.SoftmaxRows();
      Tensor grad(logits.shape());
      for (size_t i = 0; i < n; ++i) {
        auto r = static_cast<int64_t>(i);
        int act = buffer_[i].action;
        double p_act = std::max<double>(probs.at2(r, act), 1e-12);
        double ratio = p_act / pi_old[i];
        // Clipped-objective gradient gate: zero once the ratio has moved
        // past the clip boundary in the advantage's direction.
        bool clipped = (adv[i] > 0.0 && ratio > 1.0 + options_.ppo_clip) ||
                       (adv[i] < 0.0 && ratio < 1.0 - options_.ppo_clip);
        double scale = clipped ? 0.0 : ratio * adv[i];
        double entropy = 0.0;
        for (int a = 0; a < A; ++a) {
          double p = probs.at2(r, a);
          entropy -= p * std::log(std::max(p, 1e-12));
        }
        for (int a = 0; a < A; ++a) {
          double p = probs.at2(r, a);
          // d(log pi(act))/dlogit_a = onehot - softmax; loss = -scale*log.
          double g = -scale * ((a == act ? 1.0 : 0.0) - p) * inv_n;
          double gh = -p * (std::log(std::max(p, 1e-12)) + entropy);
          grad.at2(r, a) = static_cast<float>(
              g - options_.entropy_coef * gh * inv_n);
        }
      }
      policy_.Backward(grad);
      policy_opt_.Step(policy_.Params());
    }
  }

  buffer_.clear();
  ++updates_;
}

}  // namespace rafiki::rl
