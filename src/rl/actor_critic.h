#ifndef RAFIKI_RL_ACTOR_CRITIC_H_
#define RAFIKI_RL_ACTOR_CRITIC_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "nn/net.h"
#include "nn/sgd.h"

namespace rafiki::rl {

/// Actor-critic policy-gradient learner (§2.4, Equations 1-3 with the
/// baseline V(s_t) subtracted from the return) over a discrete action
/// space. The policy pi_theta(a|s) and the value baseline V(s) are both
/// small MLPs (as the paper describes), trained from n-step trajectory
/// segments with discounted returns.
/// Policy-update rule. The paper cites Schulman et al.'s proximal policy
/// optimization as its actor-critic algorithm ([24] in §5.2), so kPpoClip
/// is the default; kReinforceBaseline is the plain Equation 3 surrogate
/// with the V(s) baseline.
enum class PolicyUpdateRule { kReinforceBaseline, kPpoClip };

struct ActorCriticOptions {
  int state_dim = 16;
  int num_actions = 4;
  int hidden = 64;
  double policy_lr = 1e-3;
  double value_lr = 1e-3;
  double gamma = 0.9;       // reward decay factor (Equation 1)
  int update_every = 64;    // trajectory segment length n
  double entropy_coef = 0.01;
  /// Epsilon-greedy floor on exploration in addition to softmax sampling.
  double explore_eps = 0.05;
  PolicyUpdateRule update_rule = PolicyUpdateRule::kPpoClip;
  /// PPO-only: clipping radius and optimization epochs per segment.
  double ppo_clip = 0.2;
  int ppo_epochs = 4;
  uint64_t seed = 17;
};

class ActorCritic {
 public:
  explicit ActorCritic(ActorCriticOptions options);

  /// Samples an action from pi(:|state). With `explore` false, returns the
  /// argmax action.
  int Act(const std::vector<double>& state, bool explore = true);

  /// Samples from pi(:|state) restricted (and renormalized) to the actions
  /// with valid[a] == true — standard action masking for states where some
  /// actions are physically impossible. Returns -1 if none are valid.
  int ActMasked(const std::vector<double>& state,
                const std::vector<bool>& valid, bool explore = true);

  /// Records the transition that followed the last Act with this state and
  /// action; triggers a gradient update every `update_every` steps.
  void Record(const std::vector<double>& state, int action, double reward);

  /// Action probabilities at a state (for tests/inspection).
  std::vector<double> Probabilities(const std::vector<double>& state);

  /// Value estimate V(s).
  double Value(const std::vector<double>& state);

  /// Forces an update on whatever is buffered (e.g. at episode end).
  void Flush();

  int64_t updates() const { return updates_; }
  const ActorCriticOptions& options() const { return options_; }

  /// Adjusts the epsilon-uniform exploration floor (benches anneal it to 0
  /// for evaluation while keeping softmax sampling).
  void set_explore_eps(double eps) { options_.explore_eps = eps; }

 private:
  struct Step {
    std::vector<double> state;
    int action = 0;
    double reward = 0.0;
  };

  Tensor StatesToTensor(const std::vector<Step>& steps) const;
  void Update();

  ActorCriticOptions options_;
  Rng rng_;
  nn::Net policy_;
  nn::Net value_;
  nn::Sgd policy_opt_;
  nn::Sgd value_opt_;
  std::vector<Step> buffer_;
  int64_t updates_ = 0;
};

}  // namespace rafiki::rl

#endif  // RAFIKI_RL_ACTOR_CRITIC_H_
