#include "storage/serialize.h"

#include <cstring>

namespace rafiki::storage {
namespace {

constexpr uint32_t kTensorMagic = 0x52414654;   // "RAFT"
constexpr uint32_t kDatasetMagic = 0x52414644;  // "RAFD"

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back((v >> (8 * i)) & 0xff);
}

void AppendI64(std::vector<uint8_t>* out, int64_t v) {
  auto u = static_cast<uint64_t>(v);
  for (int i = 0; i < 8; ++i) out->push_back((u >> (8 * i)) & 0xff);
}

bool ReadU32(const std::vector<uint8_t>& in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(in[*pos + i]) << (8 * i);
  *pos += 4;
  return true;
}

bool ReadI64(const std::vector<uint8_t>& in, size_t* pos, int64_t* v) {
  if (*pos + 8 > in.size()) return false;
  uint64_t u = 0;
  for (int i = 0; i < 8; ++i) u |= static_cast<uint64_t>(in[*pos + i]) << (8 * i);
  *pos += 8;
  *v = static_cast<int64_t>(u);
  return true;
}

}  // namespace

std::vector<uint8_t> SerializeTensor(const Tensor& tensor) {
  std::vector<uint8_t> out;
  out.reserve(16 + tensor.shape().size() * 8 +
              static_cast<size_t>(tensor.numel()) * 4);
  AppendU32(&out, kTensorMagic);
  AppendU32(&out, static_cast<uint32_t>(tensor.rank()));
  for (int64_t d : tensor.shape()) AppendI64(&out, d);
  size_t data_bytes = static_cast<size_t>(tensor.numel()) * sizeof(float);
  size_t offset = out.size();
  out.resize(offset + data_bytes);
  // An empty tensor has a null data(); memcpy's pointers must be non-null
  // even for a zero-length copy.
  if (data_bytes > 0) {
    std::memcpy(out.data() + offset, tensor.data(), data_bytes);
  }
  return out;
}

Result<Tensor> DeserializeTensor(const std::vector<uint8_t>& bytes) {
  size_t pos = 0;
  uint32_t magic = 0, rank = 0;
  if (!ReadU32(bytes, &pos, &magic) || magic != kTensorMagic) {
    return Status::InvalidArgument("bad tensor magic");
  }
  if (!ReadU32(bytes, &pos, &rank) || rank > 8) {
    return Status::InvalidArgument("bad tensor rank");
  }
  Shape shape(rank);
  // The shape is untrusted input: multiply with overflow checking instead
  // of ShapeNumel (whose overflow CHECK would crash on hostile bytes).
  int64_t numel = rank == 0 ? 0 : 1;
  for (uint32_t i = 0; i < rank; ++i) {
    if (!ReadI64(bytes, &pos, &shape[i]) || shape[i] <= 0) {
      return Status::InvalidArgument("bad tensor shape");
    }
    if (__builtin_mul_overflow(numel, shape[i], &numel) ||
        static_cast<uint64_t>(numel) > bytes.size() / sizeof(float)) {
      return Status::InvalidArgument("tensor payload size mismatch");
    }
  }
  size_t data_bytes = static_cast<size_t>(numel) * sizeof(float);
  if (pos + data_bytes != bytes.size()) {
    return Status::InvalidArgument("tensor payload size mismatch");
  }
  std::vector<float> values(static_cast<size_t>(numel));
  if (data_bytes > 0) {
    std::memcpy(values.data(), bytes.data() + pos, data_bytes);
  }
  return Tensor(std::move(shape), std::move(values));
}

std::vector<uint8_t> SerializeDataset(const data::Dataset& dataset) {
  std::vector<uint8_t> out;
  AppendU32(&out, kDatasetMagic);
  AppendI64(&out, dataset.num_classes);
  AppendI64(&out, dataset.size());
  for (int64_t label : dataset.labels) AppendI64(&out, label);
  std::vector<uint8_t> xt = SerializeTensor(dataset.x);
  out.insert(out.end(), xt.begin(), xt.end());
  return out;
}

Result<data::Dataset> DeserializeDataset(const std::vector<uint8_t>& bytes) {
  size_t pos = 0;
  uint32_t magic = 0;
  if (!ReadU32(bytes, &pos, &magic) || magic != kDatasetMagic) {
    return Status::InvalidArgument("bad dataset magic");
  }
  data::Dataset out;
  int64_t n = 0;
  if (!ReadI64(bytes, &pos, &out.num_classes) || !ReadI64(bytes, &pos, &n) ||
      n < 0) {
    return Status::InvalidArgument("bad dataset header");
  }
  out.labels.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    if (!ReadI64(bytes, &pos, &out.labels[static_cast<size_t>(i)])) {
      return Status::InvalidArgument("truncated labels");
    }
  }
  std::vector<uint8_t> rest(bytes.begin() + static_cast<long>(pos),
                            bytes.end());
  RAFIKI_ASSIGN_OR_RETURN(out.x, DeserializeTensor(rest));
  if (out.x.rank() > 0 && out.x.dim(0) != n) {
    return Status::InvalidArgument("dataset row count mismatch");
  }
  return out;
}

}  // namespace rafiki::storage
