#include "storage/blob_store.h"

#include "common/string_util.h"

namespace rafiki::storage {

Status BlobStore::Put(const std::string& key, std::vector<uint8_t> value) {
  std::lock_guard<std::mutex> lock(mu_);
  ++puts_;
  if (capacity_bytes_ != 0 && value.size() > capacity_bytes_) {
    return Status::OutOfRange(
        StrFormat("blob '%s' (%zu bytes) exceeds capacity %zu", key.c_str(),
                  value.size(), capacity_bytes_));
  }
  auto it = blobs_.find(key);
  size_t old = it == blobs_.end() ? 0 : it->second.size();
  size_t next = used_bytes_ - old + value.size();
  if (capacity_bytes_ != 0 && next > capacity_bytes_) {
    return Status::OutOfRange(
        StrFormat("store full: %zu + %zu > %zu", used_bytes_, value.size(),
                  capacity_bytes_));
  }
  used_bytes_ = next;
  blobs_[key] = std::move(value);
  return Status::OK();
}

Result<std::vector<uint8_t>> BlobStore::Get(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  ++gets_;
  auto it = blobs_.find(key);
  if (it == blobs_.end()) {
    return Status::NotFound(StrFormat("no blob '%s'", key.c_str()));
  }
  return it->second;
}

bool BlobStore::Exists(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return blobs_.count(key) > 0;
}

Status BlobStore::Delete(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blobs_.find(key);
  if (it == blobs_.end()) {
    return Status::NotFound(StrFormat("no blob '%s'", key.c_str()));
  }
  used_bytes_ -= it->second.size();
  blobs_.erase(it);
  return Status::OK();
}

std::vector<std::string> BlobStore::List(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (auto it = blobs_.lower_bound(prefix); it != blobs_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

size_t BlobStore::size_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_bytes_;
}

size_t BlobStore::num_blobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blobs_.size();
}

size_t BlobStore::put_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return puts_;
}

size_t BlobStore::get_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gets_;
}

}  // namespace rafiki::storage
