#include "storage/blob_store.h"

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace rafiki::storage {

BlobStore::BlobStore(size_t capacity_bytes, std::string persist_dir)
    : capacity_bytes_(capacity_bytes), persist_dir_(std::move(persist_dir)) {
  if (!persist_dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(persist_dir_, ec);
    if (ec) {
      RAFIKI_LOG(WARNING) << "blob store cannot create '" << persist_dir_
                          << "': " << ec.message() << "; persistence off";
      persist_dir_.clear();
    }
  }
}

std::string BlobStore::PathForKey(const std::string& key) const {
  // One flat file per key; escape everything outside [A-Za-z0-9._-] so a
  // hierarchical key cannot traverse directories.
  std::string name;
  name.reserve(key.size());
  for (unsigned char c : key) {
    if (std::isalnum(c) || c == '.' || c == '_' || c == '-') {
      name.push_back(static_cast<char>(c));
    } else {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X", c);
      name += buf;
    }
  }
  return persist_dir_ + "/" + name;
}

Status BlobStore::Put(const std::string& key, std::vector<uint8_t> value) {
  std::lock_guard<std::mutex> lock(mu_);
  ++puts_;
  if (capacity_bytes_ != 0 && value.size() > capacity_bytes_) {
    return Status::OutOfRange(
        StrFormat("blob '%s' (%zu bytes) exceeds capacity %zu", key.c_str(),
                  value.size(), capacity_bytes_));
  }
  auto it = blobs_.find(key);
  size_t old = it == blobs_.end() ? 0 : it->second.size();
  size_t next = used_bytes_ - old + value.size();
  if (capacity_bytes_ != 0 && next > capacity_bytes_) {
    return Status::OutOfRange(
        StrFormat("store full: %zu + %zu > %zu", used_bytes_, value.size(),
                  capacity_bytes_));
  }
  used_bytes_ = next;
  const std::vector<uint8_t>& stored = (blobs_[key] = std::move(value));
  if (!persist_dir_.empty()) {
    // Write-through via a temp file + rename so a crash mid-write never
    // leaves a torn checkpoint for the recovered process to read.
    std::string path = PathForKey(key);
    std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(stored.data()),
                static_cast<std::streamsize>(stored.size()));
      if (!out.good()) {
        return Status::Internal(
            StrFormat("cannot persist blob '%s'", key.c_str()));
      }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
      return Status::Internal(StrFormat("cannot persist blob '%s': %s",
                                        key.c_str(), ec.message().c_str()));
    }
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> BlobStore::Get(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  ++gets_;
  auto it = blobs_.find(key);
  if (it != blobs_.end()) return it->second;
  if (!persist_dir_.empty()) {
    // Memory miss: a predecessor process may have persisted it.
    std::ifstream in(PathForKey(key), std::ios::binary);
    if (in.good()) {
      std::vector<uint8_t> value(
          (std::istreambuf_iterator<char>(in)),
          std::istreambuf_iterator<char>());
      if (capacity_bytes_ == 0 ||
          used_bytes_ + value.size() <= capacity_bytes_) {
        used_bytes_ += value.size();
        blobs_[key] = value;
      }
      return value;
    }
  }
  return Status::NotFound(StrFormat("no blob '%s'", key.c_str()));
}

bool BlobStore::Exists(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return blobs_.count(key) > 0;
}

Status BlobStore::Delete(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blobs_.find(key);
  if (it == blobs_.end()) {
    return Status::NotFound(StrFormat("no blob '%s'", key.c_str()));
  }
  used_bytes_ -= it->second.size();
  blobs_.erase(it);
  if (!persist_dir_.empty()) {
    std::error_code ec;
    std::filesystem::remove(PathForKey(key), ec);
  }
  return Status::OK();
}

std::vector<std::string> BlobStore::List(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (auto it = blobs_.lower_bound(prefix); it != blobs_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

size_t BlobStore::size_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_bytes_;
}

size_t BlobStore::num_blobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blobs_.size();
}

size_t BlobStore::put_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return puts_;
}

size_t BlobStore::get_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gets_;
}

}  // namespace rafiki::storage
