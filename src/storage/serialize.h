#ifndef RAFIKI_STORAGE_SERIALIZE_H_
#define RAFIKI_STORAGE_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "tensor/tensor.h"

namespace rafiki::storage {

/// Binary (little-endian) codecs used to move tensors and datasets through
/// the blob store — the wire format between Rafiki components (stand-in for
/// the HDFS file formats in §6.2).

std::vector<uint8_t> SerializeTensor(const Tensor& tensor);
Result<Tensor> DeserializeTensor(const std::vector<uint8_t>& bytes);

std::vector<uint8_t> SerializeDataset(const data::Dataset& dataset);
Result<data::Dataset> DeserializeDataset(const std::vector<uint8_t>& bytes);

}  // namespace rafiki::storage

#endif  // RAFIKI_STORAGE_SERIALIZE_H_
