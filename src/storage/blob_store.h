#ifndef RAFIKI_STORAGE_BLOB_STORE_H_
#define RAFIKI_STORAGE_BLOB_STORE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace rafiki::storage {

/// Namespaced blob store standing in for HDFS (§6.2). Rafiki stores
/// datasets and cold model parameters here; the parameter server spills
/// infrequently-accessed parameters into it.
///
/// Keys are hierarchical strings ("datasets/food", "params/model1/fc0/w").
/// Thread-safe. Capacity in bytes is enforced to exercise spill/eviction
/// behaviour; 0 means unlimited.
///
/// With a `persist_dir`, blobs are written through to one file per key and
/// read back on a memory miss, so a restarted process (e.g. a recovered
/// study master) finds the checkpoints its predecessor wrote.
class BlobStore {
 public:
  explicit BlobStore(size_t capacity_bytes = 0, std::string persist_dir = "");

  /// Stores (overwrites) a blob. Fails with kOutOfRange if the value alone
  /// exceeds capacity.
  Status Put(const std::string& key, std::vector<uint8_t> value);

  /// Fetches a blob copy.
  Result<std::vector<uint8_t>> Get(const std::string& key) const;

  bool Exists(const std::string& key) const;
  Status Delete(const std::string& key);

  /// All keys with the given prefix, sorted.
  std::vector<std::string> List(const std::string& prefix) const;

  size_t size_bytes() const;
  size_t num_blobs() const;

  /// Counters for tests/metrics.
  size_t put_count() const;
  size_t get_count() const;

 private:
  std::string PathForKey(const std::string& key) const;

  mutable std::mutex mu_;
  size_t capacity_bytes_;
  std::string persist_dir_;
  // mutable: Get promotes persisted blobs into memory on a miss.
  mutable size_t used_bytes_ = 0;
  mutable std::map<std::string, std::vector<uint8_t>> blobs_;
  mutable size_t puts_ = 0;
  mutable size_t gets_ = 0;
};

}  // namespace rafiki::storage

#endif  // RAFIKI_STORAGE_BLOB_STORE_H_
