#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rafiki::nn {

void SoftmaxCrossEntropyInto(const Tensor& logits,
                             const std::vector<int64_t>& labels,
                             LossResult* out, int64_t grad_divisor) {
  RAFIKI_CHECK_EQ(logits.rank(), 2u);
  int64_t batch = logits.dim(0);
  int64_t classes = logits.dim(1);
  RAFIKI_CHECK_EQ(static_cast<size_t>(batch), labels.size());
  if (grad_divisor <= 0) grad_divisor = batch;

  out->grad.EnsureShape2(batch, classes);
  const float* in = logits.data();
  float* g = out->grad.data();
  float inv_div = 1.0f / static_cast<float>(grad_divisor);
  double loss = 0.0;
  // Softmax is computed row-wise straight into the gradient buffer; the
  // label column then gets the (p - 1) correction, and the whole row is
  // scaled by 1/divisor in the same pass.
  for (int64_t r = 0; r < batch; ++r) {
    const float* row = in + r * classes;
    float* grow = g + r * classes;
    int64_t y = labels[static_cast<size_t>(r)];
    RAFIKI_CHECK_GE(y, 0);
    RAFIKI_CHECK_LT(y, classes);
    float mx = *std::max_element(row, row + classes);
    double denom = 0.0;
    for (int64_t c = 0; c < classes; ++c) {
      grow[c] = std::exp(row[c] - mx);
      denom += grow[c];
    }
    float inv_denom = static_cast<float>(1.0 / denom);
    float p = grow[y] * inv_denom;
    loss -= std::log(std::max(p, 1e-12f));
    for (int64_t c = 0; c < classes; ++c) grow[c] *= inv_denom * inv_div;
    grow[y] -= inv_div;
  }
  out->loss = static_cast<float>(loss / static_cast<double>(batch));
}

LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<int64_t>& labels) {
  LossResult out;
  SoftmaxCrossEntropyInto(logits, labels, &out);
  return out;
}

double Accuracy(const Tensor& logits, const std::vector<int64_t>& labels) {
  RAFIKI_CHECK_EQ(logits.rank(), 2u);
  RAFIKI_CHECK_EQ(static_cast<size_t>(logits.dim(0)), labels.size());
  std::vector<int64_t> pred = logits.ArgmaxRows();
  size_t correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (pred[i] == labels[i]) ++correct;
  }
  return labels.empty()
             ? 0.0
             : static_cast<double>(correct) / static_cast<double>(labels.size());
}

LossResult MeanSquaredError(const Tensor& pred,
                            const std::vector<float>& targets) {
  RAFIKI_CHECK_EQ(static_cast<size_t>(pred.numel()), targets.size());
  LossResult out;
  out.grad.EnsureShape(pred.shape());
  const float* p = pred.data();
  const float* t = targets.data();
  float* g = out.grad.data();
  int64_t n = pred.numel();
  double loss = 0.0;
  float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    float d = p[i] - t[i];
    loss += static_cast<double>(d) * d;
    g[i] = 2.0f * d * inv_n;
  }
  out.loss = static_cast<float>(loss / static_cast<double>(n));
  return out;
}

}  // namespace rafiki::nn
