#include "nn/loss.h"

#include <cmath>

#include "common/logging.h"

namespace rafiki::nn {

LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<int64_t>& labels) {
  RAFIKI_CHECK_EQ(logits.rank(), 2u);
  int64_t batch = logits.dim(0);
  int64_t classes = logits.dim(1);
  RAFIKI_CHECK_EQ(static_cast<size_t>(batch), labels.size());

  Tensor probs = logits.SoftmaxRows();
  double loss = 0.0;
  LossResult out;
  out.grad = probs;
  float inv_batch = 1.0f / static_cast<float>(batch);
  for (int64_t r = 0; r < batch; ++r) {
    int64_t y = labels[static_cast<size_t>(r)];
    RAFIKI_CHECK_GE(y, 0);
    RAFIKI_CHECK_LT(y, classes);
    float p = probs.at2(r, y);
    loss -= std::log(std::max(p, 1e-12f));
    out.grad.at2(r, y) -= 1.0f;
  }
  out.grad.MulInPlace(inv_batch);
  out.loss = static_cast<float>(loss / static_cast<double>(batch));
  return out;
}

double Accuracy(const Tensor& logits, const std::vector<int64_t>& labels) {
  RAFIKI_CHECK_EQ(logits.rank(), 2u);
  RAFIKI_CHECK_EQ(static_cast<size_t>(logits.dim(0)), labels.size());
  std::vector<int64_t> pred = logits.ArgmaxRows();
  size_t correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (pred[i] == labels[i]) ++correct;
  }
  return labels.empty()
             ? 0.0
             : static_cast<double>(correct) / static_cast<double>(labels.size());
}

LossResult MeanSquaredError(const Tensor& pred,
                            const std::vector<float>& targets) {
  RAFIKI_CHECK_EQ(static_cast<size_t>(pred.numel()), targets.size());
  LossResult out;
  out.grad = Tensor(pred.shape());
  double loss = 0.0;
  float inv_n = 1.0f / static_cast<float>(targets.size());
  for (int64_t i = 0; i < pred.numel(); ++i) {
    float d = pred.at(i) - targets[static_cast<size_t>(i)];
    loss += static_cast<double>(d) * d;
    out.grad.at(i) = 2.0f * d * inv_n;
  }
  out.loss = static_cast<float>(loss / static_cast<double>(targets.size()));
  return out;
}

}  // namespace rafiki::nn
