#include "nn/net.h"

#include <utility>

#include "common/string_util.h"

namespace rafiki::nn {

void Net::Add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
}

Tensor Net::Forward(const Tensor& input, bool train) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->Forward(x, train);
  return x;
}

void Net::Backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
}

std::vector<ParamTensor*> Net::Params() {
  std::vector<ParamTensor*> out;
  for (auto& layer : layers_) {
    for (ParamTensor* p : layer->Params()) out.push_back(p);
  }
  return out;
}

void Net::ZeroGrad() {
  for (ParamTensor* p : Params()) p->grad.Fill(0.0f);
}

std::vector<std::pair<std::string, Tensor>> Net::StateDict() {
  std::vector<std::pair<std::string, Tensor>> out;
  for (ParamTensor* p : Params()) out.emplace_back(p->name, p->value);
  return out;
}

int Net::LoadStateShapeMatched(
    const std::vector<std::pair<std::string, Tensor>>& state) {
  int loaded = 0;
  for (ParamTensor* p : Params()) {
    for (const auto& [name, value] : state) {
      if (name == p->name && value.shape() == p->value.shape()) {
        p->value = value;
        ++loaded;
        break;
      }
    }
  }
  return loaded;
}

Net MakeMlp(const std::vector<int64_t>& dims, float init_std, float dropout,
            Rng& rng) {
  RAFIKI_CHECK_GE(dims.size(), 2u);
  Net net;
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    bool last = (i + 2 == dims.size());
    net.Add(std::make_unique<Linear>(dims[i], dims[i + 1], init_std, rng,
                                     StrFormat("fc%zu", i)));
    if (!last) {
      net.Add(std::make_unique<Relu>(StrFormat("relu%zu", i)));
      if (dropout > 0.0f) {
        net.Add(std::make_unique<Dropout>(dropout, rng.Next64(),
                                          StrFormat("drop%zu", i)));
      }
    }
  }
  return net;
}

}  // namespace rafiki::nn
