#include "nn/net.h"

#include <utility>

#include "common/string_util.h"

namespace rafiki::nn {

void Net::Add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  param_list_.clear();
  for (auto& l : layers_) {
    for (ParamTensor* p : l->Params()) param_list_.push_back(p);
  }
}

const Tensor& Net::Forward(const Tensor& input, bool train, Workspace* ws) {
  RAFIKI_CHECK_GT(layers_.size(), 0u) << "Forward through an empty net";
  if (ws->acts.size() != layers_.size()) ws->acts.resize(layers_.size());
  const Tensor* x = &input;
  for (size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->ForwardInto(*x, train, &ws->acts[i]);
    x = &ws->acts[i];
  }
  return *x;
}

void Net::Backward(const Tensor& grad_output, Workspace* ws) {
  RAFIKI_CHECK_GT(layers_.size(), 0u);
  if (ws->grads.size() != layers_.size()) ws->grads.resize(layers_.size());
  const Tensor* g = &grad_output;
  for (size_t i = layers_.size(); i > 0; --i) {
    layers_[i - 1]->BackwardInto(*g, &ws->grads[i - 1]);
    g = &ws->grads[i - 1];
  }
}

void Net::Reserve(const Shape& input_shape, Workspace* ws) {
  RAFIKI_CHECK_GT(layers_.size(), 0u);
  ws->acts.resize(layers_.size());
  ws->grads.resize(layers_.size());
  Shape shape = input_shape;
  for (size_t i = 0; i < layers_.size(); ++i) {
    ws->grads[i].EnsureShape(shape);  // dL/d(input of layer i)
    shape = layers_[i]->Reserve(shape);
    ws->acts[i].EnsureShape(shape);  // output of layer i
  }
}

Tensor Net::Forward(const Tensor& input, bool train) {
  return Forward(input, train, &scratch_);
}

void Net::Backward(const Tensor& grad_output) {
  Backward(grad_output, &scratch_);
}

std::vector<ParamTensor*> Net::Params() { return param_list_; }

const std::vector<ParamTensor*>& Net::ParamList() { return param_list_; }

void Net::ZeroGrad() {
  for (ParamTensor* p : param_list_) p->grad.Fill(0.0f);
}

std::vector<std::pair<std::string, Tensor>> Net::StateDict() {
  std::vector<std::pair<std::string, Tensor>> out;
  for (ParamTensor* p : param_list_) out.emplace_back(p->name, p->value);
  return out;
}

int Net::LoadStateShapeMatched(
    const std::vector<std::pair<std::string, Tensor>>& state) {
  int loaded = 0;
  for (ParamTensor* p : Params()) {
    for (const auto& [name, value] : state) {
      if (name == p->name && value.shape() == p->value.shape()) {
        p->value = value;
        ++loaded;
        break;
      }
    }
  }
  return loaded;
}

void Net::CopyParamsFrom(Net& src) {
  const std::vector<ParamTensor*>& theirs = src.ParamList();
  RAFIKI_CHECK_EQ(param_list_.size(), theirs.size())
      << "replica/master architecture mismatch";
  for (size_t i = 0; i < param_list_.size(); ++i) {
    param_list_[i]->value.CopyFrom(theirs[i]->value);
  }
}

Net Net::Clone() const {
  Net out;
  for (const auto& layer : layers_) out.Add(layer->Clone());
  return out;
}

Net MakeMlp(const std::vector<int64_t>& dims, float init_std, float dropout,
            Rng& rng) {
  RAFIKI_CHECK_GE(dims.size(), 2u);
  Net net;
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    bool last = (i + 2 == dims.size());
    net.Add(std::make_unique<Linear>(dims[i], dims[i + 1], init_std, rng,
                                     StrFormat("fc%zu", i)));
    if (!last) {
      net.Add(std::make_unique<Relu>(StrFormat("relu%zu", i)));
      if (dropout > 0.0f) {
        net.Add(std::make_unique<Dropout>(dropout, rng.Next64(),
                                          StrFormat("drop%zu", i)));
      }
    }
  }
  return net;
}

}  // namespace rafiki::nn
