#ifndef RAFIKI_NN_NET_H_
#define RAFIKI_NN_NET_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "nn/layer.h"

namespace rafiki::nn {

/// A feed-forward stack of layers with shared forward/backward plumbing.
/// This is the "model" that Rafiki trials train and the parameter server
/// checkpoints.
class Net {
 public:
  Net() = default;
  Net(Net&&) = default;
  Net& operator=(Net&&) = default;

  void Add(std::unique_ptr<Layer> layer);

  Tensor Forward(const Tensor& input, bool train);
  /// Backpropagates dL/d(output) through every layer; parameter grads
  /// accumulate into each layer's ParamTensor::grad.
  void Backward(const Tensor& grad_output);

  /// All trainable parameters, in layer order.
  std::vector<ParamTensor*> Params();

  /// Sets every parameter gradient to zero (call before each minibatch).
  void ZeroGrad();

  /// Snapshot of parameter values, keyed by parameter name.
  std::vector<std::pair<std::string, Tensor>> StateDict();

  /// Loads values for every parameter whose name AND shape match an entry
  /// in `state`; mismatched entries are skipped. Returns the number of
  /// parameters loaded. This implements the paper's shape-matched
  /// warm-start (§4.2.2): layers with identical configuration reuse
  /// checkpointed values even when other layers differ.
  int LoadStateShapeMatched(
      const std::vector<std::pair<std::string, Tensor>>& state);

  size_t num_layers() const { return layers_.size(); }
  Layer& layer(size_t i) { return *layers_[i]; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Builds a multi-layer perceptron: Linear(+Dropout)+ReLU per hidden layer
/// and a final Linear producing `dims.back()` logits. `dims` is
/// {in, hidden..., out}.
Net MakeMlp(const std::vector<int64_t>& dims, float init_std, float dropout,
            Rng& rng);

}  // namespace rafiki::nn

#endif  // RAFIKI_NN_NET_H_
