#ifndef RAFIKI_NN_NET_H_
#define RAFIKI_NN_NET_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "nn/layer.h"

namespace rafiki::nn {

/// Per-net training workspace: the boundary activation and gradient buffers
/// one forward/backward pass writes into. Owned by the caller (trainer,
/// replica, benchmark) so several workers can drive replicas of the same
/// architecture without sharing any mutable activation state. After
/// `Net::Reserve` (or one warm-up pass) every buffer is sized and a
/// steady-state Forward+Backward performs zero heap allocations.
class Workspace {
 public:
  /// acts[i] holds the output of layer i; grads[i] holds dL/d(input of
  /// layer i). Sized lazily by Net::Forward/Backward or eagerly by
  /// Net::Reserve.
  std::vector<Tensor> acts;
  std::vector<Tensor> grads;
};

/// A feed-forward stack of layers with shared forward/backward plumbing.
/// This is the "model" that Rafiki trials train and the parameter server
/// checkpoints.
///
/// Two call styles:
///  * Workspace style (hot path): `Forward(x, train, &ws)` returns a
///    reference into `ws`; `Backward(g, &ws)` reuses `ws`'s gradient
///    buffers. Allocation-free in the steady state.
///  * Value style (legacy/convenience): `Forward(x, train)` routes through
///    an internal scratch workspace and copies the output out, so existing
///    consumers (serving runtime, RL, tests) keep value semantics while
///    still reusing buffers underneath.
class Net {
 public:
  Net() = default;
  Net(Net&&) = default;
  Net& operator=(Net&&) = default;

  void Add(std::unique_ptr<Layer> layer);

  /// Workspace-backed pass; the returned reference lives in `ws` and stays
  /// valid until the next Forward with the same workspace.
  const Tensor& Forward(const Tensor& input, bool train, Workspace* ws);
  /// Backpropagates dL/d(output) through every layer; parameter grads
  /// accumulate into each layer's ParamTensor::grad.
  void Backward(const Tensor& grad_output, Workspace* ws);

  /// Pre-sizes `ws` and every layer-internal cache for inputs of
  /// `input_shape`, so the first training step is already allocation-free.
  /// Touches no parameters or statistics.
  void Reserve(const Shape& input_shape, Workspace* ws);

  /// Value-semantics wrappers over the workspace path.
  Tensor Forward(const Tensor& input, bool train);
  void Backward(const Tensor& grad_output);

  /// All trainable parameters, in layer order (fresh vector).
  std::vector<ParamTensor*> Params();

  /// Cached parameter list, rebuilt only when layers are added — the
  /// allocation-free counterpart of Params() for per-step use.
  const std::vector<ParamTensor*>& ParamList();

  /// Sets every parameter gradient to zero (call before each minibatch).
  void ZeroGrad();

  /// Snapshot of parameter values, keyed by parameter name.
  std::vector<std::pair<std::string, Tensor>> StateDict();

  /// Loads values for every parameter whose name AND shape match an entry
  /// in `state`; mismatched entries are skipped. Returns the number of
  /// parameters loaded. This implements the paper's shape-matched
  /// warm-start (§4.2.2): layers with identical configuration reuse
  /// checkpointed values even when other layers differ.
  int LoadStateShapeMatched(
      const std::vector<std::pair<std::string, Tensor>>& state);

  /// Copies parameter *values* from `src` (same architecture required).
  /// Grad accumulators are untouched. Allocation-free once shapes match;
  /// used to sync data-parallel replicas with the master each step.
  void CopyParamsFrom(Net& src);

  /// Deep copy: same architecture and parameter values (via Layer::Clone),
  /// fresh caches and workspaces. Lets a serving replica run the same model
  /// on its own thread without sharing any mutable forward state.
  Net Clone() const;

  size_t num_layers() const { return layers_.size(); }
  Layer& layer(size_t i) { return *layers_[i]; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<ParamTensor*> param_list_;  // cache; rebuilt on Add
  Workspace scratch_;                     // backs the value-style wrappers
};

/// Builds a multi-layer perceptron: Linear(+Dropout)+ReLU per hidden layer
/// and a final Linear producing `dims.back()` logits. `dims` is
/// {in, hidden..., out}.
Net MakeMlp(const std::vector<int64_t>& dims, float init_std, float dropout,
            Rng& rng);

}  // namespace rafiki::nn

#endif  // RAFIKI_NN_NET_H_
