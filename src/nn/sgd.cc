#include "nn/sgd.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"

namespace rafiki::nn {

double Sgd::CurrentLr() const {
  double lr = options_.learning_rate * lr_scale_;
  if (options_.decay_every_steps > 0) {
    if (options_.exponential_decay) {
      int k = steps_ / options_.decay_every_steps;
      lr *= std::pow(options_.lr_decay, k);
    } else if (options_.total_steps > 0) {
      double frac =
          std::min(1.0, static_cast<double>(steps_) /
                            static_cast<double>(options_.total_steps));
      double floor = options_.learning_rate * options_.min_lr_fraction;
      lr = lr - frac * (lr - floor);
    }
  }
  return lr;
}

namespace {

/// The fused per-element update: g_eff = g + wd*w; v = mu*v - lr*g_eff;
/// w += v. Identical math and order for the serial and parallel paths, so
/// splitting across threads cannot change any element's result.
void FusedUpdate(float* w, const float* g, float* v, int64_t begin,
                 int64_t end, float mu, float wd, float lr) {
  for (int64_t i = begin; i < end; ++i) {
    float ge = g[i] + wd * w[i];
    float vel = mu * v[i] - lr * ge;
    v[i] = vel;
    w[i] += vel;
  }
}

}  // namespace

void Sgd::Step(const std::vector<ParamTensor*>& params) {
  auto lr = static_cast<float>(CurrentLr());
  auto mu = static_cast<float>(options_.momentum);
  auto wd = static_cast<float>(options_.weight_decay);
  // A changed parameter count means a different net was handed in; position
  // keys are meaningless across that boundary, so restart all momentum.
  if (velocity_.size() != params.size()) {
    velocity_.assign(params.size(), Tensor());
  }
  for (size_t s = 0; s < params.size(); ++s) {
    ParamTensor* p = params[s];
    Tensor& v = velocity_[s];
    if (!v.SameShape(p->value)) {
      // First step, or this parameter was re-shaped by a warm start across
      // architectures; restart its velocity only.
      v = Tensor::Zeros(p->value.shape());
    }
    float* w = p->value.data();
    const float* g = p->grad.data();
    float* vel = v.data();
    int64_t n = v.numel();
    if (n >= kParallelMinElems) {
      ThreadPool& pool = ThreadPool::Global();
      int64_t grain =
          std::max<int64_t>(1, (n + pool.num_threads() - 1) /
                                   pool.num_threads());
      pool.ParallelFor(0, n, grain, [&](int64_t b, int64_t e) {
        FusedUpdate(w, g, vel, b, e, mu, wd, lr);
      });
    } else {
      FusedUpdate(w, g, vel, 0, n, mu, wd, lr);
    }
  }
  ++steps_;
}

}  // namespace rafiki::nn
