#include "nn/sgd.h"

#include <algorithm>
#include <cmath>

namespace rafiki::nn {

double Sgd::CurrentLr() const {
  double lr = options_.learning_rate * lr_scale_;
  if (options_.decay_every_steps > 0) {
    if (options_.exponential_decay) {
      int k = steps_ / options_.decay_every_steps;
      lr *= std::pow(options_.lr_decay, k);
    } else if (options_.total_steps > 0) {
      double frac =
          std::min(1.0, static_cast<double>(steps_) /
                            static_cast<double>(options_.total_steps));
      double floor = options_.learning_rate * options_.min_lr_fraction;
      lr = lr - frac * (lr - floor);
    }
  }
  return lr;
}

void Sgd::Step(const std::vector<ParamTensor*>& params) {
  double lr = CurrentLr();
  for (ParamTensor* p : params) {
    auto [it, inserted] =
        velocity_.try_emplace(p->name, Tensor::Zeros(p->value.shape()));
    Tensor& v = it->second;
    if (!inserted && !v.SameShape(p->value)) {
      // Parameter was re-shaped by a warm start across architectures;
      // restart its velocity.
      v = Tensor::Zeros(p->value.shape());
    }
    // g_eff = grad + weight_decay * w
    for (int64_t i = 0; i < v.numel(); ++i) {
      float g = p->grad.at(i) +
                static_cast<float>(options_.weight_decay) * p->value.at(i);
      float vel = static_cast<float>(options_.momentum) * v.at(i) -
                  static_cast<float>(lr) * g;
      v.at(i) = vel;
      p->value.at(i) += vel;
    }
  }
  ++steps_;
}

}  // namespace rafiki::nn
