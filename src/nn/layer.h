#ifndef RAFIKI_NN_LAYER_H_
#define RAFIKI_NN_LAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace rafiki::nn {

/// A named trainable parameter with its gradient accumulator.
struct ParamTensor {
  std::string name;
  Tensor value;
  Tensor grad;
};

/// Base class for differentiable layers. Layers cache whatever they need
/// from `Forward` so that a following `Backward` can produce input
/// gradients and accumulate parameter gradients; the trainer drives
/// Forward -> loss -> Backward -> optimizer step.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output. `train` enables training-only behaviour
  /// (e.g. dropout masking).
  virtual Tensor Forward(const Tensor& input, bool train) = 0;

  /// Given dL/d(output), accumulates parameter grads and returns dL/d(input).
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  /// Trainable parameters (possibly empty). Pointers remain valid for the
  /// lifetime of the layer.
  virtual std::vector<ParamTensor*> Params() { return {}; }

  virtual std::string name() const = 0;
};

/// Fully-connected layer: y = x W + b for x [batch, in].
class Linear : public Layer {
 public:
  /// `init_std` is the Gaussian weight-initialization stddev — one of the
  /// paper's group-3 hyper-parameters (Table 1).
  Linear(int64_t in_features, int64_t out_features, float init_std, Rng& rng,
         std::string name = "linear");

  Tensor Forward(const Tensor& input, bool train) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<ParamTensor*> Params() override { return {&weight_, &bias_}; }
  std::string name() const override { return name_; }

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  ParamTensor weight_;  // [in, out]
  ParamTensor bias_;    // [1, out]
  Tensor cached_input_;
  std::string name_;
};

/// Elementwise rectifier.
class Relu : public Layer {
 public:
  explicit Relu(std::string name = "relu") : name_(std::move(name)) {}
  Tensor Forward(const Tensor& input, bool train) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return name_; }

 private:
  Tensor cached_input_;
  std::string name_;
};

/// Inverted dropout; identity at inference time. The drop rate is a group-3
/// hyper-parameter in the paper's CIFAR-10 study.
class Dropout : public Layer {
 public:
  Dropout(float rate, uint64_t seed, std::string name = "dropout");
  Tensor Forward(const Tensor& input, bool train) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return name_; }

  float rate() const { return rate_; }

 private:
  float rate_;
  Rng rng_;
  Tensor mask_;
  std::string name_;
};

/// 2-D convolution over NCHW input, stride 1, symmetric zero padding.
/// Implemented as im2col + blocked GEMM (`tensor/kernels.h`) in both
/// directions; used in tests and the architecture-tuning warm-start
/// demonstration (shape-matched parameter reuse, §4.2.2).
class Conv2D : public Layer {
 public:
  Conv2D(int64_t in_channels, int64_t out_channels, int64_t kernel,
         int64_t padding, float init_std, Rng& rng,
         std::string name = "conv");

  Tensor Forward(const Tensor& input, bool train) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<ParamTensor*> Params() override { return {&weight_, &bias_}; }
  std::string name() const override { return name_; }

  int64_t kernel() const { return kernel_; }

 private:
  int64_t in_channels_;
  int64_t out_channels_;
  int64_t kernel_;
  int64_t padding_;
  ParamTensor weight_;  // [out_c, in_c, k, k]
  ParamTensor bias_;    // [out_c]
  Tensor cached_input_;
  std::string name_;
};

/// Batch normalization over [batch, features] activations: per-feature
/// standardization with learned scale/shift, batch statistics during
/// training and running statistics at inference — the normalization the
/// paper's 8-layer CIFAR network relies on for trainability at the large
/// learning rates the tuner explores.
class BatchNorm : public Layer {
 public:
  BatchNorm(int64_t features, std::string name = "bn",
            double momentum = 0.9, double epsilon = 1e-5);

  Tensor Forward(const Tensor& input, bool train) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<ParamTensor*> Params() override { return {&gamma_, &beta_}; }
  std::string name() const override { return name_; }

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  int64_t features_;
  double momentum_;
  double epsilon_;
  ParamTensor gamma_;  // [1, features]
  ParamTensor beta_;   // [1, features]
  Tensor running_mean_;
  Tensor running_var_;
  // Forward caches for backward.
  Tensor cached_xhat_;
  Tensor cached_centered_;
  std::vector<double> cached_inv_std_;
  std::string name_;
};

/// 2-D max pooling over NCHW input with square window and stride equal to
/// the window size (the standard ConvNet downsampling the paper's 8-layer
/// CIFAR network uses between stages).
class MaxPool2D : public Layer {
 public:
  explicit MaxPool2D(int64_t window, std::string name = "maxpool");

  Tensor Forward(const Tensor& input, bool train) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return name_; }

 private:
  int64_t window_;
  Shape cached_input_shape_;
  std::vector<int64_t> argmax_;  // flat input index per output element
  std::string name_;
};

/// Collapses [N, ...] to [N, prod(...)].
class Flatten : public Layer {
 public:
  explicit Flatten(std::string name = "flatten") : name_(std::move(name)) {}
  Tensor Forward(const Tensor& input, bool train) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return name_; }

 private:
  Shape cached_shape_;
  std::string name_;
};

}  // namespace rafiki::nn

#endif  // RAFIKI_NN_LAYER_H_
