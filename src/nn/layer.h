#ifndef RAFIKI_NN_LAYER_H_
#define RAFIKI_NN_LAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace rafiki::nn {

/// A named trainable parameter with its gradient accumulator.
struct ParamTensor {
  std::string name;
  Tensor value;
  Tensor grad;
};

/// Base class for differentiable layers. Layers cache whatever they need
/// from the forward pass so that a following backward pass can produce input
/// gradients and accumulate parameter gradients; the trainer drives
/// Forward -> loss -> Backward -> optimizer step.
///
/// The primitive interface writes into caller-owned buffers
/// (`ForwardInto`/`BackwardInto`): once a layer has seen a given input shape
/// — either via `Reserve` or a first warm-up pass — subsequent passes at
/// that shape perform zero heap allocations. Internal caches (input copies,
/// dropout masks, im2col scratch) are persistent members rewritten in place.
/// The by-value `Forward`/`Backward` convenience wrappers preserve the
/// original call style for tests and non-hot-path consumers.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output into `*out` (re-shaped as needed; must not
  /// alias `input`). `train` enables training-only behaviour (dropout
  /// masking, batch statistics) and the caching backward depends on.
  virtual void ForwardInto(const Tensor& input, bool train, Tensor* out) = 0;

  /// Given dL/d(output), accumulates parameter grads and writes
  /// dL/d(input) into `*grad_input` (must not alias `grad_output`).
  virtual void BackwardInto(const Tensor& grad_output,
                            Tensor* grad_input) = 0;

  /// Pre-sizes every internal buffer for inputs of `input_shape` and
  /// returns the corresponding output shape, so a Net can warm a whole
  /// workspace without running data through it. Mutates no statistics.
  virtual Shape Reserve(const Shape& input_shape) { return input_shape; }

  /// By-value convenience wrappers over the Into primitives.
  Tensor Forward(const Tensor& input, bool train) {
    Tensor out;
    ForwardInto(input, train, &out);
    return out;
  }
  Tensor Backward(const Tensor& grad_output) {
    Tensor grad_input;
    BackwardInto(grad_output, &grad_input);
    return grad_input;
  }

  /// Trainable parameters (possibly empty). Pointers remain valid for the
  /// lifetime of the layer.
  virtual std::vector<ParamTensor*> Params() { return {}; }

  /// Deep copy carrying configuration, parameter values, and inference
  /// statistics (e.g. BatchNorm running moments) but fresh caches and zero
  /// gradient accumulators — what a serving replica needs to run the same
  /// model on its own thread without sharing mutable state.
  virtual std::unique_ptr<Layer> Clone() const = 0;

  virtual std::string name() const = 0;
};

/// Fully-connected layer: y = x W + b for x [batch, in].
class Linear : public Layer {
 public:
  /// `init_std` is the Gaussian weight-initialization stddev — one of the
  /// paper's group-3 hyper-parameters (Table 1).
  Linear(int64_t in_features, int64_t out_features, float init_std, Rng& rng,
         std::string name = "linear");

  void ForwardInto(const Tensor& input, bool train, Tensor* out) override;
  void BackwardInto(const Tensor& grad_output, Tensor* grad_input) override;
  Shape Reserve(const Shape& input_shape) override;
  std::vector<ParamTensor*> Params() override { return {&weight_, &bias_}; }
  std::unique_ptr<Layer> Clone() const override;
  std::string name() const override { return name_; }

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  ParamTensor weight_;  // [in, out]
  ParamTensor bias_;    // [1, out]
  Tensor cached_input_;
  std::string name_;
};

/// Elementwise rectifier.
class Relu : public Layer {
 public:
  explicit Relu(std::string name = "relu") : name_(std::move(name)) {}
  void ForwardInto(const Tensor& input, bool train, Tensor* out) override;
  void BackwardInto(const Tensor& grad_output, Tensor* grad_input) override;
  Shape Reserve(const Shape& input_shape) override;
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<Relu>(name_);
  }
  std::string name() const override { return name_; }

 private:
  Tensor cached_input_;
  std::string name_;
};

/// Inverted dropout; identity at inference time. The drop rate is a group-3
/// hyper-parameter in the paper's CIFAR-10 study.
class Dropout : public Layer {
 public:
  Dropout(float rate, uint64_t seed, std::string name = "dropout");
  void ForwardInto(const Tensor& input, bool train, Tensor* out) override;
  void BackwardInto(const Tensor& grad_output, Tensor* grad_input) override;
  Shape Reserve(const Shape& input_shape) override;
  std::unique_ptr<Layer> Clone() const override;
  std::string name() const override { return name_; }

  float rate() const { return rate_; }

 private:
  float rate_;
  Rng rng_;
  Tensor mask_;
  bool mask_valid_ = false;  // a training Forward has populated mask_
  std::string name_;
};

/// 2-D convolution over NCHW input, stride 1, symmetric zero padding.
/// Implemented as im2col + blocked GEMM (`tensor/kernels.h`) in both
/// directions; used in tests and the architecture-tuning warm-start
/// demonstration (shape-matched parameter reuse, §4.2.2).
class Conv2D : public Layer {
 public:
  Conv2D(int64_t in_channels, int64_t out_channels, int64_t kernel,
         int64_t padding, float init_std, Rng& rng,
         std::string name = "conv");

  void ForwardInto(const Tensor& input, bool train, Tensor* out) override;
  void BackwardInto(const Tensor& grad_output, Tensor* grad_input) override;
  Shape Reserve(const Shape& input_shape) override;
  std::vector<ParamTensor*> Params() override { return {&weight_, &bias_}; }
  std::unique_ptr<Layer> Clone() const override;
  std::string name() const override { return name_; }

  int64_t kernel() const { return kernel_; }

 private:
  int64_t in_channels_;
  int64_t out_channels_;
  int64_t kernel_;
  int64_t padding_;
  ParamTensor weight_;  // [out_c, in_c, k, k]
  ParamTensor bias_;    // [out_c]
  Tensor cached_input_;
  std::vector<float> col_;       // im2col scratch, one sample
  std::vector<float> grad_col_;  // backward column scratch
  std::string name_;
};

/// Batch normalization over [batch, features] activations: per-feature
/// standardization with learned scale/shift, batch statistics during
/// training and running statistics at inference — the normalization the
/// paper's 8-layer CIFAR network relies on for trainability at the large
/// learning rates the tuner explores.
class BatchNorm : public Layer {
 public:
  BatchNorm(int64_t features, std::string name = "bn",
            double momentum = 0.9, double epsilon = 1e-5);

  void ForwardInto(const Tensor& input, bool train, Tensor* out) override;
  void BackwardInto(const Tensor& grad_output, Tensor* grad_input) override;
  Shape Reserve(const Shape& input_shape) override;
  std::vector<ParamTensor*> Params() override { return {&gamma_, &beta_}; }
  std::unique_ptr<Layer> Clone() const override;
  std::string name() const override { return name_; }

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  int64_t features_;
  double momentum_;
  double epsilon_;
  ParamTensor gamma_;  // [1, features]
  ParamTensor beta_;   // [1, features]
  Tensor running_mean_;
  Tensor running_var_;
  // Forward caches for backward.
  Tensor cached_xhat_;
  Tensor cached_centered_;
  std::vector<double> cached_inv_std_;
  std::string name_;
};

/// 2-D max pooling over NCHW input with square window and stride equal to
/// the window size (the standard ConvNet downsampling the paper's 8-layer
/// CIFAR network uses between stages).
class MaxPool2D : public Layer {
 public:
  explicit MaxPool2D(int64_t window, std::string name = "maxpool");

  void ForwardInto(const Tensor& input, bool train, Tensor* out) override;
  void BackwardInto(const Tensor& grad_output, Tensor* grad_input) override;
  Shape Reserve(const Shape& input_shape) override;
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<MaxPool2D>(window_, name_);
  }
  std::string name() const override { return name_; }

 private:
  int64_t window_;
  Shape cached_input_shape_;
  std::vector<int64_t> argmax_;  // flat input index per output element
  std::string name_;
};

/// Collapses [N, ...] to [N, prod(...)].
class Flatten : public Layer {
 public:
  explicit Flatten(std::string name = "flatten") : name_(std::move(name)) {}
  void ForwardInto(const Tensor& input, bool train, Tensor* out) override;
  void BackwardInto(const Tensor& grad_output, Tensor* grad_input) override;
  Shape Reserve(const Shape& input_shape) override;
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<Flatten>(name_);
  }
  std::string name() const override { return name_; }

 private:
  Shape cached_shape_;
  std::string name_;
};

}  // namespace rafiki::nn

#endif  // RAFIKI_NN_LAYER_H_
