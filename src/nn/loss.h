#ifndef RAFIKI_NN_LOSS_H_
#define RAFIKI_NN_LOSS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace rafiki::nn {

/// Loss value plus the gradient with respect to the logits.
struct LossResult {
  float loss = 0.0f;
  Tensor grad;  // same shape as the logits
};

/// Mean softmax cross-entropy over a batch of logits [batch, classes] with
/// integer class labels. The returned gradient is already divided by the
/// batch size.
LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<int64_t>& labels);

/// Fraction of rows whose argmax equals the label.
double Accuracy(const Tensor& logits, const std::vector<int64_t>& labels);

/// Mean squared error between predictions [n] (or [n,1]) and targets; the
/// gradient is 2*(pred-target)/n. Used by the RL critic.
LossResult MeanSquaredError(const Tensor& pred,
                            const std::vector<float>& targets);

}  // namespace rafiki::nn

#endif  // RAFIKI_NN_LOSS_H_
