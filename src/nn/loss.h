#ifndef RAFIKI_NN_LOSS_H_
#define RAFIKI_NN_LOSS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace rafiki::nn {

/// Loss value plus the gradient with respect to the logits.
struct LossResult {
  float loss = 0.0f;
  Tensor grad;  // same shape as the logits
};

/// Mean softmax cross-entropy over a batch of logits [batch, classes] with
/// integer class labels. The returned gradient is already divided by the
/// batch size.
LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<int64_t>& labels);

/// Buffer-reusing variant: writes the gradient into `out->grad` (re-shaped
/// as needed) — allocation-free once `out` is warm. `grad_divisor` is the
/// batch size the gradient is divided by; 0 means the local batch
/// (`logits.dim(0)`). Data-parallel trainers pass the *global* minibatch
/// size so per-shard gradients sum to exactly the serial gradient.
/// `out->loss` is always the mean over the local rows.
void SoftmaxCrossEntropyInto(const Tensor& logits,
                             const std::vector<int64_t>& labels,
                             LossResult* out, int64_t grad_divisor = 0);

/// Fraction of rows whose argmax equals the label.
double Accuracy(const Tensor& logits, const std::vector<int64_t>& labels);

/// Mean squared error between predictions [n] (or [n,1]) and targets; the
/// gradient is 2*(pred-target)/n. Used by the RL critic.
LossResult MeanSquaredError(const Tensor& pred,
                            const std::vector<float>& targets);

}  // namespace rafiki::nn

#endif  // RAFIKI_NN_LOSS_H_
