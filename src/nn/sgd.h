#ifndef RAFIKI_NN_SGD_H_
#define RAFIKI_NN_SGD_H_

#include <vector>

#include "nn/layer.h"

namespace rafiki::nn {

/// Stochastic gradient descent with momentum, L2 weight decay and a decaying
/// learning-rate schedule — exactly the group-3 hyper-parameters the paper
/// tunes in Section 7.1.1 (learning rate, momentum, weight decay), plus the
/// decay rate/method discussed under Table 1.
struct SgdOptions {
  double learning_rate = 0.1;
  double momentum = 0.9;
  double weight_decay = 1e-4;
  /// Multiplicative decay applied every `decay_every_steps` steps when
  /// `exponential_decay` is true; otherwise a linear decay to
  /// `learning_rate * min_lr_fraction` over `total_steps`.
  double lr_decay = 1.0;
  int decay_every_steps = 0;  // 0 disables scheduled decay
  bool exponential_decay = true;
  int total_steps = 0;
  double min_lr_fraction = 0.01;
};

class Sgd {
 public:
  explicit Sgd(SgdOptions options) : options_(options) {}

  /// Applies one fused update to every parameter: v = mu*v - lr*(g + wd*w);
  /// w += v, in a single pass over raw contiguous data. Tensors with at
  /// least `kParallelMinElems` elements are split across the global thread
  /// pool.
  ///
  /// Velocity buffers are keyed by *position* in `params` — the flattened
  /// (layer index, param slot) identity — never by parameter name, so two
  /// identically-named parameters keep independent momentum. The same
  /// logical parameter list must therefore be passed on every step (which
  /// is what Net::ParamList() provides); if the list length changes the
  /// velocities restart from zero, and a re-shaped parameter (warm start
  /// across architectures) restarts only its own slot.
  void Step(const std::vector<ParamTensor*>& params);

  /// Learning rate currently in effect (after schedule).
  double CurrentLr() const;

  /// Manually scales the base learning rate (used by plateau-driven decays).
  void ScaleLr(double factor) { lr_scale_ *= factor; }

  int steps() const { return steps_; }
  const SgdOptions& options() const { return options_; }

  /// Element count at and above which one parameter's update is split
  /// across the thread pool. Below it the update runs on the caller — the
  /// allocation-free path the zero-alloc training-step test pins down.
  static constexpr int64_t kParallelMinElems = 1 << 16;

 private:
  SgdOptions options_;
  std::vector<Tensor> velocity_;  // slot i pairs with params[i]
  int steps_ = 0;
  double lr_scale_ = 1.0;
};

}  // namespace rafiki::nn

#endif  // RAFIKI_NN_SGD_H_
