#include "nn/layer.h"

#include <cmath>
#include <vector>

#include "tensor/kernels.h"

namespace rafiki::nn {

Linear::Linear(int64_t in_features, int64_t out_features, float init_std,
               Rng& rng, std::string name)
    : in_features_(in_features),
      out_features_(out_features),
      name_(std::move(name)) {
  weight_.name = name_ + "/weight";
  weight_.value = Tensor::Randn({in_features, out_features}, rng, init_std);
  weight_.grad = Tensor::Zeros({in_features, out_features});
  bias_.name = name_ + "/bias";
  bias_.value = Tensor::Zeros({1, out_features});
  bias_.grad = Tensor::Zeros({1, out_features});
}

Tensor Linear::Forward(const Tensor& input, bool train) {
  RAFIKI_CHECK_EQ(input.rank(), 2u);
  RAFIKI_CHECK_EQ(input.dim(1), in_features_);
  if (train) cached_input_ = input;
  Tensor out = MatMul(input, weight_.value);
  int64_t batch = out.dim(0);
  const float* b = bias_.value.data();
  for (int64_t r = 0; r < batch; ++r) {
    float* row = out.data() + r * out_features_;
    for (int64_t c = 0; c < out_features_; ++c) row[c] += b[c];
  }
  return out;
}

Tensor Linear::Backward(const Tensor& grad_output) {
  RAFIKI_CHECK_GT(cached_input_.numel(), 0)
      << "Backward without a training Forward";
  // dW += x^T g ; db += colsum(g) ; dx = g W^T
  kernels::GemmTN(cached_input_.data(), grad_output.data(),
                  weight_.grad.data(), in_features_, cached_input_.dim(0),
                  out_features_);
  int64_t batch = grad_output.dim(0);
  float* bg = bias_.grad.data();
  for (int64_t r = 0; r < batch; ++r) {
    const float* row = grad_output.data() + r * out_features_;
    for (int64_t c = 0; c < out_features_; ++c) bg[c] += row[c];
  }
  return MatMulTransB(grad_output, weight_.value);
}

Tensor Relu::Forward(const Tensor& input, bool train) {
  if (train) cached_input_ = input;
  return input.Relu();
}

Tensor Relu::Backward(const Tensor& grad_output) {
  RAFIKI_CHECK(cached_input_.SameShape(grad_output));
  Tensor out = grad_output;
  const float* in = cached_input_.data();
  float* g = out.data();
  int64_t n = out.numel();
  for (int64_t i = 0; i < n; ++i) {
    if (in[i] <= 0.0f) g[i] = 0.0f;
  }
  return out;
}

Dropout::Dropout(float rate, uint64_t seed, std::string name)
    : rate_(rate), rng_(seed), name_(std::move(name)) {
  RAFIKI_CHECK_GE(rate, 0.0f);
  RAFIKI_CHECK_LT(rate, 1.0f);
}

Tensor Dropout::Forward(const Tensor& input, bool train) {
  if (!train || rate_ == 0.0f) return input;
  mask_ = Tensor(input.shape());
  float scale = 1.0f / (1.0f - rate_);
  for (int64_t i = 0; i < mask_.numel(); ++i) {
    mask_.at(i) = rng_.Bernoulli(rate_) ? 0.0f : scale;
  }
  return input.Hadamard(mask_);
}

Tensor Dropout::Backward(const Tensor& grad_output) {
  if (mask_.numel() == 0) return grad_output;
  return grad_output.Hadamard(mask_);
}

Conv2D::Conv2D(int64_t in_channels, int64_t out_channels, int64_t kernel,
               int64_t padding, float init_std, Rng& rng, std::string name)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      padding_(padding),
      name_(std::move(name)) {
  weight_.name = name_ + "/weight";
  weight_.value =
      Tensor::Randn({out_channels, in_channels, kernel, kernel}, rng,
                    init_std);
  weight_.grad = Tensor::Zeros(weight_.value.shape());
  bias_.name = name_ + "/bias";
  bias_.value = Tensor::Zeros({out_channels});
  bias_.grad = Tensor::Zeros({out_channels});
}

Tensor Conv2D::Forward(const Tensor& input, bool train) {
  RAFIKI_CHECK_EQ(input.rank(), 4u);
  RAFIKI_CHECK_EQ(input.dim(1), in_channels_);
  if (train) cached_input_ = input;
  int64_t batch = input.dim(0);
  int64_t h = input.dim(2), w = input.dim(3);
  int64_t oh = h + 2 * padding_ - kernel_ + 1;
  int64_t ow = w + 2 * padding_ - kernel_ + 1;
  RAFIKI_CHECK_GT(oh, 0);
  RAFIKI_CHECK_GT(ow, 0);
  Tensor out({batch, out_channels_, oh, ow});
  // im2col + GEMM: the weight [OC, IC, K, K] is already row-major
  // [OC, IC*K*K], so each sample is one GEMM against its column matrix.
  int64_t col_rows = in_channels_ * kernel_ * kernel_;
  int64_t col_cols = oh * ow;
  std::vector<float> col(static_cast<size_t>(col_rows * col_cols));
  const float* wt = weight_.value.data();
  const float* bias = bias_.value.data();
  for (int64_t n = 0; n < batch; ++n) {
    kernels::Im2Col(input.data() + n * in_channels_ * h * w, in_channels_, h,
                    w, kernel_, padding_, col.data());
    float* out_n = out.data() + n * out_channels_ * col_cols;
    for (int64_t oc = 0; oc < out_channels_; ++oc) {
      std::fill(out_n + oc * col_cols, out_n + (oc + 1) * col_cols, bias[oc]);
    }
    kernels::GemmNN(wt, col.data(), out_n, out_channels_, col_rows, col_cols);
  }
  return out;
}

Tensor Conv2D::Backward(const Tensor& grad_output) {
  RAFIKI_CHECK_GT(cached_input_.numel(), 0);
  const Tensor& input = cached_input_;
  int64_t batch = input.dim(0);
  int64_t h = input.dim(2), w = input.dim(3);
  int64_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  Tensor grad_input(input.shape());
  int64_t col_rows = in_channels_ * kernel_ * kernel_;
  int64_t col_cols = oh * ow;
  std::vector<float> col(static_cast<size_t>(col_rows * col_cols));
  std::vector<float> grad_col(static_cast<size_t>(col_rows * col_cols));
  const float* wt = weight_.value.data();
  float* bg = bias_.grad.data();
  for (int64_t n = 0; n < batch; ++n) {
    const float* go_n = grad_output.data() + n * out_channels_ * col_cols;
    // dW[OC, IC*K*K] += g_n · col_n^T, fused into the grad accumulator.
    kernels::Im2Col(input.data() + n * in_channels_ * h * w, in_channels_, h,
                    w, kernel_, padding_, col.data());
    kernels::GemmNT(go_n, col.data(), weight_.grad.data(), out_channels_,
                    col_cols, col_rows);
    // db[oc] += sum over output positions of g_n.
    for (int64_t oc = 0; oc < out_channels_; ++oc) {
      const float* row = go_n + oc * col_cols;
      double s = 0.0;
      for (int64_t i = 0; i < col_cols; ++i) s += row[i];
      bg[oc] += static_cast<float>(s);
    }
    // dcol = W^T · g_n, then scatter-accumulate back to the input image.
    std::fill(grad_col.begin(), grad_col.end(), 0.0f);
    kernels::GemmTN(wt, go_n, grad_col.data(), col_rows, out_channels_,
                    col_cols);
    kernels::Col2Im(grad_col.data(), in_channels_, h, w, kernel_, padding_,
                    grad_input.data() + n * in_channels_ * h * w);
  }
  return grad_input;
}

BatchNorm::BatchNorm(int64_t features, std::string name, double momentum,
                     double epsilon)
    : features_(features),
      momentum_(momentum),
      epsilon_(epsilon),
      name_(std::move(name)) {
  RAFIKI_CHECK_GT(features, 0);
  gamma_.name = name_ + "/gamma";
  gamma_.value = Tensor::Full({1, features}, 1.0f);
  gamma_.grad = Tensor::Zeros({1, features});
  beta_.name = name_ + "/beta";
  beta_.value = Tensor::Zeros({1, features});
  beta_.grad = Tensor::Zeros({1, features});
  running_mean_ = Tensor::Zeros({1, features});
  running_var_ = Tensor::Full({1, features}, 1.0f);
}

Tensor BatchNorm::Forward(const Tensor& input, bool train) {
  RAFIKI_CHECK_EQ(input.rank(), 2u);
  RAFIKI_CHECK_EQ(input.dim(1), features_);
  int64_t n = input.dim(0);
  Tensor out(input.shape());
  if (!train) {
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t d = 0; d < features_; ++d) {
        float inv = 1.0f / std::sqrt(running_var_.at(d) +
                                     static_cast<float>(epsilon_));
        out.at2(i, d) = gamma_.value.at(d) *
                            (input.at2(i, d) - running_mean_.at(d)) * inv +
                        beta_.value.at(d);
      }
    }
    return out;
  }
  RAFIKI_CHECK_GT(n, 1) << "batch norm needs batch > 1 in training";
  cached_centered_ = Tensor(input.shape());
  cached_xhat_ = Tensor(input.shape());
  cached_inv_std_.assign(static_cast<size_t>(features_), 0.0);
  for (int64_t d = 0; d < features_; ++d) {
    double mean = 0.0;
    for (int64_t i = 0; i < n; ++i) mean += input.at2(i, d);
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      double c = input.at2(i, d) - mean;
      var += c * c;
    }
    var /= static_cast<double>(n);  // biased, as in the original paper
    double inv_std = 1.0 / std::sqrt(var + epsilon_);
    cached_inv_std_[static_cast<size_t>(d)] = inv_std;
    for (int64_t i = 0; i < n; ++i) {
      float c = input.at2(i, d) - static_cast<float>(mean);
      cached_centered_.at2(i, d) = c;
      float xhat = c * static_cast<float>(inv_std);
      cached_xhat_.at2(i, d) = xhat;
      out.at2(i, d) = gamma_.value.at(d) * xhat + beta_.value.at(d);
    }
    running_mean_.at(d) = static_cast<float>(
        momentum_ * running_mean_.at(d) + (1.0 - momentum_) * mean);
    running_var_.at(d) = static_cast<float>(
        momentum_ * running_var_.at(d) + (1.0 - momentum_) * var);
  }
  return out;
}

Tensor BatchNorm::Backward(const Tensor& grad_output) {
  RAFIKI_CHECK(cached_xhat_.SameShape(grad_output))
      << "Backward without a training Forward";
  int64_t n = grad_output.dim(0);
  Tensor grad_input(grad_output.shape());
  auto dn = static_cast<double>(n);
  for (int64_t d = 0; d < features_; ++d) {
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      double dy = grad_output.at2(i, d);
      sum_dy += dy;
      sum_dy_xhat += dy * cached_xhat_.at2(i, d);
    }
    gamma_.grad.at(d) += static_cast<float>(sum_dy_xhat);
    beta_.grad.at(d) += static_cast<float>(sum_dy);
    double g = gamma_.value.at(d);
    double inv_std = cached_inv_std_[static_cast<size_t>(d)];
    for (int64_t i = 0; i < n; ++i) {
      double dy = grad_output.at2(i, d);
      double xhat = cached_xhat_.at2(i, d);
      // dL/dx = gamma * inv_std * (dy - mean(dy) - xhat * mean(dy*xhat))
      grad_input.at2(i, d) = static_cast<float>(
          g * inv_std * (dy - sum_dy / dn - xhat * sum_dy_xhat / dn));
    }
  }
  return grad_input;
}

MaxPool2D::MaxPool2D(int64_t window, std::string name)
    : window_(window), name_(std::move(name)) {
  RAFIKI_CHECK_GT(window, 0);
}

Tensor MaxPool2D::Forward(const Tensor& input, bool train) {
  RAFIKI_CHECK_EQ(input.rank(), 4u);
  int64_t n = input.dim(0), c = input.dim(1);
  int64_t h = input.dim(2), w = input.dim(3);
  RAFIKI_CHECK_EQ(h % window_, 0) << "height not divisible by window";
  RAFIKI_CHECK_EQ(w % window_, 0) << "width not divisible by window";
  int64_t oh = h / window_, ow = w / window_;
  cached_input_shape_ = input.shape();
  Tensor out({n, c, oh, ow});
  argmax_.assign(static_cast<size_t>(out.numel()), 0);
  const float* in = input.data();
  float* po = out.data();
  int64_t oi = 0;
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const float* plane = in + (ni * c + ci) * h * w;
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t x = 0; x < ow; ++x, ++oi) {
          int64_t best_idx = (y * window_) * w + x * window_;
          float best = plane[best_idx];
          for (int64_t dy = 0; dy < window_; ++dy) {
            for (int64_t dx = 0; dx < window_; ++dx) {
              int64_t idx = (y * window_ + dy) * w + (x * window_ + dx);
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = idx;
              }
            }
          }
          po[oi] = best;
          argmax_[static_cast<size_t>(oi)] =
              (ni * c + ci) * h * w + best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2D::Backward(const Tensor& grad_output) {
  RAFIKI_CHECK_EQ(static_cast<size_t>(grad_output.numel()), argmax_.size())
      << "Backward without matching Forward";
  Tensor grad_input(cached_input_shape_);
  for (int64_t i = 0; i < grad_output.numel(); ++i) {
    grad_input.at(argmax_[static_cast<size_t>(i)]) += grad_output.at(i);
  }
  return grad_input;
}

Tensor Flatten::Forward(const Tensor& input, bool train) {
  cached_shape_ = input.shape();
  Tensor out = input;
  int64_t batch = input.dim(0);
  out.Reshape({batch, input.numel() / batch});
  return out;
}

Tensor Flatten::Backward(const Tensor& grad_output) {
  Tensor out = grad_output;
  out.Reshape(cached_shape_);
  return out;
}

}  // namespace rafiki::nn
