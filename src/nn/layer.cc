#include "nn/layer.h"

#include <cmath>
#include <cstring>
#include <vector>

#include "tensor/kernels.h"

namespace rafiki::nn {

Linear::Linear(int64_t in_features, int64_t out_features, float init_std,
               Rng& rng, std::string name)
    : in_features_(in_features),
      out_features_(out_features),
      name_(std::move(name)) {
  weight_.name = name_ + "/weight";
  weight_.value = Tensor::Randn({in_features, out_features}, rng, init_std);
  weight_.grad = Tensor::Zeros({in_features, out_features});
  bias_.name = name_ + "/bias";
  bias_.value = Tensor::Zeros({1, out_features});
  bias_.grad = Tensor::Zeros({1, out_features});
}

Shape Linear::Reserve(const Shape& input_shape) {
  RAFIKI_CHECK_EQ(input_shape.size(), 2u);
  RAFIKI_CHECK_EQ(input_shape[1], in_features_);
  cached_input_.EnsureShape2(input_shape[0], in_features_);
  return {input_shape[0], out_features_};
}

void Linear::ForwardInto(const Tensor& input, bool train, Tensor* out) {
  RAFIKI_CHECK_EQ(input.rank(), 2u);
  RAFIKI_CHECK_EQ(input.dim(1), in_features_);
  if (train) cached_input_.CopyFrom(input);
  int64_t batch = input.dim(0);
  out->EnsureShape2(batch, out_features_);
  // Seed each output row with the bias, then accumulate x·W on top; the
  // GEMM's += contract folds the bias add into the product for free.
  const float* b = bias_.value.data();
  for (int64_t r = 0; r < batch; ++r) {
    std::memcpy(out->data() + r * out_features_, b,
                static_cast<size_t>(out_features_) * sizeof(float));
  }
  kernels::GemmNN(input.data(), weight_.value.data(), out->data(), batch,
                  in_features_, out_features_);
}

void Linear::BackwardInto(const Tensor& grad_output, Tensor* grad_input) {
  RAFIKI_CHECK_GT(cached_input_.numel(), 0)
      << "Backward without a training Forward";
  int64_t batch = cached_input_.dim(0);
  RAFIKI_CHECK_EQ(grad_output.dim(0), batch);
  RAFIKI_CHECK_EQ(grad_output.dim(1), out_features_);
  // dW += x^T g ; db += colsum(g) ; dx = g W^T
  kernels::GemmTN(cached_input_.data(), grad_output.data(),
                  weight_.grad.data(), in_features_, batch, out_features_);
  float* bg = bias_.grad.data();
  for (int64_t r = 0; r < batch; ++r) {
    const float* row = grad_output.data() + r * out_features_;
    for (int64_t c = 0; c < out_features_; ++c) bg[c] += row[c];
  }
  grad_input->EnsureShape2(batch, in_features_);
  grad_input->Fill(0.0f);
  kernels::GemmNT(grad_output.data(), weight_.value.data(),
                  grad_input->data(), batch, out_features_, in_features_);
}

Shape Relu::Reserve(const Shape& input_shape) {
  cached_input_.EnsureShape(input_shape);
  return input_shape;
}

void Relu::ForwardInto(const Tensor& input, bool train, Tensor* out) {
  if (train) cached_input_.CopyFrom(input);
  out->EnsureShape(input.shape());
  const float* in = input.data();
  float* o = out->data();
  int64_t n = input.numel();
  for (int64_t i = 0; i < n; ++i) o[i] = in[i] > 0.0f ? in[i] : 0.0f;
}

void Relu::BackwardInto(const Tensor& grad_output, Tensor* grad_input) {
  RAFIKI_CHECK(cached_input_.SameShape(grad_output));
  grad_input->EnsureShape(grad_output.shape());
  const float* in = cached_input_.data();
  const float* g = grad_output.data();
  float* o = grad_input->data();
  int64_t n = grad_output.numel();
  for (int64_t i = 0; i < n; ++i) o[i] = in[i] > 0.0f ? g[i] : 0.0f;
}

Dropout::Dropout(float rate, uint64_t seed, std::string name)
    : rate_(rate), rng_(seed), name_(std::move(name)) {
  RAFIKI_CHECK_GE(rate, 0.0f);
  RAFIKI_CHECK_LT(rate, 1.0f);
}

Shape Dropout::Reserve(const Shape& input_shape) {
  mask_.EnsureShape(input_shape);
  return input_shape;
}

void Dropout::ForwardInto(const Tensor& input, bool train, Tensor* out) {
  if (!train || rate_ == 0.0f) {
    mask_valid_ = false;
    out->CopyFrom(input);
    return;
  }
  mask_.EnsureShape(input.shape());
  out->EnsureShape(input.shape());
  float scale = 1.0f / (1.0f - rate_);
  float* m = mask_.data();
  const float* in = input.data();
  float* o = out->data();
  int64_t n = input.numel();
  for (int64_t i = 0; i < n; ++i) {
    m[i] = rng_.Bernoulli(rate_) ? 0.0f : scale;
    o[i] = in[i] * m[i];
  }
  mask_valid_ = true;
}

void Dropout::BackwardInto(const Tensor& grad_output, Tensor* grad_input) {
  if (!mask_valid_) {
    grad_input->CopyFrom(grad_output);
    return;
  }
  RAFIKI_CHECK(mask_.SameShape(grad_output));
  grad_input->EnsureShape(grad_output.shape());
  const float* m = mask_.data();
  const float* g = grad_output.data();
  float* o = grad_input->data();
  int64_t n = grad_output.numel();
  for (int64_t i = 0; i < n; ++i) o[i] = g[i] * m[i];
}

Conv2D::Conv2D(int64_t in_channels, int64_t out_channels, int64_t kernel,
               int64_t padding, float init_std, Rng& rng, std::string name)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      padding_(padding),
      name_(std::move(name)) {
  weight_.name = name_ + "/weight";
  weight_.value =
      Tensor::Randn({out_channels, in_channels, kernel, kernel}, rng,
                    init_std);
  weight_.grad = Tensor::Zeros(weight_.value.shape());
  bias_.name = name_ + "/bias";
  bias_.value = Tensor::Zeros({out_channels});
  bias_.grad = Tensor::Zeros({out_channels});
}

Shape Conv2D::Reserve(const Shape& input_shape) {
  RAFIKI_CHECK_EQ(input_shape.size(), 4u);
  RAFIKI_CHECK_EQ(input_shape[1], in_channels_);
  int64_t h = input_shape[2], w = input_shape[3];
  int64_t oh = h + 2 * padding_ - kernel_ + 1;
  int64_t ow = w + 2 * padding_ - kernel_ + 1;
  RAFIKI_CHECK_GT(oh, 0);
  RAFIKI_CHECK_GT(ow, 0);
  size_t col_elems =
      static_cast<size_t>(in_channels_ * kernel_ * kernel_ * oh * ow);
  col_.resize(col_elems);
  grad_col_.resize(col_elems);
  cached_input_.EnsureShape(input_shape);
  return {input_shape[0], out_channels_, oh, ow};
}

void Conv2D::ForwardInto(const Tensor& input, bool train, Tensor* out) {
  RAFIKI_CHECK_EQ(input.rank(), 4u);
  RAFIKI_CHECK_EQ(input.dim(1), in_channels_);
  if (train) cached_input_.CopyFrom(input);
  int64_t batch = input.dim(0);
  int64_t h = input.dim(2), w = input.dim(3);
  int64_t oh = h + 2 * padding_ - kernel_ + 1;
  int64_t ow = w + 2 * padding_ - kernel_ + 1;
  RAFIKI_CHECK_GT(oh, 0);
  RAFIKI_CHECK_GT(ow, 0);
  out->EnsureShape4(batch, out_channels_, oh, ow);
  // im2col + GEMM: the weight [OC, IC, K, K] is already row-major
  // [OC, IC*K*K], so each sample is one GEMM against its column matrix.
  int64_t col_rows = in_channels_ * kernel_ * kernel_;
  int64_t col_cols = oh * ow;
  col_.resize(static_cast<size_t>(col_rows * col_cols));
  const float* wt = weight_.value.data();
  const float* bias = bias_.value.data();
  for (int64_t n = 0; n < batch; ++n) {
    kernels::Im2Col(input.data() + n * in_channels_ * h * w, in_channels_, h,
                    w, kernel_, padding_, col_.data());
    float* out_n = out->data() + n * out_channels_ * col_cols;
    for (int64_t oc = 0; oc < out_channels_; ++oc) {
      std::fill(out_n + oc * col_cols, out_n + (oc + 1) * col_cols, bias[oc]);
    }
    kernels::GemmNN(wt, col_.data(), out_n, out_channels_, col_rows,
                    col_cols);
  }
}

void Conv2D::BackwardInto(const Tensor& grad_output, Tensor* grad_input) {
  RAFIKI_CHECK_GT(cached_input_.numel(), 0);
  const Tensor& input = cached_input_;
  int64_t batch = input.dim(0);
  int64_t h = input.dim(2), w = input.dim(3);
  int64_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  grad_input->EnsureShape(input.shape());
  grad_input->Fill(0.0f);
  int64_t col_rows = in_channels_ * kernel_ * kernel_;
  int64_t col_cols = oh * ow;
  col_.resize(static_cast<size_t>(col_rows * col_cols));
  grad_col_.resize(static_cast<size_t>(col_rows * col_cols));
  const float* wt = weight_.value.data();
  float* bg = bias_.grad.data();
  for (int64_t n = 0; n < batch; ++n) {
    const float* go_n = grad_output.data() + n * out_channels_ * col_cols;
    // dW[OC, IC*K*K] += g_n · col_n^T, fused into the grad accumulator.
    kernels::Im2Col(input.data() + n * in_channels_ * h * w, in_channels_, h,
                    w, kernel_, padding_, col_.data());
    kernels::GemmNT(go_n, col_.data(), weight_.grad.data(), out_channels_,
                    col_cols, col_rows);
    // db[oc] += sum over output positions of g_n.
    for (int64_t oc = 0; oc < out_channels_; ++oc) {
      const float* row = go_n + oc * col_cols;
      double s = 0.0;
      for (int64_t i = 0; i < col_cols; ++i) s += row[i];
      bg[oc] += static_cast<float>(s);
    }
    // dcol = W^T · g_n, then scatter-accumulate back to the input image.
    std::fill(grad_col_.begin(), grad_col_.end(), 0.0f);
    kernels::GemmTN(wt, go_n, grad_col_.data(), col_rows, out_channels_,
                    col_cols);
    kernels::Col2Im(grad_col_.data(), in_channels_, h, w, kernel_, padding_,
                    grad_input->data() + n * in_channels_ * h * w);
  }
}

BatchNorm::BatchNorm(int64_t features, std::string name, double momentum,
                     double epsilon)
    : features_(features),
      momentum_(momentum),
      epsilon_(epsilon),
      name_(std::move(name)) {
  RAFIKI_CHECK_GT(features, 0);
  gamma_.name = name_ + "/gamma";
  gamma_.value = Tensor::Full({1, features}, 1.0f);
  gamma_.grad = Tensor::Zeros({1, features});
  beta_.name = name_ + "/beta";
  beta_.value = Tensor::Zeros({1, features});
  beta_.grad = Tensor::Zeros({1, features});
  running_mean_ = Tensor::Zeros({1, features});
  running_var_ = Tensor::Full({1, features}, 1.0f);
}

Shape BatchNorm::Reserve(const Shape& input_shape) {
  RAFIKI_CHECK_EQ(input_shape.size(), 2u);
  RAFIKI_CHECK_EQ(input_shape[1], features_);
  cached_centered_.EnsureShape(input_shape);
  cached_xhat_.EnsureShape(input_shape);
  cached_inv_std_.resize(static_cast<size_t>(features_));
  return input_shape;
}

void BatchNorm::ForwardInto(const Tensor& input, bool train, Tensor* out) {
  RAFIKI_CHECK_EQ(input.rank(), 2u);
  RAFIKI_CHECK_EQ(input.dim(1), features_);
  int64_t n = input.dim(0);
  out->EnsureShape(input.shape());
  const float* in = input.data();
  float* o = out->data();
  if (!train) {
    const float* rm = running_mean_.data();
    const float* rv = running_var_.data();
    const float* gm = gamma_.value.data();
    const float* bt = beta_.value.data();
    for (int64_t i = 0; i < n; ++i) {
      const float* row = in + i * features_;
      float* orow = o + i * features_;
      for (int64_t d = 0; d < features_; ++d) {
        float inv = 1.0f / std::sqrt(rv[d] + static_cast<float>(epsilon_));
        orow[d] = gm[d] * (row[d] - rm[d]) * inv + bt[d];
      }
    }
    return;
  }
  RAFIKI_CHECK_GT(n, 1) << "batch norm needs batch > 1 in training";
  cached_centered_.EnsureShape(input.shape());
  cached_xhat_.EnsureShape(input.shape());
  cached_inv_std_.resize(static_cast<size_t>(features_));
  float* cc = cached_centered_.data();
  float* cx = cached_xhat_.data();
  float* rm = running_mean_.data();
  float* rv = running_var_.data();
  const float* gm = gamma_.value.data();
  const float* bt = beta_.value.data();
  for (int64_t d = 0; d < features_; ++d) {
    double mean = 0.0;
    for (int64_t i = 0; i < n; ++i) mean += in[i * features_ + d];
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      double c = in[i * features_ + d] - mean;
      var += c * c;
    }
    var /= static_cast<double>(n);  // biased, as in the original paper
    double inv_std = 1.0 / std::sqrt(var + epsilon_);
    cached_inv_std_[static_cast<size_t>(d)] = inv_std;
    for (int64_t i = 0; i < n; ++i) {
      float c = in[i * features_ + d] - static_cast<float>(mean);
      cc[i * features_ + d] = c;
      float xhat = c * static_cast<float>(inv_std);
      cx[i * features_ + d] = xhat;
      o[i * features_ + d] = gm[d] * xhat + bt[d];
    }
    rm[d] = static_cast<float>(momentum_ * rm[d] + (1.0 - momentum_) * mean);
    rv[d] = static_cast<float>(momentum_ * rv[d] + (1.0 - momentum_) * var);
  }
}

void BatchNorm::BackwardInto(const Tensor& grad_output, Tensor* grad_input) {
  RAFIKI_CHECK(cached_xhat_.SameShape(grad_output))
      << "Backward without a training Forward";
  int64_t n = grad_output.dim(0);
  grad_input->EnsureShape(grad_output.shape());
  const float* go = grad_output.data();
  const float* cx = cached_xhat_.data();
  float* gi = grad_input->data();
  float* gg = gamma_.grad.data();
  float* bg = beta_.grad.data();
  const float* gm = gamma_.value.data();
  auto dn = static_cast<double>(n);
  for (int64_t d = 0; d < features_; ++d) {
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      double dy = go[i * features_ + d];
      sum_dy += dy;
      sum_dy_xhat += dy * cx[i * features_ + d];
    }
    gg[d] += static_cast<float>(sum_dy_xhat);
    bg[d] += static_cast<float>(sum_dy);
    double g = gm[d];
    double inv_std = cached_inv_std_[static_cast<size_t>(d)];
    for (int64_t i = 0; i < n; ++i) {
      double dy = go[i * features_ + d];
      double xhat = cx[i * features_ + d];
      // dL/dx = gamma * inv_std * (dy - mean(dy) - xhat * mean(dy*xhat))
      gi[i * features_ + d] = static_cast<float>(
          g * inv_std * (dy - sum_dy / dn - xhat * sum_dy_xhat / dn));
    }
  }
}

MaxPool2D::MaxPool2D(int64_t window, std::string name)
    : window_(window), name_(std::move(name)) {
  RAFIKI_CHECK_GT(window, 0);
}

Shape MaxPool2D::Reserve(const Shape& input_shape) {
  RAFIKI_CHECK_EQ(input_shape.size(), 4u);
  RAFIKI_CHECK_EQ(input_shape[2] % window_, 0)
      << "height not divisible by window";
  RAFIKI_CHECK_EQ(input_shape[3] % window_, 0)
      << "width not divisible by window";
  cached_input_shape_ = input_shape;
  Shape out{input_shape[0], input_shape[1], input_shape[2] / window_,
            input_shape[3] / window_};
  argmax_.resize(static_cast<size_t>(ShapeNumel(out)));
  return out;
}

void MaxPool2D::ForwardInto(const Tensor& input, bool train, Tensor* out) {
  RAFIKI_CHECK_EQ(input.rank(), 4u);
  int64_t n = input.dim(0), c = input.dim(1);
  int64_t h = input.dim(2), w = input.dim(3);
  RAFIKI_CHECK_EQ(h % window_, 0) << "height not divisible by window";
  RAFIKI_CHECK_EQ(w % window_, 0) << "width not divisible by window";
  int64_t oh = h / window_, ow = w / window_;
  cached_input_shape_ = input.shape();
  out->EnsureShape4(n, c, oh, ow);
  argmax_.resize(static_cast<size_t>(out->numel()));
  const float* in = input.data();
  float* po = out->data();
  int64_t oi = 0;
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const float* plane = in + (ni * c + ci) * h * w;
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t x = 0; x < ow; ++x, ++oi) {
          int64_t best_idx = (y * window_) * w + x * window_;
          float best = plane[best_idx];
          for (int64_t dy = 0; dy < window_; ++dy) {
            for (int64_t dx = 0; dx < window_; ++dx) {
              int64_t idx = (y * window_ + dy) * w + (x * window_ + dx);
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = idx;
              }
            }
          }
          po[oi] = best;
          argmax_[static_cast<size_t>(oi)] =
              (ni * c + ci) * h * w + best_idx;
        }
      }
    }
  }
}

void MaxPool2D::BackwardInto(const Tensor& grad_output, Tensor* grad_input) {
  RAFIKI_CHECK_EQ(static_cast<size_t>(grad_output.numel()), argmax_.size())
      << "Backward without matching Forward";
  grad_input->EnsureShape(cached_input_shape_);
  grad_input->Fill(0.0f);
  const float* g = grad_output.data();
  float* gi = grad_input->data();
  int64_t n = grad_output.numel();
  for (int64_t i = 0; i < n; ++i) {
    gi[argmax_[static_cast<size_t>(i)]] += g[i];
  }
}

Shape Flatten::Reserve(const Shape& input_shape) {
  RAFIKI_CHECK_GE(input_shape.size(), 1u);
  cached_shape_ = input_shape;
  return {input_shape[0], ShapeNumel(input_shape) / input_shape[0]};
}

void Flatten::ForwardInto(const Tensor& input, bool train, Tensor* out) {
  // Shape the destination before copying: EnsureShape2 is a no-op in the
  // steady state, whereas copying first would drag the rank-4 shape along
  // and force a shape rebuild every call.
  cached_shape_ = input.shape();
  int64_t batch = input.dim(0);
  out->EnsureShape2(batch, input.numel() / batch);
  std::memcpy(out->data(), input.data(),
              static_cast<size_t>(input.numel()) * sizeof(float));
}

void Flatten::BackwardInto(const Tensor& grad_output, Tensor* grad_input) {
  grad_input->EnsureShape(cached_shape_);
  std::memcpy(grad_input->data(), grad_output.data(),
              static_cast<size_t>(grad_output.numel()) * sizeof(float));
}

std::unique_ptr<Layer> Linear::Clone() const {
  Rng rng(0);  // init_std = 0: the draw is overwritten below anyway
  auto out = std::make_unique<Linear>(in_features_, out_features_,
                                      /*init_std=*/0.0f, rng, name_);
  out->weight_.value = weight_.value;
  out->bias_.value = bias_.value;
  return out;
}

std::unique_ptr<Layer> Dropout::Clone() const {
  auto out = std::make_unique<Dropout>(rate_, /*seed=*/0, name_);
  out->rng_ = rng_;  // same mask stream as the source from this point on
  return out;
}

std::unique_ptr<Layer> Conv2D::Clone() const {
  Rng rng(0);
  auto out = std::make_unique<Conv2D>(in_channels_, out_channels_, kernel_,
                                      padding_, /*init_std=*/0.0f, rng,
                                      name_);
  out->weight_.value = weight_.value;
  out->bias_.value = bias_.value;
  return out;
}

std::unique_ptr<Layer> BatchNorm::Clone() const {
  auto out = std::make_unique<BatchNorm>(features_, name_, momentum_,
                                         epsilon_);
  out->gamma_.value = gamma_.value;
  out->beta_.value = beta_.value;
  out->running_mean_ = running_mean_;
  out->running_var_ = running_var_;
  return out;
}

}  // namespace rafiki::nn
