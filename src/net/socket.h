#ifndef RAFIKI_NET_SOCKET_H_
#define RAFIKI_NET_SOCKET_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"

namespace rafiki::net {

/// Absolute deadline for the blocking client-side paths. Default (or
/// `After(0)`) means "no deadline"; otherwise it is a steady-clock expiry
/// shared across every wait of one logical operation, so a peer that
/// dribbles bytes cannot extend the total wall time the way a per-syscall
/// SO_RCVTIMEO can.
class Deadline {
 public:
  Deadline() = default;  // no deadline

  /// `seconds` <= 0 yields a no-deadline Deadline.
  static Deadline After(double seconds) {
    Deadline d;
    if (seconds > 0.0) {
      d.has_deadline_ = true;
      d.at_ = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(seconds));
    }
    return d;
  }

  bool infinite() const { return !has_deadline_; }
  bool expired() const {
    return has_deadline_ && std::chrono::steady_clock::now() >= at_;
  }
  /// Remaining time as a poll() timeout: -1 when infinite, else >= 0,
  /// rounded up so a wait never spins on a sub-millisecond remainder.
  int remaining_ms() const;

 private:
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point at_{};
};

/// Blocks until `fd` is readable (readable also covers EOF/error, which
/// recv then reports) or the deadline passes: kDeadlineExceeded on expiry.
Status WaitReadable(int fd, const Deadline& deadline);
/// Blocks until `fd` is writable (or has a pending error, which the caller
/// sees via SO_ERROR or the next write) — kDeadlineExceeded on expiry.
Status WaitWritable(int fd, const Deadline& deadline);

/// Move-only RAII wrapper around a file descriptor. Closing is idempotent;
/// a default-constructed Socket holds no fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Relinquishes ownership of the fd without closing it.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  void Close();

 private:
  int fd_ = -1;
};

/// Sets or clears O_NONBLOCK.
Status SetNonBlocking(int fd, bool nonblocking);

/// Disables Nagle (TCP_NODELAY); request/response traffic is latency-bound.
Status SetNoDelay(int fd);

/// Creates a nonblocking listening TCP socket on 127.0.0.1-visible
/// INADDR_ANY:`port` (0 = kernel-assigned ephemeral port) with SO_REUSEADDR.
/// On success `*bound_port` holds the actual port.
Result<Socket> ListenTcp(uint16_t port, int backlog, uint16_t* bound_port);

/// TCP connect to an IPv4 address ("127.0.0.1"). With `timeout_seconds`
/// > 0 the connect itself runs nonblocking under a Deadline (a black-holed
/// peer fails kDeadlineExceeded instead of hanging in SYN retries) and the
/// connected socket gets matching send/receive timeouts. 0 = no deadline
/// anywhere: a fully blocking connect (the RPC bus dials this way; its
/// reconnect timer owns the pacing).
Result<Socket> ConnectTcp(const std::string& host, uint16_t port,
                          double timeout_seconds);

/// Writes all of [data, data+len) to a blocking socket (MSG_NOSIGNAL, retry
/// on EINTR). Fails on any other error.
Status SendAll(int fd, const char* data, size_t len);

/// One recv() of at most `len` bytes, retrying EINTR. Returns the byte
/// count (0 = orderly peer shutdown) or an error status.
Result<size_t> RecvSome(int fd, char* data, size_t len);

/// Writes all of [data, data+len), handling EINTR and partial writes.
/// Works on sockets (MSG_NOSIGNAL, no SIGPIPE) and plain fds (pipes);
/// a send/receive timeout on the fd maps to DeadlineExceeded.
Status WriteFull(int fd, const char* data, size_t len);

/// Reads exactly `len` bytes, handling EINTR and partial reads. Returns
/// `len` on success and 0 when the peer closed cleanly before the first
/// byte; a mid-record EOF is an Internal error (torn stream), and a
/// receive timeout maps to DeadlineExceeded.
Result<size_t> ReadFull(int fd, char* data, size_t len);

}  // namespace rafiki::net

#endif  // RAFIKI_NET_SOCKET_H_
