#ifndef RAFIKI_NET_HTTP_H_
#define RAFIKI_NET_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rafiki::net {

/// Decodes %XX escapes; when `plus_as_space`, '+' becomes ' ' (the
/// application/x-www-form-urlencoded convention used in query strings).
/// Malformed escapes ("%G1", truncated "%2") are kept literally.
std::string PercentDecode(const std::string& s, bool plus_as_space = false);

/// Standard reason phrase for a status code ("OK", "Not Found", ...).
const char* ReasonPhrase(int status);

/// One parsed HTTP/1.1 request. Header names are lowercased; `path` and
/// `query` are the raw (still percent-encoded) halves of the request
/// target, split at the first '?'.
struct HttpRequest {
  std::string method;
  std::string target;  // as received, e.g. /query?job=infer0
  std::string path;    // /query
  std::string query;   // job=infer0 ("" when absent)
  int version_minor = 1;  // HTTP/1.<minor>; only 0 and 1 are accepted
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Connection semantics after this request: HTTP/1.1 defaults to true,
  /// HTTP/1.0 to false; a Connection: close / keep-alive header overrides.
  bool keep_alive = true;

  /// First header with the given lowercase name, or nullptr. The
  /// const char* overload avoids materializing a std::string per lookup
  /// (names longer than the SSO buffer would allocate on every request).
  const std::string* FindHeader(const std::string& lowercase_name) const;
  const std::string* FindHeader(const char* lowercase_name) const;

  /// Swaps all fields; used to move a parsed request into a pooled slot
  /// while handing the slot's previous string capacities back to the
  /// parser for reuse.
  void swap(HttpRequest& other) noexcept;
};

/// One HTTP response to serialize. Content-Length and Connection are
/// emitted by SerializeResponse; `headers` carries any extras.
struct HttpResponse {
  int status = 200;
  std::string body;
  std::string content_type = "text/plain";
  std::vector<std::pair<std::string, std::string>> headers;
};

/// Wire form of `response`, with Content-Length and Connection:
/// keep-alive|close headers.
std::string SerializeResponse(const HttpResponse& response, bool keep_alive);

/// In-place variant: serializes the status line and headers (everything up
/// to and including the blank line, but NOT the body) into `*out`,
/// replacing its contents. The body is sent separately via scatter-gather,
/// so steady-state serialization reuses `out`'s capacity and never
/// concatenates the body.
void SerializeResponseHeadersTo(const HttpResponse& response, bool keep_alive,
                                std::string* out);

/// Chunked Transfer-Encoding serialization (streaming responses, the wire
/// format ROADMAP item 3's tumbling-window results ride on). The header
/// block advertises `Transfer-Encoding: chunked` in place of
/// Content-Length (`response.body` is ignored); the body is then streamed
/// as AppendChunk frames and closed with AppendLastChunk.
void SerializeChunkedResponseHeadersTo(const HttpResponse& response,
                                       bool keep_alive, std::string* out);

/// Appends one chunk frame — `<hex-size>\r\n<data>\r\n` — to `*out`.
/// Empty `data` is a no-op: a zero-size chunk means end-of-body on the
/// wire, which is AppendLastChunk's job.
void AppendChunk(std::string_view data, std::string* out);

/// Appends the terminating zero chunk (`0\r\n\r\n`, no trailers).
void AppendLastChunk(std::string* out);

/// Wire form of a client request (Host, Content-Length, Connection).
std::string SerializeRequest(const std::string& method,
                             const std::string& target,
                             const std::string& host, const std::string& body,
                             bool keep_alive);

/// In-place variant of SerializeRequest (headers AND body) into `*out`,
/// replacing its contents; the client reuses one wire buffer per
/// connection.
void SerializeRequestTo(const std::string& method, const std::string& target,
                        const std::string& host, const std::string& body,
                        bool keep_alive, std::string* out);

/// Input-size limits enforced during parsing. Exceeding one turns the
/// parser into the error state with the corresponding 4xx status.
struct HttpParserLimits {
  size_t max_request_line = 8 * 1024;   // 414 URI Too Long
  size_t max_header_bytes = 32 * 1024;  // 431 headers too large
  size_t max_body_bytes = 1 << 20;      // 413 Payload Too Large
};

/// Incremental HTTP/1.1 request parser: feed it bytes as they arrive off a
/// socket; it consumes exactly one request (so pipelined bytes after the
/// body stay with the caller) and then parks in kComplete until Reset().
/// Chunked transfer-encoding is not supported (501); bodies require
/// Content-Length.
class HttpParser {
 public:
  enum class State { kRequestLine, kHeaders, kBody, kComplete, kError };

  explicit HttpParser(HttpParserLimits limits = {}) : limits_(limits) {}

  /// Consumes up to `size` bytes; returns how many were consumed. Stops
  /// consuming once the state is kComplete or kError.
  size_t Feed(const char* data, size_t size);

  State state() const { return state_; }
  bool done() const { return state_ == State::kComplete; }
  bool failed() const { return state_ == State::kError; }
  /// HTTP status to answer with when failed() (400/413/414/431/501/505).
  int error_status() const { return error_status_; }
  const std::string& error() const { return error_; }

  /// The parsed request; valid once done().
  HttpRequest& request() { return request_; }

  /// Prepares for the next request on the same connection. Retains the
  /// capacity of every internal buffer (and of the strings inside
  /// request(), which may have been swapped with a recycled slot), so a
  /// steady-state keep-alive parse loop performs no heap allocations.
  void Reset();

 private:
  void Fail(int status, std::string message);
  bool FinishRequestLine(const std::string& line);
  bool FinishHeaderLine(const std::string& line);
  /// Called after the blank line: validates framing headers and routes to
  /// kBody or kComplete.
  void FinishHeaders();

  HttpParserLimits limits_;
  State state_ = State::kRequestLine;
  std::string line_;  // accumulates the current request/header line
  size_t header_bytes_ = 0;
  size_t content_length_ = 0;
  // Headers parsed into the current request. request_.headers keeps its
  // pairs alive across Reset() so their string capacities are reused; the
  // vector is trimmed to header_count_ when the header block completes.
  size_t header_count_ = 0;
  int error_status_ = 400;
  std::string error_;
  HttpRequest request_;
};

/// Input-size limits for the response parser's chunked decoder; a buggy or
/// hostile server cannot balloon the client's body buffer or feed it an
/// unbounded chunk-size line.
struct HttpResponseParserLimits {
  size_t max_body_bytes = 64u << 20;  // total decoded chunked body
  size_t max_chunk_line = 1024;       // hex size line, extensions included
};

/// Incremental HTTP/1.x response parser for the blocking client: status
/// line, headers, then a Content-Length body, a chunked Transfer-Encoding
/// body (decoded incrementally, limits above), or read-until-close when
/// the server answered Connection: close without any framing.
class HttpResponseParser {
 public:
  enum class State { kStatusLine, kHeaders, kBody, kBodyUntilClose,
                     kChunkSize, kChunkData, kChunkDataEnd, kTrailers,
                     kComplete, kError };

  HttpResponseParser() = default;
  explicit HttpResponseParser(HttpResponseParserLimits limits)
      : limits_(limits) {}

  size_t Feed(const char* data, size_t size);
  /// Signals EOF from the peer; completes a read-until-close body.
  void FinishEof();

  /// Prepares for the next response on the same connection, retaining the
  /// body buffer's capacity.
  void Reset();

  State state() const { return state_; }
  bool done() const { return state_ == State::kComplete; }
  bool failed() const { return state_ == State::kError; }
  const std::string& error() const { return error_; }

  int status() const { return status_; }
  const std::string& body() const { return body_; }
  bool keep_alive() const { return keep_alive_; }

 private:
  HttpResponseParserLimits limits_;
  State state_ = State::kStatusLine;
  std::string line_;
  size_t content_length_ = 0;
  bool have_length_ = false;
  bool chunked_ = false;
  size_t chunk_remaining_ = 0;  // payload bytes left in the current chunk
  int status_ = 0;
  bool keep_alive_ = true;
  std::string body_;
  std::string error_;
};

}  // namespace rafiki::net

#endif  // RAFIKI_NET_HTTP_H_
