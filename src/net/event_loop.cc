#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/logging.h"

namespace rafiki::net {

namespace {

/// epoll user data for the wake eventfd. Watcher tokens are
/// (gen << 32) | fd with fd a non-negative int, so the top fd bit pattern
/// 0xffffffff can never collide.
constexpr uint64_t kWakeToken = ~0ull;

uint64_t MakeToken(uint32_t gen, int fd) {
  return (static_cast<uint64_t>(gen) << 32) | static_cast<uint32_t>(fd);
}

}  // namespace

EventLoop::EventLoop(Options options)
    : clock_(std::move(options.clock)),
      wheel_(options.tick_seconds, 0.0),
      events_(kEpollBatch) {
  if (!clock_) {
    auto epoch = std::chrono::steady_clock::now();
    clock_ = [epoch] {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           epoch)
          .count();
    };
  }
  wheel_.Advance(clock_());
  epoll_fd_ = ::epoll_create1(0);
  RAFIKI_CHECK_GE(epoll_fd_, 0) << "epoll_create1: " << std::strerror(errno);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  RAFIKI_CHECK_GE(wake_fd_, 0) << "eventfd: " << std::strerror(errno);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeToken;
  RAFIKI_CHECK_EQ(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev), 0)
      << "epoll_ctl(wake): " << std::strerror(errno);
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::EpollCtl(int op, int fd, const Watcher& w) {
  epoll_event ev{};
  ev.events = (w.want_read ? EPOLLIN : 0u) | (w.want_write ? EPOLLOUT : 0u);
  ev.data.u64 = MakeToken(w.gen, fd);
  if (::epoll_ctl(epoll_fd_, op, fd, &ev) < 0) {
    return Status::Internal(std::string("epoll_ctl: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status EventLoop::AddFd(int fd, bool want_read, bool want_write,
                        IoCallback callback) {
  if (fd < 0) return Status::InvalidArgument("AddFd: negative fd");
  if (callback == nullptr) return Status::InvalidArgument("AddFd: no callback");
  if (static_cast<size_t>(fd) >= watchers_.size()) {
    watchers_.resize(static_cast<size_t>(fd) + 1);
  }
  Watcher& w = watchers_[fd];
  if (w.active) return Status::FailedPrecondition("AddFd: fd already watched");
  // The generation was bumped at RemoveFd time, so events already pulled
  // for a prior registration of this fd stay dead.
  w.want_read = want_read;
  w.want_write = want_write;
  w.callback = std::make_unique<IoCallback>(std::move(callback));
  RAFIKI_RETURN_IF_ERROR(EpollCtl(EPOLL_CTL_ADD, fd, w));
  w.active = true;
  ++active_watchers_;
  return Status::OK();
}

Status EventLoop::ModifyFd(int fd, bool want_read, bool want_write) {
  if (fd < 0 || static_cast<size_t>(fd) >= watchers_.size() ||
      !watchers_[fd].active) {
    return Status::NotFound("ModifyFd: fd not watched");
  }
  Watcher& w = watchers_[fd];
  if (w.want_read == want_read && w.want_write == want_write) {
    return Status::OK();
  }
  w.want_read = want_read;
  w.want_write = want_write;
  return EpollCtl(EPOLL_CTL_MOD, fd, w);
}

Status EventLoop::RemoveFd(int fd) {
  if (fd < 0 || static_cast<size_t>(fd) >= watchers_.size() ||
      !watchers_[fd].active) {
    return Status::NotFound("RemoveFd: fd not watched");
  }
  Watcher& w = watchers_[fd];
  w.active = false;
  ++w.gen;  // kills events for this registration still queued in events_
  retired_callbacks_.push_back(std::move(w.callback));
  --active_watchers_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) < 0) {
    return Status::Internal(std::string("epoll_ctl(DEL): ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

bool EventLoop::WatchingFd(int fd) const {
  return fd >= 0 && static_cast<size_t>(fd) < watchers_.size() &&
         watchers_[fd].active;
}

void EventLoop::Post(Task task) {
  bool need_wake;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    need_wake = posted_.empty();
    posted_.push_back(std::move(task));
  }
  has_posted_.store(true, std::memory_order_release);
  // Only the poster that found the mailbox empty wakes: one eventfd write
  // per batch, not per task.
  if (need_wake) Wake();
}

void EventLoop::PostDelayed(double delay, Task task) {
  if (IsInLoopThread()) {
    wheel_.Schedule(delay, std::move(task));
    return;
  }
  Post([this, delay, t = std::move(task)]() mutable {
    wheel_.Schedule(delay, std::move(t));
  });
}

void EventLoop::Wake() {
  uint64_t one = 1;
  ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  (void)n;  // EAGAIN means the counter is already hot: wakeup is pending
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  Wake();
}

void EventLoop::DrainPosted() {
  if (!has_posted_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.swap(posted_scratch_);
    has_posted_.store(false, std::memory_order_relaxed);
  }
  for (Task& task : posted_scratch_) {
    task();
    task = nullptr;
  }
  posted_scratch_.clear();  // keeps capacity: no realloc next tick
}

int EventLoop::PollOnce(double max_wait_seconds) {
  owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);

  // Sleep exactly until the next timer deadline (or the caller's cap) —
  // never a safety tick.
  int timeout_ms = -1;
  double wait = max_wait_seconds;
  double next = wheel_.NextDeadline();
  if (std::isfinite(next)) {
    wait = std::min(wait, std::max(0.0, next - clock_()));
  }
  if (has_posted_.load(std::memory_order_acquire) ||
      stop_.load(std::memory_order_acquire)) {
    wait = 0.0;
  }
  if (std::isfinite(wait)) {
    double ms = std::ceil(wait * 1e3);
    timeout_ms = ms >= 2147483647.0 ? 2147483646 : static_cast<int>(ms);
  }

  int n = ::epoll_wait(epoll_fd_, events_.data(), kEpollBatch, timeout_ms);
  if (n < 0) {
    if (errno != EINTR) {
      RAFIKI_LOG(ERROR) << "epoll_wait: " << std::strerror(errno);
    }
    n = 0;
  }

  if (tick_begin_hook_) tick_begin_hook_();
  DrainPosted();

  int dispatched = 0;
  for (int i = 0; i < n; ++i) {
    uint64_t token = events_[i].data.u64;
    if (token == kWakeToken) {
      uint64_t drain;
      while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
      }
      continue;
    }
    int fd = static_cast<int>(token & 0xffffffffu);
    auto gen = static_cast<uint32_t>(token >> 32);
    if (static_cast<size_t>(fd) >= watchers_.size()) continue;
    Watcher& w = watchers_[fd];
    // A callback earlier in this batch may have removed (or removed and
    // re-added) this fd; the generation tag makes those events inert.
    if (!w.active || w.gen != gen) continue;
    ++dispatched;
    // Invoke through a stable pointer: the callback may AddFd (growing
    // watchers_, invalidating `w`) or RemoveFd itself (retiring the
    // unique_ptr) — the function object stays put either way.
    IoCallback* cb = w.callback.get();
    (*cb)(events_[i].events);
  }

  wheel_.Advance(clock_());

  if (tick_end_hook_) tick_end_hook_();
  retired_callbacks_.clear();
  return dispatched;
}

void EventLoop::Run() {
  owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  while (!stop_.load(std::memory_order_acquire)) {
    PollOnce(std::numeric_limits<double>::infinity());
  }
  stop_.store(false, std::memory_order_release);  // allow re-Run
}

}  // namespace rafiki::net
