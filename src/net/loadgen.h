#ifndef RAFIKI_NET_LOADGEN_H_
#define RAFIKI_NET_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"

namespace rafiki::net {

/// Load-generator configuration. Two modes:
///   * open-loop (default): arrivals are scheduled by the paper's sine
///     process (Equations 8-9 around `target_rate`, period `sine_period`)
///     or at a constant `target_rate` when `sine_period` == 0, regardless
///     of how fast the server answers — latency includes client-side
///     queueing, so there is no coordinated omission;
///   * closed-loop: each connection issues its next request as soon as the
///     previous answer returns (throughput-bound, classic benchmark mode).
struct LoadGenOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string method = "GET";
  std::string target = "/";
  std::string body;

  bool open_loop = true;
  double duration_seconds = 5.0;
  /// Open loop: the calibration rate r* of Equations 8-9 (requests/s).
  double target_rate = 500.0;
  /// Sine period T in seconds; 0 disables the sine (constant rate).
  double sine_period = 60.0;
  double noise_stddev = 0.1;
  /// Concurrent keep-alive connections. Open loop runs one worker thread
  /// per connection; closed loop multiplexes all of them on one epoll
  /// thread.
  int connections = 4;
  /// Closed loop only: requests kept in flight per connection (HTTP
  /// pipelining). 1 is the classic closed loop — next request only after
  /// the previous answer. Depths > 1 let both sides coalesce several
  /// requests per syscall and per TCP segment, which is what it takes to
  /// push the transport past the per-round-trip floor of loopback.
  int pipeline = 1;
  /// Client-observed latency SLO; completions slower than this count as
  /// overdue (measured from the scheduled arrival in open loop).
  double tau = 0.1;
  double window_seconds = 1.0;
  uint64_t seed = 1;
  /// Open loop: arrivals waiting to be sent beyond this are dropped
  /// (the client-side analogue of a full queue).
  size_t max_backlog = 100000;
  double timeout_seconds = 10.0;
};

/// One aggregation window, keyed by arrival time.
struct LoadGenWindow {
  double t_begin = 0.0;
  int64_t arrived = 0;
  int64_t completed = 0;  // any HTTP response, including 503/504
  int64_t overdue = 0;    // completed with latency > tau
  int64_t rejected = 0;   // completed with status 503 (overload shedding)
  int64_t deadline = 0;   // completed with status 504 (queue SLO expiry)
  int64_t errors = 0;     // transport failures / unexpected statuses
  int64_t dropped = 0;    // never sent (backlog cap)
};

/// Whole-run report. Conservation (asserted in tests):
///   arrived == completed + errors + dropped, and the window sums match
///   the totals. `rejected`, `deadline` and `overdue` are subsets of
///   `completed`.
struct LoadGenReport {
  std::vector<LoadGenWindow> windows;
  int64_t arrived = 0;
  int64_t completed = 0;
  int64_t overdue = 0;
  int64_t rejected = 0;
  int64_t deadline = 0;
  int64_t errors = 0;
  int64_t dropped = 0;
  LatencyHistogram latency;
  double duration_seconds = 0.0;
  double achieved_rps = 0.0;  // completed / duration

  std::string ToString() const;
};

/// Replays the configured arrival process against a live server — the live
/// analogue of ServingSimulator::Run. Blocks for the duration and returns
/// the merged report.
LoadGenReport RunLoadGen(const LoadGenOptions& options);

}  // namespace rafiki::net

#endif  // RAFIKI_NET_LOADGEN_H_
