#include "net/http.h"

#include <cctype>
#include <cstring>

#include "common/string_util.h"

namespace rafiki::net {
namespace {

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

void LowerInPlace(std::string* s) {
  for (char& c : *s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
}

/// Case-insensitive equality of [p, p+n) against lowercase `want`.
bool NameIs(const char* p, size_t n, const char* want) {
  if (n != std::strlen(want)) return false;
  for (size_t i = 0; i < n; ++i) {
    if (std::tolower(static_cast<unsigned char>(p[i])) != want[i]) {
      return false;
    }
  }
  return true;
}

/// True when a comma-separated Connection header value contains `token`
/// (case-insensitive, `token` already lowercase). Scans in place — this
/// runs per request on the keep-alive fast path and must not allocate.
bool HasConnectionToken(const char* value, size_t size, const char* token) {
  size_t i = 0;
  while (i < size) {
    while (i < size &&
           (value[i] == ' ' || value[i] == '\t' || value[i] == ',')) {
      ++i;
    }
    size_t start = i;
    while (i < size && value[i] != ',') ++i;
    size_t end = i;
    while (end > start && (value[end - 1] == ' ' || value[end - 1] == '\t')) {
      --end;
    }
    if (NameIs(value + start, end - start, token)) return true;
  }
  return false;
}

bool HasConnectionToken(const std::string& value, const char* token) {
  return HasConnectionToken(value.data(), value.size(), token);
}

/// Appends the decimal form of `v` without going through printf.
void AppendUint(uint64_t v, std::string* out) {
  char buf[20];
  size_t n = 0;
  do {
    buf[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0) out->push_back(buf[--n]);
}

/// Appends the lowercase hex form of `v` (no leading zeros).
void AppendHex(uint64_t v, std::string* out) {
  char buf[16];
  size_t n = 0;
  do {
    buf[n++] = "0123456789abcdef"[v & 0xf];
    v >>= 4;
  } while (v != 0);
  while (n > 0) out->push_back(buf[--n]);
}

/// Strict non-negative integer parse for Content-Length.
bool ParseContentLength(const char* s, size_t n, size_t* out) {
  if (n == 0 || n > 18) return false;
  size_t v = 0;
  for (size_t i = 0; i < n; ++i) {
    char c = s[i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<size_t>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

std::string PercentDecode(const std::string& s, bool plus_as_space) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '+' && plus_as_space) {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < s.size()) {
      int hi = HexDigit(s[i + 1]);
      int lo = HexDigit(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back(c);  // malformed escape kept literally
      }
    } else {
      out.push_back(c);
    }
  }
  return out;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 414: return "URI Too Long";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return status < 400 ? "OK" : "Error";
  }
}

const std::string* HttpRequest::FindHeader(
    const std::string& lowercase_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lowercase_name) return &value;
  }
  return nullptr;
}

const std::string* HttpRequest::FindHeader(const char* lowercase_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lowercase_name) return &value;
  }
  return nullptr;
}

void HttpRequest::swap(HttpRequest& other) noexcept {
  method.swap(other.method);
  target.swap(other.target);
  path.swap(other.path);
  query.swap(other.query);
  std::swap(version_minor, other.version_minor);
  headers.swap(other.headers);
  body.swap(other.body);
  std::swap(keep_alive, other.keep_alive);
}

void SerializeResponseHeadersTo(const HttpResponse& response, bool keep_alive,
                                std::string* out) {
  out->clear();
  out->append("HTTP/1.1 ");
  AppendUint(static_cast<uint64_t>(response.status), out);
  out->push_back(' ');
  out->append(ReasonPhrase(response.status));
  out->append("\r\nContent-Type: ");
  out->append(response.content_type);
  out->append("\r\nContent-Length: ");
  AppendUint(response.body.size(), out);
  out->append("\r\nConnection: ");
  out->append(keep_alive ? "keep-alive" : "close");
  out->append("\r\n");
  for (const auto& [name, value] : response.headers) {
    out->append(name);
    out->append(": ");
    out->append(value);
    out->append("\r\n");
  }
  out->append("\r\n");
}

std::string SerializeResponse(const HttpResponse& response, bool keep_alive) {
  std::string out;
  SerializeResponseHeadersTo(response, keep_alive, &out);
  out += response.body;
  return out;
}

void SerializeChunkedResponseHeadersTo(const HttpResponse& response,
                                       bool keep_alive, std::string* out) {
  out->clear();
  out->append("HTTP/1.1 ");
  AppendUint(static_cast<uint64_t>(response.status), out);
  out->push_back(' ');
  out->append(ReasonPhrase(response.status));
  out->append("\r\nContent-Type: ");
  out->append(response.content_type);
  out->append("\r\nTransfer-Encoding: chunked\r\nConnection: ");
  out->append(keep_alive ? "keep-alive" : "close");
  out->append("\r\n");
  for (const auto& [name, value] : response.headers) {
    out->append(name);
    out->append(": ");
    out->append(value);
    out->append("\r\n");
  }
  out->append("\r\n");
}

void AppendChunk(std::string_view data, std::string* out) {
  if (data.empty()) return;
  AppendHex(data.size(), out);
  out->append("\r\n");
  out->append(data.data(), data.size());
  out->append("\r\n");
}

void AppendLastChunk(std::string* out) { out->append("0\r\n\r\n"); }

void SerializeRequestTo(const std::string& method, const std::string& target,
                        const std::string& host, const std::string& body,
                        bool keep_alive, std::string* out) {
  out->clear();
  out->append(method);
  out->push_back(' ');
  out->append(target);
  out->append(" HTTP/1.1\r\nHost: ");
  out->append(host);
  out->append("\r\nContent-Length: ");
  AppendUint(body.size(), out);
  out->append("\r\nConnection: ");
  out->append(keep_alive ? "keep-alive" : "close");
  out->append("\r\n\r\n");
  out->append(body);
}

std::string SerializeRequest(const std::string& method,
                             const std::string& target,
                             const std::string& host, const std::string& body,
                             bool keep_alive) {
  std::string out;
  SerializeRequestTo(method, target, host, body, keep_alive, &out);
  return out;
}

void HttpParser::Fail(int status, std::string message) {
  state_ = State::kError;
  error_status_ = status;
  error_ = std::move(message);
}

void HttpParser::Reset() {
  state_ = State::kRequestLine;
  line_.clear();
  header_bytes_ = 0;
  content_length_ = 0;
  header_count_ = 0;
  error_status_ = 400;
  error_.clear();
  // Clear the request in place: the strings (and the header pairs beyond
  // header_count_, trimmed later in FinishHeaders) keep their capacity for
  // the next request on this connection.
  request_.method.clear();
  request_.target.clear();
  request_.path.clear();
  request_.query.clear();
  request_.version_minor = 1;
  request_.body.clear();
  request_.keep_alive = true;
}

size_t HttpParser::Feed(const char* data, size_t size) {
  size_t consumed = 0;
  while (consumed < size && state_ != State::kComplete &&
         state_ != State::kError) {
    if (state_ == State::kBody) {
      size_t need = content_length_ - request_.body.size();
      size_t take = std::min(need, size - consumed);
      request_.body.append(data + consumed, take);
      consumed += take;
      if (request_.body.size() == content_length_) {
        state_ = State::kComplete;
      }
      continue;
    }
    // Line-oriented states: take bytes up to (and including) the next LF.
    const char* nl = static_cast<const char*>(
        std::memchr(data + consumed, '\n', size - consumed));
    size_t take =
        nl != nullptr ? static_cast<size_t>(nl - (data + consumed)) + 1
                      : size - consumed;
    line_.append(data + consumed, take);
    consumed += take;
    if (state_ == State::kRequestLine &&
        line_.size() > limits_.max_request_line) {
      Fail(414, "request line too long");
      break;
    }
    if (state_ == State::kHeaders &&
        header_bytes_ + line_.size() > limits_.max_header_bytes) {
      Fail(431, "headers too large");
      break;
    }
    if (nl == nullptr) break;  // partial line; wait for more bytes

    line_.pop_back();  // '\n'
    if (!line_.empty() && line_.back() == '\r') line_.pop_back();
    // Process line_ in place (no swap: the buffer keeps its capacity for
    // the next line), then clear it for the next iteration.
    if (state_ == State::kRequestLine) {
      // Tolerate blank line(s) before the request line (RFC 7230 §3.5).
      if (!line_.empty()) {
        if (!FinishRequestLine(line_)) break;
        state_ = State::kHeaders;
      }
    } else {  // kHeaders
      header_bytes_ += line_.size() + 2;
      if (line_.empty()) {
        FinishHeaders();
      } else if (!FinishHeaderLine(line_)) {
        break;
      }
    }
    line_.clear();
  }
  return consumed;
}

bool HttpParser::FinishRequestLine(const std::string& line) {
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                        : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      sp2 == sp1 + 1 || line.find(' ', sp2 + 1) != std::string::npos) {
    Fail(400, "malformed request line");
    return false;
  }
  request_.method.assign(line, 0, sp1);
  request_.target.assign(line, sp1 + 1, sp2 - sp1 - 1);
  const char* version = line.c_str() + sp2 + 1;
  if (request_.method.empty() || request_.target.empty()) {
    Fail(400, "malformed request line");
    return false;
  }
  for (char c : request_.method) {
    if (!std::isalpha(static_cast<unsigned char>(c))) {
      Fail(400, "bad method");
      return false;
    }
  }
  if (request_.target[0] != '/') {
    Fail(400, "request target must be origin-form (/path)");
    return false;
  }
  if (line.compare(sp2 + 1, std::string::npos, "HTTP/1.1") == 0) {
    request_.version_minor = 1;
    request_.keep_alive = true;
  } else if (line.compare(sp2 + 1, std::string::npos, "HTTP/1.0") == 0) {
    request_.version_minor = 0;
    request_.keep_alive = false;
  } else if (std::strncmp(version, "HTTP/", 5) == 0) {
    Fail(505, StrFormat("unsupported version '%s'", version));
    return false;
  } else {
    Fail(400, StrFormat("malformed version '%s'", version));
    return false;
  }
  size_t qmark = request_.target.find('?');
  if (qmark == std::string::npos) {
    request_.path = request_.target;
    request_.query.clear();
  } else {
    request_.path.assign(request_.target, 0, qmark);
    request_.query.assign(request_.target, qmark + 1, std::string::npos);
  }
  return true;
}

bool HttpParser::FinishHeaderLine(const std::string& line) {
  size_t colon = line.find(':');
  if (colon == std::string::npos || colon == 0) {
    Fail(400, "malformed header line");
    return false;
  }
  for (size_t i = 0; i < colon; ++i) {
    char c = line[i];
    // RFC 7230 forbids whitespace inside or after the field name.
    if (c == ' ' || c == '\t' ||
        std::iscntrl(static_cast<unsigned char>(c))) {
      Fail(400, "malformed header name");
      return false;
    }
  }
  size_t vb = colon + 1;
  size_t ve = line.size();
  while (vb < ve && (line[vb] == ' ' || line[vb] == '\t')) ++vb;
  while (ve > vb && (line[ve - 1] == ' ' || line[ve - 1] == '\t')) --ve;
  // Reuse a retired header pair (and its string capacities) when one is
  // available from a previous request on this connection.
  if (header_count_ == request_.headers.size()) {
    request_.headers.emplace_back();
  }
  auto& header = request_.headers[header_count_++];
  header.first.assign(line, 0, colon);
  LowerInPlace(&header.first);
  header.second.assign(line, vb, ve - vb);
  return true;
}

void HttpParser::FinishHeaders() {
  // Trim pairs retired by Reset() before FindHeader can see them.
  request_.headers.resize(header_count_);
  if (request_.FindHeader("transfer-encoding") != nullptr) {
    Fail(501, "transfer-encoding not supported; use Content-Length");
    return;
  }
  const std::string* connection = request_.FindHeader("connection");
  if (connection != nullptr) {
    if (HasConnectionToken(*connection, "close")) {
      request_.keep_alive = false;
    } else if (HasConnectionToken(*connection, "keep-alive")) {
      request_.keep_alive = true;
    }
  }
  const std::string* length = request_.FindHeader("content-length");
  if (length == nullptr) {
    state_ = State::kComplete;
    return;
  }
  if (!ParseContentLength(length->data(), length->size(),
                          &content_length_)) {
    Fail(400, StrFormat("bad Content-Length '%s'", length->c_str()));
    return;
  }
  if (content_length_ > limits_.max_body_bytes) {
    Fail(413, StrFormat("body of %zu bytes exceeds limit %zu",
                        content_length_, limits_.max_body_bytes));
    return;
  }
  if (content_length_ == 0) {
    state_ = State::kComplete;
    return;
  }
  request_.body.reserve(content_length_);
  state_ = State::kBody;
}

size_t HttpResponseParser::Feed(const char* data, size_t size) {
  size_t consumed = 0;
  while (consumed < size && state_ != State::kComplete &&
         state_ != State::kError) {
    if (state_ == State::kBody) {
      size_t need = content_length_ - body_.size();
      size_t take = std::min(need, size - consumed);
      body_.append(data + consumed, take);
      consumed += take;
      if (body_.size() == content_length_) state_ = State::kComplete;
      continue;
    }
    if (state_ == State::kBodyUntilClose) {
      body_.append(data + consumed, size - consumed);
      consumed = size;
      continue;
    }
    if (state_ == State::kChunkData) {
      size_t take = std::min(chunk_remaining_, size - consumed);
      body_.append(data + consumed, take);
      consumed += take;
      chunk_remaining_ -= take;
      if (chunk_remaining_ == 0) state_ = State::kChunkDataEnd;
      continue;
    }
    const char* nl = static_cast<const char*>(
        std::memchr(data + consumed, '\n', size - consumed));
    size_t take =
        nl != nullptr ? static_cast<size_t>(nl - (data + consumed)) + 1
                      : size - consumed;
    line_.append(data + consumed, take);
    consumed += take;
    if ((state_ == State::kChunkSize || state_ == State::kTrailers) &&
        line_.size() > limits_.max_chunk_line) {
      state_ = State::kError;
      error_ = "chunk framing line too long";
      break;
    }
    if (nl == nullptr) break;
    line_.pop_back();
    if (!line_.empty() && line_.back() == '\r') line_.pop_back();
    if (state_ == State::kStatusLine) {
      if (line_.empty()) continue;
      // "HTTP/1.x NNN Reason"
      size_t sp = line_.find(' ');
      if (sp == std::string::npos || line_.compare(0, 5, "HTTP/") != 0 ||
          sp + 4 > line_.size()) {
        state_ = State::kError;
        error_ = "malformed status line";
        break;
      }
      status_ = 0;
      for (size_t i = sp + 1; i < sp + 4 && i < line_.size(); ++i) {
        if (line_[i] < '0' || line_[i] > '9') {
          status_ = -1;
          break;
        }
        status_ = status_ * 10 + (line_[i] - '0');
      }
      if (status_ < 100) {
        state_ = State::kError;
        error_ = "malformed status code";
        break;
      }
      keep_alive_ = line_.compare(0, 9, "HTTP/1.0 ") != 0;
      state_ = State::kHeaders;
    } else if (state_ == State::kHeaders) {
      if (line_.empty()) {
        if (chunked_) {
          // Transfer-Encoding wins over Content-Length (RFC 7230 §3.3.3).
          state_ = State::kChunkSize;
        } else if (have_length_) {
          state_ = content_length_ == 0 ? State::kComplete : State::kBody;
        } else if (!keep_alive_) {
          state_ = State::kBodyUntilClose;
        } else {
          state_ = State::kComplete;  // no body
        }
        continue;
      }
      size_t colon = line_.find(':');
      if (colon == std::string::npos) {  // tolerate junk headers
        line_.clear();
        continue;
      }
      size_t vb = colon + 1;
      size_t ve = line_.size();
      while (vb < ve && (line_[vb] == ' ' || line_[vb] == '\t')) ++vb;
      while (ve > vb && (line_[ve - 1] == ' ' || line_[ve - 1] == '\t')) --ve;
      if (NameIs(line_.data(), colon, "content-length")) {
        have_length_ =
            ParseContentLength(line_.data() + vb, ve - vb, &content_length_);
      } else if (NameIs(line_.data(), colon, "transfer-encoding")) {
        // The token list may end with compression codings we don't
        // implement; only the final "chunked" framing matters here.
        if (HasConnectionToken(line_.data() + vb, ve - vb, "chunked")) {
          chunked_ = true;
        }
      } else if (NameIs(line_.data(), colon, "connection")) {
        if (HasConnectionToken(line_.data() + vb, ve - vb, "close")) {
          keep_alive_ = false;
        }
        if (HasConnectionToken(line_.data() + vb, ve - vb, "keep-alive")) {
          keep_alive_ = true;
        }
      }
    } else if (state_ == State::kChunkSize) {
      // "<hex-size>[ \t]*[;extensions]"
      size_t i = 0;
      uint64_t v = 0;
      while (i < line_.size() && HexDigit(line_[i]) >= 0) {
        if (i >= 16) break;  // > 16 hex digits cannot pass the size check
        v = (v << 4) | static_cast<uint64_t>(HexDigit(line_[i]));
        ++i;
      }
      size_t digits = i;
      while (i < line_.size() && (line_[i] == ' ' || line_[i] == '\t')) ++i;
      if (digits == 0 || digits > 16 ||
          (i < line_.size() && line_[i] != ';')) {
        state_ = State::kError;
        error_ = "malformed chunk size";
        break;
      }
      if (v > limits_.max_body_bytes ||
          body_.size() + v > limits_.max_body_bytes) {
        state_ = State::kError;
        error_ = "chunked body too large";
        break;
      }
      if (v == 0) {
        state_ = State::kTrailers;
      } else {
        chunk_remaining_ = static_cast<size_t>(v);
        state_ = State::kChunkData;
      }
    } else if (state_ == State::kChunkDataEnd) {
      if (!line_.empty()) {
        state_ = State::kError;
        error_ = "missing CRLF after chunk data";
        break;
      }
      state_ = State::kChunkSize;
    } else {  // kTrailers: skip trailer headers until the blank line
      if (line_.empty()) state_ = State::kComplete;
    }
    line_.clear();
  }
  return consumed;
}

void HttpResponseParser::Reset() {
  state_ = State::kStatusLine;
  line_.clear();
  content_length_ = 0;
  have_length_ = false;
  chunked_ = false;
  chunk_remaining_ = 0;
  status_ = 0;
  keep_alive_ = true;
  body_.clear();  // capacity retained for the next response
  error_.clear();
}

void HttpResponseParser::FinishEof() {
  if (state_ == State::kBodyUntilClose) {
    state_ = State::kComplete;
  } else if (state_ != State::kComplete) {
    state_ = State::kError;
    error_ = "connection closed mid-response";
  }
}

}  // namespace rafiki::net
