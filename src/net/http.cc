#include "net/http.h"

#include <cctype>
#include <cstring>

#include "common/string_util.h"

namespace rafiki::net {
namespace {

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string TrimOws(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

/// True when a comma-separated Connection header value contains `token`
/// (case-insensitive).
bool HasConnectionToken(const std::string& value, const char* token) {
  for (const std::string& part : Split(ToLower(value), ',')) {
    if (TrimOws(part) == token) return true;
  }
  return false;
}

/// Strict non-negative integer parse for Content-Length.
bool ParseContentLength(const std::string& s, size_t* out) {
  if (s.empty() || s.size() > 18) return false;
  size_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<size_t>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

std::string PercentDecode(const std::string& s, bool plus_as_space) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '+' && plus_as_space) {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < s.size()) {
      int hi = HexDigit(s[i + 1]);
      int lo = HexDigit(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back(c);  // malformed escape kept literally
      }
    } else {
      out.push_back(c);
    }
  }
  return out;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 414: return "URI Too Long";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return status < 400 ? "OK" : "Error";
  }
}

const std::string* HttpRequest::FindHeader(
    const std::string& lowercase_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lowercase_name) return &value;
  }
  return nullptr;
}

std::string SerializeResponse(const HttpResponse& response, bool keep_alive) {
  std::string out = StrFormat(
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: %s\r\n",
      response.status, ReasonPhrase(response.status),
      response.content_type.c_str(), response.body.size(),
      keep_alive ? "keep-alive" : "close");
  for (const auto& [name, value] : response.headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  out += response.body;
  return out;
}

std::string SerializeRequest(const std::string& method,
                             const std::string& target,
                             const std::string& host, const std::string& body,
                             bool keep_alive) {
  std::string out = StrFormat(
      "%s %s HTTP/1.1\r\nHost: %s\r\nContent-Length: %zu\r\n"
      "Connection: %s\r\n\r\n",
      method.c_str(), target.c_str(), host.c_str(), body.size(),
      keep_alive ? "keep-alive" : "close");
  out += body;
  return out;
}

void HttpParser::Fail(int status, std::string message) {
  state_ = State::kError;
  error_status_ = status;
  error_ = std::move(message);
}

void HttpParser::Reset() {
  state_ = State::kRequestLine;
  line_.clear();
  header_bytes_ = 0;
  content_length_ = 0;
  error_status_ = 400;
  error_.clear();
  request_ = HttpRequest{};
}

size_t HttpParser::Feed(const char* data, size_t size) {
  size_t consumed = 0;
  while (consumed < size && state_ != State::kComplete &&
         state_ != State::kError) {
    if (state_ == State::kBody) {
      size_t need = content_length_ - request_.body.size();
      size_t take = std::min(need, size - consumed);
      request_.body.append(data + consumed, take);
      consumed += take;
      if (request_.body.size() == content_length_) {
        state_ = State::kComplete;
      }
      continue;
    }
    // Line-oriented states: take bytes up to (and including) the next LF.
    const char* nl = static_cast<const char*>(
        std::memchr(data + consumed, '\n', size - consumed));
    size_t take =
        nl != nullptr ? static_cast<size_t>(nl - (data + consumed)) + 1
                      : size - consumed;
    line_.append(data + consumed, take);
    consumed += take;
    if (state_ == State::kRequestLine &&
        line_.size() > limits_.max_request_line) {
      Fail(414, "request line too long");
      break;
    }
    if (state_ == State::kHeaders &&
        header_bytes_ + line_.size() > limits_.max_header_bytes) {
      Fail(431, "headers too large");
      break;
    }
    if (nl == nullptr) break;  // partial line; wait for more bytes

    line_.pop_back();  // '\n'
    if (!line_.empty() && line_.back() == '\r') line_.pop_back();
    std::string line;
    line.swap(line_);
    if (state_ == State::kRequestLine) {
      // Tolerate blank line(s) before the request line (RFC 7230 §3.5).
      if (line.empty()) continue;
      if (!FinishRequestLine(line)) break;
      state_ = State::kHeaders;
    } else {  // kHeaders
      header_bytes_ += line.size() + 2;
      if (line.empty()) {
        FinishHeaders();
      } else if (!FinishHeaderLine(line)) {
        break;
      }
    }
  }
  return consumed;
}

bool HttpParser::FinishRequestLine(const std::string& line) {
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                        : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      sp2 == sp1 + 1 || line.find(' ', sp2 + 1) != std::string::npos) {
    Fail(400, "malformed request line");
    return false;
  }
  request_.method = line.substr(0, sp1);
  request_.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string version = line.substr(sp2 + 1);
  if (request_.method.empty() || request_.target.empty()) {
    Fail(400, "malformed request line");
    return false;
  }
  for (char c : request_.method) {
    if (!std::isalpha(static_cast<unsigned char>(c))) {
      Fail(400, "bad method");
      return false;
    }
  }
  if (request_.target[0] != '/') {
    Fail(400, "request target must be origin-form (/path)");
    return false;
  }
  if (version == "HTTP/1.1") {
    request_.version_minor = 1;
    request_.keep_alive = true;
  } else if (version == "HTTP/1.0") {
    request_.version_minor = 0;
    request_.keep_alive = false;
  } else if (version.compare(0, 5, "HTTP/") == 0) {
    Fail(505, StrFormat("unsupported version '%s'", version.c_str()));
    return false;
  } else {
    Fail(400, StrFormat("malformed version '%s'", version.c_str()));
    return false;
  }
  size_t qmark = request_.target.find('?');
  if (qmark == std::string::npos) {
    request_.path = request_.target;
  } else {
    request_.path = request_.target.substr(0, qmark);
    request_.query = request_.target.substr(qmark + 1);
  }
  return true;
}

bool HttpParser::FinishHeaderLine(const std::string& line) {
  size_t colon = line.find(':');
  if (colon == std::string::npos || colon == 0) {
    Fail(400, "malformed header line");
    return false;
  }
  std::string name = line.substr(0, colon);
  for (char c : name) {
    // RFC 7230 forbids whitespace inside or after the field name.
    if (c == ' ' || c == '\t' ||
        std::iscntrl(static_cast<unsigned char>(c))) {
      Fail(400, "malformed header name");
      return false;
    }
  }
  request_.headers.emplace_back(ToLower(std::move(name)),
                                TrimOws(line.substr(colon + 1)));
  return true;
}

void HttpParser::FinishHeaders() {
  if (request_.FindHeader("transfer-encoding") != nullptr) {
    Fail(501, "transfer-encoding not supported; use Content-Length");
    return;
  }
  const std::string* connection = request_.FindHeader("connection");
  if (connection != nullptr) {
    if (HasConnectionToken(*connection, "close")) {
      request_.keep_alive = false;
    } else if (HasConnectionToken(*connection, "keep-alive")) {
      request_.keep_alive = true;
    }
  }
  const std::string* length = request_.FindHeader("content-length");
  if (length == nullptr) {
    state_ = State::kComplete;
    return;
  }
  if (!ParseContentLength(*length, &content_length_)) {
    Fail(400, StrFormat("bad Content-Length '%s'", length->c_str()));
    return;
  }
  if (content_length_ > limits_.max_body_bytes) {
    Fail(413, StrFormat("body of %zu bytes exceeds limit %zu",
                        content_length_, limits_.max_body_bytes));
    return;
  }
  if (content_length_ == 0) {
    state_ = State::kComplete;
    return;
  }
  request_.body.reserve(content_length_);
  state_ = State::kBody;
}

size_t HttpResponseParser::Feed(const char* data, size_t size) {
  size_t consumed = 0;
  while (consumed < size && state_ != State::kComplete &&
         state_ != State::kError) {
    if (state_ == State::kBody) {
      size_t need = content_length_ - body_.size();
      size_t take = std::min(need, size - consumed);
      body_.append(data + consumed, take);
      consumed += take;
      if (body_.size() == content_length_) state_ = State::kComplete;
      continue;
    }
    if (state_ == State::kBodyUntilClose) {
      body_.append(data + consumed, size - consumed);
      consumed = size;
      continue;
    }
    const char* nl = static_cast<const char*>(
        std::memchr(data + consumed, '\n', size - consumed));
    size_t take =
        nl != nullptr ? static_cast<size_t>(nl - (data + consumed)) + 1
                      : size - consumed;
    line_.append(data + consumed, take);
    consumed += take;
    if (nl == nullptr) break;
    line_.pop_back();
    if (!line_.empty() && line_.back() == '\r') line_.pop_back();
    std::string line;
    line.swap(line_);
    if (state_ == State::kStatusLine) {
      if (line.empty()) continue;
      // "HTTP/1.x NNN Reason"
      size_t sp = line.find(' ');
      if (sp == std::string::npos || line.compare(0, 5, "HTTP/") != 0 ||
          sp + 4 > line.size()) {
        state_ = State::kError;
        error_ = "malformed status line";
        break;
      }
      status_ = 0;
      for (size_t i = sp + 1; i < sp + 4 && i < line.size(); ++i) {
        if (line[i] < '0' || line[i] > '9') {
          status_ = -1;
          break;
        }
        status_ = status_ * 10 + (line[i] - '0');
      }
      if (status_ < 100) {
        state_ = State::kError;
        error_ = "malformed status code";
        break;
      }
      keep_alive_ = line.compare(0, 9, "HTTP/1.0 ") != 0;
      state_ = State::kHeaders;
    } else {  // kHeaders
      if (line.empty()) {
        if (have_length_) {
          state_ = content_length_ == 0 ? State::kComplete : State::kBody;
        } else if (!keep_alive_) {
          state_ = State::kBodyUntilClose;
        } else {
          state_ = State::kComplete;  // no body
        }
        continue;
      }
      size_t colon = line.find(':');
      if (colon == std::string::npos) continue;  // tolerate junk headers
      std::string name = ToLower(line.substr(0, colon));
      std::string value = TrimOws(line.substr(colon + 1));
      if (name == "content-length") {
        have_length_ = ParseContentLength(value, &content_length_);
      } else if (name == "connection") {
        if (HasConnectionToken(value, "close")) keep_alive_ = false;
        if (HasConnectionToken(value, "keep-alive")) keep_alive_ = true;
      }
    }
  }
  return consumed;
}

void HttpResponseParser::FinishEof() {
  if (state_ == State::kBodyUntilClose) {
    state_ = State::kComplete;
  } else if (state_ != State::kComplete) {
    state_ = State::kError;
    error_ = "connection closed mid-response";
  }
}

}  // namespace rafiki::net
