#include "net/loadgen.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "common/string_util.h"
#include "net/event_loop.h"
#include "net/http.h"
#include "net/http_client.h"
#include "net/socket.h"
#include "serving/sine_arrival.h"

namespace rafiki::net {
namespace {

using SteadyClock = std::chrono::steady_clock;

/// Shared run state: the scheduler produces arrival timestamps, the
/// connection workers consume them. Everything below `mu` is guarded.
struct RunState {
  const LoadGenOptions* opts = nullptr;
  SteadyClock::time_point epoch;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<double> arrivals;  // scheduled arrival times, seconds
  bool done_scheduling = false;
  int64_t dropped_backlog = 0;

  double Now() const {
    return std::chrono::duration<double>(SteadyClock::now() - epoch).count();
  }
};

/// EventLoop options slaved to the run's job clock, so wheel deadlines
/// (`RunAt(hard_stop)`, the pacer's periodic tick) are exact in the same
/// timebase the arrival schedule and latency accounting use.
EventLoop::Options LoopOptions(const RunState& state) {
  EventLoop::Options options;
  options.clock = [&state] { return state.Now(); };
  return options;
}

/// Per-worker accumulator; merged after the join so workers never contend.
struct WorkerTally {
  std::vector<LoadGenWindow> windows;
  LatencyHistogram latency;
  int64_t completed = 0;
  int64_t overdue = 0;
  int64_t rejected = 0;
  int64_t deadline = 0;
  int64_t errors = 0;

  explicit WorkerTally(size_t num_windows) : windows(num_windows) {}

  LoadGenWindow& WindowAt(double t, double width) {
    auto i = static_cast<size_t>(std::max(t, 0.0) / width);
    return windows[std::min(i, windows.size() - 1)];
  }
};

/// Above this open-loop target rate the pacer stops trusting the OS sleep
/// granularity: a futex wakeup carries ~50-100us of jitter, which at 50k+
/// req/s is several inter-arrival gaps and smears the schedule the
/// coordinated-omission-free accounting depends on.
constexpr double kSpinPacingRate = 50e3;
/// How much of each wait is burned by busy-spinning instead of sleeping
/// when spin pacing is on: long waits still sleep down to this margin.
constexpr double kSpinSlackSeconds = 200e-6;

/// Waits until job-clock `deadline`. Plain sleep normally; with `spin`
/// (target rate >= kSpinPacingRate) the last kSpinSlackSeconds are
/// busy-spun so the fire lands within a few microseconds of the schedule.
/// Latencies are still measured from the *scheduled* time, so pacing mode
/// changes precision, never the accounting.
void PaceUntil(const RunState& state, double deadline, bool spin) {
  double wait = deadline - state.Now();
  if (wait <= 0) return;
  if (!spin) {
    std::this_thread::sleep_for(std::chrono::duration<double>(wait));
    return;
  }
  if (wait > kSpinSlackSeconds) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(wait - kSpinSlackSeconds));
  }
  while (state.Now() < deadline) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }
}

void RecordResponse(const LoadGenOptions& opts, WorkerTally& tally,
                    double arrival, double latency, int status, bool ok) {
  LoadGenWindow& w = tally.WindowAt(arrival, opts.window_seconds);
  // 503 (shed) and 504 (queue deadline) are well-formed server answers
  // under load, not transport errors; they are counted separately.
  if (!ok || (status / 100 != 2 && status != 503 && status != 504)) {
    ++tally.errors;
    ++w.errors;
    return;
  }
  ++tally.completed;
  ++w.completed;
  tally.latency.Add(latency);
  if (latency > opts.tau) {
    ++tally.overdue;
    ++w.overdue;
  }
  if (status == 503) {
    ++tally.rejected;
    ++w.rejected;
  }
  if (status == 504) {
    ++tally.deadline;
    ++w.deadline;
  }
}

/// Open-loop worker: take the earliest scheduled arrival, wait for its
/// timestamp, fire, measure from the *scheduled* time (coordinated
/// omission is impossible by construction).
void OpenLoopWorker(RunState& state, WorkerTally& tally) {
  const LoadGenOptions& opts = *state.opts;
  const bool spin = opts.target_rate >= kSpinPacingRate;
  HttpClient client(opts.host, opts.port, opts.timeout_seconds);
  for (;;) {
    double arrival;
    {
      std::unique_lock<std::mutex> lock(state.mu);
      state.cv.wait(lock, [&] {
        return state.done_scheduling || !state.arrivals.empty();
      });
      if (state.arrivals.empty()) return;  // done_scheduling && drained
      arrival = state.arrivals.front();
      state.arrivals.pop_front();
    }
    PaceUntil(state, arrival, spin);
    // RequestView reuses the client's wire and body buffers: the measuring
    // loop itself allocates nothing per request.
    Result<int> status = client.RequestView(opts.method, opts.target,
                                            opts.body);
    double latency = state.Now() - arrival;
    RecordResponse(opts, tally, arrival, latency, status.ok() ? *status : 0,
                   status.ok());
  }
}

/// Closed-loop driver: one reactor thread multiplexes every connection,
/// keeping exactly one request outstanding per connection and firing the
/// next the instant a response completes. The request's wire bytes are
/// serialized once up front and replayed verbatim, and each connection
/// reuses one response parser, so the generator does no per-request
/// formatting or heap work — unlike a thread-per-connection client, whose
/// context switches bottleneck the measurement on few-core machines.
class ClosedLoopMux {
 public:
  ClosedLoopMux(RunState& state, WorkerTally& tally)
      : state_(state),
        opts_(*state.opts),
        tally_(tally),
        depth_(static_cast<uint32_t>(std::max(opts_.pipeline, 1))),
        loop_(LoopOptions(state)) {}

  void Run() {
    SerializeRequestTo(opts_.method, opts_.target,
                       opts_.host + ":" + std::to_string(opts_.port),
                       opts_.body, /*keep_alive=*/true, &wire_);
    conns_.resize(static_cast<size_t>(opts_.connections));
    for (size_t i = 0; i < conns_.size(); ++i) {
      Conn& c = conns_[i];
      c.starts.assign(depth_, 0.0);
      if (!Connect(i)) {
        c.dead = true;
        continue;
      }
      for (uint32_t d = 0; d < depth_; ++d) QueueRequest(i);
      ContinueSend(i);
    }
    // The loop sleeps until socket activity and exits the tick everything
    // drains; the wheel timer bounds a run whose last responses never
    // arrive (the old code burned a 20 ms safety poll on this).
    const double hard_stop =
        opts_.duration_seconds +
        (opts_.timeout_seconds > 0 ? opts_.timeout_seconds : 5.0);
    loop_.RunAt(hard_stop, [this] { loop_.Stop(); });
    loop_.SetTickEndHook([this] {
      if (inflight_ <= 0) loop_.Stop();
    });
    if (inflight_ > 0) loop_.Run();
    // Requests still outstanding at the hard stop never got an answer:
    // record them as errors so every arrival stays accounted for.
    double now = state_.Now();
    for (Conn& c : conns_) {
      while (c.done_seq != c.issue_seq) {
        RecordResponse(opts_, tally_, c.starts[c.done_seq % depth_],
                       now - c.starts[c.done_seq % depth_], 0, false);
        ++c.done_seq;
        --inflight_;
      }
    }
  }

 private:
  struct Conn {
    Socket sock;
    HttpResponseParser parser;
    /// Issue timestamps of in-flight requests, indexed by seq % depth.
    /// HTTP pipelining answers in order, so done_seq walks behind
    /// issue_seq and issue_seq - done_seq <= depth always holds.
    std::vector<double> starts;
    uint32_t issue_seq = 0;
    uint32_t done_seq = 0;
    /// Whole requests queued for transmission but not yet fully sent,
    /// and the byte offset inside the first of them.
    uint32_t to_send = 0;
    size_t send_off = 0;
    bool want_write = false;
    bool dead = false;
  };

  bool Connect(size_t i) {
    Conn& c = conns_[i];
    Result<Socket> sock =
        ConnectTcp(opts_.host, opts_.port, opts_.timeout_seconds);
    if (!sock.ok()) return false;
    c.sock = std::move(*sock);
    if (!SetNonBlocking(c.sock.fd(), true).ok()) return false;
    (void)SetNoDelay(c.sock.fd());
    c.want_write = false;
    return loop_
        .AddFd(c.sock.fd(), /*want_read=*/true, /*want_write=*/false,
               [this, i](uint32_t events) { OnEvent(i, events); })
        .ok();
  }

  void OnEvent(size_t i, uint32_t events) {
    Conn& c = conns_[i];
    if (c.dead) return;
    if ((events & EPOLLOUT) != 0) ContinueSend(i);
    // ContinueSend may have failed (and reconnected or killed) the
    // connection; re-check before reading.
    if (!conns_[i].dead &&
        (events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) {
      OnReadable(i);
    }
  }

  void Disconnect(size_t i) {
    Conn& c = conns_[i];
    if (c.sock.valid()) {
      (void)loop_.RemoveFd(c.sock.fd());
      c.sock.Close();
    }
    c.to_send = 0;
    c.send_off = 0;
  }

  void SetWantWrite(size_t i, bool on) {
    Conn& c = conns_[i];
    if (c.want_write == on) return;
    c.want_write = on;
    (void)loop_.ModifyFd(c.sock.fd(), /*want_read=*/true, on);
  }

  /// Books a new arrival on connection `i` and queues its wire bytes.
  /// Call only while the deadline has not passed; follow with
  /// ContinueSend (batched so several queued requests share one syscall).
  void QueueRequest(size_t i) {
    Conn& c = conns_[i];
    double start = state_.Now();
    ++tally_.WindowAt(start, opts_.window_seconds).arrived;
    c.starts[c.issue_seq % depth_] = start;
    ++c.issue_seq;
    ++c.to_send;
    ++inflight_;
  }

  /// Flushes queued requests with scatter-gather: every iovec points at
  /// the one serialized request, so a burst of N pipelined requests is a
  /// single sendmsg of N*|wire| bytes with zero copies.
  void ContinueSend(size_t i) {
    Conn& c = conns_[i];
    while (c.to_send > 0) {
      iovec iov[kMaxSendIov];
      uint32_t cnt = std::min(c.to_send, kMaxSendIov);
      iov[0].iov_base = const_cast<char*>(wire_.data()) + c.send_off;
      iov[0].iov_len = wire_.size() - c.send_off;
      for (uint32_t k = 1; k < cnt; ++k) {
        iov[k].iov_base = const_cast<char*>(wire_.data());
        iov[k].iov_len = wire_.size();
      }
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = cnt;
      ssize_t n = ::sendmsg(c.sock.fd(), &msg, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        SetWantWrite(i, true);
        return;
      }
      if (n < 0) {
        FailConnection(i);
        return;
      }
      auto sent = static_cast<size_t>(n);
      while (sent > 0) {
        size_t first = wire_.size() - c.send_off;
        if (sent >= first) {
          sent -= first;
          c.send_off = 0;
          --c.to_send;
        } else {
          c.send_off += sent;
          sent = 0;
        }
      }
    }
    SetWantWrite(i, false);
  }

  void OnReadable(size_t i) {
    Conn& c = conns_[i];
    char buf[65536];
    uint32_t queued = 0;
    for (;;) {
      ssize_t n = ::recv(c.sock.fd(), buf, sizeof(buf), 0);
      if (n > 0) {
        size_t off = 0;
        while (off < static_cast<size_t>(n)) {
          off += c.parser.Feed(buf + off, static_cast<size_t>(n) - off);
          if (c.parser.failed()) {
            FailConnection(i);
            return;
          }
          if (!c.parser.done()) continue;
          // One pipelined response completed; more may follow in `buf`.
          double now = state_.Now();
          RecordResponse(opts_, tally_, c.starts[c.done_seq % depth_],
                         now - c.starts[c.done_seq % depth_],
                         c.parser.status(), true);
          ++c.done_seq;
          --inflight_;
          bool reuse = c.parser.keep_alive();
          c.parser.Reset();
          if (!reuse) {
            // The server is closing after this response; everything still
            // in flight on this connection is lost.
            FailConnection(i);
            return;
          }
          if (now < opts_.duration_seconds) {
            QueueRequest(i);
            ++queued;
          }
        }
        // Level-style short read: less than the buffer means the socket
        // is drained; a full buffer may have more behind it.
        if (static_cast<size_t>(n) < sizeof(buf)) break;
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      // EOF or transport error. An EOF can legitimately terminate a
      // read-until-close body; anything else kills what is in flight.
      if (n == 0 && c.done_seq != c.issue_seq &&
          c.parser.state() == HttpResponseParser::State::kBodyUntilClose) {
        c.parser.FinishEof();
        double now = state_.Now();
        RecordResponse(opts_, tally_, c.starts[c.done_seq % depth_],
                       now - c.starts[c.done_seq % depth_],
                       c.parser.status(), true);
        ++c.done_seq;
        --inflight_;
        c.parser.Reset();
      }
      FailConnection(i);
      return;
    }
    if (queued > 0) ContinueSend(i);
  }

  /// Records everything in flight on `i` as transport errors, then
  /// reconnects and refills the pipeline while the deadline allows.
  void FailConnection(size_t i) {
    Conn& c = conns_[i];
    double now = state_.Now();
    while (c.done_seq != c.issue_seq) {
      RecordResponse(opts_, tally_, c.starts[c.done_seq % depth_],
                     now - c.starts[c.done_seq % depth_], 0, false);
      ++c.done_seq;
      --inflight_;
    }
    c.parser.Reset();
    Disconnect(i);
    if (now >= opts_.duration_seconds || !Connect(i)) {
      c.dead = true;
      return;
    }
    for (uint32_t d = 0; d < depth_; ++d) QueueRequest(i);
    ContinueSend(i);
  }

  static constexpr uint32_t kMaxSendIov = 64;

  RunState& state_;
  const LoadGenOptions& opts_;
  WorkerTally& tally_;
  const uint32_t depth_;
  std::string wire_;
  std::vector<Conn> conns_;
  EventLoop loop_;
  int64_t inflight_ = 0;
};

/// Scheduler: walks real time in small ticks, asks the sine process how
/// many requests arrive per tick (Equations 8-9 + Gaussian noise), and
/// spreads them uniformly inside the tick.
void ScheduleArrivals(RunState& state, std::vector<LoadGenWindow>& windows) {
  const LoadGenOptions& opts = *state.opts;
  serving::SineArrivalProcess sine(
      opts.target_rate,
      opts.sine_period > 0 ? opts.sine_period : opts.duration_seconds,
      opts.seed, opts.sine_period > 0 ? opts.noise_stddev : 0.0);
  Rng spread(Rng::Mix(opts.seed + 17));
  // At spin-pacing rates a 5 ms tick releases hundreds of arrivals per
  // batch; a finer tick keeps the backlog handoff smooth and the spin
  // windows short.
  const bool spin = opts.target_rate >= kSpinPacingRate;
  const double tick = spin ? 0.001 : 0.005;
  double constant_residual = 0.0;
  double t = 0.0;

  // Books one batch of arrivals for [t, t + dt) and advances t.
  auto emit_batch = [&](double dt) {
    int64_t n;
    if (opts.sine_period > 0) {
      n = sine.Arrivals(t, dt);
    } else {
      constant_residual += opts.target_rate * dt;
      n = static_cast<int64_t>(constant_residual);
      constant_residual -= static_cast<double>(n);
    }
    if (n > 0) {
      std::vector<double> times;
      times.reserve(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        times.push_back(t + spread.Uniform(0.0, dt));
      }
      std::sort(times.begin(), times.end());
      {
        std::lock_guard<std::mutex> lock(state.mu);
        for (double at : times) {
          auto wi = static_cast<size_t>(at / opts.window_seconds);
          LoadGenWindow& w = windows[std::min(wi, windows.size() - 1)];
          ++w.arrived;
          if (state.arrivals.size() >= opts.max_backlog) {
            ++w.dropped;
            ++state.dropped_backlog;
          } else {
            state.arrivals.push_back(at);
          }
        }
      }
      state.cv.notify_all();
    }
    t += dt;
  };

  if (spin) {
    // The 1 ms wheel granularity cannot give the few-microsecond batch
    // release spin pacing exists for, so high rates keep the busy-spin
    // pacer (asserted to sustain >= 50k req/s in loadgen_test). When an
    // iteration overruns its tick (worker threads starving this one), the
    // next batch covers the whole lag — the schedule catches up instead
    // of silently emitting below the target rate.
    while (t < opts.duration_seconds) {
      double lag = state.Now() - t;
      double dt = std::min(std::max(tick, lag), opts.duration_seconds - t);
      emit_batch(dt);
      PaceUntil(state, t, /*spin=*/true);
    }
  } else {
    // Everything slower rides the reactor wheel: a periodic timer releases
    // each batch at its exact tick (re-armed from the schedule, so batch
    // release never drifts the way accumulated sleep error does).
    EventLoop loop(LoopOptions(state));
    emit_batch(std::min(tick, opts.duration_seconds));
    if (t < opts.duration_seconds) {
      loop.RunEvery(tick, [&] {
        emit_batch(std::min(tick, opts.duration_seconds - t));
        if (t >= opts.duration_seconds) loop.Stop();
      });
      loop.Run();
    }
  }
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.done_scheduling = true;
  }
  state.cv.notify_all();
}

}  // namespace

LoadGenReport RunLoadGen(const LoadGenOptions& opts) {
  RAFIKI_CHECK_GT(opts.duration_seconds, 0.0);
  RAFIKI_CHECK_GT(opts.window_seconds, 0.0);
  RAFIKI_CHECK_GT(opts.connections, 0);

  auto num_windows = static_cast<size_t>(
      std::ceil(opts.duration_seconds / opts.window_seconds));
  num_windows = std::max<size_t>(num_windows, 1);

  RunState state;
  state.opts = &opts;
  state.epoch = SteadyClock::now();

  std::vector<WorkerTally> tallies;
  tallies.reserve(static_cast<size_t>(opts.connections));
  for (int i = 0; i < opts.connections; ++i) {
    tallies.emplace_back(num_windows);
  }
  // Scheduler-side arrival/drop counts (open loop).
  std::vector<LoadGenWindow> arrival_windows(num_windows);

  std::vector<std::thread> workers;
  if (opts.open_loop) {
    workers.reserve(static_cast<size_t>(opts.connections));
    for (int i = 0; i < opts.connections; ++i) {
      WorkerTally& tally = tallies[static_cast<size_t>(i)];
      workers.emplace_back([&state, &tally] { OpenLoopWorker(state, tally); });
    }
    ScheduleArrivals(state, arrival_windows);
  } else {
    // One reactor thread drives all closed-loop connections; the remaining
    // tallies stay zero and merge as no-ops.
    workers.emplace_back(
        [&state, &tallies] { ClosedLoopMux(state, tallies[0]).Run(); });
  }
  for (std::thread& t : workers) t.join();
  double elapsed = state.Now();

  LoadGenReport report;
  report.windows.assign(num_windows, LoadGenWindow{});
  for (size_t i = 0; i < num_windows; ++i) {
    report.windows[i].t_begin =
        static_cast<double>(i) * opts.window_seconds;
  }
  for (size_t i = 0; i < num_windows; ++i) {
    report.windows[i].arrived += arrival_windows[i].arrived;
    report.windows[i].dropped += arrival_windows[i].dropped;
  }
  for (const WorkerTally& tally : tallies) {
    report.completed += tally.completed;
    report.overdue += tally.overdue;
    report.rejected += tally.rejected;
    report.deadline += tally.deadline;
    report.errors += tally.errors;
    report.latency.Merge(tally.latency);
    for (size_t i = 0; i < num_windows; ++i) {
      const LoadGenWindow& w = tally.windows[i];
      report.windows[i].arrived += w.arrived;  // closed-loop arrivals
      report.windows[i].completed += w.completed;
      report.windows[i].overdue += w.overdue;
      report.windows[i].rejected += w.rejected;
      report.windows[i].deadline += w.deadline;
      report.windows[i].errors += w.errors;
    }
  }
  for (const LoadGenWindow& w : report.windows) report.arrived += w.arrived;
  report.dropped = state.dropped_backlog;
  report.duration_seconds = elapsed;
  report.achieved_rps =
      elapsed > 0 ? static_cast<double>(report.completed) / elapsed : 0.0;
  return report;
}

std::string LoadGenReport::ToString() const {
  std::string out;
  for (const LoadGenWindow& w : windows) {
    out += StrFormat(
        "window t=%.1f arrived=%lld completed=%lld overdue=%lld "
        "rejected=%lld deadline=%lld dropped=%lld errors=%lld\n",
        w.t_begin, static_cast<long long>(w.arrived),
        static_cast<long long>(w.completed),
        static_cast<long long>(w.overdue),
        static_cast<long long>(w.rejected),
        static_cast<long long>(w.deadline),
        static_cast<long long>(w.dropped),
        static_cast<long long>(w.errors));
  }
  out += StrFormat(
      "total arrived=%lld completed=%lld overdue=%lld rejected=%lld "
      "deadline=%lld dropped=%lld errors=%lld rps=%.1f\n",
      static_cast<long long>(arrived), static_cast<long long>(completed),
      static_cast<long long>(overdue), static_cast<long long>(rejected),
      static_cast<long long>(deadline), static_cast<long long>(dropped),
      static_cast<long long>(errors), achieved_rps);
  out += StrFormat(
      "latency mean=%.6f p50=%.6f p95=%.6f p99=%.6f max=%.6f\n",
      latency.mean(), latency.P50(), latency.P95(), latency.P99(),
      latency.max());
  return out;
}

}  // namespace rafiki::net
