#include "net/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "common/string_util.h"
#include "net/http_client.h"
#include "serving/sine_arrival.h"

namespace rafiki::net {
namespace {

using SteadyClock = std::chrono::steady_clock;

/// Shared run state: the scheduler produces arrival timestamps, the
/// connection workers consume them. Everything below `mu` is guarded.
struct RunState {
  const LoadGenOptions* opts = nullptr;
  SteadyClock::time_point epoch;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<double> arrivals;  // scheduled arrival times, seconds
  bool done_scheduling = false;
  int64_t dropped_backlog = 0;

  double Now() const {
    return std::chrono::duration<double>(SteadyClock::now() - epoch).count();
  }
};

/// Per-worker accumulator; merged after the join so workers never contend.
struct WorkerTally {
  std::vector<LoadGenWindow> windows;
  LatencyHistogram latency;
  int64_t completed = 0;
  int64_t overdue = 0;
  int64_t rejected = 0;
  int64_t deadline = 0;
  int64_t errors = 0;

  explicit WorkerTally(size_t num_windows) : windows(num_windows) {}

  LoadGenWindow& WindowAt(double t, double width) {
    auto i = static_cast<size_t>(std::max(t, 0.0) / width);
    return windows[std::min(i, windows.size() - 1)];
  }
};

void RecordResponse(const LoadGenOptions& opts, WorkerTally& tally,
                    double arrival, double latency, int status, bool ok) {
  LoadGenWindow& w = tally.WindowAt(arrival, opts.window_seconds);
  // 503 (shed) and 504 (queue deadline) are well-formed server answers
  // under load, not transport errors; they are counted separately.
  if (!ok || (status / 100 != 2 && status != 503 && status != 504)) {
    ++tally.errors;
    ++w.errors;
    return;
  }
  ++tally.completed;
  ++w.completed;
  tally.latency.Add(latency);
  if (latency > opts.tau) {
    ++tally.overdue;
    ++w.overdue;
  }
  if (status == 503) {
    ++tally.rejected;
    ++w.rejected;
  }
  if (status == 504) {
    ++tally.deadline;
    ++w.deadline;
  }
}

/// Open-loop worker: take the earliest scheduled arrival, wait for its
/// timestamp, fire, measure from the *scheduled* time (coordinated
/// omission is impossible by construction).
void OpenLoopWorker(RunState& state, WorkerTally& tally) {
  const LoadGenOptions& opts = *state.opts;
  HttpClient client(opts.host, opts.port, opts.timeout_seconds);
  for (;;) {
    double arrival;
    {
      std::unique_lock<std::mutex> lock(state.mu);
      state.cv.wait(lock, [&] {
        return state.done_scheduling || !state.arrivals.empty();
      });
      if (state.arrivals.empty()) return;  // done_scheduling && drained
      arrival = state.arrivals.front();
      state.arrivals.pop_front();
    }
    double wait = arrival - state.Now();
    if (wait > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(wait));
    }
    Result<HttpResponse> response =
        client.Request(opts.method, opts.target, opts.body);
    double latency = state.Now() - arrival;
    RecordResponse(opts, tally, arrival, latency,
                   response.ok() ? response->status : 0, response.ok());
  }
}

/// Closed-loop worker: back-to-back request/response until the deadline.
void ClosedLoopWorker(RunState& state, WorkerTally& tally) {
  const LoadGenOptions& opts = *state.opts;
  HttpClient client(opts.host, opts.port, opts.timeout_seconds);
  for (;;) {
    double start = state.Now();
    if (start >= opts.duration_seconds) return;
    Result<HttpResponse> response =
        client.Request(opts.method, opts.target, opts.body);
    double latency = state.Now() - start;
    RecordResponse(opts, tally, start, latency,
                   response.ok() ? response->status : 0, response.ok());
    LoadGenWindow& w = tally.WindowAt(start, opts.window_seconds);
    ++w.arrived;
  }
}

/// Scheduler: walks real time in small ticks, asks the sine process how
/// many requests arrive per tick (Equations 8-9 + Gaussian noise), and
/// spreads them uniformly inside the tick.
void ScheduleArrivals(RunState& state, std::vector<LoadGenWindow>& windows) {
  const LoadGenOptions& opts = *state.opts;
  serving::SineArrivalProcess sine(
      opts.target_rate,
      opts.sine_period > 0 ? opts.sine_period : opts.duration_seconds,
      opts.seed, opts.sine_period > 0 ? opts.noise_stddev : 0.0);
  Rng spread(Rng::Mix(opts.seed + 17));
  const double tick = 0.005;
  double constant_residual = 0.0;
  double t = 0.0;
  while (t < opts.duration_seconds) {
    double dt = std::min(tick, opts.duration_seconds - t);
    int64_t n;
    if (opts.sine_period > 0) {
      n = sine.Arrivals(t, dt);
    } else {
      constant_residual += opts.target_rate * dt;
      n = static_cast<int64_t>(constant_residual);
      constant_residual -= static_cast<double>(n);
    }
    if (n > 0) {
      std::vector<double> times;
      times.reserve(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        times.push_back(t + spread.Uniform(0.0, dt));
      }
      std::sort(times.begin(), times.end());
      {
        std::lock_guard<std::mutex> lock(state.mu);
        for (double at : times) {
          auto wi = static_cast<size_t>(at / opts.window_seconds);
          LoadGenWindow& w = windows[std::min(wi, windows.size() - 1)];
          ++w.arrived;
          if (state.arrivals.size() >= opts.max_backlog) {
            ++w.dropped;
            ++state.dropped_backlog;
          } else {
            state.arrivals.push_back(at);
          }
        }
      }
      state.cv.notify_all();
    }
    t += dt;
    double ahead = t - state.Now();
    if (ahead > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(ahead));
    }
  }
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.done_scheduling = true;
  }
  state.cv.notify_all();
}

}  // namespace

LoadGenReport RunLoadGen(const LoadGenOptions& opts) {
  RAFIKI_CHECK_GT(opts.duration_seconds, 0.0);
  RAFIKI_CHECK_GT(opts.window_seconds, 0.0);
  RAFIKI_CHECK_GT(opts.connections, 0);

  auto num_windows = static_cast<size_t>(
      std::ceil(opts.duration_seconds / opts.window_seconds));
  num_windows = std::max<size_t>(num_windows, 1);

  RunState state;
  state.opts = &opts;
  state.epoch = SteadyClock::now();

  std::vector<WorkerTally> tallies;
  tallies.reserve(static_cast<size_t>(opts.connections));
  for (int i = 0; i < opts.connections; ++i) {
    tallies.emplace_back(num_windows);
  }
  // Scheduler-side arrival/drop counts (open loop).
  std::vector<LoadGenWindow> arrival_windows(num_windows);

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(opts.connections));
  for (int i = 0; i < opts.connections; ++i) {
    WorkerTally& tally = tallies[static_cast<size_t>(i)];
    if (opts.open_loop) {
      workers.emplace_back([&state, &tally] { OpenLoopWorker(state, tally); });
    } else {
      workers.emplace_back(
          [&state, &tally] { ClosedLoopWorker(state, tally); });
    }
  }
  if (opts.open_loop) {
    ScheduleArrivals(state, arrival_windows);
  } else {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(opts.duration_seconds));
    {
      std::lock_guard<std::mutex> lock(state.mu);
      state.done_scheduling = true;
    }
    state.cv.notify_all();
  }
  for (std::thread& t : workers) t.join();
  double elapsed = state.Now();

  LoadGenReport report;
  report.windows.assign(num_windows, LoadGenWindow{});
  for (size_t i = 0; i < num_windows; ++i) {
    report.windows[i].t_begin =
        static_cast<double>(i) * opts.window_seconds;
  }
  for (size_t i = 0; i < num_windows; ++i) {
    report.windows[i].arrived += arrival_windows[i].arrived;
    report.windows[i].dropped += arrival_windows[i].dropped;
  }
  for (const WorkerTally& tally : tallies) {
    report.completed += tally.completed;
    report.overdue += tally.overdue;
    report.rejected += tally.rejected;
    report.deadline += tally.deadline;
    report.errors += tally.errors;
    report.latency.Merge(tally.latency);
    for (size_t i = 0; i < num_windows; ++i) {
      const LoadGenWindow& w = tally.windows[i];
      report.windows[i].arrived += w.arrived;  // closed-loop arrivals
      report.windows[i].completed += w.completed;
      report.windows[i].overdue += w.overdue;
      report.windows[i].rejected += w.rejected;
      report.windows[i].deadline += w.deadline;
      report.windows[i].errors += w.errors;
    }
  }
  for (const LoadGenWindow& w : report.windows) report.arrived += w.arrived;
  report.dropped = state.dropped_backlog;
  report.duration_seconds = elapsed;
  report.achieved_rps =
      elapsed > 0 ? static_cast<double>(report.completed) / elapsed : 0.0;
  return report;
}

std::string LoadGenReport::ToString() const {
  std::string out;
  for (const LoadGenWindow& w : windows) {
    out += StrFormat(
        "window t=%.1f arrived=%lld completed=%lld overdue=%lld "
        "rejected=%lld dropped=%lld errors=%lld\n",
        w.t_begin, static_cast<long long>(w.arrived),
        static_cast<long long>(w.completed),
        static_cast<long long>(w.overdue),
        static_cast<long long>(w.rejected),
        static_cast<long long>(w.dropped),
        static_cast<long long>(w.errors));
  }
  out += StrFormat(
      "total arrived=%lld completed=%lld overdue=%lld rejected=%lld "
      "deadline=%lld dropped=%lld errors=%lld rps=%.1f\n",
      static_cast<long long>(arrived), static_cast<long long>(completed),
      static_cast<long long>(overdue), static_cast<long long>(rejected),
      static_cast<long long>(deadline), static_cast<long long>(dropped),
      static_cast<long long>(errors), achieved_rps);
  out += StrFormat(
      "latency mean=%.6f p50=%.6f p95=%.6f p99=%.6f max=%.6f\n",
      latency.mean(), latency.P50(), latency.P95(), latency.P99(),
      latency.max());
  return out;
}

}  // namespace rafiki::net
