#ifndef RAFIKI_NET_HTTP_CLIENT_H_
#define RAFIKI_NET_HTTP_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "net/http.h"
#include "net/socket.h"

namespace rafiki::net {

/// Small blocking HTTP/1.1 client for tests and tooling. One instance owns
/// one keep-alive connection, reconnecting transparently when the server
/// closed it between requests. Not thread-safe; use one per thread.
class HttpClient {
 public:
  HttpClient(std::string host, uint16_t port, double timeout_seconds = 20.0);

  /// Allocation-free round trip for hot loops: serializes into a wire
  /// buffer owned by the client and parses into an owned response parser,
  /// so a steady-state keep-alive request/response cycle reuses every
  /// buffer. Returns the HTTP status code; the response body is readable
  /// via body() until the next call. Reconnects and retries once if the
  /// kept-alive connection turned out dead.
  Result<int> RequestView(const std::string& method, const std::string& target,
                          const std::string& body = "");

  /// Body of the last successful RequestView (borrowed; overwritten by the
  /// next request on this client).
  const std::string& body() const { return parser_.body(); }

  /// Sends one request and blocks for the full response. Copying wrapper
  /// over RequestView for callers that want an owned HttpResponse.
  Result<HttpResponse> Request(const std::string& method,
                               const std::string& target,
                               const std::string& body = "");

  Result<HttpResponse> Get(const std::string& target) {
    return Request("GET", target);
  }
  Result<HttpResponse> Post(const std::string& target,
                            const std::string& body = "") {
    return Request("POST", target, body);
  }

  void Close() { sock_.Close(); }
  bool connected() const { return sock_.valid(); }

 private:
  Status EnsureConnected();
  Result<int> RoundTrip();

  std::string host_;
  uint16_t port_;
  double timeout_;
  Socket sock_;
  std::string wire_;          // serialized request, capacity reused
  HttpResponseParser parser_;  // response state, body capacity reused
};

}  // namespace rafiki::net

#endif  // RAFIKI_NET_HTTP_CLIENT_H_
