#ifndef RAFIKI_NET_HTTP_CLIENT_H_
#define RAFIKI_NET_HTTP_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "net/http.h"
#include "net/socket.h"

namespace rafiki::net {

/// Small blocking HTTP/1.1 client for tests and tooling. One instance owns
/// one keep-alive connection, reconnecting transparently when the server
/// closed it between requests. Not thread-safe; use one per thread.
class HttpClient {
 public:
  HttpClient(std::string host, uint16_t port, double timeout_seconds = 20.0);

  /// Sends one request and blocks for the full response. Reconnects and
  /// retries once if the kept-alive connection turned out dead.
  Result<HttpResponse> Request(const std::string& method,
                               const std::string& target,
                               const std::string& body = "");

  Result<HttpResponse> Get(const std::string& target) {
    return Request("GET", target);
  }
  Result<HttpResponse> Post(const std::string& target,
                            const std::string& body = "") {
    return Request("POST", target, body);
  }

  void Close() { sock_.Close(); }
  bool connected() const { return sock_.valid(); }

 private:
  Status EnsureConnected();
  Result<HttpResponse> RoundTrip(const std::string& wire);

  std::string host_;
  uint16_t port_;
  double timeout_;
  Socket sock_;
};

}  // namespace rafiki::net

#endif  // RAFIKI_NET_HTTP_CLIENT_H_
