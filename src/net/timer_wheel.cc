#include "net/timer_wheel.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace rafiki::net {

TimerWheel::TimerWheel(double tick_seconds, double start)
    : tick_seconds_(tick_seconds), now_seconds_(start) {
  RAFIKI_CHECK_GT(tick_seconds_, 0.0);
  current_tick_ = static_cast<uint64_t>(start / tick_seconds_);
  for (auto& level : slots_) {
    // Sentinels are self-linked circular list heads. The vector is sized
    // once and never resized, so the intrusive pointers stay stable.
    level.resize(kSlotsPerLevel);
    for (Node& head : level) head.prev = head.next = &head;
  }
}

TimerWheel::~TimerWheel() {
  for (auto& [id, node] : nodes_) {
    if (node->prev != nullptr) Unlink(node);
    delete node;
  }
  for (Node* node : free_nodes_) delete node;
}

TimerWheel::Node* TimerWheel::AcquireNode() {
  if (!free_nodes_.empty()) {
    Node* node = free_nodes_.back();
    free_nodes_.pop_back();
    return node;
  }
  return new Node();
}

void TimerWheel::ReleaseNode(Node* node) {
  node->prev = node->next = nullptr;
  node->id = 0;
  node->interval_ticks = 0;
  node->cancelled = false;
  // Keep the std::function's heap block alive for reuse? No: callbacks own
  // captures whose lifetimes must end when the timer dies.
  node->callback = nullptr;
  if (free_nodes_.size() < 256) {
    free_nodes_.push_back(node);
  } else {
    delete node;
  }
}

void TimerWheel::Place(Node* node) {
  uint64_t deadline = node->deadline_tick;
  uint64_t delta = deadline > current_tick_ ? deadline - current_tick_ : 0;
  int level;
  uint64_t slot;
  if (delta < kSlotsPerLevel) {
    level = 0;
    slot = deadline & kSlotMask;
  } else if (delta < (1ull << (2 * kSlotBits))) {
    level = 1;
    slot = (deadline >> kSlotBits) & kSlotMask;
  } else if (delta < (1ull << (3 * kSlotBits))) {
    level = 2;
    slot = (deadline >> (2 * kSlotBits)) & kSlotMask;
  } else {
    // Clamp deadlines beyond the wheel's horizon (~49 days at 1 ms) into
    // the top level; they cascade back into range as time passes.
    if (delta >= (1ull << (4 * kSlotBits))) {
      node->deadline_tick = current_tick_ + (1ull << (4 * kSlotBits)) - 1;
      deadline = node->deadline_tick;
    }
    level = 3;
    slot = (deadline >> (3 * kSlotBits)) & kSlotMask;
  }
  PushBack(&slots_[level][slot], node);
}

TimerId TimerWheel::ScheduleNode(uint64_t deadline_tick,
                                 uint64_t interval_ticks, Callback callback) {
  RAFIKI_CHECK(callback != nullptr);
  // Past/present deadlines fire on the next tick crossing: a tick is the
  // wheel's quantum of "later".
  deadline_tick = std::max(deadline_tick, current_tick_ + 1);
  Node* node = AcquireNode();
  node->id = next_id_++;
  node->deadline_tick = deadline_tick;
  node->interval_ticks = interval_ticks;
  node->cancelled = false;
  node->callback = std::move(callback);
  nodes_.emplace(node->id, node);
  Place(node);
  ++size_;
  if (cache_valid_) {
    cached_next_tick_ = std::min(cached_next_tick_, deadline_tick);
  }
  return node->id;
}

TimerId TimerWheel::ScheduleAt(double when, Callback callback) {
  // Round up: a timer never fires before its deadline.
  auto tick = static_cast<uint64_t>(
      std::ceil(std::max(when, 0.0) / tick_seconds_));
  return ScheduleNode(tick, 0, std::move(callback));
}

TimerId TimerWheel::SchedulePeriodic(double interval, Callback callback) {
  RAFIKI_CHECK_GT(interval, 0.0);
  auto ticks = static_cast<uint64_t>(std::ceil(interval / tick_seconds_));
  ticks = std::max<uint64_t>(ticks, 1);
  return ScheduleNode(current_tick_ + ticks, ticks, std::move(callback));
}

bool TimerWheel::Cancel(TimerId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return false;
  Node* node = it->second;
  if (node->cancelled) return false;
  --size_;
  if (node->prev == nullptr) {
    // Detached: FireSlot popped it and is mid-dispatch (a periodic timer
    // whose callback is running, or a sibling cancelled from another
    // timer's callback). Mark it; the dispatch loop disposes of it.
    node->cancelled = true;
    return true;
  }
  Unlink(node);
  if (cache_valid_ && node->deadline_tick == cached_next_tick_) {
    cache_valid_ = false;
  }
  nodes_.erase(it);
  ReleaseNode(node);
  return true;
}

void TimerWheel::Cascade(int level, uint64_t slot) {
  Node* head = &slots_[level][slot];
  while (head->next != head) {
    Node* node = head->next;
    Unlink(node);
    if (node->cancelled) {
      nodes_.erase(node->id);
      ReleaseNode(node);
      continue;
    }
    Place(node);
  }
}

size_t TimerWheel::FireSlot(Node* head) {
  size_t fired = 0;
  while (head->next != head) {
    Node* node = head->next;
    Unlink(node);
    if (node->cancelled) {
      nodes_.erase(node->id);
      ReleaseNode(node);
      continue;
    }
    if (node->interval_ticks == 0) {
      // One-shot: the id dies before the callback runs, so a Cancel from
      // inside it is a clean "already fired" no-op.
      nodes_.erase(node->id);
      --size_;
      Callback cb = std::move(node->callback);
      ReleaseNode(node);
      cb();
      ++fired;
    } else {
      // Periodic: stays in the id map while its callback runs so
      // Cancel(own id) works; re-armed from the old deadline (drift-free)
      // unless cancelled.
      node->callback();
      ++fired;
      if (node->cancelled) {
        nodes_.erase(node->id);
        ReleaseNode(node);
      } else {
        node->deadline_tick += node->interval_ticks;
        Place(node);
      }
    }
  }
  return fired;
}

size_t TimerWheel::Advance(double now) {
  if (now <= now_seconds_) return 0;
  now_seconds_ = now;
  auto target = static_cast<uint64_t>(now / tick_seconds_);
  if (target <= current_tick_) return 0;
  if (nodes_.empty()) {
    // Nothing scheduled: no slot can be non-empty and no cascade can move
    // anything, so the cursor may jump.
    current_tick_ = target;
    return 0;
  }
  size_t fired = 0;
  while (current_tick_ < target) {
    ++current_tick_;
    // Entering a new window at any level re-files that level's slot into
    // finer levels, highest level first so everything lands where the
    // level-0 expiry below can see it.
    if ((current_tick_ & kSlotMask) == 0) {
      if ((current_tick_ & ((1ull << (3 * kSlotBits)) - 1)) == 0) {
        Cascade(3, (current_tick_ >> (3 * kSlotBits)) & kSlotMask);
      }
      if ((current_tick_ & ((1ull << (2 * kSlotBits)) - 1)) == 0) {
        Cascade(2, (current_tick_ >> (2 * kSlotBits)) & kSlotMask);
      }
      Cascade(1, (current_tick_ >> kSlotBits) & kSlotMask);
    }
    fired += FireSlot(&slots_[0][current_tick_ & kSlotMask]);
    if (nodes_.empty()) {
      current_tick_ = target;
      break;
    }
  }
  if (cache_valid_ && cached_next_tick_ <= current_tick_) {
    cache_valid_ = false;  // that deadline fired; rescan on demand
  }
  return fired;
}

double TimerWheel::NextDeadline() const {
  if (nodes_.empty()) return std::numeric_limits<double>::infinity();
  if (!cache_valid_) {
    uint64_t best = kNoDeadline;
    for (int level = 0; level < kLevels; ++level) {
      uint64_t cursor = current_tick_ >> (level * kSlotBits);
      for (uint64_t d = 1; d < kSlotsPerLevel; ++d) {
        const Node* head = &slots_[level][(cursor + d) & kSlotMask];
        if (head->next == head) continue;
        // First non-empty slot in rotation order holds this level's
        // earliest timers; the true minimum is the min deadline inside it
        // (one slot spans 256^level ticks).
        for (const Node* node = head->next; node != head;
             node = node->next) {
          if (!node->cancelled) best = std::min(best, node->deadline_tick);
        }
        break;
      }
    }
    // The slot at each level's current index is always empty looking
    // forward (its window was cascaded on entry), so the scan above is
    // exhaustive.
    cached_next_tick_ = best;
    cache_valid_ = true;
  }
  if (cached_next_tick_ == kNoDeadline) {
    return std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(cached_next_tick_) * tick_seconds_;
}

}  // namespace rafiki::net
