#include "net/http_server.h"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "common/logging.h"

namespace rafiki::net {
namespace {

/// While requests are in flight we keep reading (so we notice resets) but
/// cap how much pipelined input we buffer; past this we drop interest in
/// EPOLLIN and TCP backpressure reaches the client.
constexpr size_t kMaxBufferedInput = 64 * 1024;

constexpr uint64_t kWakeToken = 0;  // epoll data id of the wake eventfd

HttpResponse OverloadResponse(const char* why) {
  HttpResponse resp;
  resp.status = 503;
  resp.body = std::string("error=") + why;
  resp.headers.emplace_back("Retry-After", "1");
  return resp;
}

/// The synchronous Handler is a thin adapter: the returned response
/// completes the writer before the handler thread moves on.
HttpServer::AsyncHandler WrapSyncHandler(HttpServer::Handler handler) {
  RAFIKI_CHECK(handler != nullptr);
  return [handler = std::move(handler)](const HttpRequest& request,
                                        HttpServer::ResponseWriter writer) {
    writer.Complete(handler(request));
  };
}

}  // namespace

void HttpServer::ResponseWriter::Complete(const HttpResponse& response) {
  if (state_ != nullptr) state_->Complete(response);
}

bool HttpServer::ResponseWriter::completed() const {
  return state_ != nullptr &&
         (state_->flags.load(std::memory_order_acquire) &
          WriterState::kCompleted) != 0;
}

void HttpServer::WriterState::Complete(const HttpResponse& response) {
  int old = flags.fetch_or(kCompleted, std::memory_order_acq_rel);
  if (old & kCompleted) return;  // one-shot: first completion wins
  // Serialize the response before taking the core lock (it can be large).
  std::string bytes = SerializeResponse(response, keep_alive);
  std::lock_guard<std::mutex> lock(core->mu);
  HttpServer* server = core->server;
  if (server == nullptr) return;  // server torn down: drop safely
  // Completion is where the request stops being "in flight": the admission
  // slot frees here, not when the handler returned.
  server->inflight_.fetch_sub(1, std::memory_order_acq_rel);
  server->handled_.fetch_add(1, std::memory_order_relaxed);
  server->responses_.fetch_add(1, std::memory_order_relaxed);
  if (old & kHandlerReturned) {
    server->async_pending_.fetch_sub(1, std::memory_order_relaxed);
  }
  Completion done;
  done.conn_id = conn_id;
  done.seq = seq;
  done.bytes = std::move(bytes);
  done.keep_alive = keep_alive;
  Worker& w = *server->workers_[static_cast<size_t>(worker)];
  {
    std::lock_guard<std::mutex> wlock(w.mu);
    w.completions.push_back(std::move(done));
  }
  server->Wake(w);
}

HttpServer::WriterState::~WriterState() {
  if ((flags.load(std::memory_order_acquire) & kCompleted) != 0) return;
  // Every copy of the writer was dropped without completing: answer 500 so
  // neither the connection nor the admission slot leaks.
  HttpResponse resp;
  resp.status = 500;
  resp.body = "error=handler dropped the response";
  Complete(resp);
}

HttpServer::HttpServer(AsyncHandler handler, HttpServerOptions options)
    : async_handler_(std::move(handler)), opts_(options) {
  RAFIKI_CHECK(async_handler_ != nullptr);
  opts_.num_workers = std::max(opts_.num_workers, 1);
  opts_.num_handler_threads = std::max(opts_.num_handler_threads, 1);
  opts_.max_inflight = std::max<size_t>(opts_.max_inflight, 1);
  opts_.max_pipeline = std::max<size_t>(opts_.max_pipeline, 1);
}

HttpServer::HttpServer(Handler handler, HttpServerOptions options)
    : HttpServer(WrapSyncHandler(std::move(handler)), options) {}

HttpServer::~HttpServer() { Stop(); }

double HttpServer::Now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

Status HttpServer::Start() {
  if (running_) return Status::FailedPrecondition("server already running");
  epoch_ = std::chrono::steady_clock::now();
  RAFIKI_ASSIGN_OR_RETURN(listener_,
                          ListenTcp(opts_.port, opts_.listen_backlog, &port_));

  workers_.clear();
  for (int i = 0; i < opts_.num_workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->index = i;
    w->epoll_fd = ::epoll_create1(0);
    if (w->epoll_fd < 0) return Status::Internal("epoll_create1 failed");
    w->wake_fd = ::eventfd(0, EFD_NONBLOCK);
    if (w->wake_fd < 0) return Status::Internal("eventfd failed");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeToken;
    if (::epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, w->wake_fd, &ev) < 0) {
      return Status::Internal("epoll_ctl(wake) failed");
    }
    workers_.push_back(std::move(w));
  }

  // Fresh completion core: writers from a previous (force-stopped) run
  // keep their old core, whose server pointer is already null.
  core_ = std::make_shared<AsyncCore>();
  core_->server = this;

  phase_ = Phase::kRunning;
  stop_accepting_ = false;
  inflight_ = 0;
  handler_busy_ = 0;
  async_pending_ = 0;
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    stop_handlers_ = false;
    work_.clear();
  }
  running_ = true;
  for (int i = 0; i < opts_.num_workers; ++i) {
    workers_[static_cast<size_t>(i)]->thread =
        std::thread([this, i] { WorkerLoop(i); });
  }
  for (int i = 0; i < opts_.num_handler_threads; ++i) {
    handler_threads_.emplace_back([this] { HandlerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_) return;

  // 1. Stop accepting; close the listener so clients see refusals.
  stop_accepting_ = true;
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();

  // 2. Drain: new requests are answered 503, workers run until every
  //    connection has neither a pending response (sync in-handler or async
  //    parked elsewhere) nor unwritten output. Async completions keep
  //    flowing through the mailboxes during this phase.
  phase_ = Phase::kDraining;
  for (auto& w : workers_) Wake(*w);
  double deadline = Now() + opts_.drain_timeout_seconds;
  for (;;) {
    bool all_exited = true;
    for (auto& w : workers_) all_exited = all_exited && w->exited.load();
    if (all_exited) break;
    if (Now() >= deadline) {
      phase_ = Phase::kForceStop;
      for (auto& w : workers_) Wake(*w);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }

  // 3. Cut the completion core: ResponseWriters still alive (handlers on
  //    the pool, continuations parked in other subsystems) now drop their
  //    completions instead of posting to dead workers.
  {
    std::lock_guard<std::mutex> lock(core_->mu);
    core_->server = nullptr;
  }

  // 4. Handler pool: queued work belongs to closed connections now; run it
  //    down (completions are dropped by the dead core) and join.
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    stop_handlers_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : handler_threads_) {
    if (t.joinable()) t.join();
  }
  handler_threads_.clear();

  for (auto& w : workers_) {
    if (w->epoll_fd >= 0) ::close(w->epoll_fd);
    if (w->wake_fd >= 0) ::close(w->wake_fd);
  }
  workers_.clear();
  running_ = false;
}

HttpServerStats HttpServer::stats() const {
  HttpServerStats s;
  s.accepted_connections = accepted_.load();
  s.requests_total = requests_.load();
  s.responses_total = responses_.load();
  s.handled = handled_.load();
  s.rejected_overload = rejected_overload_.load();
  s.rejected_draining = rejected_draining_.load();
  s.parse_errors = parse_errors_.load();
  s.timed_out_connections = timed_out_.load();
  s.inflight = inflight_.load();
  s.inflight_peak = inflight_peak_.load();
  s.handler_busy = handler_busy_.load();
  s.async_pending = static_cast<size_t>(std::max<int64_t>(
      async_pending_.load(std::memory_order_relaxed), 0));
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    s.handler_queue = work_.size();
  }
  return s;
}

void HttpServer::AcceptLoop() {
  size_t next_worker = 0;
  while (!stop_accepting_.load()) {
    pollfd p{listener_.fd(), POLLIN, 0};
    int rc = ::poll(&p, 1, /*timeout_ms=*/50);
    if (rc <= 0) continue;
    for (;;) {
      int fd = ::accept4(listener_.fd(), nullptr, nullptr, SOCK_NONBLOCK);
      if (fd < 0) break;  // EAGAIN / transient error: back to poll
      (void)SetNoDelay(fd);
      if (opts_.send_buffer_bytes > 0) {
        ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &opts_.send_buffer_bytes,
                     sizeof(opts_.send_buffer_bytes));
      }
      accepted_.fetch_add(1, std::memory_order_relaxed);
      Worker& w = *workers_[next_worker];
      next_worker = (next_worker + 1) % workers_.size();
      {
        std::lock_guard<std::mutex> lock(w.mu);
        w.pending_fds.push_back(fd);
      }
      Wake(w);
    }
  }
}

void HttpServer::Wake(Worker& w) {
  uint64_t one = 1;
  ssize_t n = ::write(w.wake_fd, &one, sizeof(one));
  (void)n;  // EAGAIN means a wakeup is already pending — fine.
}

void HttpServer::DrainMailbox(Worker& w) {
  std::vector<int> fds;
  std::vector<Completion> completions;
  {
    std::lock_guard<std::mutex> lock(w.mu);
    fds.swap(w.pending_fds);
    completions.swap(w.completions);
  }
  for (int fd : fds) AddConnection(w, fd);
  for (Completion& done : completions) {
    auto it = w.conns.find(done.conn_id);
    if (it == w.conns.end()) continue;  // connection died mid-request
    Connection& c = *it->second;
    const uint64_t conn_id = done.conn_id;
    c.last_activity = Now();
    c.ready.emplace(done.seq, std::move(done));
    PumpResponses(w, c);
    // The map may have dropped the connection inside PumpResponses.
    auto again = w.conns.find(conn_id);
    if (again == w.conns.end()) continue;
    Connection& alive = *again->second;
    if (!alive.want_read && !alive.peer_closed &&
        alive.inbuf.size() < kMaxBufferedInput) {
      alive.want_read = true;
      UpdateEpoll(w, alive);
    }
    // Pipelined requests already buffered: parse the next one now.
    if (!alive.close_after_write) TryParse(w, alive);
    auto fin = w.conns.find(conn_id);
    if (fin != w.conns.end() && fin->second->peer_closed &&
        !fin->second->busy()) {
      CloseConnection(w, *fin->second);
    }
  }
}

void HttpServer::AddConnection(Worker& w, int fd) {
  uint64_t id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  auto conn = std::make_unique<Connection>(opts_.limits);
  conn->fd = fd;
  conn->id = id;
  conn->last_activity = Now();
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = id;
  if (::epoll_ctl(w.epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
    ::close(fd);
    return;
  }
  w.conns.emplace(id, std::move(conn));
}

void HttpServer::CloseConnection(Worker& w, Connection& c) {
  ::epoll_ctl(w.epoll_fd, EPOLL_CTL_DEL, c.fd, nullptr);
  ::close(c.fd);
  w.conns.erase(c.id);  // destroys c
}

void HttpServer::UpdateEpoll(Worker& w, Connection& c) {
  epoll_event ev{};
  ev.events = (c.want_read ? EPOLLIN : 0u) | (c.want_write ? EPOLLOUT : 0u);
  ev.data.u64 = c.id;
  ::epoll_ctl(w.epoll_fd, EPOLL_CTL_MOD, c.fd, &ev);
}

void HttpServer::OnReadable(Worker& w, Connection& c) {
  // TryParse below may close (destroy) the connection; keep the id so the
  // re-lookup never touches freed memory.
  const uint64_t conn_id = c.id;
  char buf[16 * 1024];
  for (;;) {
    ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      c.inbuf.append(buf, static_cast<size_t>(n));
      c.last_activity = Now();
      if (c.pending() > 0 && c.inbuf.size() >= kMaxBufferedInput) {
        // Pipelining backpressure: stop reading until responses go out.
        c.want_read = false;
        UpdateEpoll(w, c);
        break;
      }
      continue;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConnection(w, c);  // ECONNRESET and friends
      return;
    }
    // n == 0: orderly shutdown from the peer.
    c.peer_closed = true;
    c.want_read = false;
    UpdateEpoll(w, c);
    break;
  }
  TryParse(w, c);
  // Peer gone and nothing left to answer: drop the connection.
  auto it = w.conns.find(conn_id);
  if (it != w.conns.end()) {
    Connection& alive = *it->second;
    if (alive.peer_closed && !alive.busy()) CloseConnection(w, alive);
  }
}

void HttpServer::TryParse(Worker& w, Connection& c) {
  const uint64_t conn_id = c.id;  // survives a close inside QueueResponse
  while (!c.parse_done && c.pending() < opts_.max_pipeline &&
         !c.inbuf.empty()) {
    size_t consumed = c.parser.Feed(c.inbuf.data(), c.inbuf.size());
    c.inbuf.erase(0, consumed);
    if (c.parser.failed()) {
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse resp;
      resp.status = c.parser.error_status();
      resp.body = "error=" + c.parser.error();
      c.inbuf.clear();  // framing is lost; discard and close after reply
      c.parse_done = true;
      QueueResponse(w, c, c.next_seq++, resp, /*keep_alive=*/false);
      return;
    }
    if (!c.parser.done()) return;  // need more bytes

    requests_.fetch_add(1, std::memory_order_relaxed);
    HttpRequest request = std::move(c.parser.request());
    c.parser.Reset();
    c.last_activity = Now();
    uint64_t seq = c.next_seq++;
    // After "Connection: close" no further request may be answered on
    // this connection; stop parsing so pipelined bytes are not consumed.
    if (!request.keep_alive) c.parse_done = true;

    if (phase_.load() != Phase::kRunning) {
      rejected_draining_.fetch_add(1, std::memory_order_relaxed);
      c.parse_done = true;
      QueueResponse(w, c, seq, OverloadResponse("server shutting down"),
                    /*keep_alive=*/false);
      return;
    }
    // Admission control: bounded in-flight (admitted, not yet completed)
    // requests across all workers.
    if (inflight_.fetch_add(1, std::memory_order_acq_rel) >=
        opts_.max_inflight) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      rejected_overload_.fetch_add(1, std::memory_order_relaxed);
      QueueResponse(w, c, seq, OverloadResponse("server overloaded"),
                    request.keep_alive);
      if (w.conns.find(conn_id) == w.conns.end()) return;  // write error
      continue;  // connection stays usable; try the next pipelined request
    }
    // Track the concurrency high-watermark (the async path's headline
    // number: it can far exceed num_handler_threads).
    uint64_t cur = static_cast<uint64_t>(inflight_.load()) ;
    uint64_t peak = inflight_peak_.load(std::memory_order_relaxed);
    while (cur > peak && !inflight_peak_.compare_exchange_weak(
                             peak, cur, std::memory_order_relaxed)) {
    }
    Work work;
    work.worker = w.index;
    work.conn_id = c.id;
    work.seq = seq;
    work.keep_alive = request.keep_alive;
    work.request = std::move(request);
    {
      std::lock_guard<std::mutex> lock(work_mu_);
      work_.push_back(std::move(work));
    }
    work_cv_.notify_one();
    // Keep parsing: with async completion, pipelined requests proceed
    // concurrently (bounded by max_pipeline) and responses are re-ordered
    // to request order on completion.
  }
}

void HttpServer::QueueResponse(Worker& w, Connection& c, uint64_t seq,
                               const HttpResponse& response,
                               bool keep_alive) {
  responses_.fetch_add(1, std::memory_order_relaxed);
  Completion done;
  done.conn_id = c.id;
  done.seq = seq;
  done.bytes = SerializeResponse(response, keep_alive);
  done.keep_alive = keep_alive;
  c.ready.emplace(seq, std::move(done));
  PumpResponses(w, c);
}

void HttpServer::PumpResponses(Worker& w, Connection& c) {
  for (;;) {
    auto it = c.ready.find(c.next_send);
    if (it == c.ready.end()) break;  // next-in-order not completed yet
    c.outbuf += it->second.bytes;
    if (!it->second.keep_alive) c.close_after_write = true;
    c.ready.erase(it);
    ++c.next_send;
    // Responses queued behind a close die with the connection.
    if (c.close_after_write) break;
  }
  FlushWrite(w, c);
}

void HttpServer::FlushWrite(Worker& w, Connection& c) {
  while (c.out_off < c.outbuf.size()) {
    ssize_t n = ::send(c.fd, c.outbuf.data() + c.out_off,
                       c.outbuf.size() - c.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!c.want_write) {
        c.want_write = true;
        UpdateEpoll(w, c);
      }
      return;
    }
    CloseConnection(w, c);  // broken pipe / reset
    return;
  }
  c.outbuf.clear();
  c.out_off = 0;
  if (c.close_after_write) {
    CloseConnection(w, c);
    return;
  }
  if (c.want_write) {
    c.want_write = false;
    UpdateEpoll(w, c);
  }
}

void HttpServer::IdleSweep(Worker& w) {
  double now = Now();
  std::vector<uint64_t> expired;
  for (auto& [id, conn] : w.conns) {
    if (!conn->busy() &&
        now - conn->last_activity > opts_.idle_timeout_seconds) {
      expired.push_back(id);
    }
  }
  for (uint64_t id : expired) {
    auto it = w.conns.find(id);
    if (it == w.conns.end()) continue;
    timed_out_.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(w, *it->second);
  }
}

void HttpServer::WorkerLoop(int index) {
  Worker& w = *workers_[static_cast<size_t>(index)];
  epoll_event events[64];
  for (;;) {
    int n = ::epoll_wait(w.epoll_fd, events, 64, /*timeout_ms=*/50);
    DrainMailbox(w);
    for (int i = 0; i < n; ++i) {
      uint64_t id = events[i].data.u64;
      if (id == kWakeToken) {
        uint64_t junk;
        while (::read(w.wake_fd, &junk, sizeof(junk)) > 0) {
        }
        continue;
      }
      auto it = w.conns.find(id);
      if (it == w.conns.end()) continue;  // closed earlier this sweep
      Connection& c = *it->second;
      uint32_t ev = events[i].events;
      if (ev & EPOLLOUT) {
        FlushWrite(w, c);
        if (w.conns.find(id) == w.conns.end()) continue;
      }
      if (ev & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
        OnReadable(w, c);
      }
    }
    IdleSweep(w);

    Phase phase = phase_.load();
    if (phase == Phase::kRunning) continue;
    if (phase == Phase::kForceStop) break;
    // Draining: leave once nothing on this worker is mid-request (which
    // includes async responses not yet completed) or mid-write. Idle
    // keep-alive connections are simply closed.
    bool busy = false;
    for (auto& [id, conn] : w.conns) busy = busy || conn->busy();
    if (!busy) break;
  }
  std::vector<uint64_t> ids;
  ids.reserve(w.conns.size());
  for (auto& [id, conn] : w.conns) ids.push_back(id);
  for (uint64_t id : ids) {
    auto it = w.conns.find(id);
    if (it != w.conns.end()) CloseConnection(w, *it->second);
  }
  w.exited.store(true);
}

void HttpServer::HandlerLoop() {
  for (;;) {
    Work work;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [&] { return stop_handlers_ || !work_.empty(); });
      if (work_.empty()) return;  // stop_handlers_ && drained
      work = std::move(work_.front());
      work_.pop_front();
    }
    auto state = std::make_shared<WriterState>();
    state->core = core_;
    state->worker = work.worker;
    state->conn_id = work.conn_id;
    state->seq = work.seq;
    state->keep_alive = work.keep_alive;
    handler_busy_.fetch_add(1, std::memory_order_relaxed);
    async_handler_(work.request, ResponseWriter(state));
    handler_busy_.fetch_sub(1, std::memory_order_relaxed);
    // Handler returned without completing: the continuation is parked
    // elsewhere (async_pending until its owner completes the writer). The
    // two flag bits keep the gauge exact when completion races the return.
    int old = state->flags.fetch_or(WriterState::kHandlerReturned,
                                    std::memory_order_acq_rel);
    if (!(old & WriterState::kCompleted)) {
      async_pending_.fetch_add(1, std::memory_order_relaxed);
    }
    // `state` drops here: if the handler kept no copy and never completed,
    // ~WriterState answers 500 so the connection is not wedged.
  }
}

}  // namespace rafiki::net
