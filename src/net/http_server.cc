#include "net/http_server.h"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "common/logging.h"

namespace rafiki::net {
namespace {

/// While a request is in flight we keep reading (so we notice resets) but
/// cap how much pipelined input we buffer; past this we drop interest in
/// EPOLLIN and TCP backpressure reaches the client.
constexpr size_t kMaxBufferedInput = 64 * 1024;

constexpr uint64_t kWakeToken = 0;  // epoll data id of the wake eventfd

HttpResponse OverloadResponse(const char* why) {
  HttpResponse resp;
  resp.status = 503;
  resp.body = std::string("error=") + why;
  resp.headers.emplace_back("Retry-After", "1");
  return resp;
}

}  // namespace

HttpServer::HttpServer(Handler handler, HttpServerOptions options)
    : handler_(std::move(handler)), opts_(options) {
  RAFIKI_CHECK(handler_ != nullptr);
  opts_.num_workers = std::max(opts_.num_workers, 1);
  opts_.num_handler_threads = std::max(opts_.num_handler_threads, 1);
  opts_.max_inflight = std::max<size_t>(opts_.max_inflight, 1);
}

HttpServer::~HttpServer() { Stop(); }

double HttpServer::Now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

Status HttpServer::Start() {
  if (running_) return Status::FailedPrecondition("server already running");
  epoch_ = std::chrono::steady_clock::now();
  RAFIKI_ASSIGN_OR_RETURN(listener_,
                          ListenTcp(opts_.port, opts_.listen_backlog, &port_));

  workers_.clear();
  for (int i = 0; i < opts_.num_workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->index = i;
    w->epoll_fd = ::epoll_create1(0);
    if (w->epoll_fd < 0) return Status::Internal("epoll_create1 failed");
    w->wake_fd = ::eventfd(0, EFD_NONBLOCK);
    if (w->wake_fd < 0) return Status::Internal("eventfd failed");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeToken;
    if (::epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, w->wake_fd, &ev) < 0) {
      return Status::Internal("epoll_ctl(wake) failed");
    }
    workers_.push_back(std::move(w));
  }

  phase_ = Phase::kRunning;
  stop_accepting_ = false;
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    stop_handlers_ = false;
  }
  running_ = true;
  for (int i = 0; i < opts_.num_workers; ++i) {
    workers_[static_cast<size_t>(i)]->thread =
        std::thread([this, i] { WorkerLoop(i); });
  }
  for (int i = 0; i < opts_.num_handler_threads; ++i) {
    handler_threads_.emplace_back([this] { HandlerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_) return;

  // 1. Stop accepting; close the listener so clients see refusals.
  stop_accepting_ = true;
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();

  // 2. Drain: new requests are answered 503, workers run until every
  //    connection has neither a request in flight nor unwritten output.
  phase_ = Phase::kDraining;
  for (auto& w : workers_) Wake(*w);
  double deadline = Now() + opts_.drain_timeout_seconds;
  for (;;) {
    bool all_exited = true;
    for (auto& w : workers_) all_exited = all_exited && w->exited.load();
    if (all_exited) break;
    if (Now() >= deadline) {
      phase_ = Phase::kForceStop;
      for (auto& w : workers_) Wake(*w);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }

  // 3. Handler pool: queued work belongs to closed connections now; run it
  //    down (completions to dead connections are dropped) and join.
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    stop_handlers_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : handler_threads_) {
    if (t.joinable()) t.join();
  }
  handler_threads_.clear();

  for (auto& w : workers_) {
    if (w->epoll_fd >= 0) ::close(w->epoll_fd);
    if (w->wake_fd >= 0) ::close(w->wake_fd);
  }
  workers_.clear();
  running_ = false;
}

HttpServerStats HttpServer::stats() const {
  HttpServerStats s;
  s.accepted_connections = accepted_.load();
  s.requests_total = requests_.load();
  s.responses_total = responses_.load();
  s.handled = handled_.load();
  s.rejected_overload = rejected_overload_.load();
  s.rejected_draining = rejected_draining_.load();
  s.parse_errors = parse_errors_.load();
  s.timed_out_connections = timed_out_.load();
  return s;
}

void HttpServer::AcceptLoop() {
  size_t next_worker = 0;
  while (!stop_accepting_.load()) {
    pollfd p{listener_.fd(), POLLIN, 0};
    int rc = ::poll(&p, 1, /*timeout_ms=*/50);
    if (rc <= 0) continue;
    for (;;) {
      int fd = ::accept4(listener_.fd(), nullptr, nullptr, SOCK_NONBLOCK);
      if (fd < 0) break;  // EAGAIN / transient error: back to poll
      (void)SetNoDelay(fd);
      if (opts_.send_buffer_bytes > 0) {
        ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &opts_.send_buffer_bytes,
                     sizeof(opts_.send_buffer_bytes));
      }
      accepted_.fetch_add(1, std::memory_order_relaxed);
      Worker& w = *workers_[next_worker];
      next_worker = (next_worker + 1) % workers_.size();
      {
        std::lock_guard<std::mutex> lock(w.mu);
        w.pending_fds.push_back(fd);
      }
      Wake(w);
    }
  }
}

void HttpServer::Wake(Worker& w) {
  uint64_t one = 1;
  ssize_t n = ::write(w.wake_fd, &one, sizeof(one));
  (void)n;  // EAGAIN means a wakeup is already pending — fine.
}

void HttpServer::DrainMailbox(Worker& w) {
  std::vector<int> fds;
  std::vector<Completion> completions;
  {
    std::lock_guard<std::mutex> lock(w.mu);
    fds.swap(w.pending_fds);
    completions.swap(w.completions);
  }
  for (int fd : fds) AddConnection(w, fd);
  for (Completion& done : completions) {
    auto it = w.conns.find(done.conn_id);
    if (it == w.conns.end()) continue;  // connection died mid-request
    Connection& c = *it->second;
    c.in_flight = false;
    c.outbuf += done.bytes;
    if (!done.keep_alive) c.close_after_write = true;
    c.last_activity = Now();
    FlushWrite(w, c);
    // The map may have dropped the connection inside FlushWrite.
    auto again = w.conns.find(done.conn_id);
    if (again == w.conns.end()) continue;
    Connection& alive = *again->second;
    if (!alive.want_read && alive.inbuf.size() < kMaxBufferedInput) {
      alive.want_read = true;
      UpdateEpoll(w, alive);
    }
    // Pipelined requests already buffered: parse the next one now.
    if (!alive.in_flight && !alive.close_after_write) TryParse(w, alive);
  }
}

void HttpServer::AddConnection(Worker& w, int fd) {
  uint64_t id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  auto conn = std::make_unique<Connection>(opts_.limits);
  conn->fd = fd;
  conn->id = id;
  conn->last_activity = Now();
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = id;
  if (::epoll_ctl(w.epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
    ::close(fd);
    return;
  }
  w.conns.emplace(id, std::move(conn));
}

void HttpServer::CloseConnection(Worker& w, Connection& c) {
  ::epoll_ctl(w.epoll_fd, EPOLL_CTL_DEL, c.fd, nullptr);
  ::close(c.fd);
  w.conns.erase(c.id);  // destroys c
}

void HttpServer::UpdateEpoll(Worker& w, Connection& c) {
  epoll_event ev{};
  ev.events = (c.want_read ? EPOLLIN : 0u) | (c.want_write ? EPOLLOUT : 0u);
  ev.data.u64 = c.id;
  ::epoll_ctl(w.epoll_fd, EPOLL_CTL_MOD, c.fd, &ev);
}

void HttpServer::OnReadable(Worker& w, Connection& c) {
  // TryParse below may close (destroy) the connection; keep the id so the
  // re-lookup never touches freed memory.
  const uint64_t conn_id = c.id;
  char buf[16 * 1024];
  for (;;) {
    ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      c.inbuf.append(buf, static_cast<size_t>(n));
      c.last_activity = Now();
      if (c.in_flight && c.inbuf.size() >= kMaxBufferedInput) {
        // Pipelining backpressure: stop reading until the response goes out.
        c.want_read = false;
        UpdateEpoll(w, c);
        break;
      }
      continue;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConnection(w, c);  // ECONNRESET and friends
      return;
    }
    // n == 0: orderly shutdown from the peer.
    c.peer_closed = true;
    c.want_read = false;
    UpdateEpoll(w, c);
    break;
  }
  if (!c.in_flight) TryParse(w, c);
  // Peer gone and nothing left to answer: drop the connection.
  auto it = w.conns.find(conn_id);
  if (it != w.conns.end()) {
    Connection& alive = *it->second;
    if (alive.peer_closed && !alive.busy()) CloseConnection(w, alive);
  }
}

void HttpServer::TryParse(Worker& w, Connection& c) {
  const uint64_t conn_id = c.id;  // survives a close inside Respond
  while (!c.in_flight && !c.inbuf.empty()) {
    size_t consumed = c.parser.Feed(c.inbuf.data(), c.inbuf.size());
    c.inbuf.erase(0, consumed);
    if (c.parser.failed()) {
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse resp;
      resp.status = c.parser.error_status();
      resp.body = "error=" + c.parser.error();
      c.inbuf.clear();  // framing is lost; discard and close after reply
      Respond(w, c, resp, /*keep_alive=*/false);
      return;
    }
    if (!c.parser.done()) return;  // need more bytes

    requests_.fetch_add(1, std::memory_order_relaxed);
    HttpRequest request = std::move(c.parser.request());
    c.parser.Reset();
    c.last_activity = Now();

    if (phase_.load() != Phase::kRunning) {
      rejected_draining_.fetch_add(1, std::memory_order_relaxed);
      Respond(w, c, OverloadResponse("server shutting down"),
              /*keep_alive=*/false);
      return;
    }
    // Admission control: bounded in-flight requests across all workers.
    if (inflight_.fetch_add(1, std::memory_order_acq_rel) >=
        opts_.max_inflight) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      rejected_overload_.fetch_add(1, std::memory_order_relaxed);
      Respond(w, c, OverloadResponse("server overloaded"),
              request.keep_alive);
      auto it = w.conns.find(conn_id);
      if (it == w.conns.end()) return;  // write error closed it
      continue;  // connection stays usable; try the next pipelined request
    }
    c.in_flight = true;
    {
      std::lock_guard<std::mutex> lock(work_mu_);
      work_.push_back(Work{w.index, c.id, std::move(request)});
    }
    work_cv_.notify_one();
    return;  // responses are strictly in order: parse resumes afterwards
  }
}

void HttpServer::Respond(Worker& w, Connection& c,
                         const HttpResponse& response, bool keep_alive) {
  responses_.fetch_add(1, std::memory_order_relaxed);
  c.outbuf += SerializeResponse(response, keep_alive);
  if (!keep_alive) c.close_after_write = true;
  FlushWrite(w, c);
}

void HttpServer::FlushWrite(Worker& w, Connection& c) {
  while (c.out_off < c.outbuf.size()) {
    ssize_t n = ::send(c.fd, c.outbuf.data() + c.out_off,
                       c.outbuf.size() - c.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!c.want_write) {
        c.want_write = true;
        UpdateEpoll(w, c);
      }
      return;
    }
    CloseConnection(w, c);  // broken pipe / reset
    return;
  }
  c.outbuf.clear();
  c.out_off = 0;
  if (c.close_after_write) {
    CloseConnection(w, c);
    return;
  }
  if (c.want_write) {
    c.want_write = false;
    UpdateEpoll(w, c);
  }
}

void HttpServer::IdleSweep(Worker& w) {
  double now = Now();
  std::vector<uint64_t> expired;
  for (auto& [id, conn] : w.conns) {
    if (!conn->busy() &&
        now - conn->last_activity > opts_.idle_timeout_seconds) {
      expired.push_back(id);
    }
  }
  for (uint64_t id : expired) {
    auto it = w.conns.find(id);
    if (it == w.conns.end()) continue;
    timed_out_.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(w, *it->second);
  }
}

void HttpServer::WorkerLoop(int index) {
  Worker& w = *workers_[static_cast<size_t>(index)];
  epoll_event events[64];
  for (;;) {
    int n = ::epoll_wait(w.epoll_fd, events, 64, /*timeout_ms=*/50);
    DrainMailbox(w);
    for (int i = 0; i < n; ++i) {
      uint64_t id = events[i].data.u64;
      if (id == kWakeToken) {
        uint64_t junk;
        while (::read(w.wake_fd, &junk, sizeof(junk)) > 0) {
        }
        continue;
      }
      auto it = w.conns.find(id);
      if (it == w.conns.end()) continue;  // closed earlier this sweep
      Connection& c = *it->second;
      uint32_t ev = events[i].events;
      if (ev & EPOLLOUT) {
        FlushWrite(w, c);
        if (w.conns.find(id) == w.conns.end()) continue;
      }
      if (ev & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
        OnReadable(w, c);
      }
    }
    IdleSweep(w);

    Phase phase = phase_.load();
    if (phase == Phase::kRunning) continue;
    if (phase == Phase::kForceStop) break;
    // Draining: leave once nothing on this worker is mid-request or
    // mid-write. Idle keep-alive connections are simply closed.
    bool busy = false;
    for (auto& [id, conn] : w.conns) busy = busy || conn->busy();
    if (!busy) break;
  }
  std::vector<uint64_t> ids;
  ids.reserve(w.conns.size());
  for (auto& [id, conn] : w.conns) ids.push_back(id);
  for (uint64_t id : ids) {
    auto it = w.conns.find(id);
    if (it != w.conns.end()) CloseConnection(w, *it->second);
  }
  w.exited.store(true);
}

void HttpServer::HandlerLoop() {
  for (;;) {
    Work work;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [&] { return stop_handlers_ || !work_.empty(); });
      if (work_.empty()) return;  // stop_handlers_ && drained
      work = std::move(work_.front());
      work_.pop_front();
    }
    HttpResponse response = handler_(work.request);
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    handled_.fetch_add(1, std::memory_order_relaxed);
    responses_.fetch_add(1, std::memory_order_relaxed);
    Completion done;
    done.conn_id = work.conn_id;
    done.bytes = SerializeResponse(response, work.request.keep_alive);
    done.keep_alive = work.request.keep_alive;
    Worker& w = *workers_[static_cast<size_t>(work.worker)];
    {
      std::lock_guard<std::mutex> lock(w.mu);
      w.completions.push_back(std::move(done));
    }
    Wake(w);
  }
}

}  // namespace rafiki::net
