#include "net/http_server.h"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <new>

#include "common/logging.h"

namespace rafiki::net {
namespace {

/// While requests are in flight we keep reading (so we notice resets) but
/// cap how much pipelined input we buffer; past this we drop interest in
/// EPOLLIN and TCP backpressure reaches the client.
constexpr size_t kMaxBufferedInput = 64 * 1024;

/// iovec entries per sendmsg: up to 32 responses (header + body each) per
/// flush syscall.
constexpr int kMaxIov = 64;

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

void FillOverload(HttpServer::ResponseSlot* slot, const char* why) {
  slot->response.status = 503;
  slot->response.body.assign("error=");
  slot->response.body.append(why);
  slot->response.headers.emplace_back("Retry-After", "1");
}

/// The synchronous Handler is a thin adapter: the returned response
/// completes the writer before the handler thread moves on.
HttpServer::AsyncHandler WrapSyncHandler(HttpServer::Handler handler) {
  RAFIKI_CHECK(handler != nullptr);
  return [handler = std::move(handler)](const HttpRequest& request,
                                        HttpServer::ResponseWriter writer) {
    writer.Complete(handler(request));
  };
}

/// Allocator with per-thread free lists of single-object blocks, used to
/// recycle the allocate_shared node behind every WriterState. A block is
/// cached on whichever thread drops the last reference; the steady state
/// (handler allocates, completes inline, releases on the same thread) hits
/// the cache every time and never touches the heap.
template <typename T>
class FreeListAllocator {
 public:
  using value_type = T;

  FreeListAllocator() = default;
  template <typename U>
  FreeListAllocator(const FreeListAllocator<U>&) {}  // NOLINT

  T* allocate(size_t n) {
    if (n == 1) {
      auto& cache = Cache();
      if (!cache.empty()) {
        void* p = cache.back();
        cache.pop_back();
        return static_cast<T*>(p);
      }
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, size_t n) {
    if (n == 1) {
      auto& cache = Cache();
      if (cache.size() < kMaxCached) {
        cache.push_back(p);
        return;
      }
    }
    ::operator delete(p);
  }

  template <typename U>
  bool operator==(const FreeListAllocator<U>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const FreeListAllocator<U>&) const {
    return false;
  }

 private:
  static constexpr size_t kMaxCached = 256;

  struct CacheHolder {
    std::vector<void*> blocks;
    ~CacheHolder() {
      for (void* p : blocks) ::operator delete(p);
    }
  };

  static std::vector<void*>& Cache() {
    static thread_local CacheHolder holder;
    return holder.blocks;
  }
};

/// Copies a response into the slot's arena, reusing string capacities.
void CopyResponseInto(const HttpResponse& from, HttpResponse* to) {
  to->status = from.status;
  to->body = from.body;
  to->content_type = from.content_type;
  to->headers = from.headers;
}

/// Identity of the worker whose event loop is running on this thread (the
/// Worker object's address, type-erased because Worker is private). A
/// completion posted from the owning worker's own thread goes straight to
/// its local queue — no mailbox lock, no eventfd wakeup.
thread_local const void* t_worker_identity = nullptr;

}  // namespace

void HttpServer::ResponseWriter::Complete(const HttpResponse& response) {
  if (state_ != nullptr) state_->Complete(response);
}

HttpResponse& HttpServer::ResponseWriter::response() const {
  return state_->slot->response;
}

bool HttpServer::ResponseWriter::completed() const {
  return state_ != nullptr &&
         (state_->flags.load(std::memory_order_acquire) &
          WriterState::kCompleted) != 0;
}

void HttpServer::WriterState::Complete(const HttpResponse& response) {
  int old = flags.fetch_or(kCompleted, std::memory_order_acq_rel);
  if (old & kCompleted) return;  // one-shot: first completion wins
  ResponseSlot* s = slot;
  slot = nullptr;
  // Build and serialize in the slot's arena before taking the core lock.
  // Completing with the slot's own response() skips the copy entirely.
  if (&response != &s->response) CopyResponseInto(response, &s->response);
  SerializeResponseHeadersTo(s->response, keep_alive, &s->head);
  std::lock_guard<std::mutex> lock(core->mu);
  HttpServer* server = core->server;
  if (server == nullptr) {
    // Server torn down: drop safely. The handler's hold (if still
    // outstanding) disposes of the slot; otherwise we do.
    if (s->holds.fetch_sub(1, std::memory_order_acq_rel) == 1) delete s;
    return;
  }
  // Completion is where the request stops being "in flight": the admission
  // slot frees here, not when the handler returned.
  server->inflight_.fetch_sub(1, std::memory_order_acq_rel);
  server->handled_.fetch_add(1, std::memory_order_relaxed);
  server->responses_.fetch_add(1, std::memory_order_relaxed);
  if (old & kHandlerReturned) {
    server->async_pending_.fetch_sub(1, std::memory_order_relaxed);
  }
  Completion done;
  done.conn_id = conn_id;
  done.seq = seq;
  done.slot = s;
  done.keep_alive = keep_alive;
  Worker& w = *server->workers_[static_cast<size_t>(worker)];
  if (static_cast<const void*>(&w) == t_worker_identity) {
    // Completed on the owning worker's own thread (inline handler): the
    // worker drains this queue within the current tick.
    w.inline_completions.push_back(std::move(done));
    return;
  }
  {
    std::lock_guard<std::mutex> wlock(w.mu);
    w.completions.push_back(done);
  }
  server->Wake(w);
}

HttpServer::WriterState::~WriterState() {
  if ((flags.load(std::memory_order_acquire) & kCompleted) != 0) return;
  // Every copy of the writer was dropped without completing: answer 500 so
  // neither the connection nor the admission slot leaks.
  HttpResponse resp;
  resp.status = 500;
  resp.body = "error=handler dropped the response";
  Complete(resp);
}

HttpServer::HttpServer(AsyncHandler handler, HttpServerOptions options)
    : async_handler_(std::move(handler)), opts_(options) {
  RAFIKI_CHECK(async_handler_ != nullptr);
  opts_.num_workers = std::max(opts_.num_workers, 1);
  opts_.num_handler_threads = std::max(opts_.num_handler_threads, 1);
  opts_.max_inflight = std::max<size_t>(opts_.max_inflight, 1);
  opts_.max_pipeline = std::max<size_t>(opts_.max_pipeline, 1);
}

HttpServer::HttpServer(Handler handler, HttpServerOptions options)
    : HttpServer(WrapSyncHandler(std::move(handler)), options) {}

HttpServer::~HttpServer() { Stop(); }

double HttpServer::Now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

Status HttpServer::Start() {
  if (running_) return Status::FailedPrecondition("server already running");
  epoch_ = std::chrono::steady_clock::now();
  RAFIKI_ASSIGN_OR_RETURN(listener_,
                          ListenTcp(opts_.port, opts_.listen_backlog, &port_));

  workers_.clear();
  for (int i = 0; i < opts_.num_workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->index = i;
    w->loop = std::make_unique<EventLoop>();
    workers_.push_back(std::move(w));
  }

  // Fresh completion core: writers from a previous (force-stopped) run
  // keep their old core, whose server pointer is already null.
  core_ = std::make_shared<AsyncCore>();
  core_->server = this;

  phase_ = Phase::kRunning;
  stop_accepting_ = false;
  inflight_ = 0;
  handler_busy_ = 0;
  async_pending_ = 0;
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    stop_handlers_ = false;
    work_.clear();
  }
  running_ = true;
  for (int i = 0; i < opts_.num_workers; ++i) {
    workers_[static_cast<size_t>(i)]->thread =
        std::thread([this, i] { WorkerLoop(i); });
  }
  for (int i = 0; i < opts_.num_handler_threads; ++i) {
    handler_threads_.emplace_back([this] { HandlerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_) return;

  // 1. Stop accepting; close the listener so clients see refusals.
  stop_accepting_ = true;
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();

  // 2. Drain: new requests are answered 503, workers run until every
  //    connection has neither a pending response (sync in-handler or async
  //    parked elsewhere) nor unwritten output. Async completions keep
  //    flowing through the mailboxes during this phase.
  phase_ = Phase::kDraining;
  for (auto& w : workers_) Wake(*w);
  double deadline = Now() + opts_.drain_timeout_seconds;
  for (;;) {
    bool all_exited = true;
    for (auto& w : workers_) all_exited = all_exited && w->exited.load();
    if (all_exited) break;
    if (Now() >= deadline) {
      phase_ = Phase::kForceStop;
      for (auto& w : workers_) Wake(*w);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }

  // 3. Cut the completion core: ResponseWriters still alive (handlers on
  //    the pool, continuations parked in other subsystems) now drop their
  //    completions instead of posting to dead workers.
  {
    std::lock_guard<std::mutex> lock(core_->mu);
    core_->server = nullptr;
  }

  // 4. Handler pool: queued work belongs to closed connections now; run it
  //    down (completions are dropped by the dead core) and join.
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    stop_handlers_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : handler_threads_) {
    if (t.joinable()) t.join();
  }
  handler_threads_.clear();

  // 5. Free the arenas. Every producer is gone (workers and handlers
  //    joined, core severed), so mailbox contents and pools are ours:
  //    completion slots here hold the response-path reference and — with
  //    the handlers joined — no handler hold remains; `returned` slots
  //    already reached zero holds.
  for (auto& w : workers_) {
    for (Completion& done : w->completions) {
      if (done.slot->holds.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        delete done.slot;
      }
    }
    w->completions.clear();
    for (ResponseSlot* s : w->returned) delete s;
    w->returned.clear();
    for (int fd : w->pending_fds) ::close(fd);
    w->pending_fds.clear();
    for (ResponseSlot* s : w->slot_pool) delete s;
    w->slot_pool.clear();
  }
  workers_.clear();
  running_ = false;
}

HttpServerStats HttpServer::stats() const {
  HttpServerStats s;
  s.accepted_connections = accepted_.load();
  s.requests_total = requests_.load();
  s.responses_total = responses_.load();
  s.handled = handled_.load();
  s.rejected_overload = rejected_overload_.load();
  s.rejected_draining = rejected_draining_.load();
  s.parse_errors = parse_errors_.load();
  s.timed_out_connections = timed_out_.load();
  s.inflight = inflight_.load();
  s.inflight_peak = inflight_peak_.load();
  s.handler_busy = handler_busy_.load();
  s.async_pending = static_cast<size_t>(std::max<int64_t>(
      async_pending_.load(std::memory_order_relaxed), 0));
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    s.handler_queue = work_.size();
  }
  return s;
}

void HttpServer::AcceptLoop() {
  size_t next_worker = 0;
  while (!stop_accepting_.load()) {
    pollfd p{listener_.fd(), POLLIN, 0};
    int rc = ::poll(&p, 1, /*timeout_ms=*/50);
    if (rc <= 0) continue;
    for (;;) {
      int fd = ::accept4(listener_.fd(), nullptr, nullptr, SOCK_NONBLOCK);
      if (fd < 0) break;  // EAGAIN / transient error: back to poll
      (void)SetNoDelay(fd);
      if (opts_.send_buffer_bytes > 0) {
        ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &opts_.send_buffer_bytes,
                     sizeof(opts_.send_buffer_bytes));
      }
      accepted_.fetch_add(1, std::memory_order_relaxed);
      Worker& w = *workers_[next_worker];
      next_worker = (next_worker + 1) % workers_.size();
      {
        std::lock_guard<std::mutex> lock(w.mu);
        w.pending_fds.push_back(fd);
      }
      Wake(w);
    }
  }
}

void HttpServer::Wake(Worker& w) { w.loop->Wake(); }

HttpServer::ResponseSlot* HttpServer::AcquireSlot(Worker& w) {
  if (w.slot_pool.empty()) {
    // A slot whose last hold dropped on a handler thread may still be
    // sitting in the `returned` mailbox (the worker only drains it at tick
    // boundaries); reclaim those before minting a cold arena.
    {
      std::lock_guard<std::mutex> lock(w.mu);
      w.returned_scratch.swap(w.returned);
    }
    for (ResponseSlot* s : w.returned_scratch) RecycleSlot(w, s);
    w.returned_scratch.clear();
  }
  if (!w.slot_pool.empty()) {
    ResponseSlot* s = w.slot_pool.back();
    w.slot_pool.pop_back();
    return s;
  }
  return new ResponseSlot();
}

void HttpServer::RecycleSlot(Worker& w, ResponseSlot* slot) {
  // Reset to defaults while keeping every string/vector capacity (that IS
  // the arena). The request is fully overwritten at the next parse.
  slot->response.status = 200;
  slot->response.body.clear();
  slot->response.content_type = "text/plain";
  slot->response.headers.clear();
  slot->head.clear();
  // Bound the pool by the worst simultaneous demand this worker can see.
  if (w.slot_pool.size() <
      opts_.max_inflight + 2 * opts_.max_pipeline + 16) {
    w.slot_pool.push_back(slot);
  } else {
    delete slot;
  }
}

void HttpServer::ReleaseSlotHold(Worker& w, ResponseSlot* slot) {
  if (slot->holds.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    RecycleSlot(w, slot);
  }
  // Otherwise the handler is still reading the request; its release will
  // route the slot back through the worker's `returned` mailbox.
}

void HttpServer::FlushWorkBatch(Worker& w) {
  if (w.work_batch.empty()) return;
  size_t n = w.work_batch.size();
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    for (Work& work : w.work_batch) work_.push_back(std::move(work));
  }
  if (n == 1) {
    work_cv_.notify_one();
  } else {
    work_cv_.notify_all();
  }
  w.work_batch.clear();
}

void HttpServer::DrainMailbox(Worker& w) {
  {
    std::lock_guard<std::mutex> lock(w.mu);
    w.fds_scratch.swap(w.pending_fds);
    w.completions_scratch.swap(w.completions);
    w.returned_scratch.swap(w.returned);
  }
  for (int fd : w.fds_scratch) AddConnection(w, fd);
  w.fds_scratch.clear();
  // Slots whose last hold was dropped on a handler thread.
  for (ResponseSlot* s : w.returned_scratch) RecycleSlot(w, s);
  w.returned_scratch.clear();
  for (Completion& done : w.completions_scratch) ApplyCompletion(w, done);
  w.completions_scratch.clear();
}

void HttpServer::ApplyCompletion(Worker& w, const Completion& done) {
  auto it = w.conns.find(done.conn_id);
  if (it == w.conns.end()) {
    // Connection died mid-request; drop the response.
    ReleaseSlotHold(w, done.slot);
    return;
  }
  Connection& c = *it->second;
  const uint64_t conn_id = done.conn_id;
  c.last_activity = Now();
  WindowEntry& entry = c.window[done.seq & c.window_mask];
  entry.slot = done.slot;
  entry.keep_alive = done.keep_alive;
  PumpResponses(w, c);
  // Defensive re-lookup: nothing above should drop the connection today
  // (the flush that could is deferred to end of tick), but TryParse below
  // can, so the id-based discipline stays uniform.
  auto again = w.conns.find(conn_id);
  if (again == w.conns.end()) return;
  Connection& alive = *again->second;
  if (!alive.want_read && !alive.peer_closed &&
      alive.inbuf.size() - alive.in_off < kMaxBufferedInput) {
    alive.want_read = true;
    UpdateInterest(w, alive);
  }
  // Pipelined requests already buffered: parse the next one now.
  if (!alive.close_after_write) TryParse(w, alive);
  auto fin = w.conns.find(conn_id);
  if (fin != w.conns.end() && fin->second->peer_closed &&
      !fin->second->busy()) {
    CloseConnection(w, *fin->second);
  }
}

void HttpServer::DrainInlineCompletions(Worker& w) {
  // ApplyCompletion may parse further pipelined requests, whose inline
  // handlers append here — keep going until the queue is genuinely dry.
  while (!w.inline_completions.empty()) {
    Completion done = std::move(w.inline_completions.front());
    w.inline_completions.pop_front();
    ApplyCompletion(w, done);
  }
}

void HttpServer::AddConnection(Worker& w, int fd) {
  uint64_t id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  auto conn = std::make_unique<Connection>(opts_.limits,
                                           RoundUpPow2(opts_.max_pipeline));
  conn->fd = fd;
  conn->id = id;
  conn->last_activity = Now();
  Status st = w.loop->AddFd(
      fd, /*want_read=*/true, /*want_write=*/false,
      [this, &w, id](uint32_t events) { OnConnEvent(w, id, events); });
  if (!st.ok()) {
    ::close(fd);
    return;
  }
  conn->idle_timer = w.loop->RunAfter(
      opts_.idle_timeout_seconds, [this, &w, id] { OnIdleTimer(w, id); });
  w.conns.emplace(id, std::move(conn));
}

void HttpServer::OnConnEvent(Worker& w, uint64_t conn_id, uint32_t events) {
  auto it = w.conns.find(conn_id);
  if (it == w.conns.end()) return;  // closed earlier this tick
  if (events & EPOLLOUT) {
    FlushWrite(w, *it->second);
    it = w.conns.find(conn_id);  // FlushWrite may close (destroy) it
    if (it == w.conns.end()) return;
  }
  if (events & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
    OnReadable(w, *it->second);
  }
}

void HttpServer::OnIdleTimer(Worker& w, uint64_t conn_id) {
  auto it = w.conns.find(conn_id);
  if (it == w.conns.end()) return;
  Connection& c = *it->second;
  double idle = Now() - c.last_activity;
  if (!c.busy() && idle >= opts_.idle_timeout_seconds) {
    timed_out_.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(w, c);
    return;
  }
  // Activity moved the deadline since this timer was armed (the hot path
  // only writes last_activity — it never touches the wheel): re-arm for
  // exactly the remaining window.
  double remaining = std::max(opts_.idle_timeout_seconds - idle,
                              w.loop->wheel().tick_seconds());
  c.idle_timer = w.loop->RunAfter(remaining, [this, &w, conn_id] {
    OnIdleTimer(w, conn_id);
  });
}

void HttpServer::CloseConnection(Worker& w, Connection& c) {
  // Release every response still owned by this connection. Requests whose
  // handler/writer is still out keep their slot alive via those holds.
  for (WindowEntry& entry : c.window) {
    if (entry.slot != nullptr) {
      ReleaseSlotHold(w, entry.slot);
      entry.slot = nullptr;
    }
  }
  while (!c.outq.empty()) {
    ReleaseSlotHold(w, c.outq.front().slot);
    c.outq.pop_front();
  }
  w.loop->CancelTimer(c.idle_timer);
  (void)w.loop->RemoveFd(c.fd);
  ::close(c.fd);
  w.conns.erase(c.id);  // destroys c
}

void HttpServer::UpdateInterest(Worker& w, Connection& c) {
  (void)w.loop->ModifyFd(c.fd, c.want_read, c.want_write);
}

void HttpServer::OnReadable(Worker& w, Connection& c) {
  // TryParse below may close (destroy) the connection; keep the id so the
  // re-lookup never touches freed memory.
  const uint64_t conn_id = c.id;
  char buf[16 * 1024];
  for (;;) {
    ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      c.inbuf.append(buf, static_cast<size_t>(n));
      c.last_activity = Now();
      if (c.pending() > 0 &&
          c.inbuf.size() - c.in_off >= kMaxBufferedInput) {
        // Pipelining backpressure: stop reading until responses go out.
        c.want_read = false;
        UpdateInterest(w, c);
        break;
      }
      // A short read means the socket buffer is (almost certainly) empty;
      // skip the EAGAIN confirmation recv. Epoll is level-triggered, so
      // any bytes that race in are reported again on the next tick.
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConnection(w, c);  // ECONNRESET and friends
      return;
    }
    // n == 0: orderly shutdown from the peer.
    c.peer_closed = true;
    c.want_read = false;
    UpdateInterest(w, c);
    break;
  }
  TryParse(w, c);
  // Peer gone and nothing left to answer: drop the connection.
  auto it = w.conns.find(conn_id);
  if (it != w.conns.end()) {
    Connection& alive = *it->second;
    if (alive.peer_closed && !alive.busy()) CloseConnection(w, alive);
  }
}

void HttpServer::TryParse(Worker& w, Connection& c) {
  const uint64_t conn_id = c.id;  // survives a close inside QueueSlotResponse
  while (!c.parse_done && c.pending() < opts_.max_pipeline &&
         c.in_off < c.inbuf.size()) {
    size_t consumed =
        c.parser.Feed(c.inbuf.data() + c.in_off, c.inbuf.size() - c.in_off);
    c.in_off += consumed;
    if (c.in_off == c.inbuf.size()) {
      // Fully consumed: reset the buffer (capacity kept) so the offset
      // never grows without bound.
      c.inbuf.clear();
      c.in_off = 0;
    }
    if (c.parser.failed()) {
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      ResponseSlot* slot = AcquireSlot(w);
      slot->response.status = c.parser.error_status();
      slot->response.body.assign("error=");
      slot->response.body.append(c.parser.error());
      c.inbuf.clear();  // framing is lost; discard and close after reply
      c.in_off = 0;
      c.parse_done = true;
      QueueSlotResponse(w, c, c.next_seq++, slot, /*keep_alive=*/false);
      return;
    }
    if (!c.parser.done()) return;  // need more bytes

    requests_.fetch_add(1, std::memory_order_relaxed);
    // Claim an arena and swap the parsed request into it; the parser gets
    // the slot's retired strings (and their capacities) back.
    ResponseSlot* slot = AcquireSlot(w);
    slot->request.swap(c.parser.request());
    c.parser.Reset();
    c.last_activity = Now();
    uint64_t seq = c.next_seq++;
    bool keep_alive = slot->request.keep_alive;
    // After "Connection: close" no further request may be answered on
    // this connection; stop parsing so pipelined bytes are not consumed.
    if (!keep_alive) c.parse_done = true;

    if (phase_.load() != Phase::kRunning) {
      rejected_draining_.fetch_add(1, std::memory_order_relaxed);
      c.parse_done = true;
      FillOverload(slot, "server shutting down");
      QueueSlotResponse(w, c, seq, slot, /*keep_alive=*/false);
      return;
    }
    // Admission control: bounded in-flight (admitted, not yet completed)
    // requests across all workers.
    if (inflight_.fetch_add(1, std::memory_order_acq_rel) >=
        opts_.max_inflight) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      rejected_overload_.fetch_add(1, std::memory_order_relaxed);
      FillOverload(slot, "server overloaded");
      QueueSlotResponse(w, c, seq, slot, keep_alive);
      if (w.conns.find(conn_id) == w.conns.end()) return;  // write error
      continue;  // connection stays usable; try the next pipelined request
    }
    // Track the concurrency high-watermark (the async path's headline
    // number: it can far exceed num_handler_threads).
    uint64_t cur = static_cast<uint64_t>(inflight_.load());
    uint64_t peak = inflight_peak_.load(std::memory_order_relaxed);
    while (cur > peak && !inflight_peak_.compare_exchange_weak(
                             peak, cur, std::memory_order_relaxed)) {
    }
    // Two holds: the handler reads `request` until it returns; the
    // response path carries the slot from WriterState back to the flush.
    slot->holds.store(2, std::memory_order_relaxed);
    Work work;
    work.worker = w.index;
    work.conn_id = c.id;
    work.seq = seq;
    work.keep_alive = keep_alive;
    work.slot = slot;
    if (opts_.inline_handlers) {
      // Run-to-completion: invoke the handler right here. Its completion
      // (if inline) lands in w.inline_completions and is applied at the
      // tick's drain point — never mid-parse, so `c` stays valid.
      RunHandlerInline(w, work);
    } else {
      w.work_batch.push_back(work);
    }
    // Keep parsing: with async completion, pipelined requests proceed
    // concurrently (bounded by max_pipeline) and responses are re-ordered
    // to request order on completion.
  }
}

void HttpServer::RunHandlerInline(Worker& w, const Work& work) {
  {
    auto state = std::allocate_shared<WriterState>(
        FreeListAllocator<WriterState>());
    state->core = core_;
    state->slot = work.slot;
    state->worker = work.worker;
    state->conn_id = work.conn_id;
    state->seq = work.seq;
    state->keep_alive = work.keep_alive;
    handler_busy_.fetch_add(1, std::memory_order_relaxed);
    async_handler_(work.slot->request, ResponseWriter(state));
    handler_busy_.fetch_sub(1, std::memory_order_relaxed);
    int old = state->flags.fetch_or(WriterState::kHandlerReturned,
                                    std::memory_order_acq_rel);
    if (!(old & WriterState::kCompleted)) {
      async_pending_.fetch_add(1, std::memory_order_relaxed);
    }
    // `state` drops here; an uncompleted, unparked writer answers 500 via
    // ~WriterState exactly as on the pool path.
  }
  // Handler hold: released on the worker thread, so the last release can
  // recycle directly instead of bouncing through the `returned` mailbox.
  if (work.slot->holds.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    RecycleSlot(w, work.slot);
  }
}

void HttpServer::QueueSlotResponse(Worker& w, Connection& c, uint64_t seq,
                                   ResponseSlot* slot, bool keep_alive) {
  responses_.fetch_add(1, std::memory_order_relaxed);
  SerializeResponseHeadersTo(slot->response, keep_alive, &slot->head);
  slot->holds.store(1, std::memory_order_relaxed);  // response path only
  WindowEntry& entry = c.window[seq & c.window_mask];
  entry.slot = slot;
  entry.keep_alive = keep_alive;
  PumpResponses(w, c);
}

void HttpServer::PumpResponses(Worker& w, Connection& c) {
  while (!c.close_after_write) {
    WindowEntry& entry = c.window[c.next_send & c.window_mask];
    if (entry.slot == nullptr) break;  // next-in-order not completed yet
    OutItem item;
    item.slot = entry.slot;
    item.off = 0;
    item.close_after = !entry.keep_alive;
    entry.slot = nullptr;
    c.outq.push_back(std::move(item));
    ++c.next_send;
    // Responses queued behind a close die with the connection.
    if (item.close_after) c.close_after_write = true;
  }
  // Defer the socket write to the end of the loop tick: every response
  // completed this tick rides the same gather flush (one sendmsg per
  // connection per tick instead of one per response).
  if (!c.outq.empty() && !c.flush_pending) {
    c.flush_pending = true;
    w.flush_queue.push_back(c.id);
  }
}

void HttpServer::FlushPendingWrites(Worker& w) {
  // FlushWrite never stages new flushes and may only erase connections,
  // so a plain index walk over the tick's list is safe.
  for (size_t i = 0; i < w.flush_queue.size(); ++i) {
    auto it = w.conns.find(w.flush_queue[i]);
    if (it == w.conns.end()) continue;  // closed earlier this tick
    Connection& c = *it->second;
    c.flush_pending = false;
    FlushWrite(w, c);
  }
  w.flush_queue.clear();
}

void HttpServer::FlushWrite(Worker& w, Connection& c) {
  while (!c.outq.empty()) {
    // Gather up to kMaxIov segments across the queued responses: header
    // block and body each contribute one iovec, no concatenation copy.
    iovec iov[kMaxIov];
    int iov_count = 0;
    size_t n_items = c.outq.size();
    for (size_t i = 0; i < n_items && iov_count + 2 <= kMaxIov; ++i) {
      OutItem& item = c.outq[i];
      const std::string& head = item.slot->head;
      const std::string& body = item.slot->response.body;
      size_t off = item.off;  // nonzero only for the front item
      if (off < head.size()) {
        iov[iov_count].iov_base = const_cast<char*>(head.data()) + off;
        iov[iov_count].iov_len = head.size() - off;
        ++iov_count;
        off = 0;
      } else {
        off -= head.size();
      }
      if (off < body.size()) {
        iov[iov_count].iov_base = const_cast<char*>(body.data()) + off;
        iov[iov_count].iov_len = body.size() - off;
        ++iov_count;
      }
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(iov_count);
    ssize_t n = ::sendmsg(c.fd, &msg, MSG_NOSIGNAL);
    if (n > 0) {
      size_t left = static_cast<size_t>(n);
      while (left > 0) {
        OutItem& front = c.outq.front();
        size_t total =
            front.slot->head.size() + front.slot->response.body.size();
        size_t remain = total - front.off;
        if (left < remain) {
          front.off += left;
          break;
        }
        left -= remain;
        bool close_now = front.close_after;
        ReleaseSlotHold(w, front.slot);
        c.outq.pop_front();
        if (close_now) {
          CloseConnection(w, c);
          return;
        }
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!c.want_write) {
        c.want_write = true;
        UpdateInterest(w, c);
      }
      return;
    }
    CloseConnection(w, c);  // broken pipe / reset
    return;
  }
  if (c.want_write) {
    c.want_write = false;
    UpdateInterest(w, c);
  }
}

void HttpServer::WorkerLoop(int index) {
  Worker& w = *workers_[static_cast<size_t>(index)];
  t_worker_identity = &w;
  EventLoop& loop = *w.loop;
  // Mailbox drain (new fds, off-thread completions, returned slots) runs
  // at the top of every tick, before fd dispatch — the same ordering the
  // hand-rolled loop had. Connection events arrive through the per-fd
  // callbacks registered in AddConnection; idle deadlines through wheel
  // timers. No safety timeout remains: every wakeup is an event, a posted
  // completion, or an exact timer deadline.
  loop.SetTickBeginHook([this, &w] { DrainMailbox(w); });
  loop.SetTickEndHook([this, &w, &loop] {
    // Inline handlers completed during this tick: file their responses
    // before the tick's single gather flush below.
    DrainInlineCompletions(w);
    FlushPendingWrites(w);
    // Hand the whole tick's admitted requests to the pool at once.
    FlushWorkBatch(w);
    Phase phase = phase_.load();
    if (phase == Phase::kRunning) return;
    if (phase == Phase::kForceStop) {
      loop.Stop();
      return;
    }
    // Draining: leave once nothing on this worker is mid-request (which
    // includes async responses not yet completed) or mid-write. Idle
    // keep-alive connections are simply closed. Completions and phase
    // flips both wake the loop, so this re-checks exactly when the answer
    // can change.
    bool busy = false;
    for (auto& [id, conn] : w.conns) busy = busy || conn->busy();
    if (!busy) loop.Stop();
  });
  loop.Run();
  std::vector<uint64_t> ids;
  ids.reserve(w.conns.size());
  for (auto& [id, conn] : w.conns) ids.push_back(id);
  for (uint64_t id : ids) {
    auto it = w.conns.find(id);
    if (it != w.conns.end()) CloseConnection(w, *it->second);
  }
  // Inline completions that never got applied (force stop mid-tick): their
  // connections are gone; just release the response-path holds.
  while (!w.inline_completions.empty()) {
    ReleaseSlotHold(w, w.inline_completions.front().slot);
    w.inline_completions.pop_front();
  }
  t_worker_identity = nullptr;
  w.exited.store(true);
}

void HttpServer::HandlerLoop() {
  for (;;) {
    Work work;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [&] { return stop_handlers_ || !work_.empty(); });
      if (work_.empty()) return;  // stop_handlers_ && drained
      work = work_.front();
      work_.pop_front();
    }
    {
      auto state = std::allocate_shared<WriterState>(
          FreeListAllocator<WriterState>());
      state->core = core_;
      state->slot = work.slot;
      state->worker = work.worker;
      state->conn_id = work.conn_id;
      state->seq = work.seq;
      state->keep_alive = work.keep_alive;
      handler_busy_.fetch_add(1, std::memory_order_relaxed);
      async_handler_(work.slot->request, ResponseWriter(state));
      handler_busy_.fetch_sub(1, std::memory_order_relaxed);
      // Handler returned without completing: the continuation is parked
      // elsewhere (async_pending until its owner completes the writer).
      // The two flag bits keep the gauge exact when completion races the
      // return.
      int old = state->flags.fetch_or(WriterState::kHandlerReturned,
                                      std::memory_order_acq_rel);
      if (!(old & WriterState::kCompleted)) {
        async_pending_.fetch_add(1, std::memory_order_relaxed);
      }
      // `state` drops here: if the handler kept no copy and never
      // completed, ~WriterState answers 500 so the connection is not
      // wedged.
    }
    // The request is no longer being read: drop the handler's hold. If the
    // response already flushed (or was dropped with the connection), this
    // is the last hold and the slot goes back via the worker's mailbox.
    if (work.slot->holds.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      Worker& w = *workers_[static_cast<size_t>(work.worker)];
      {
        std::lock_guard<std::mutex> lock(w.mu);
        w.returned.push_back(work.slot);
      }
      Wake(w);
    }
  }
}

}  // namespace rafiki::net
