#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/string_util.h"

namespace rafiki::net {
namespace {

Status Errno(const char* what) {
  return Status::Internal(StrFormat("%s: %s", what, std::strerror(errno)));
}

Status WaitFor(int fd, short events, const Deadline& deadline,
               const char* what) {
  for (;;) {
    if (deadline.expired()) {
      return Status::DeadlineExceeded(StrFormat("%s: deadline expired", what));
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    int n = ::poll(&pfd, 1, deadline.remaining_ms());
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (n > 0) return Status::OK();
    // n == 0: poll timed out; the expired() check above reports it.
  }
}

}  // namespace

int Deadline::remaining_ms() const {
  if (!has_deadline_) return -1;
  auto left = at_ - std::chrono::steady_clock::now();
  if (left <= std::chrono::steady_clock::duration::zero()) return 0;
  auto ms = std::chrono::ceil<std::chrono::milliseconds>(left).count();
  return ms > 2147483646 ? 2147483646 : static_cast<int>(ms);
}

Status WaitReadable(int fd, const Deadline& deadline) {
  return WaitFor(fd, POLLIN, deadline, "read");
}

Status WaitWritable(int fd, const Deadline& deadline) {
  return WaitFor(fd, POLLOUT, deadline, "write");
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status SetNonBlocking(int fd, bool nonblocking) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (nonblocking) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) return Errno("fcntl(F_SETFL)");
  return Status::OK();
}

Status SetNoDelay(int fd) {
  int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

Result<Socket> ListenTcp(uint16_t port, int backlog, uint16_t* bound_port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0));
  if (!sock.valid()) return Errno("socket");
  int one = 1;
  if (::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind");
  }
  if (::listen(sock.fd(), backlog) < 0) return Errno("listen");
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&actual),
                      &len) < 0) {
      return Errno("getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return sock;
}

Result<Socket> ConnectTcp(const std::string& host, uint16_t port,
                          double timeout_seconds) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        StrFormat("not an IPv4 address: '%s'", host.c_str()));
  }
  if (timeout_seconds > 0.0) {
    // Nonblocking connect raced against the deadline: a black-holed peer
    // surfaces as kDeadlineExceeded here instead of minutes of kernel SYN
    // retries.
    Deadline deadline = Deadline::After(timeout_seconds);
    RAFIKI_RETURN_IF_ERROR(SetNonBlocking(sock.fd(), true));
    int rc;
    do {
      rc = ::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
      if (errno != EINPROGRESS) return Errno("connect");
      RAFIKI_RETURN_IF_ERROR(WaitWritable(sock.fd(), deadline));
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
        return Errno("getsockopt(SO_ERROR)");
      }
      if (err != 0) {
        errno = err;
        return Errno("connect");
      }
    }
    RAFIKI_RETURN_IF_ERROR(SetNonBlocking(sock.fd(), false));
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout_seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (timeout_seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    if (::setsockopt(sock.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) <
            0 ||
        ::setsockopt(sock.fd(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) <
            0) {
      return Errno("setsockopt(SO_RCVTIMEO)");
    }
  } else {
    int rc;
    do {
      rc = ::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) return Errno("connect");
  }
  (void)SetNoDelay(sock.fd());
  return sock;
}

Status SendAll(int fd, const char* data, size_t len) {
  return WriteFull(fd, data, len);
}

Status WriteFull(int fd, const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    // send() first for the MSG_NOSIGNAL guarantee; non-socket fds (pipes
    // in tests, spawned-process plumbing) fall back to write().
    ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd, data + sent, len - sent);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("send timed out");
      }
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> ReadFull(int fd, char* data, size_t len) {
  size_t got = 0;
  while (got < len) {
    RAFIKI_ASSIGN_OR_RETURN(size_t n, RecvSome(fd, data + got, len - got));
    if (n == 0) {
      if (got == 0) return static_cast<size_t>(0);  // clean shutdown
      return Status::Internal(
          StrFormat("peer closed mid-record: %zu of %zu bytes", got, len));
    }
    got += n;
  }
  return len;
}

Result<size_t> RecvSome(int fd, char* data, size_t len) {
  for (;;) {
    ssize_t n = ::recv(fd, data, len, 0);
    if (n < 0 && errno == ENOTSOCK) n = ::read(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("recv timed out");
      }
      return Errno("recv");
    }
    return static_cast<size_t>(n);
  }
}

}  // namespace rafiki::net
