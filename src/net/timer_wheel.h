#ifndef RAFIKI_NET_TIMER_WHEEL_H_
#define RAFIKI_NET_TIMER_WHEEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace rafiki::net {

/// Opaque timer handle; 0 is never a live timer.
using TimerId = uint64_t;

/// Hierarchical timing wheel: 4 levels of 256 slots over a fixed tick
/// (default 1 ms), covering ~2^32 ticks (~49 days at 1 ms). All operations
/// the reactor's hot path performs are O(1):
///
///   * ScheduleAt/Schedule hash the target tick into the level whose span
///     covers it and push the timer onto that slot's intrusive list;
///   * Cancel unlinks the node through an id -> node map;
///   * Advance(now) walks whole ticks, expiring level-0 slots and
///     cascading a higher-level slot only when the level below completes a
///     rotation (amortized O(1) per timer per level).
///
/// The wheel has no thread of its own and never reads a clock: the owner
/// feeds time in through Advance(). That is the fake-clock hook — tests
/// drive Advance() with a virtual clock and the same code paths fire, in
/// the same order, deterministically. NextDeadline() reports the earliest
/// pending expiry so an event loop can sleep exactly until the next real
/// deadline instead of polling on a safety tick.
///
/// Timers fire in deadline order; two timers on the same tick fire in
/// schedule order. Callbacks run inside Advance() on the caller's thread
/// and may freely schedule or cancel timers (including their own periodic
/// timer). Not thread-safe: confine a wheel to one thread (the event loop
/// posts cross-thread arms through its task mailbox).
class TimerWheel {
 public:
  using Callback = std::function<void()>;

  /// `tick_seconds` is the firing granularity (deadlines are rounded up to
  /// the next tick boundary); `start` is the initial time.
  explicit TimerWheel(double tick_seconds = 1e-3, double start = 0.0);
  ~TimerWheel();

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// One-shot timer at absolute time `when` (same timeline as Advance).
  /// Past or present deadlines fire on the next Advance that crosses a
  /// tick boundary.
  TimerId ScheduleAt(double when, Callback callback);

  /// One-shot timer `delay` seconds from now.
  TimerId Schedule(double delay, Callback callback) {
    return ScheduleAt(now_seconds_ + delay, std::move(callback));
  }

  /// Periodic timer: first fires at now + interval, then every interval,
  /// re-armed from the *scheduled* deadline (not the fire time) so late
  /// Advances do not accumulate drift.
  TimerId SchedulePeriodic(double interval, Callback callback);

  /// O(1). Returns false when the id already fired (one-shot), was
  /// cancelled, or never existed. Safe to call from inside any timer
  /// callback, including the timer's own.
  bool Cancel(TimerId id);

  /// Advances the wheel to `now` (monotonically; earlier times are
  /// ignored) and fires everything due. Returns the number of callbacks
  /// invoked.
  size_t Advance(double now);

  /// Earliest pending deadline in seconds, or +infinity when no timers are
  /// scheduled. Exact (to tick granularity), not a conservative bound.
  double NextDeadline() const;

  size_t size() const { return size_; }
  double now() const { return now_seconds_; }
  double tick_seconds() const { return tick_seconds_; }

 private:
  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 8;
  static constexpr uint64_t kSlotsPerLevel = 1ull << kSlotBits;  // 256
  static constexpr uint64_t kSlotMask = kSlotsPerLevel - 1;

  /// Intrusive doubly-linked node; slots are circular lists through a
  /// sentinel head so unlink needs no list identity.
  struct Node {
    Node* prev = nullptr;
    Node* next = nullptr;
    uint64_t id = 0;
    uint64_t deadline_tick = 0;
    /// Periodic interval in ticks; 0 = one-shot.
    uint64_t interval_ticks = 0;
    bool cancelled = false;
    Callback callback;
  };

  static void Unlink(Node* node) {
    node->prev->next = node->next;
    node->next->prev = node->prev;
    node->prev = node->next = nullptr;
  }
  static void PushBack(Node* head, Node* node) {
    node->prev = head->prev;
    node->next = head;
    head->prev->next = node;
    head->prev = node;
  }

  TimerId ScheduleNode(uint64_t deadline_tick, uint64_t interval_ticks,
                       Callback callback);
  /// Files `node` into the slot covering its deadline relative to
  /// `current_tick_`.
  void Place(Node* node);
  /// Re-files every timer in level `level`'s slot for the current tick
  /// into a finer level (or fires list for level 0 equivalence).
  void Cascade(int level, uint64_t slot);
  /// Fires every timer in `list` (a detached circular list's contents).
  size_t FireSlot(Node* head);
  Node* AcquireNode();
  void ReleaseNode(Node* node);

  double tick_seconds_;
  double now_seconds_;
  uint64_t current_tick_;
  uint64_t next_id_ = 1;
  size_t size_ = 0;

  /// slots_[level][slot] is the sentinel of that slot's circular list.
  std::vector<Node> slots_[kLevels];
  std::unordered_map<uint64_t, Node*> nodes_;
  /// Recycled nodes: steady-state schedule/fire cycles reuse them instead
  /// of allocating.
  std::vector<Node*> free_nodes_;

  /// Cached earliest deadline tick; kUnknown forces a rescan.
  static constexpr uint64_t kNoDeadline = ~0ull;
  mutable uint64_t cached_next_tick_ = kNoDeadline;
  mutable bool cache_valid_ = true;  // empty wheel: no deadline is exact
};

}  // namespace rafiki::net

#endif  // RAFIKI_NET_TIMER_WHEEL_H_
