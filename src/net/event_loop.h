#ifndef RAFIKI_NET_EVENT_LOOP_H_
#define RAFIKI_NET_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/timer_wheel.h"

struct epoll_event;

namespace rafiki::net {

/// The one reactor under the HTTP server, the RPC bus, and the load
/// generator. An EventLoop owns:
///
///   * an epoll instance with fd watchers (read and/or write interest,
///     modify/remove safe during dispatch via a per-slot generation tag);
///   * a hierarchical TimerWheel, so every deadline in the process fires
///     at its exact tick instead of being noticed by a safety poll;
///   * a cross-thread task mailbox (eventfd wake + scratch-swap vectors,
///     the PR 6 pattern), so other threads Post() work instead of sharing
///     state;
///   * tick hooks: the begin hook runs right after wakeup, the end hook
///     runs after fd dispatch and timer expiry — clients park their
///     end-of-tick gather-flush there.
///
/// Threading: one thread owns the loop (the one inside Run(), or whoever
/// calls PollOnce()). Watchers, timers, and hooks are owner-thread-only.
/// Post(), PostDelayed(), Wake(), and Stop() are safe from any thread.
///
/// The steady-state tick is allocation-free: the event array, mailbox
/// scratch, watcher table, and wheel nodes are all reused.
class EventLoop {
 public:
  using Task = std::function<void()>;
  /// `events` is the raw epoll bitmask (EPOLLIN/EPOLLOUT/EPOLLERR/...).
  using IoCallback = std::function<void(uint32_t events)>;

  struct Options {
    /// Timer granularity; deadlines round up to the next tick.
    double tick_seconds = 1e-3;
    /// Time source for Now() and the wheel. Defaults to a monotonic clock
    /// with epoch at loop construction. Tests inject a fake clock here and
    /// drive PollOnce() for deterministic timer firing.
    std::function<double()> clock;
  };

  EventLoop() : EventLoop(Options{}) {}
  explicit EventLoop(Options options);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // --- fd watchers (owner thread) ---

  /// Registers `fd` with the given interest. The callback may add, modify,
  /// or remove any watcher — including its own fd — during dispatch.
  Status AddFd(int fd, bool want_read, bool want_write, IoCallback callback);
  /// Updates read/write interest; no-op syscall-wise if unchanged.
  Status ModifyFd(int fd, bool want_read, bool want_write);
  /// Deregisters `fd`. Pending events already pulled from epoll for it are
  /// discarded (generation tag), and the callback object is kept alive
  /// until the end of the tick, so a callback may remove its own fd; the
  /// caller may close the fd immediately after.
  Status RemoveFd(int fd);
  bool WatchingFd(int fd) const;
  size_t watcher_count() const { return active_watchers_; }

  // --- timers (owner thread) ---

  TimerId RunAfter(double delay, Task task) {
    return wheel_.Schedule(delay, std::move(task));
  }
  TimerId RunAt(double when, Task task) {
    return wheel_.ScheduleAt(when, std::move(task));
  }
  TimerId RunEvery(double interval, Task task) {
    return wheel_.SchedulePeriodic(interval, std::move(task));
  }
  bool CancelTimer(TimerId id) { return wheel_.Cancel(id); }
  TimerWheel& wheel() { return wheel_; }

  // --- cross-thread ---

  /// Enqueues `task` to run on the loop thread at the start of its next
  /// tick (after the begin hook, before fd dispatch) and wakes the loop.
  void Post(Task task);
  /// Post() + RunAfter() from any thread: the delay is measured from when
  /// the loop thread processes the post, i.e. one wakeup after now.
  void PostDelayed(double delay, Task task);
  /// Forces the current/next epoll wait to return immediately.
  void Wake();
  /// Makes Run() return after finishing the current tick.
  void Stop();

  // --- hooks (owner thread; set before the loop runs) ---

  void SetTickBeginHook(Task hook) { tick_begin_hook_ = std::move(hook); }
  void SetTickEndHook(Task hook) { tick_end_hook_ = std::move(hook); }

  // --- running ---

  /// Ticks until Stop(). Claims the calling thread as owner.
  void Run();
  /// One tick: sleep at most `max_wait_seconds` (capped by the next timer
  /// deadline; pass 0 to poll), then drain mailbox, dispatch fd events,
  /// expire timers, and run the end hook. Returns the number of fd events
  /// dispatched. This is the deterministic-test entry point.
  int PollOnce(double max_wait_seconds);

  double Now() const { return clock_(); }
  bool IsInLoopThread() const {
    return owner_.load(std::memory_order_relaxed) == std::this_thread::get_id();
  }

 private:
  struct Watcher {
    uint32_t gen = 0;
    bool active = false;
    bool want_read = false;
    bool want_write = false;
    /// Behind a pointer so the function object never relocates: the
    /// watcher table may grow (vector resize) while this very callback is
    /// executing, and a callback may RemoveFd itself — the pointer moves
    /// to `retired_callbacks_` and dies at end of tick, not mid-call.
    std::unique_ptr<IoCallback> callback;
  };

  static constexpr int kEpollBatch = 256;

  void DrainPosted();
  Status EpollCtl(int op, int fd, const Watcher& w);

  std::function<double()> clock_;
  TimerWheel wheel_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;

  /// Indexed by fd (small dense ints on Linux); grown on demand, never
  /// shrunk, so dispatch is an array index, not a hash lookup.
  std::vector<Watcher> watchers_;
  size_t active_watchers_ = 0;
  /// Callbacks of fds removed this tick; destroyed once dispatch, timers,
  /// and the end hook have all returned.
  std::vector<std::unique_ptr<IoCallback>> retired_callbacks_;

  std::vector<epoll_event> events_;  // reused every tick

  std::mutex post_mu_;
  std::vector<Task> posted_;
  std::vector<Task> posted_scratch_;  // swap target: drain without realloc
  std::atomic<bool> has_posted_{false};

  Task tick_begin_hook_;
  Task tick_end_hook_;

  std::atomic<bool> stop_{false};
  std::atomic<std::thread::id> owner_{};
};

}  // namespace rafiki::net

#endif  // RAFIKI_NET_EVENT_LOOP_H_
