#ifndef RAFIKI_NET_HTTP_SERVER_H_
#define RAFIKI_NET_HTTP_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "net/http.h"
#include "net/socket.h"

namespace rafiki::net {

struct HttpServerOptions {
  /// Listening port; 0 asks the kernel for an ephemeral port (read it back
  /// with port()).
  uint16_t port = 0;
  /// Event-loop threads; each owns an epoll instance and a share of the
  /// connections.
  int num_workers = 2;
  /// Threads executing the request handler. Handlers may block (the
  /// gateway's /query waits on the inference dispatcher), so they run off
  /// the event loops.
  int num_handler_threads = 4;
  /// Requests admitted to the handler pool (queued + executing) before new
  /// ones are answered 503 directly from the event loop.
  size_t max_inflight = 256;
  /// Connections idle longer than this (no request in flight, nothing
  /// buffered) are closed.
  double idle_timeout_seconds = 60.0;
  /// Stop() waits this long for in-flight requests and buffered responses
  /// to drain before force-closing connections.
  double drain_timeout_seconds = 5.0;
  HttpParserLimits limits;
  int listen_backlog = 128;
  /// When > 0, shrink each accepted socket's SO_SNDBUF (tests use this to
  /// force partial writes through the EPOLLOUT path).
  int send_buffer_bytes = 0;
};

/// Monotonic counters; conservation invariant once quiet:
///   requests_total == responses_total, and
///   responses_total == handled + rejected_overload + parse_errors +
///                      rejected_draining.
struct HttpServerStats {
  uint64_t accepted_connections = 0;
  uint64_t requests_total = 0;    // complete requests parsed
  uint64_t responses_total = 0;   // responses serialized (any status)
  uint64_t handled = 0;           // answered by the handler
  uint64_t rejected_overload = 0; // 503 at the in-flight cap
  uint64_t rejected_draining = 0; // 503 while stopping
  uint64_t parse_errors = 0;      // 4xx/5xx straight from the parser
  uint64_t timed_out_connections = 0;
};

/// From-scratch epoll HTTP/1.1 server (the Figure 2/18 front door):
///
///   * one acceptor thread accepts and hands sockets round-robin to
///     `num_workers` event-loop threads;
///   * each worker owns its connections exclusively — nonblocking reads
///     into a per-connection buffer, an incremental HttpParser, and a
///     per-connection write buffer flushed via EPOLLOUT on partial writes;
///   * complete requests are executed on a separate handler pool (bounded
///     by `max_inflight`, overflow answered 503 inline), and the response
///     is posted back to the owning worker through a mailbox + eventfd;
///   * keep-alive and pipelining: requests on one connection are answered
///     in order; parsing pauses while one is in flight and resumes from
///     the buffered bytes afterwards;
///   * Stop() drains: accepting ends, new requests get 503, in-flight
///     responses are written out, then connections close.
///
/// The Handler runs concurrently on the pool; it must be thread-safe.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(Handler handler, HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the acceptor/worker/handler threads.
  Status Start();

  /// Graceful drain-then-stop; idempotent. Safe to call from any thread
  /// except a handler.
  void Stop();

  /// Bound port (valid after Start()).
  uint16_t port() const { return port_; }

  bool running() const { return running_; }

  HttpServerStats stats() const;

 private:
  enum class Phase { kRunning, kDraining, kForceStop };

  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    std::string inbuf;
    std::string outbuf;
    size_t out_off = 0;
    HttpParser parser;
    bool in_flight = false;        // request with the handler pool
    bool close_after_write = false;
    bool peer_closed = false;
    bool want_read = true;
    bool want_write = false;
    double last_activity = 0.0;

    Connection(HttpParserLimits limits) : parser(limits) {}
    bool busy() const { return in_flight || out_off < outbuf.size(); }
  };

  struct Completion {
    uint64_t conn_id = 0;
    std::string bytes;
    bool keep_alive = true;
  };

  struct Worker {
    int index = 0;
    int epoll_fd = -1;
    int wake_fd = -1;
    std::thread thread;
    std::mutex mu;  // guards the two mailboxes below
    std::vector<int> pending_fds;
    std::vector<Completion> completions;
    /// Owned exclusively by the worker thread.
    std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns;
    std::atomic<bool> exited{false};
  };

  struct Work {
    int worker = 0;
    uint64_t conn_id = 0;
    HttpRequest request;
  };

  void AcceptLoop();
  void WorkerLoop(int index);
  void HandlerLoop();

  void Wake(Worker& w);
  void DrainMailbox(Worker& w);
  void AddConnection(Worker& w, int fd);
  void CloseConnection(Worker& w, Connection& c);
  void UpdateEpoll(Worker& w, Connection& c);
  void OnReadable(Worker& w, Connection& c);
  void TryParse(Worker& w, Connection& c);
  /// Serializes `response` into the connection's write buffer and flushes.
  void Respond(Worker& w, Connection& c, const HttpResponse& response,
               bool keep_alive);
  void FlushWrite(Worker& w, Connection& c);
  void IdleSweep(Worker& w);
  double Now() const;

  Handler handler_;
  HttpServerOptions opts_;
  Socket listener_;
  uint16_t port_ = 0;
  bool running_ = false;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread acceptor_;
  std::vector<std::thread> handler_threads_;

  std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::deque<Work> work_;
  bool stop_handlers_ = false;  // guarded by work_mu_

  std::atomic<Phase> phase_{Phase::kRunning};
  std::atomic<bool> stop_accepting_{false};
  std::atomic<size_t> inflight_{0};
  std::atomic<uint64_t> next_conn_id_{1};

  // Stats counters.
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> responses_{0};
  std::atomic<uint64_t> handled_{0};
  std::atomic<uint64_t> rejected_overload_{0};
  std::atomic<uint64_t> rejected_draining_{0};
  std::atomic<uint64_t> parse_errors_{0};
  std::atomic<uint64_t> timed_out_{0};

  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace rafiki::net

#endif  // RAFIKI_NET_HTTP_SERVER_H_
