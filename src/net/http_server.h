#ifndef RAFIKI_NET_HTTP_SERVER_H_
#define RAFIKI_NET_HTTP_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "net/http.h"
#include "net/socket.h"

namespace rafiki::net {

struct HttpServerOptions {
  /// Listening port; 0 asks the kernel for an ephemeral port (read it back
  /// with port()).
  uint16_t port = 0;
  /// Event-loop threads; each owns an epoll instance and a share of the
  /// connections.
  int num_workers = 2;
  /// Threads invoking the request handler. With the async handler API a
  /// handler thread is only occupied while the handler *runs* (it may hand
  /// its ResponseWriter to another subsystem and return immediately), so
  /// in-flight requests are bounded by `max_inflight`, not by this.
  int num_handler_threads = 4;
  /// Requests admitted (response not yet completed) before new ones are
  /// answered 503 directly from the event loop. This is the true
  /// concurrency bound of the async path: an admitted request holds its
  /// slot until its ResponseWriter completes, not until the handler
  /// returns.
  size_t max_inflight = 256;
  /// Pipelined requests admitted per connection before parsing pauses
  /// (responses are still written in request order; this bounds the
  /// per-connection reorder buffer).
  size_t max_pipeline = 16;
  /// Connections idle longer than this (no request in flight, nothing
  /// buffered) are closed.
  double idle_timeout_seconds = 60.0;
  /// Stop() waits this long for in-flight requests — including async
  /// responses not yet completed — and buffered output to drain before
  /// force-closing connections.
  double drain_timeout_seconds = 5.0;
  HttpParserLimits limits;
  int listen_backlog = 128;
  /// When > 0, shrink each accepted socket's SO_SNDBUF (tests use this to
  /// force partial writes through the EPOLLOUT path).
  int send_buffer_bytes = 0;
};

/// Monotonic counters plus stage-occupancy gauges. Conservation invariant
/// once quiet:
///   requests_total == responses_total, and
///   responses_total == handled + rejected_overload + parse_errors +
///                      rejected_draining.
struct HttpServerStats {
  uint64_t accepted_connections = 0;
  uint64_t requests_total = 0;    // complete requests parsed
  uint64_t responses_total = 0;   // responses produced (any status)
  uint64_t handled = 0;           // completed through a ResponseWriter
  uint64_t rejected_overload = 0; // 503 at the in-flight cap
  uint64_t rejected_draining = 0; // 503 while stopping
  uint64_t parse_errors = 0;      // 4xx/5xx straight from the parser
  uint64_t timed_out_connections = 0;

  /// Gauges (sampled at stats() time) separating the stages of the async
  /// path, so saturation of each is observable independently:
  ///   admission (inflight) -> handler queue -> handler execution
  ///   (handler_busy) -> async completion wait (async_pending).
  size_t inflight = 0;        // admitted, response not yet completed
  uint64_t inflight_peak = 0; // high-watermark of `inflight` since Start()
  size_t handler_queue = 0;   // parsed requests waiting for a handler thread
  size_t handler_busy = 0;    // threads currently inside the handler
  /// Requests whose handler has returned but whose ResponseWriter has not
  /// completed yet — the continuation is parked in another subsystem (e.g.
  /// an inference batch queue).
  size_t async_pending = 0;
};

/// From-scratch epoll HTTP/1.1 server (the Figure 2/18 front door):
///
///   * one acceptor thread accepts and hands sockets round-robin to
///     `num_workers` event-loop threads;
///   * each worker owns its connections exclusively — nonblocking reads
///     into a per-connection buffer, an incremental HttpParser, and a
///     per-connection write buffer flushed via EPOLLOUT on partial writes;
///   * complete requests are admitted against `max_inflight` (overflow
///     answered 503 inline) and dispatched to a handler pool; the handler
///     receives a ResponseWriter it may complete later from any thread —
///     the response is posted back to the owning worker through a mailbox
///     + eventfd;
///   * keep-alive and pipelining: up to `max_pipeline` requests per
///     connection may be in flight at once; completions arriving out of
///     order are buffered and written strictly in request order;
///   * Stop() drains: accepting ends, new requests get 503, in-flight
///     requests — including async responses whose handler already
///     returned — are completed and written out, then connections close.
///
/// Handlers run concurrently on the pool; they must be thread-safe.
class HttpServer {
 public:
  /// Synchronous handler: the returned response completes the request.
  /// Runs as a thin adapter over the async API.
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct WriterState;

  /// Completion handle for one request. Copyable (copies share the same
  /// one-shot state — the first Complete() wins, later calls are no-ops)
  /// so it can be captured in std::function continuations. Thread-safe:
  /// Complete() may be called from any thread, including after the server
  /// started draining (the response is still delivered) or after Stop()
  /// finished (the completion is dropped safely). If every copy is
  /// destroyed without completing, a 500 is generated so the connection
  /// and the admission slot are not leaked.
  class ResponseWriter {
   public:
    ResponseWriter() = default;

    /// Completes the request; one-shot, thread-safe.
    void Complete(const HttpResponse& response);

    bool completed() const;
    bool valid() const { return state_ != nullptr; }

   private:
    friend class HttpServer;
    explicit ResponseWriter(std::shared_ptr<WriterState> state)
        : state_(std::move(state)) {}
    std::shared_ptr<WriterState> state_;
  };

  /// Asynchronous handler: may complete the writer inline or hand it to
  /// another thread and return. Returning without completing parks the
  /// request (counted in the async_pending gauge) until some owner of the
  /// writer completes it.
  using AsyncHandler = std::function<void(const HttpRequest&, ResponseWriter)>;

  HttpServer(Handler handler, HttpServerOptions options = {});
  HttpServer(AsyncHandler handler, HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the acceptor/worker/handler threads.
  Status Start();

  /// Graceful drain-then-stop; idempotent. Safe to call from any thread
  /// except a handler.
  void Stop();

  /// Bound port (valid after Start()).
  uint16_t port() const { return port_; }

  bool running() const { return running_; }

  HttpServerStats stats() const;

 private:
  enum class Phase { kRunning, kDraining, kForceStop };

  /// One response ready to be written; `seq` orders it among its
  /// connection's pipelined requests.
  struct Completion {
    uint64_t conn_id = 0;
    uint64_t seq = 0;
    std::string bytes;
    bool keep_alive = true;
  };

  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    std::string inbuf;
    std::string outbuf;
    size_t out_off = 0;
    HttpParser parser;
    uint64_t next_seq = 0;   // sequence assigned to the next parsed request
    uint64_t next_send = 0;  // sequence of the next response to emit
    /// Responses completed out of request order, keyed by sequence.
    std::map<uint64_t, Completion> ready;
    /// No further requests will be parsed (parse error, Connection: close,
    /// or a drain rejection); pending responses still go out in order.
    bool parse_done = false;
    bool close_after_write = false;
    bool peer_closed = false;
    bool want_read = true;
    bool want_write = false;
    double last_activity = 0.0;

    Connection(HttpParserLimits limits) : parser(limits) {}
    /// Requests parsed whose responses have not been emitted yet.
    size_t pending() const { return next_seq - next_send; }
    bool busy() const { return pending() > 0 || out_off < outbuf.size(); }
  };

  struct Worker {
    int index = 0;
    int epoll_fd = -1;
    int wake_fd = -1;
    std::thread thread;
    std::mutex mu;  // guards the two mailboxes below
    std::vector<int> pending_fds;
    std::vector<Completion> completions;
    /// Owned exclusively by the worker thread.
    std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns;
    std::atomic<bool> exited{false};
  };

  struct Work {
    int worker = 0;
    uint64_t conn_id = 0;
    uint64_t seq = 0;
    bool keep_alive = true;
    HttpRequest request;
  };

 public:
  /// Shared between the server and every outstanding ResponseWriter; the
  /// server pointer is nulled under `mu` during Stop(), after which late
  /// completions are dropped instead of touching freed workers.
  struct AsyncCore {
    std::mutex mu;
    HttpServer* server = nullptr;
  };

  /// One-shot completion state behind ResponseWriter. `flags` bit 0 is
  /// "completed", bit 1 is "handler returned" (used to keep the
  /// async_pending gauge exact under the completion/return race).
  struct WriterState {
    static constexpr int kCompleted = 1;
    static constexpr int kHandlerReturned = 2;

    std::shared_ptr<AsyncCore> core;
    int worker = 0;
    uint64_t conn_id = 0;
    uint64_t seq = 0;
    bool keep_alive = true;
    std::atomic<int> flags{0};

    void Complete(const HttpResponse& response);
    ~WriterState();  // completes with 500 if nobody ever completed
  };

 private:
  void AcceptLoop();
  void WorkerLoop(int index);
  void HandlerLoop();

  void Wake(Worker& w);
  void DrainMailbox(Worker& w);
  void AddConnection(Worker& w, int fd);
  void CloseConnection(Worker& w, Connection& c);
  void UpdateEpoll(Worker& w, Connection& c);
  void OnReadable(Worker& w, Connection& c);
  void TryParse(Worker& w, Connection& c);
  /// Queues `response` as the completion of sequence `seq` (event-loop
  /// responses: parse errors, 503s) and pumps in-order output.
  void QueueResponse(Worker& w, Connection& c, uint64_t seq,
                     const HttpResponse& response, bool keep_alive);
  /// Moves consecutive ready completions into the write buffer and
  /// flushes. May close (destroy) the connection.
  void PumpResponses(Worker& w, Connection& c);
  void FlushWrite(Worker& w, Connection& c);
  void IdleSweep(Worker& w);
  double Now() const;

  AsyncHandler async_handler_;
  HttpServerOptions opts_;
  Socket listener_;
  uint16_t port_ = 0;
  bool running_ = false;

  std::shared_ptr<AsyncCore> core_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread acceptor_;
  std::vector<std::thread> handler_threads_;

  mutable std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::deque<Work> work_;
  bool stop_handlers_ = false;  // guarded by work_mu_

  std::atomic<Phase> phase_{Phase::kRunning};
  std::atomic<bool> stop_accepting_{false};
  std::atomic<size_t> inflight_{0};
  std::atomic<uint64_t> inflight_peak_{0};
  std::atomic<size_t> handler_busy_{0};
  std::atomic<int64_t> async_pending_{0};
  std::atomic<uint64_t> next_conn_id_{1};

  // Stats counters.
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> responses_{0};
  std::atomic<uint64_t> handled_{0};
  std::atomic<uint64_t> rejected_overload_{0};
  std::atomic<uint64_t> rejected_draining_{0};
  std::atomic<uint64_t> parse_errors_{0};
  std::atomic<uint64_t> timed_out_{0};

  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace rafiki::net

#endif  // RAFIKI_NET_HTTP_SERVER_H_
